package siwa

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cfg"
)

// ResourceError reports that an analysis was rejected because it would
// exceed a configured Options.Limits bound. It is returned before the
// oversized allocation happens: an adversarial nested-loop program is
// refused by arithmetic, not by the OOM killer.
type ResourceError = cfg.ResourceError

// InternalError wraps a panic recovered inside one pipeline stage. A bug in
// a detector or transform surfaces as a typed error naming the stage, with
// the stack captured at the panic site, instead of crashing the process —
// one poisoned program can never take down a server full of healthy ones.
type InternalError struct {
	Stage string // pipeline stage that panicked ("detect:refined", "unroll", ...)
	Value any    // the recovered panic value
	Stack string // stack trace captured at recovery
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in stage %s: %v", e.Stage, e.Value)
}

// Limits bounds the resources one analysis may consume. Each field is a
// cap; zero (or negative) disables that cap, so the zero value preserves
// the library's historical unbounded behaviour. Servers should set
// DefaultLimits (or their own): the Lemma 1 unroll is exponential in loop
// nesting depth, and without a cap a ~20-deep nest allocates about 2^20
// copies of its body before any detector runs.
type Limits struct {
	// MaxTasks caps the number of tasks in the (inlined) program.
	MaxTasks int
	// MaxNodes caps the rendezvous statements in the parsed (inlined,
	// pre-unroll) program.
	MaxNodes int
	// MaxUnrolledNodes caps the rendezvous statements the twice-unroll
	// transform may produce, enforced predictively by cfg.UnrollBounded.
	MaxUnrolledNodes int
}

// DefaultLimits returns the caps the analysis service applies by default:
// generous for any human-written program, fatal for unroll bombs.
func DefaultLimits() Limits {
	return Limits{
		MaxTasks:         512,
		MaxNodes:         1 << 16,
		MaxUnrolledNodes: 1 << 18,
	}
}

// String renders the limits in ParseLimits format.
func (l Limits) String() string {
	return fmt.Sprintf("tasks=%d,nodes=%d,unrolled=%d", l.MaxTasks, l.MaxNodes, l.MaxUnrolledNodes)
}

// check returns a *ResourceError when actual exceeds an enabled cap.
func checkLimit(resource string, limit, actual int) error {
	if limit > 0 && actual > limit {
		return &ResourceError{Resource: resource, Limit: limit, Actual: actual}
	}
	return nil
}

// ParseLimits parses the CLI/server spelling of Limits: a comma-separated
// list of tasks=N, nodes=N, unrolled=N (any subset; omitted fields are
// taken from base). The words "off" and "none" disable every cap;
// "default" is DefaultLimits.
func ParseLimits(spec string, base Limits) (Limits, error) {
	switch strings.TrimSpace(spec) {
	case "":
		return base, nil
	case "off", "none":
		return Limits{}, nil
	case "default":
		return DefaultLimits(), nil
	}
	out := base
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Limits{}, fmt.Errorf("limits: %q is not key=value (tasks, nodes, unrolled)", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Limits{}, fmt.Errorf("limits: bad value in %q: %v", part, err)
		}
		switch k {
		case "tasks":
			out.MaxTasks = n
		case "nodes":
			out.MaxNodes = n
		case "unrolled":
			out.MaxUnrolledNodes = n
		default:
			return Limits{}, fmt.Errorf("limits: unknown key %q (tasks, nodes, unrolled)", k)
		}
	}
	return out, nil
}
