package siwa

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/waves"
)

// TestCorpus sweeps every testdata program through the full analysis with
// every certifier enabled plus the exact explorer, asserting the expected
// qualitative outcome for each file. This is the end-to-end integration
// test a release would gate on.
func TestCorpus(t *testing.T) {
	expect := map[string]struct {
		deadlockFree bool // after all certifiers
		stallFree    bool
		exactDead    bool
		exactStall   bool
	}{
		"handshake.ada":     {true, true, false, false},
		"deadlock.ada":      {false, true, true, false},
		"stall.ada":         {true, false, false, true},
		"philosophers.ada":  {false, true, true, false},
		"loop_pipeline.ada": {true, true, false, false},
		"figure3.ada":       {true, true, false, false},
		"procedures.ada":    {true, true, false, false},
	}
	files, err := filepath.Glob("testdata/*.ada")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(expect) {
		t.Fatalf("corpus has %d files, expectations cover %d — update TestCorpus", len(files), len(expect))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			want, ok := expect[filepath.Base(f)]
			if !ok {
				t.Fatalf("no expectation for %s", f)
			}
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Analyze(prog, Options{
				Algorithm:   AlgoRefinedPairs,
				Constraint4: true,
				Enumerate:   true,
				Exact:       true,
				ExactOptions: waves.Options{
					MaxStates: 1 << 18,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Exact.Truncated {
				t.Fatal("exact exploration truncated")
			}
			if got := rep.DeadlockFree(); got != want.deadlockFree {
				t.Errorf("deadlockFree=%v, want %v\n%s", got, want.deadlockFree, rep.Summary())
			}
			if got := rep.Stall.StallFree(); got != want.stallFree {
				t.Errorf("stallFree=%v, want %v", got, want.stallFree)
			}
			if rep.Exact.Deadlock != want.exactDead || rep.Exact.Stall != want.exactStall {
				t.Errorf("exact dead=%v stall=%v, want %v/%v",
					rep.Exact.Deadlock, rep.Exact.Stall, want.exactDead, want.exactStall)
			}
			// Sanity: static certifications never contradict ground truth.
			if rep.DeadlockFree() && rep.Exact.Deadlock {
				t.Error("UNSOUND: certified deadlock-free but exact deadlocks")
			}
			// JSON round-trips on every corpus entry.
			if _, err := rep.JSON(); err != nil {
				t.Errorf("JSON: %v", err)
			}
		})
	}
}
