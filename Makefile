# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet fmt bench fuzz experiments examples server clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the HTTP analysis service (ADDR overrides the listen address).
ADDR ?= :8080
server:
	$(GO) run ./cmd/siwad-server -addr $(ADDR)

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem

# Short fuzzing pass over the parser and inliner.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/lang/
	$(GO) test -fuzz=FuzzInline -fuzztime=30s ./internal/lang/

# Regenerate every EXPERIMENTS.md table (full sizes; -quick for a fast run).
experiments:
	$(GO) run ./cmd/siwad-exp

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dining
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/satgadget

clean:
	$(GO) clean ./...
