# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet fmt bench fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem

# Short fuzzing pass over the parser and inliner.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/lang/
	$(GO) test -fuzz=FuzzInline -fuzztime=30s ./internal/lang/

# Regenerate every EXPERIMENTS.md table (full sizes; -quick for a fast run).
experiments:
	$(GO) run ./cmd/siwad-exp

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dining
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/satgadget

clean:
	$(GO) clean ./...
