# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Version stamp for siwa_build_info{version=...}: git describe when the
# tree has tags, else the short revision (+ -dirty); "dev" outside git.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -X repro/internal/obs.Version=$(VERSION)

.PHONY: all build test race vet fmt lint lint-ignores bench bench-json bench-baseline bench-diff pgo build-pgo fuzz experiments examples server gateway smoke clean

all: build vet lint test

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the HTTP analysis service (ADDR overrides the listen address).
ADDR ?= :8080
server:
	$(GO) run -ldflags "$(LDFLAGS)" ./cmd/siwad-server -addr $(ADDR)

# Run the cluster gateway over an existing fleet: make gateway
# BACKENDS=http://a:8080,http://b:8080 (GWADDR overrides the address).
GWADDR ?= :8090
BACKENDS ?= http://127.0.0.1:8080
gateway:
	$(GO) run -ldflags "$(LDFLAGS)" ./cmd/siwad-gateway -addr $(GWADDR) -backends $(BACKENDS)

# E2E smokes over real processes: trace propagation across tiers, then
# a brownout chaos drill (hedged requests around an injected slow wire).
smoke:
	bash scripts/trace_smoke.sh
	bash scripts/chaos_smoke.sh

vet:
	$(GO) vet ./...

# Repo-specific static analysis: the paper's infinite-wait lens turned on
# our own concurrency code (see internal/lint). Fails on any unsuppressed
# finding; //lint:ignore sites need a reason and are audited by
# lint-ignores. Also fails if any file is not gofmt-clean.
lint:
	$(GO) build -o bin/siwad-lint ./cmd/siwad-lint
	./bin/siwad-lint ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

# Audit every //lint:ignore suppression: file, line, analyzer, reason,
# and whether it still suppresses anything.
lint-ignores:
	$(GO) build -o bin/siwad-lint ./cmd/siwad-lint
	./bin/siwad-lint -list-ignores ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable benchmark record: the whole suite as go test -json
# events in BENCH_<date>.json. BENCHTIME=1x gives a fast smoke run.
BENCHTIME ?= 1s
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -json ./... > BENCH_$$(date +%Y%m%d).json

# Committed baseline for bench-diff: the pinned hot-path benchmarks only,
# at a benchtime long enough for stable ns/op.
bench-baseline:
	$(GO) test -run='^$$' -bench='^(BenchmarkEndToEndAnalyze|BenchmarkParse$$|BenchmarkSyncGraphBuild|BenchmarkStageCacheWarmSecondAlgorithm)' -benchtime=200x -count=5 -json . > BENCH_baseline.json
	$(GO) test -run='^$$' -bench='^(BenchmarkServiceCacheHit$$|BenchmarkWriteJSON)' -benchtime=5000x -count=5 -json ./internal/service >> BENCH_baseline.json

# Fail if any pinned hot-path benchmark regressed >15% vs the baseline.
bench-diff:
	bash scripts/bench_diff.sh

# Profile-guided optimization: profile the hot-path benchmarks and merge
# the CPU profiles into default.pgo, consumed by `go build -pgo=default.pgo`.
pgo:
	$(GO) test -run='^$$' -bench='^(BenchmarkEndToEndAnalyze|BenchmarkParse$$|BenchmarkSyncGraphBuild|BenchmarkStageCacheWarmSecondAlgorithm)' -benchtime=50x -cpuprofile=cpu.root.prof .
	$(GO) test -run='^$$' -bench='^(BenchmarkServiceCacheHit$$|BenchmarkWriteJSON)' -benchtime=200x -cpuprofile=cpu.service.prof ./internal/service
	$(GO) tool pprof -proto cpu.root.prof cpu.service.prof > default.pgo
	rm -f cpu.root.prof cpu.service.prof repro.test service.test

# Verify the committed PGO profile still drives a clean build.
build-pgo:
	$(GO) build -pgo=default.pgo -ldflags "$(LDFLAGS)" ./...

# Short fuzzing pass over the parser, inliner, and whole pipeline.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/lang/
	$(GO) test -fuzz=FuzzInline -fuzztime=30s ./internal/lang/
	$(GO) test -fuzz=FuzzAnalyzeNaive -fuzztime=30s .

# Regenerate every EXPERIMENTS.md table (full sizes; -quick for a fast run).
experiments:
	$(GO) run ./cmd/siwad-exp

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dining
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/satgadget

clean:
	$(GO) clean ./...
