package siwa

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestStageCacheMatchesUncached is the stage cache's ground-truth gate:
// across 200 random programs, the memoized pipeline must produce byte-for-
// byte the same report as the plain one — cold through a fresh cache, and
// again fully warm — for the complete detector spectrum, the constraint-4
// certifier, the enumeration detector, and the stall analysis. One cache
// is shared across all programs so admission and lookup interleave the way
// they do in the service.
func TestStageCacheMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mc := NewStageCache(64 << 20)
	for i := 0; i < 200; i++ {
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(3)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		cfg.BranchProb = 0.25
		cfg.LoopProb = 0.25
		src := workload.Random(rng, cfg).String()
		opt := Options{
			AllAlgorithms: true,
			Constraint4:   true,
			Enumerate:     true,
			FIFO:          i%2 == 1,
		}

		ref, err := AnalyzeSource(src, opt) // nil StageCache: plain pipeline
		if err != nil {
			t.Fatalf("program %d: uncached analyze failed: %v", i, err)
		}
		refJSON := ref.JSONReport()

		opt.StageCache = mc
		for _, pass := range []string{"cold", "warm"} {
			rep, err := AnalyzeSource(src, opt)
			if err != nil {
				t.Fatalf("program %d (%s): memoized analyze failed: %v", i, pass, err)
			}
			if got := rep.JSONReport(); !reflect.DeepEqual(got, refJSON) {
				t.Fatalf("program %d (%s): memoized report diverged\nmemoized: %+v\nplain:    %+v\nsource:\n%s",
					i, pass, got, refJSON, src)
			}
		}
	}
	st := mc.Stats()
	if st.Hits == 0 || st.Builds == 0 {
		t.Fatalf("cache saw no traffic: %+v", st)
	}
	// Each program's warm pass repeats the cold pass's key set exactly, so
	// single-flight plus residency caps builds at the miss count of the
	// cold passes alone.
	if st.Builds > st.Misses {
		t.Fatalf("more builds than misses: %+v", st)
	}
}

// TestStageCacheConcurrentSingleFlight hammers one cache from many
// goroutines analyzing a small set of sources with every detector enabled,
// under the race detector. The single-flight contract is that concurrent
// misses on one key collapse: the total number of builds never exceeds the
// number of distinct keys (no entry is evicted — the budget is ample).
func TestStageCacheConcurrentSingleFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nSources, nGoroutines, nRounds = 4, 8, 3

	srcs := make([]string, nSources)
	refs := make([]JSONReport, nSources)
	for i := range srcs {
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + i%3
		cfg.StmtsPerTask = 3
		cfg.LoopProb = 0.3
		srcs[i] = workload.Random(rng, cfg).String()
		ref, err := AnalyzeSource(srcs[i], Options{AllAlgorithms: true, Enumerate: true})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref.JSONReport()
	}

	mc := NewStageCache(64 << 20)
	var wg sync.WaitGroup
	errs := make(chan error, nGoroutines)
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < nRounds; r++ {
				for s := range srcs {
					i := (g + r + s) % nSources
					rep, err := AnalyzeSource(srcs[i], Options{
						AllAlgorithms: true,
						Enumerate:     true,
						StageCache:    mc,
					})
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %v", g, err)
						return
					}
					if got := rep.JSONReport(); !reflect.DeepEqual(got, refs[i]) {
						errs <- fmt.Errorf("goroutine %d: source %d diverged under concurrency", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := mc.Stats()
	if st.Evictions != 0 {
		t.Fatalf("ample budget evicted: %+v", st)
	}
	// Distinct keys per source: src, an, 5 verdicts (detect:naive shares
	// the spectrum's entry), stall, enumerate = 9.
	const maxKeys = nSources * 9
	if st.Builds > maxKeys {
		t.Fatalf("single-flight leaked: %d builds for at most %d distinct keys (%+v)",
			st.Builds, maxKeys, st)
	}
	if st.Entries > maxKeys {
		t.Fatalf("more entries than distinct keys: %+v", st)
	}
}

// TestStageCacheTinyBudgetEviction squeezes concurrent analyses through a
// cache too small to hold even one source's artifacts. Entries churn
// constantly; the invariant under the race detector is that eviction only
// unlinks entries — artifacts handed to a live analysis stay valid, so
// every report still matches the uncached reference.
func TestStageCacheTinyBudgetEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const nSources, nGoroutines = 3, 6

	srcs := make([]string, nSources)
	refs := make([]JSONReport, nSources)
	for i := range srcs {
		cfg := workload.DefaultConfig()
		cfg.Tasks = 3
		cfg.StmtsPerTask = 3
		cfg.LoopProb = 0.3
		srcs[i] = workload.Random(rng, cfg).String()
		ref, err := AnalyzeSource(srcs[i], Options{AllAlgorithms: true})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref.JSONReport()
	}

	mc := NewStageCache(2048) // a few entries at most; most admissions evict
	var wg sync.WaitGroup
	errs := make(chan error, nGoroutines)
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				i := (g + r) % nSources
				rep, err := AnalyzeSource(srcs[i], Options{
					AllAlgorithms: true,
					StageCache:    mc,
				})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got := rep.JSONReport(); !reflect.DeepEqual(got, refs[i]) {
					errs <- fmt.Errorf("goroutine %d: source %d corrupted by eviction churn", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := mc.Stats(); st.Bytes > 2048 {
		t.Fatalf("byte budget exceeded: %+v", st)
	}
}

// BenchmarkStageCacheWarmSecondAlgorithm measures the tentpole win: asking
// a new algorithm about an already-analyzed source. cold runs the full
// pipeline — parse, unroll, sync graph, CLG and ordering tables, stall
// balance, then the sweep; warm reuses every cached artifact and executes
// only the new detector sweep. The warm path is expected to be >= 5x
// faster (scripts/bench_diff.sh tracks the ratio).
func BenchmarkStageCacheWarmSecondAlgorithm(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	cfg := workload.DefaultConfig()
	cfg.Tasks = 8
	cfg.StmtsPerTask = 6
	cfg.LoopProb = 0.3
	src := workload.Random(rng, cfg).String()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeSource(src, Options{Algorithm: AlgoNaive}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mc := NewStageCache(64 << 20)
			// Prime with a different algorithm, as a first request would:
			// its sweep caches nothing the timed naive sweep can reuse.
			if _, err := AnalyzeSource(src, Options{StageCache: mc, Algorithm: AlgoRefined}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := AnalyzeSource(src, Options{StageCache: mc, Algorithm: AlgoNaive}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
