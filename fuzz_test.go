package siwa

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzLimits keeps fuzzed analyses small enough to run thousands per
// second while still covering every pipeline stage.
var fuzzLimits = Limits{MaxTasks: 32, MaxNodes: 256, MaxUnrolledNodes: 1024}

// FuzzAnalyzeNaive drives the whole pipeline (parse, validate, limits,
// unroll, sync graph, CLG, naive + refined detectors, stall) on arbitrary
// input and asserts the robustness contract:
//
//   - no panic ever escapes — a *InternalError from Analyze means a stage
//     panicked, which is a bug by definition, so the fuzzer fails on it;
//   - the detector spectrum stays monotone: the refined detector only
//     removes false alarms, so refined "may deadlock" implies naive "may
//     deadlock" (Theorem: each refinement is at least as precise while
//     remaining conservative).
//
// Seeds are the checked-in example corpus, so fuzzing starts from real
// programs exercising every construct.
func FuzzAnalyzeNaive(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.ada"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no testdata seeds (err=%v)", err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("task a is begin b.m; end; task b is begin accept m; end;")
	f.Add("task a is begin while w loop b.m; end loop; end; task b is begin accept m; a.r; end;")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			failOnInternal(t, err)
			return // rejection is fine; panics are not
		}
		naive, err := Analyze(p, Options{Algorithm: AlgoNaive, Limits: fuzzLimits})
		if err != nil {
			// Validation and resource-limit rejections are correct
			// behaviour on hostile input; contained panics are bugs.
			failOnInternal(t, err)
			return
		}
		refined, err := Analyze(p, Options{Algorithm: AlgoRefined, Limits: fuzzLimits})
		if err != nil {
			failOnInternal(t, err)
			t.Fatalf("refined failed where naive succeeded: %v", err)
		}
		if refined.Deadlock.MayDeadlock && !naive.Deadlock.MayDeadlock {
			t.Fatalf("spectrum not monotone: refined flags a deadlock naive missed\n%s", src)
		}
		// A deadlock-free verdict from the selected detector must agree
		// with the report-level certificate.
		if !naive.Deadlock.MayDeadlock && !naive.DeadlockFree() {
			t.Fatal("verdict and certificate disagree")
		}
	})
}

func failOnInternal(t *testing.T, err error) {
	t.Helper()
	var ie *InternalError
	if errors.As(err, &ie) {
		t.Fatalf("pipeline stage %s panicked: %v\n%s", ie.Stage, ie.Value, ie.Stack)
	}
}
