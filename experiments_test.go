package siwa

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

// TestExperimentIndex pins the qualitative outcome of every figure
// experiment (DESIGN.md §3, EXPERIMENTS.md). A change in any detector that
// shifts one of these verdicts fails here first.
func TestExperimentIndex(t *testing.T) {
	rows, err := exp.RunFigures()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]exp.FigureRow{}
	for _, r := range rows {
		byID[r.ID] = r
	}

	// F1: deadlock-free; naive and single-head refined alarm; the pair
	// extensions certify.
	f1 := byID["F1"]
	if f1.ExactVerdict != "clean" {
		t.Fatalf("F1 exact=%s", f1.ExactVerdict)
	}
	if !f1.Alarms[core.AlgoNaive] || !f1.Alarms[core.AlgoRefined] {
		t.Fatal("F1: expected naive and refined alarms")
	}
	if f1.Alarms[core.AlgoRefinedPairs] || f1.Alarms[core.AlgoRefinedHeadTailPairs] {
		t.Fatal("F1: pair extensions must certify")
	}

	// F2a: pure stall; every deadlock detector certifies; balance flags.
	f2a := byID["F2a"]
	if f2a.ExactVerdict != "stall" || !f2a.StallFlagged {
		t.Fatalf("F2a: %+v", f2a)
	}
	for a, alarm := range f2a.Alarms {
		if alarm {
			t.Fatalf("F2a: %v raised a deadlock alarm on a pure stall", a)
		}
	}

	// F2b: real deadlock; everything alarms, constraint 4 cannot certify.
	f2b := byID["F2b"]
	if f2b.ExactVerdict != "deadlock" {
		t.Fatalf("F2b exact=%s", f2b.ExactVerdict)
	}
	for a, alarm := range f2b.Alarms {
		if !alarm {
			t.Fatalf("F2b: %v missed the deadlock", a)
		}
	}
	if f2b.C4Certified {
		t.Fatal("F2b: constraint 4 wrongly certified")
	}

	// F3: deadlock-free but locally valid cycle; only constraint 4
	// certifies.
	f3 := byID["F3"]
	if f3.ExactVerdict != "clean" && f3.ExactVerdict != "stall" {
		t.Fatalf("F3 exact=%s", f3.ExactVerdict)
	}
	if !f3.Alarms[core.AlgoNaive] || !f3.Alarms[core.AlgoRefined] || !f3.Alarms[core.AlgoRefinedPairs] {
		t.Fatal("F3: local constraints should not clear the cycle")
	}
	if !f3.C4Certified {
		t.Fatal("F3: constraint 4 must certify")
	}

	// F4ab: CLG kills the sync-only cycle, so even naive certifies.
	f4 := byID["F4ab"]
	if f4.Alarms[core.AlgoNaive] {
		t.Fatal("F4ab: naive flagged; CLG transform broken")
	}

	// F4c: stalls but does not deadlock; naive and refined alarm without
	// cross-task co-execution facts.
	f4c := byID["F4c"]
	if f4c.ExactVerdict != "stall" {
		t.Fatalf("F4c exact=%s", f4c.ExactVerdict)
	}
	if !f4c.Alarms[core.AlgoNaive] || !f4c.Alarms[core.AlgoRefined] {
		t.Fatal("F4c: expected alarms from the masked-SCC detectors")
	}
	if f4c.Enumerated || !f4c.EnumComplete {
		t.Fatal("F4c: the enumeration detector (exact constraint 1c) must certify")
	}
	// The enumeration detector must also be safe on the real deadlock and
	// agree with the certifications elsewhere.
	if !f2b.Enumerated {
		t.Fatal("F2b: enumeration detector missed the deadlock")
	}
	if f1.Enumerated {
		t.Fatal("F1: enumeration detector should certify (heads share a sync edge)")
	}

	// F5bc / F5d: balance verdicts on the raw programs (the transforms
	// that change them are pinned in internal/stall tests).
	if byID["F5bc"].StallFlagged {
		// Both arms carry the same rendezvous: already constant-delta.
		t.Fatal("F5bc: constant-delta branches should pass the balance check")
	}
	if !byID["F5d"].StallFlagged {
		t.Fatal("F5d: uncertified co-dependence must be flagged")
	}
}

func TestExperimentUnrollGrowth(t *testing.T) {
	rows := exp.RunUnrollGrowth([]int{1, 2, 3, 4}, 4)
	for _, r := range rows {
		if r.After != r.Expected {
			t.Fatalf("depth %d: after=%d expected=%d", r.Depth, r.After, r.Expected)
		}
	}
	// Growth doubles per level for the nested kernel.
	if rows[1].After-4 != 2*(rows[0].After-4) {
		t.Fatalf("growth not 2x per depth: %+v", rows)
	}
}

func TestExperimentTheoremAgreement(t *testing.T) {
	t2, err := exp.RunTheorem2Agreement(7, 25, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Samples == 0 || t2.Agreements != t2.Samples {
		t.Fatalf("Theorem 2 agreement: %+v", t2)
	}
	t3, err := exp.RunTheorem3Agreement(7, 25, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Samples == 0 || t3.Agreements != t3.Samples {
		t.Fatalf("Theorem 3 agreement: %+v", t3)
	}
}

func TestExperimentPrecisionNoMisses(t *testing.T) {
	cfg := defaultPrecisionConfig()
	rows, _, err := exp.RunPrecision(11, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var naiveFA, pairsFA int
	for _, r := range rows {
		if r.Misses != 0 {
			t.Fatalf("%v missed %d deadlocks", r.Algorithm, r.Misses)
		}
		switch r.Algorithm {
		case core.AlgoNaive:
			naiveFA = r.FalseAlarms
		case core.AlgoRefinedPairs:
			pairsFA = r.FalseAlarms
		}
	}
	if pairsFA > naiveFA {
		t.Fatalf("precision order inverted: naive=%d pairs=%d", naiveFA, pairsFA)
	}
}

func TestExperimentExactVsStatic(t *testing.T) {
	rows, err := exp.RunExactVsStatic([]int{1, 2, 3, 4}, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential growth of the exact state count: 3^n for depth 2.
	want := 3
	for _, r := range rows {
		if r.Truncated {
			t.Fatalf("truncated at %d pairs", r.Pairs)
		}
		if r.ExactStates != want {
			t.Fatalf("pairs=%d states=%d want=%d", r.Pairs, r.ExactStates, want)
		}
		want *= 3
	}
}

func defaultPrecisionConfig() workload.Config {
	return workload.Config{
		Tasks:        3,
		StmtsPerTask: 3,
		Msgs:         2,
		BranchProb:   0.25,
		MaxDepth:     2,
		AcceptRatio:  0.5,
	}
}
