package siwa

import (
	"encoding/json"
	"strings"
	"testing"
)

// traceTestProgram deadlocks under refined, so a traced run exercises the
// detector counters (hypotheses, SCC runs, witnesses).
const traceTestProgram = `
task t1 is
begin
  accept a;
  t2.b;
end;
task t2 is
begin
  accept b;
  t1.a;
end;
`

func TestAnalyzeTraceSpans(t *testing.T) {
	p := MustParse(traceTestProgram)
	rep, err := Analyze(p, Options{Algorithm: AlgoRefined, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	root := rep.Trace
	if root == nil {
		t.Fatal("Options.Trace set but Report.Trace is nil")
	}
	if root.Name != "analyze" {
		t.Fatalf("root span %q", root.Name)
	}
	if root.Dur <= 0 {
		t.Fatal("root span has no duration")
	}
	// Children cover the stages that ran, and their durations cannot
	// exceed the root's (stages run sequentially inside it).
	var childSum int64
	names := map[string]bool{}
	for _, c := range root.Children {
		names[c.Name] = true
		if c.Dur < 0 {
			t.Fatalf("span %s has negative duration", c.Name)
		}
		childSum += int64(c.Dur)
	}
	for _, want := range []string{"sync-graph", "clg", "detect:refined", "stall"} {
		if !names[want] {
			t.Fatalf("stage %q missing; got %v", want, names)
		}
	}
	if childSum > int64(root.Dur) {
		t.Fatalf("children sum %d exceeds root %d", childSum, root.Dur)
	}
	// The detector span carries nonzero work counters.
	det := root.Child("detect:refined")
	if det == nil {
		t.Fatal("detect:refined span missing")
	}
	if det.Counter("hypotheses") == 0 || det.Counter("scc_runs") == 0 {
		t.Fatalf("detector counters zero: hypotheses=%d scc_runs=%d",
			det.Counter("hypotheses"), det.Counter("scc_runs"))
	}
	if det.Counter("witnesses") == 0 {
		t.Fatal("deadlocking program recorded no witnesses")
	}
	sg := root.Child("sync-graph")
	if sg == nil || sg.Counter("tasks") != 2 {
		t.Fatalf("sync-graph span: %+v", sg)
	}
	// The rendered tree names every stage.
	tree := rep.TraceString()
	for name := range names {
		if !strings.Contains(tree, name) {
			t.Fatalf("TraceString missing %q:\n%s", name, tree)
		}
	}
}

func TestAnalyzeUntracedHasNoTrace(t *testing.T) {
	p := MustParse(traceTestProgram)
	rep, err := Analyze(p, Options{Algorithm: AlgoRefined})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Fatal("untraced run produced a span tree")
	}
	if rep.TraceString() != "" {
		t.Fatal("TraceString on untraced report not empty")
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"trace"`) {
		t.Fatalf("untraced JSON carries a trace field:\n%s", data)
	}
}

func TestAnalyzeTraceOptionalStages(t *testing.T) {
	p := MustParse(traceTestProgram)
	rep, err := Analyze(p, Options{
		Algorithm:     AlgoRefined,
		AllAlgorithms: true,
		Constraint4:   true,
		Enumerate:     true,
		Exact:         true,
		Trace:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"spectrum:naive", "constraint4", "enumerate", "exact-waves",
	} {
		if rep.Trace.Child(want) == nil {
			t.Fatalf("stage %q missing from full-pipeline trace:\n%s",
				want, rep.TraceString())
		}
	}
	ex := rep.Trace.Child("exact-waves")
	if ex.Counter("states") == 0 {
		t.Fatal("exact-waves recorded zero states")
	}
}

func TestTraceJSONProjection(t *testing.T) {
	p := MustParse(traceTestProgram)
	rep, err := Analyze(p, Options{Algorithm: AlgoRefined, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out JSONReport
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion < 2 {
		t.Fatalf("schemaVersion=%d, want >= 2 (trace is a v2 field)", out.SchemaVersion)
	}
	if out.Trace == nil || out.Trace.Name != "analyze" {
		t.Fatalf("trace projection: %+v", out.Trace)
	}
	if len(out.Trace.Children) == 0 {
		t.Fatal("trace projection lost the stage spans")
	}
	var det *JSONSpan
	for _, c := range out.Trace.Children {
		if c.Name == "detect:refined" {
			det = c
		}
	}
	if det == nil || det.Counters["hypotheses"] == 0 {
		t.Fatalf("detector counters lost in projection: %+v", det)
	}
}

func TestExternalTracerIsUsed(t *testing.T) {
	p := MustParse(traceTestProgram)
	tr := NewTracer()
	rep, err := Analyze(p, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Trace != tr.Root() {
		t.Fatal("caller-provided tracer not threaded through")
	}
}
