package siwa

import (
	"encoding/json"
)

// SchemaVersion is the version of the JSONReport wire format, carried in
// every report's schemaVersion field so the service and CLI outputs are
// versioned from day one. Bump it on any breaking change to JSONReport.
//
// v2 (additive): a "trace" field — the pipeline span tree with per-stage
// durations and work counters — appears when the analysis ran with
// Options.Trace. Every v1 field is unchanged, so v1 readers can consume
// v2 reports by ignoring the new field.
//
// v3 (additive): "degraded" and "degradedReasons" appear when an analysis
// run with Options.Degrade fell back to the polynomial verdict after the
// exhaustive stage hit its deadline or budget, and "exact.cancelled"
// marks an exact exploration stopped by its deadline. Every v2 field is
// unchanged.
const SchemaVersion = 3

// JSONReport is the stable machine-readable projection of a Report,
// emitted by Report.JSON, siwad -json, and the analysis service.
type JSONReport struct {
	SchemaVersion   int  `json:"schemaVersion"`
	Tasks           int  `json:"tasks"`
	RendezvousNodes int  `json:"rendezvousNodes"`
	SyncEdges       int  `json:"syncEdges"`
	ControlEdges    int  `json:"controlEdges"`
	Transformed     bool `json:"transformed"` // inlined and/or unrolled

	Deadlock     JSONVerdict   `json:"deadlock"`
	Spectrum     []JSONVerdict `json:"spectrum,omitempty"`
	DeadlockFree bool          `json:"deadlockFree"`

	Constraint4 *JSONConstraint4 `json:"constraint4,omitempty"`
	Enumeration *JSONEnumeration `json:"enumeration,omitempty"`

	StallFree    bool         `json:"stallFree"`
	StallSignals []JSONSignal `json:"stallSignals,omitempty"`

	Exact *JSONExact `json:"exact,omitempty"`

	// Trace is the pipeline span tree (schema v2, additive): per-stage
	// durations in milliseconds and work counters. Present only when the
	// analysis was traced.
	Trace *JSONSpan `json:"trace,omitempty"`

	// Degraded and DegradedReasons (schema v3, additive) mark a report
	// whose exhaustive stage hit its deadline or budget under
	// Options.Degrade; the polynomial verdicts above remain sound.
	Degraded        bool     `json:"degraded,omitempty"`
	DegradedReasons []string `json:"degradedReasons,omitempty"`
}

// JSONVerdict is one detector outcome.
type JSONVerdict struct {
	Algorithm   string     `json:"algorithm"`
	MayDeadlock bool       `json:"mayDeadlock"`
	Witnesses   [][]string `json:"witnesses,omitempty"`
	Hypotheses  int        `json:"hypotheses"`
	SCCRuns     int        `json:"sccRuns"`
}

// JSONConstraint4 is the global-condition certifier outcome.
type JSONConstraint4 struct {
	DeadlockFree bool `json:"deadlockFree"`
	Conclusive   bool `json:"conclusive"`
}

// JSONEnumeration is the cycle-enumeration detector outcome.
type JSONEnumeration struct {
	MayDeadlock     bool `json:"mayDeadlock"`
	Conclusive      bool `json:"conclusive"`
	CyclesSeen      int  `json:"cyclesSeen"`
	CyclesPlausible int  `json:"cyclesPlausible"`
}

// JSONSignal is one unbalanced signal from the stall analysis.
type JSONSignal struct {
	Task        string `json:"task"`
	Msg         string `json:"msg"`
	Constant    bool   `json:"constant"`
	Delta       int    `json:"delta"`
	VaryingTask string `json:"varyingTask,omitempty"`
}

// JSONExact summarizes the exact wave exploration.
type JSONExact struct {
	States         int  `json:"states"`
	Transitions    int  `json:"transitions"`
	Completed      bool `json:"completed"`
	Deadlock       bool `json:"deadlock"`
	Stall          bool `json:"stall"`
	AnomalousWaves int  `json:"anomalousWaves"`
	Truncated      bool `json:"truncated"`
	// Cancelled (schema v3, additive) reports an exploration stopped by
	// its deadline; Truncated is also set, the results are partial.
	Cancelled bool `json:"cancelled,omitempty"`
}

func (r *Report) jsonVerdict(v Verdict) JSONVerdict {
	out := JSONVerdict{
		Algorithm:   v.Algorithm.String(),
		MayDeadlock: v.MayDeadlock,
		Hypotheses:  v.Hypotheses,
		SCCRuns:     v.SCCRuns,
	}
	if len(v.Witnesses) > 0 {
		out.Witnesses = make([][]string, 0, len(v.Witnesses))
		for _, w := range v.Witnesses {
			out.Witnesses = append(out.Witnesses, r.WitnessLabels(w))
		}
	}
	return out
}

// JSONReport builds the machine-readable projection of the report.
func (r *Report) JSONReport() JSONReport {
	out := JSONReport{
		SchemaVersion:   SchemaVersion,
		Tasks:           len(r.Graph.Tasks),
		RendezvousNodes: r.Graph.NumRendezvous(),
		SyncEdges:       r.Graph.NumSyncEdges(),
		ControlEdges:    r.Graph.NumControlEdges(),
		Transformed:     r.Unrolled != r.Program,
		Deadlock:        r.jsonVerdict(r.Deadlock),
		DeadlockFree:    r.DeadlockFree(),
		StallFree:       r.Stall.StallFree(),
		Trace:           r.Trace.JSON(),
		Degraded:        r.Degraded,
		DegradedReasons: r.DegradedReasons,
	}
	if len(r.Spectrum) > 0 {
		out.Spectrum = make([]JSONVerdict, 0, len(r.Spectrum))
		for _, v := range r.Spectrum {
			out.Spectrum = append(out.Spectrum, r.jsonVerdict(v))
		}
	}
	if r.Constraint4Conclusive || r.Constraint4Free {
		out.Constraint4 = &JSONConstraint4{
			DeadlockFree: r.Constraint4Free,
			Conclusive:   r.Constraint4Conclusive,
		}
	}
	if r.Enumerated != nil {
		out.Enumeration = &JSONEnumeration{
			MayDeadlock:     r.Enumerated.MayDeadlock,
			Conclusive:      r.Enumerated.Conclusive,
			CyclesSeen:      r.Enumerated.CyclesSeen,
			CyclesPlausible: r.Enumerated.CyclesPlausible,
		}
	}
	if unbalanced := r.Stall.Unbalanced(); len(unbalanced) > 0 {
		out.StallSignals = make([]JSONSignal, 0, len(unbalanced))
		for _, s := range unbalanced {
			out.StallSignals = append(out.StallSignals, JSONSignal{
				Task:        s.Sig.Task,
				Msg:         s.Sig.Msg,
				Constant:    s.Constant,
				Delta:       s.Delta,
				VaryingTask: s.VaryingTask,
			})
		}
	}
	if r.Exact != nil {
		out.Exact = &JSONExact{
			States:         r.Exact.States,
			Transitions:    r.Exact.Transitions,
			Completed:      r.Exact.Completed,
			Deadlock:       r.Exact.Deadlock,
			Stall:          r.Exact.Stall,
			AnomalousWaves: r.Exact.AnomalousWaves,
			Truncated:      r.Exact.Truncated,
			Cancelled:      r.Exact.Cancelled,
		}
	}
	return out
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r.JSONReport(), "", "  ")
}
