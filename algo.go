package siwa

// AlgorithmInfo describes one detector of the spectrum: its registry
// spelling (accepted by the siwad -algo flag and the service's wire
// options), the Algorithm constant, and a one-line description. The
// GET /v1/algorithms endpoint serves this so clients can discover the
// precision/cost spectrum without hardcoding it.
type AlgorithmInfo struct {
	Name        string
	Algorithm   Algorithm
	Description string
	// Budgeted marks detectors with a worst-case exponential phase that is
	// cut off by an internal budget and can therefore come back
	// inconclusive — the rungs Options.Degrade applies to. The purely
	// polynomial rungs always terminate with a definite verdict.
	Budgeted bool
}

// algorithmRegistry is the canonical detector registry, in increasing
// precision and cost. The CLI flag, the service's accepted spellings, the
// unknown-algorithm errors, and the discovery endpoint all derive from it
// so they cannot drift apart.
var algorithmRegistry = []AlgorithmInfo{
	{"naive", AlgoNaive,
		"CLG cycle detection only (constraint 1): cheapest rung, most false alarms", false},
	{"refined", AlgoRefined,
		"single-head hypotheses with SEQUENCEABLE/COACCEPT/NOT-COEXEC marking (the paper's main algorithm)", false},
	{"pairs", AlgoRefinedPairs,
		"hypothesizes pairs of head nodes in distinct tasks", false},
	{"head-tail", AlgoRefinedHeadTail,
		"hypothesizes head-tail node pairs within one task", false},
	{"ht-pairs", AlgoRefinedHeadTailPairs,
		"hypothesizes two head-tail pairs (k = 2), the paper's strongest polynomial rung", false},
	{"k-pairs", AlgoRefinedKPairs,
		"k = 3 head-tail pairs plus an exhaustive budgeted small-cycle phase", true},
	{"enumerate", AlgoEnumerate,
		"budgeted simple-cycle enumeration enforcing constraint 1c exactly: most precise, worst-case exponential", true},
}

// algorithmsByName indexes the registry by spelling.
var algorithmsByName = func() map[string]Algorithm {
	m := make(map[string]Algorithm, len(algorithmRegistry))
	for _, info := range algorithmRegistry {
		m[info.Name] = info.Algorithm
	}
	return m
}()

// Algorithms returns a copy of the canonical name -> Algorithm registry.
func Algorithms() map[string]Algorithm {
	out := make(map[string]Algorithm, len(algorithmsByName))
	for n, a := range algorithmsByName {
		out[n] = a
	}
	return out
}

// AlgorithmList returns the registry entries in spectrum order
// (increasing precision and cost), as a copy.
func AlgorithmList() []AlgorithmInfo {
	return append([]AlgorithmInfo(nil), algorithmRegistry...)
}

// AlgorithmByName resolves a registry name ("refined", "ht-pairs", ...).
func AlgorithmByName(name string) (Algorithm, bool) {
	a, ok := algorithmsByName[name]
	return a, ok
}

// AlgorithmNames returns every registry name, in spectrum order.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithmRegistry))
	for _, info := range algorithmRegistry {
		names = append(names, info.Name)
	}
	return names
}
