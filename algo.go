package siwa

import "sort"

// algorithmsByName is the canonical name registry for the detector
// spectrum, shared by the siwad CLI and the analysis service so their
// accepted spellings and error messages cannot drift apart.
var algorithmsByName = map[string]Algorithm{
	"naive":     AlgoNaive,
	"refined":   AlgoRefined,
	"pairs":     AlgoRefinedPairs,
	"head-tail": AlgoRefinedHeadTail,
	"ht-pairs":  AlgoRefinedHeadTailPairs,
	"k-pairs":   AlgoRefinedKPairs,
	"enumerate": AlgoEnumerate,
}

// Algorithms returns a copy of the canonical name -> Algorithm registry.
func Algorithms() map[string]Algorithm {
	out := make(map[string]Algorithm, len(algorithmsByName))
	for n, a := range algorithmsByName {
		out[n] = a
	}
	return out
}

// AlgorithmByName resolves a registry name ("refined", "ht-pairs", ...).
func AlgorithmByName(name string) (Algorithm, bool) {
	a, ok := algorithmsByName[name]
	return a, ok
}

// AlgorithmNames returns every registry name, sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithmsByName))
	for n := range algorithmsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
