#!/usr/bin/env bash
# E2E chaos smoke: boot a gateway (hedging + retry budgets on) over two
# real replicas, brown out the wire to one of them via SIWA_FAULTS
# network-layer latency injection, and assert a client request under a
# deadline budget still completes fast — i.e. hedged requests route
# around a slow wire over real HTTP, not just in in-process tests — with
# the hedge visible in the gateway's own /metrics.
#
# Usage: scripts/chaos_smoke.sh [base-port]   (default 18200)
set -euo pipefail

BASE=${1:-18200}
R1=$((BASE + 1)) R2=$((BASE + 2)) GW=$((BASE + 10))
BIN=$(mktemp -d)
PIDS=()
cleanup() {
	for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$BIN"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN/siwad-server" ./cmd/siwad-server
go build -o "$BIN/siwad-gateway" ./cmd/siwad-gateway

echo "== boot 2 replicas + gateway (wire to replica 1 browned out 800ms)"
"$BIN/siwad-server" -addr "127.0.0.1:$R1" -log off &
PIDS+=($!)
"$BIN/siwad-server" -addr "127.0.0.1:$R2" -log off &
PIDS+=($!)
# The host-qualified latency point stalls only bytes toward replica 1;
# the SIWA_FAULTS spec splits on ":", so the host:port is spelled with
# "-" (fault.HostKey). The retry burst is sized so that even if all 12
# requests below hedge (a token each), the bucket never drains to its
# low watermark (burst/2) — at which point hedging would switch itself
# off by design and a browned-owned request would ride out the stall.
SIWA_FAULTS="gateway.net.latency@127.0.0.1-$R1:delay=800ms" \
	"$BIN/siwad-gateway" -addr "127.0.0.1:$GW" -log off \
	-backends "http://127.0.0.1:$R1,http://127.0.0.1:$R2" \
	-hedge-after 95 -retry-budget 0.1 -retry-burst 40 &
PIDS+=($!)

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -sf "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "FAIL: port $1 never became ready" >&2
	exit 1
}
wait_ready "$R1"
wait_ready "$R2"
wait_ready "$GW"

echo "== analyzes through the gateway under a 2s deadline budget"
# Health probes bypass the faulted client transport, so replica 1 stays
# eligible and roughly half of these digests route their primary attempt
# into the browned wire — each of those must be rescued by a hedge. A
# cold backend hedges after the 100ms fallback delay, so every request
# must finish far under the 800ms brownout.
WORST=0
for i in $(seq 2 13); do
	SRC="task t$i is begin u$i.m; accept m; end; task u$i is begin t$i.m; accept m; end;"
	START=$(date +%s%N)
	if ! curl -sf -o /dev/null --max-time 2 "http://127.0.0.1:$GW/v1/analyze" \
		-d "{\"source\": \"$SRC\", \"timeoutMs\": 2000}"; then
		echo "FAIL: analyze $i failed under brownout" >&2
		exit 1
	fi
	MS=$(( ($(date +%s%N) - START) / 1000000 ))
	if [ "$MS" -gt "$WORST" ]; then WORST=$MS; fi
done
echo "   worst request: ${WORST}ms"
if [ "$WORST" -ge 700 ]; then
	echo "FAIL: worst request took ${WORST}ms; hedging did not bound the 800ms brownout" >&2
	exit 1
fi

echo "== gateway metrics show the hedges"
METRICS=$(curl -sf "http://127.0.0.1:$GW/metrics")
HEDGES=$(awk '$1 == "siwa_gateway_hedges_total" {print $2}' <<<"$METRICS")
WINS=$(awk '$1 == "siwa_gateway_hedge_wins_total" {print $2}' <<<"$METRICS")
if [ -z "$HEDGES" ] || [ "$HEDGES" -lt 1 ]; then
	echo "FAIL: siwa_gateway_hedges_total=$HEDGES, want >= 1" >&2
	exit 1
fi
if [ -z "$WINS" ] || [ "$WINS" -lt 1 ]; then
	echo "FAIL: siwa_gateway_hedge_wins_total=$WINS, want >= 1" >&2
	exit 1
fi
if ! grep -q 'siwa_gateway_retry_budget_tokens{scope="global"}' <<<"$METRICS"; then
	echo "FAIL: retry budget gauge missing from /metrics" >&2
	exit 1
fi

echo "PASS: $HEDGES hedges ($WINS wins) kept the worst request at ${WORST}ms under an 800ms brownout"
