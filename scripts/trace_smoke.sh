#!/usr/bin/env bash
# E2E fleet-trace smoke: boot a gateway over two real replicas, send one
# analyze through the gateway, and assert the SAME trace id is retained
# in both tiers' /debug/traces — i.e. W3C traceparent propagation and
# cross-process stitching work over real HTTP, not just in-process tests.
#
# Usage: scripts/trace_smoke.sh [base-port]   (default 18080)
set -euo pipefail

BASE=${1:-18080}
R1=$((BASE + 1)) R2=$((BASE + 2)) GW=$((BASE + 10))
BIN=$(mktemp -d)
PIDS=()
cleanup() {
	for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$BIN"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN/siwad-server" ./cmd/siwad-server
go build -o "$BIN/siwad-gateway" ./cmd/siwad-gateway

echo "== boot 2 replicas + gateway"
"$BIN/siwad-server" -addr "127.0.0.1:$R1" -log off &
PIDS+=($!)
"$BIN/siwad-server" -addr "127.0.0.1:$R2" -log off &
PIDS+=($!)
"$BIN/siwad-gateway" -addr "127.0.0.1:$GW" -log off \
	-backends "http://127.0.0.1:$R1,http://127.0.0.1:$R2" &
PIDS+=($!)

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -sf "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "FAIL: port $1 never became ready" >&2
	exit 1
}
wait_ready "$R1"
wait_ready "$R2"
wait_ready "$GW"

echo "== one analyze through the gateway"
TID=$(curl -sfD- -o /dev/null "http://127.0.0.1:$GW/v1/analyze" -d '{
	"source": "task a is begin b.m; accept m; end; task b is begin a.m; accept m; end;"
}' | tr -d '\r' | awk 'tolower($1) == "x-trace-id:" {print $2}')
if ! [[ $TID =~ ^[0-9a-f]{32}$ ]]; then
	echo "FAIL: no X-Trace-Id on the gateway response (got: '$TID')" >&2
	exit 1
fi
echo "   trace id: $TID"

echo "== gateway retained it"
if ! curl -sf "http://127.0.0.1:$GW/debug/traces" | grep -q "$TID"; then
	echo "FAIL: trace id missing from the gateway's /debug/traces" >&2
	exit 1
fi

echo "== serving replica retained the same id"
HITS=0
for port in "$R1" "$R2"; do
	if curl -sf "http://127.0.0.1:$port/debug/traces" | grep -q "$TID"; then
		HITS=$((HITS + 1))
	fi
done
if [ "$HITS" -ne 1 ]; then
	echo "FAIL: trace id retained on $HITS replicas, want exactly 1" >&2
	exit 1
fi

echo "== stitched lookup shows the replica's pipeline under the gateway root"
LOOKUP=$(curl -sf "http://127.0.0.1:$GW/debug/traces/$TID")
for span in "gateway /v1/analyze" "route" "server /v1/analyze"; do
	if ! grep -q "\"$span\"" <<<"$LOOKUP"; then
		echo "FAIL: stitched trace is missing the \"$span\" span" >&2
		echo "$LOOKUP" >&2
		exit 1
	fi
done

echo "== fleet status sees both replicas"
STATUS=$(curl -sf "http://127.0.0.1:$GW/v1/fleet/status")
if ! grep -q '"eligible": *2' <<<"$STATUS"; then
	echo "FAIL: /v1/fleet/status does not report 2 eligible backends" >&2
	echo "$STATUS" >&2
	exit 1
fi

echo "PASS: one trace id ($TID) across gateway and replica"
