#!/usr/bin/env bash
# bench_diff.sh — guard the hot paths against performance regressions.
#
# Runs the pinned hot-path benchmarks fresh, extracts ns/op, and compares
# each against the committed baseline record (BENCH_baseline.json by
# default, else the newest BENCH_*.json). Exits 1 if any pinned benchmark
# regressed by more than THRESHOLD percent (default 15).
#
# Usage:
#   scripts/bench_diff.sh [baseline.json]
#   THRESHOLD=20 BENCHTIME=100x scripts/bench_diff.sh
#
# The baseline is a `go test -json` event stream (what `make bench-json`
# and `make bench-baseline` emit). Benchmarks present fresh but absent
# from the baseline are reported as new and do not fail the check; each
# side uses its best (minimum) ns/op so scheduler noise biases toward
# stability, and the threshold absorbs the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-}"
if [ -z "$BASELINE" ]; then
    if [ -f BENCH_baseline.json ]; then
        BASELINE=BENCH_baseline.json
    else
        BASELINE="$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)"
    fi
fi
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "bench_diff: no baseline BENCH json found (run: make bench-baseline)" >&2
    exit 2
fi

THRESHOLD="${THRESHOLD:-15}"
BENCHTIME="${BENCHTIME:-200x}"

# The pinned hot paths: end-to-end analysis, the parse and sync-graph
# stages, the stage cache's warm/cold pair, the service result cache, and
# the pooled JSON response writer.
PIN_ROOT='^(BenchmarkEndToEndAnalyze|BenchmarkParse$|BenchmarkSyncGraphBuild|BenchmarkStageCacheWarmSecondAlgorithm)'
PIN_SERVICE='^(BenchmarkServiceCacheHit$|BenchmarkWriteJSON)'

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

# Each benchmark runs -count times and the comparison takes the best run,
# so a scheduler hiccup in one run cannot fake a regression.
COUNT="${COUNT:-5}"

echo "bench_diff: running pinned benchmarks (benchtime=$BENCHTIME, count=$COUNT)..." >&2
go test -run '^$' -bench "$PIN_ROOT" -benchtime "$BENCHTIME" -count "$COUNT" -json . >> "$fresh"
go test -run '^$' -bench "$PIN_SERVICE" -benchtime 5000x -count "$COUNT" -json ./internal/service >> "$fresh"

# extract <name> <ns/op> pairs from a go test -json stream, keeping the
# best (minimum) ns/op per benchmark. A single result line is often split
# across several Output events (the name flushes before the numbers), so
# the stream is reassembled into plain text before line-wise parsing.
extract() {
    grep -o '"Output":"[^"]*"' "$1" |
        sed 's/^"Output":"//; s/"$//' |
        awk 'BEGIN { ORS = "" } { gsub(/\\t/, "\t"); gsub(/\\n/, "\n"); print }' |
        awk '
        $1 ~ /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op") {
                    v = $(i - 1) + 0
                    if (!(name in best) || v < best[name]) best[name] = v
                }
            }
        }
        END { for (n in best) printf "%s %.2f\n", n, best[n] }'
}

extract "$BASELINE" | sort > "$fresh.base"
extract "$fresh" | sort > "$fresh.new"
trap 'rm -f "$fresh" "$fresh.base" "$fresh.new"' EXIT

awk -v thr="$THRESHOLD" -v basefile="$BASELINE" '
    NR == FNR { base[$1] = $2; next }
    {
        name = $1; new = $2
        if (!(name in base)) {
            printf "  NEW       %-55s %12.0f ns/op (no baseline)\n", name, new
            next
        }
        old = base[name]
        delta = (old > 0) ? (new - old) * 100 / old : 0
        status = "ok"
        if (delta > thr) { status = "REGRESSED"; failed++ }
        printf "  %-9s %-55s %12.0f -> %.0f ns/op (%+.1f%%)\n", status, name, old, new, delta
    }
    END {
        if (failed > 0) {
            printf "bench_diff: %d benchmark(s) regressed more than %s%% vs %s\n", failed, thr, basefile
            exit 1
        }
        print "bench_diff: no regressions beyond " thr "% vs " basefile
    }' "$fresh.base" "$fresh.new"
