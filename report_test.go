package siwa

import (
	"encoding/json"
	"testing"
)

func TestJSONReport(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  accept sig1;
  t2.sig2;
end;
task t2 is
begin
  accept sig2;
  t1.sig1;
end;
`)
	rep, err := Analyze(p, Options{
		AllAlgorithms: true, Constraint4: true, Enumerate: true, Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out JSONReport
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, data)
	}
	if out.Tasks != 2 || out.RendezvousNodes != 4 || out.SyncEdges != 2 {
		t.Fatalf("stats wrong: %+v", out)
	}
	if !out.Deadlock.MayDeadlock || out.DeadlockFree {
		t.Fatalf("verdict wrong: %+v", out.Deadlock)
	}
	if len(out.Spectrum) != 5 {
		t.Fatalf("spectrum=%d", len(out.Spectrum))
	}
	if out.Enumeration == nil || !out.Enumeration.MayDeadlock {
		t.Fatalf("enumeration: %+v", out.Enumeration)
	}
	if out.Constraint4 == nil || out.Constraint4.DeadlockFree {
		t.Fatalf("constraint4: %+v", out.Constraint4)
	}
	if out.Exact == nil || !out.Exact.Deadlock {
		t.Fatalf("exact: %+v", out.Exact)
	}
	if len(out.Deadlock.Witnesses) == 0 || len(out.Deadlock.Witnesses[0]) != 4 {
		t.Fatalf("witness labels: %+v", out.Deadlock.Witnesses)
	}
	if !out.StallFree {
		t.Fatal("balanced program flagged for stall")
	}
}

func TestJSONReportStallSignals(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  accept go;
end;
task t2 is
begin
  t1.go;
  accept done;
end;
`)
	rep, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out JSONReport
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.StallFree || len(out.StallSignals) != 1 {
		t.Fatalf("%+v", out)
	}
	s := out.StallSignals[0]
	if s.Task != "t2" || s.Msg != "done" || !s.Constant || s.Delta != -1 {
		t.Fatalf("signal: %+v", s)
	}
}
