package siwa

import (
	"encoding/json"
	"testing"
)

func TestJSONReport(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  accept sig1;
  t2.sig2;
end;
task t2 is
begin
  accept sig2;
  t1.sig1;
end;
`)
	rep, err := Analyze(p, Options{
		AllAlgorithms: true, Constraint4: true, Enumerate: true, Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out JSONReport
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, data)
	}
	if out.SchemaVersion != SchemaVersion {
		t.Fatalf("schemaVersion=%d, want %d", out.SchemaVersion, SchemaVersion)
	}
	if out.Tasks != 2 || out.RendezvousNodes != 4 || out.SyncEdges != 2 {
		t.Fatalf("stats wrong: %+v", out)
	}
	if !out.Deadlock.MayDeadlock || out.DeadlockFree {
		t.Fatalf("verdict wrong: %+v", out.Deadlock)
	}
	if len(out.Spectrum) != 5 {
		t.Fatalf("spectrum=%d", len(out.Spectrum))
	}
	if out.Enumeration == nil || !out.Enumeration.MayDeadlock {
		t.Fatalf("enumeration: %+v", out.Enumeration)
	}
	if out.Constraint4 == nil || out.Constraint4.DeadlockFree {
		t.Fatalf("constraint4: %+v", out.Constraint4)
	}
	if out.Exact == nil || !out.Exact.Deadlock {
		t.Fatalf("exact: %+v", out.Exact)
	}
	if len(out.Deadlock.Witnesses) == 0 || len(out.Deadlock.Witnesses[0]) != 4 {
		t.Fatalf("witness labels: %+v", out.Deadlock.Witnesses)
	}
	if !out.StallFree {
		t.Fatal("balanced program flagged for stall")
	}
}

func TestJSONReportStallSignals(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  accept go;
end;
task t2 is
begin
  t1.go;
  accept done;
end;
`)
	rep, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out JSONReport
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.StallFree || len(out.StallSignals) != 1 {
		t.Fatalf("%+v", out)
	}
	s := out.StallSignals[0]
	if s.Task != "t2" || s.Msg != "done" || !s.Constant || s.Delta != -1 {
		t.Fatalf("signal: %+v", s)
	}
}

// TestJSONReportRoundTrip exercises every optional section at once — the
// spectrum, constraint 4, enumeration, exact, and stall signals — and
// checks the encoding survives a decode/re-encode round trip unchanged.
func TestJSONReportRoundTrip(t *testing.T) {
	// t1/t2 form a deadlocking ring; t3's unaccepted entry call leaves an
	// unbalanced signal, so the stall section is populated too.
	p := MustParse(`
task t1 is
begin
  accept sig1;
  t2.sig2;
end;
task t2 is
begin
  accept sig2;
  t1.sig1;
end;
task t3 is
begin
  t1.extra;
end;
`)
	rep, err := Analyze(p, Options{
		AllAlgorithms: true, Constraint4: true, Enumerate: true, Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out JSONReport
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if out.SchemaVersion != SchemaVersion {
		t.Fatalf("schemaVersion=%d", out.SchemaVersion)
	}
	if len(out.Spectrum) != 5 {
		t.Fatalf("spectrum=%d", len(out.Spectrum))
	}
	if out.Constraint4 == nil || out.Enumeration == nil || out.Exact == nil {
		t.Fatalf("missing optional section: c4=%v enum=%v exact=%v",
			out.Constraint4, out.Enumeration, out.Exact)
	}
	if out.StallFree || len(out.StallSignals) == 0 {
		t.Fatalf("stall section empty: stallFree=%v signals=%v", out.StallFree, out.StallSignals)
	}
	if len(out.Deadlock.Witnesses) == 0 {
		t.Fatal("no witnesses")
	}
	// Re-encoding the decoded struct must reproduce the bytes exactly:
	// the wire format contains nothing the struct cannot represent.
	again, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("round trip drifted:\n%s\n---\n%s", data, again)
	}
	// The structured projection matches the marshalled form.
	direct, err := json.MarshalIndent(rep.JSONReport(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(direct) != string(data) {
		t.Fatal("JSONReport() and JSON() disagree")
	}
}
