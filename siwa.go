// Package siwa (Static Infinite Wait Anomaly detection) is the public API
// of this reproduction of Masticola & Ryder, "Static Infinite Wait Anomaly
// Detection in Polynomial Time" (ICPP 1990).
//
// The package analyzes MiniAda task programs — an Ada-like rendezvous
// model with sends (entry calls), accepts, conditionals and reducible
// loops, but no selects — for the paper's two infinite-wait anomaly
// classes:
//
//   - Deadlocks, via the conservative polynomial-time detector spectrum
//     (naive CLG cycle detection through the refined head/tail hypothesis
//     algorithms). "Deadlock-free" verdicts are certificates; "may
//     deadlock" verdicts may be false alarms.
//   - Stalls, via the Lemma 3/4 signal-count balance analysis.
//
// An exact (exponential) execution-wave explorer is available as ground
// truth for small programs.
//
// Quick start:
//
//	prog, err := siwa.Parse(src)
//	rep, err := siwa.Analyze(prog, siwa.Options{})
//	if !rep.Deadlock.MayDeadlock { ... certified deadlock-free ... }
package siwa

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/sg"
	"repro/internal/stall"
	"repro/internal/waves"
)

// Re-exported building blocks, so downstream users need only this package.
type (
	// Program is a parsed MiniAda program.
	Program = lang.Program
	// Verdict is one deadlock-detector outcome.
	Verdict = core.Verdict
	// Algorithm selects a detector from the precision/cost spectrum.
	Algorithm = core.Algorithm
	// ExactResult is the exact wave exploration outcome.
	ExactResult = waves.Result
	// StallReport is the Lemma 4 balance analysis outcome.
	StallReport = stall.Report
	// Tracer collects a span tree when passed via Options.Tracer.
	Tracer = obs.Tracer
	// Span is one named, timed pipeline stage with work counters.
	Span = obs.Span
	// JSONSpan is the wire projection of a Span (report schema v2).
	JSONSpan = obs.SpanJSON
)

// NewTracer returns a tracer for Options.Tracer; after Analyze, read the
// span tree from Report.Trace (or Tracer.Root).
func NewTracer() *Tracer { return obs.NewTracer() }

// Detector spectrum, in increasing precision and cost.
const (
	AlgoNaive                = core.AlgoNaive
	AlgoRefined              = core.AlgoRefined
	AlgoRefinedPairs         = core.AlgoRefinedPairs
	AlgoRefinedHeadTail      = core.AlgoRefinedHeadTail
	AlgoRefinedHeadTailPairs = core.AlgoRefinedHeadTailPairs
	// AlgoRefinedKPairs runs k = 3 head-tail pairs with the exhaustive
	// small-cycle phase; AlgoEnumerate runs the budgeted cycle-enumeration
	// detector (exact constraint 1c).
	AlgoRefinedKPairs = core.AlgoRefinedKPairs
	AlgoEnumerate     = core.AlgoEnumerate
)

// Parse parses MiniAda source. See the language overview in the README:
// tasks containing sends ("target.msg;"), accepts ("accept msg;"),
// conditionals and loops. A parser panic (a bug, or the "parse" fault
// point) is contained and returned as a typed *InternalError.
func Parse(src string) (prog *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &InternalError{Stage: "parse", Value: r, Stack: string(debug.Stack())}
		}
	}()
	if ferr := fault.Inject("parse"); ferr != nil {
		return nil, ferr
	}
	return lang.Parse(src)
}

// MustParse is Parse that panics on error, for examples and tests.
func MustParse(src string) *Program { return lang.MustParse(src) }

// Options configures Analyze.
type Options struct {
	// Algorithm selects the deadlock detector; the zero value is
	// AlgoNaive, the first rung of the spectrum. Most callers want
	// AlgoRefined or AlgoRefinedPairs.
	Algorithm Algorithm
	// AllAlgorithms additionally runs the whole spectrum and records the
	// verdicts in Report.Spectrum.
	AllAlgorithms bool
	// Constraint4 additionally tries to certify deadlock freedom by the
	// global condition (outside task always breaks every cycle).
	Constraint4 bool
	// Enumerate additionally runs the cycle-enumeration detector, which
	// enforces constraint 1c (one entry per task) exactly; worst-case
	// exponential but budgeted, and the most precise sound detector in
	// the suite. EnumerateLimit caps the cycle count (0 = 4096).
	Enumerate      bool
	EnumerateLimit int
	// FIFO applies the FIFO sync-edge refinement before detection: when a
	// signal's sends and accepts are each totally ordered by the strong
	// Precede relation, off-diagonal pairings are provably infeasible and
	// their sync edges are deleted (order.InfeasibleSyncPairs). Sound for
	// loop-free programs and automatically skipped for programs with
	// loops (the argument does not transfer through the Lemma 1 unroll);
	// off by default to keep the paper's baseline graphs.
	FIFO bool
	// Exact additionally runs the exact wave explorer (exponential; for
	// small programs and ground-truth comparisons).
	Exact bool
	// ExactOptions tunes the explorer when Exact is set.
	ExactOptions waves.Options
	// Trace collects a span tree — one timed span per pipeline stage,
	// carrying each stage's work counters (hypotheses tested, SCC runs,
	// pruned nodes, CLG sizes, wave states...) — into Report.Trace.
	// Tracing off costs nothing: every instrumentation point is a nil
	// check.
	Trace bool
	// Tracer, when non-nil, supplies a caller-owned tracer instead of the
	// one Trace would create, so callers can aggregate spans across many
	// Analyze runs. Setting it implies Trace.
	Tracer *Tracer
	// Limits bounds the resources one analysis may consume (task count,
	// parsed rendezvous nodes, unrolled rendezvous nodes). The zero value
	// keeps the historical unbounded behaviour; servers should apply
	// DefaultLimits. A violation surfaces as a typed *ResourceError before
	// the oversized allocation happens, so an adversarial nested-loop
	// program is refused by arithmetic instead of exhausting memory.
	Limits Limits
	// Parallelism caps the worker count of the detector's hypothesis
	// sweeps. 0 (the default) uses GOMAXPROCS; 1 forces serial execution.
	// Verdicts are byte-identical at every setting — parallelism only
	// changes wall-clock time — so this is purely a resource knob.
	Parallelism int
	// StageCache, when non-nil, memoizes expensive pipeline artifacts
	// across AnalyzeSource/AnalyzeSourceContext calls, keyed on the
	// SHA-256 digest of the program source: the parse+inline+unroll
	// artifacts, the sync graph with its CLG and ordering tables, the
	// per-algorithm verdicts, and the stall balance. A warm source asked
	// for a new algorithm pays only that algorithm's detector sweep.
	// Ignored by Analyze/AnalyzeContext, which take an already-parsed
	// program and so have no content address to key on. See NewStageCache.
	StageCache *StageCache
	// Degrade turns deadline and budget exhaustion in the expensive
	// optional stages (Enumerate, Exact) into graceful degradation: the
	// report keeps the already-computed polynomial verdict and is marked
	// Degraded instead of the whole analysis failing. This is sound by the
	// paper's conservatism guarantee — the polynomial detectors never
	// certify a deadlocking program free — so "no anomaly found under
	// budget, polynomial certificate holds" is still a valid conservative
	// answer; only the extra precision of the exhaustive stage is lost.
	Degrade bool
}

// Report is the complete analysis outcome for one program.
type Report struct {
	// Program is the analyzed (original) program; Unrolled is its
	// loop-free twice-unrolled form actually fed to the detectors, equal
	// to Program when no loops exist.
	Program  *Program
	Unrolled *Program

	// Graph is the sync graph of the unrolled program.
	Graph *sg.Graph
	// Analyzer exposes the CLG and ordering facts for advanced callers.
	Analyzer *core.Analyzer
	// FIFORemoved counts sync edges deleted by the FIFO refinement.
	FIFORemoved int

	// Deadlock is the verdict of the selected algorithm. Spectrum holds
	// every detector's verdict when Options.AllAlgorithms was set.
	Deadlock Verdict
	Spectrum []Verdict

	// Constraint4Free is true when the global-condition certifier proved
	// deadlock freedom; Constraint4Conclusive reports whether it could
	// enumerate all cycles.
	Constraint4Free       bool
	Constraint4Conclusive bool

	// Enumerated holds the cycle-enumeration verdict when requested.
	Enumerated *core.EnumerationVerdict

	// Stall is the Lemma 4 balance analysis of the original program.
	Stall *StallReport

	// Exact is the ground-truth exploration (nil unless requested).
	// Node ids inside it refer to ExactGraph — the sync graph of the
	// bounded-loop-expanded program, which differs from Graph when the
	// program has loops.
	Exact      *ExactResult
	ExactGraph *sg.Graph

	// Trace is the root span of the pipeline trace (nil unless
	// Options.Trace or Options.Tracer was set): one child span per stage
	// that ran, with durations and work counters. Render it with
	// TraceString or project it with JSONReport.
	Trace *Span

	// Degraded reports that an expensive optional stage (enumeration or
	// the exact explorer) hit its deadline or budget under Options.Degrade
	// and the report fell back to the conservative polynomial verdict;
	// DegradedReasons names each stage and why. The polynomial verdicts in
	// this report remain sound certificates.
	Degraded        bool
	DegradedReasons []string
}

// Analyze runs the paper's pipeline on p: unroll loops twice (Lemma 1),
// build the sync graph and CLG, run the selected deadlock detector and the
// stall balance analysis, and optionally the exact explorer.
func Analyze(p *Program, opt Options) (*Report, error) {
	return AnalyzeContext(context.Background(), p, opt)
}

// AnalyzeContext is Analyze with cooperative cancellation: the context is
// checked between pipeline stages (unroll, sync graph, each detector,
// stall, exact) and polled inside the exact wave exploration, so a
// deadline or cancel interrupts even an exponential Exact or Enumerate
// request promptly. The returned error wraps ctx.Err(), so callers can
// test it with errors.Is(err, context.DeadlineExceeded).
//
// Failure containment: every stage runs under panic recovery, so a bug in
// a transform or detector returns a typed *InternalError naming the stage
// (with the stack captured at the panic site) instead of crashing the
// caller. Options.Limits violations return a typed *ResourceError, and
// Options.Degrade converts deadline/budget exhaustion in the Enumerate and
// Exact stages into a degraded-but-sound report (see Options.Degrade).
func AnalyzeContext(ctx context.Context, p *Program, opt Options) (*Report, error) {
	tr := opt.Tracer
	if tr == nil && opt.Trace {
		tr = obs.NewTracer()
	}
	root := tr.Start("analyze") // nil span when tracing is off
	defer root.End()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkLimit("tasks", opt.Limits.MaxTasks, len(p.Tasks)); err != nil {
		return nil, err
	}
	rep := &Report{Program: p, Unrolled: p, Trace: root}
	stage := stageRunner(ctx, root)
	degrade := func(reason string) {
		rep.Degraded = true
		rep.DegradedReasons = append(rep.DegradedReasons, reason)
	}
	inlined := p
	if len(p.Procs) > 0 || p.HasCalls() {
		if err := stage("inline", func(sp *Span) error {
			inlined = p.InlineCalls()
			rep.Unrolled = inlined
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := checkLimit("rendezvous nodes", opt.Limits.MaxNodes, inlined.CountRendezvous()); err != nil {
		return nil, err
	}
	if cfg.HasLoops(inlined) {
		if err := stage("unroll", func(sp *Span) error {
			// UnrollBounded predicts the 2^depth growth of Lemma 1 before
			// allocating it, so an unroll bomb costs arithmetic, not memory.
			unrolled, err := cfg.UnrollBounded(inlined, opt.Limits.MaxUnrolledNodes)
			if err != nil {
				return err
			}
			rep.Unrolled = unrolled
			if sp != nil {
				sp.Set("rendezvous_before", int64(inlined.CountRendezvous()))
				sp.Set("rendezvous_after", int64(rep.Unrolled.CountRendezvous()))
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := stage("sync-graph", func(sp *Span) error {
		g, err := sg.FromProgram(rep.Unrolled)
		if err != nil {
			return err
		}
		rep.Graph = g
		if sp != nil {
			sp.Set("tasks", int64(len(g.Tasks)))
			sp.Set("rendezvous_nodes", int64(g.NumRendezvous()))
			sp.Set("sync_edges", int64(g.NumSyncEdges()))
			sp.Set("control_edges", int64(g.NumControlEdges()))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// The FIFO refinement is only valid on the program's own loop-free
	// graph: on a twice-unrolled graph, later loop iterations collapse
	// onto the second copy and real diagonal pairings (instance k with
	// instance k, k > 2) can map to copy pairs the refinement deletes.
	if opt.FIFO && !cfg.HasLoops(inlined) {
		if err := stage("fifo", func(sp *Span) error {
			info := order.Compute(rep.Graph)
			rep.FIFORemoved = rep.Graph.RemoveSyncEdges(info.InfeasibleSyncPairs())
			sp.Set("removed_sync_edges", int64(rep.FIFORemoved))
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := stage("clg", func(sp *Span) error {
		rep.Analyzer = core.NewAnalyzerTraced(rep.Graph, sp)
		rep.Analyzer.Parallelism = opt.Parallelism
		return nil
	}); err != nil {
		return nil, err
	}
	// Each detector stage points the analyzer's trace at its own span, so
	// the marking and SCC counters land on the stage that caused them.
	detect := func(name string, run func()) error {
		return stage(name, func(sp *Span) error {
			rep.Analyzer.Trace = sp
			defer func() { rep.Analyzer.Trace = nil }()
			run()
			return nil
		})
	}
	if err := detect("detect:"+opt.Algorithm.String(), func() {
		rep.Deadlock = rep.Analyzer.Run(opt.Algorithm)
	}); err != nil {
		return nil, err
	}
	if opt.AllAlgorithms {
		for _, a := range []Algorithm{
			AlgoNaive, AlgoRefined, AlgoRefinedPairs,
			AlgoRefinedHeadTail, AlgoRefinedHeadTailPairs,
		} {
			a := a
			if err := detect("spectrum:"+a.String(), func() {
				rep.Spectrum = append(rep.Spectrum, rep.Analyzer.Run(a))
			}); err != nil {
				return nil, err
			}
		}
	}
	if opt.Constraint4 && rep.Deadlock.MayDeadlock {
		if err := detect("constraint4", func() {
			rep.Constraint4Free, rep.Constraint4Conclusive = rep.Analyzer.Constraint4Certify(0)
		}); err != nil {
			return nil, err
		}
	}
	// Stall balance runs before the expensive optional stages so that a
	// degraded report always carries both polynomial verdicts.
	if err := stage("stall", func(sp *Span) error {
		rep.Stall = stall.CheckAllLinearizations(inlined)
		if sp != nil {
			sp.Set("unbalanced_signals", int64(len(rep.Stall.Unbalanced())))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if opt.Enumerate {
		if cerr := ctx.Err(); cerr != nil && opt.Degrade {
			degrade("enumeration skipped: " + cerr.Error())
		} else if err := detect("enumerate", func() {
			ev := rep.Analyzer.Enumerate(opt.EnumerateLimit)
			rep.Enumerated = &ev
		}); err != nil {
			return nil, err
		} else if opt.Degrade && !rep.Enumerated.Conclusive {
			degrade("enumeration budget exceeded; polynomial verdict stands")
		}
	}
	if opt.Exact {
		if err := runExactStage(ctx, stage, rep, inlined, opt, degrade); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// runExactStage runs the exact wave explorer as a pipeline stage. It is
// shared by the plain and memoized pipelines and never memoized itself:
// its outcome depends on deadlines, budgets and cancellation, not just
// the program source, so a cached result could replay one request's
// truncation into another's.
func runExactStage(ctx context.Context, stage func(string, func(*Span) error) error, rep *Report, inlined *Program, opt Options, degrade func(string)) error {
	if cerr := ctx.Err(); cerr != nil && opt.Degrade {
		degrade("exact exploration skipped: " + cerr.Error())
		return nil
	}
	if err := stage("exact-waves", func(sp *Span) error {
		// The exact path expands bounded loops precisely; predict that
		// growth too, so "loop 64 times" nests are refused, not paid.
		if max := opt.Limits.MaxUnrolledNodes; max > 0 {
			if n := cfg.PredictExpandedRendezvous(inlined); n > int64(max) {
				return &ResourceError{Resource: "expanded rendezvous nodes", Limit: max, Actual: clampInt(n)}
			}
		}
		eg, err := waves.ExploreProgramGraph(rep.Program)
		if err != nil {
			return err
		}
		rep.ExactGraph = eg
		eo := opt.ExactOptions
		if eo.Cancel == nil && ctx.Done() != nil {
			eo.Cancel = func() bool { return ctx.Err() != nil }
		}
		eo.Trace = sp
		rep.Exact = waves.Explore(eg, eo)
		return nil
	}); err != nil {
		return err
	}
	switch {
	case rep.Exact.Cancelled:
		if !opt.Degrade {
			return fmt.Errorf("analyze: cancelled during exact waves: %w", ctx.Err())
		}
		degrade("exact exploration hit the deadline; polynomial verdict stands")
	case rep.Exact.Truncated && opt.Degrade:
		degrade("exact exploration hit the state budget; polynomial verdict stands")
	}
	return nil
}

// stageRunner returns the pipeline-stage executor shared by the plain
// (AnalyzeContext) and memoized (AnalyzeSourceContext) pipelines. Each
// stage runs one pipeline step under the same discipline: deadline gate,
// trace span, fault injection point ("analyze.<name>"), and panic
// containment. A panic anywhere inside fn becomes a typed *InternalError
// carrying the stage name and stack — never a crash.
func stageRunner(ctx context.Context, root *Span) func(name string, fn func(sp *Span) error) error {
	return func(name string, fn func(sp *Span) error) (err error) {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("analyze: cancelled before %s: %w", name, cerr)
		}
		sp := root.StartChild(name)
		defer sp.End()
		defer func() {
			if r := recover(); r != nil {
				err = &InternalError{Stage: name, Value: r, Stack: string(debug.Stack())}
			}
		}()
		if ferr := fault.Inject("analyze." + name); ferr != nil {
			return fmt.Errorf("analyze: stage %s: %w", name, ferr)
		}
		return fn(sp)
	}
}

// clampInt saturates an int64 prediction into int range for error reports.
func clampInt(n int64) int {
	const max = int64(^uint(0) >> 1)
	if n > max {
		return int(max)
	}
	return int(n)
}

// TraceString renders the pipeline span tree (Report.Trace) as indented
// lines of stage name, duration, and work counters. Empty when the report
// was produced without Options.Trace.
func (r *Report) TraceString() string {
	return r.Trace.Tree()
}

// AnomalyTraceString renders one exact-exploration anomaly trace as
// readable rendezvous steps ("r <-> u"), using ExactGraph labels.
func (r *Report) AnomalyTraceString(a waves.Anomaly) string {
	if r.ExactGraph == nil {
		return ""
	}
	name := func(id int) string {
		n := r.ExactGraph.Nodes[id]
		if n.Label != "" {
			return n.Label
		}
		return n.String()
	}
	var parts []string
	for _, step := range a.Trace {
		parts = append(parts, name(step.U)+" <-> "+name(step.V))
	}
	if len(parts) == 0 {
		return "(stuck at the initial wave)"
	}
	return strings.Join(parts, ", ")
}

// DeadlockFree reports whether any requested sound certifier proved the
// program deadlock-free: the selected detector, the constraint-4
// certifier, or the enumeration detector.
func (r *Report) DeadlockFree() bool {
	if !r.Deadlock.MayDeadlock {
		return true
	}
	if r.Constraint4Free && r.Constraint4Conclusive {
		return true
	}
	return r.Enumerated != nil && r.Enumerated.Conclusive && !r.Enumerated.MayDeadlock
}

// WitnessLabels renders one witness node set as statement labels.
func (r *Report) WitnessLabels(w []int) []string {
	out := make([]string, 0, len(w))
	for _, id := range w {
		n := r.Graph.Nodes[id]
		if n.Label != "" {
			out = append(out, n.Label)
		} else {
			out = append(out, n.String())
		}
	}
	sort.Strings(out)
	return out
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks: %d, rendezvous nodes: %d, sync edges: %d, control edges: %d\n",
		len(r.Graph.Tasks), r.Graph.NumRendezvous(), r.Graph.NumSyncEdges(), r.Graph.NumControlEdges())
	if r.Unrolled != r.Program {
		what := "loops unrolled twice (Lemma 1)"
		if len(r.Program.Procs) > 0 {
			what = "procedures inlined; loops unrolled twice (Lemma 1)"
			if !cfg.HasLoops(r.Program) {
				what = "procedures inlined"
			}
		}
		fmt.Fprintf(&b, "%s: %d -> %d rendezvous statements\n",
			what, r.Program.CountRendezvous(), r.Unrolled.CountRendezvous())
	}
	if r.FIFORemoved > 0 {
		fmt.Fprintf(&b, "FIFO refinement: %d infeasible sync edges removed\n", r.FIFORemoved)
	}
	verdict := "certified DEADLOCK-FREE"
	if r.Deadlock.MayDeadlock {
		verdict = fmt.Sprintf("MAY DEADLOCK (%d witness component(s))", len(r.Deadlock.Witnesses))
	}
	fmt.Fprintf(&b, "deadlock [%s]: %s\n", r.Deadlock.Algorithm, verdict)
	for _, w := range r.Deadlock.Witnesses {
		fmt.Fprintf(&b, "  witness: %s\n", strings.Join(r.WitnessLabels(w), " "))
	}
	if r.Constraint4Conclusive && r.Constraint4Free {
		b.WriteString("constraint 4: every cycle is broken by an outside task — certified DEADLOCK-FREE\n")
	}
	if r.Enumerated != nil {
		switch {
		case !r.Enumerated.Conclusive:
			b.WriteString("enumeration: budget exceeded — inconclusive\n")
		case r.Enumerated.MayDeadlock:
			fmt.Fprintf(&b, "enumeration: %d of %d cycles remain plausible — MAY DEADLOCK\n",
				r.Enumerated.CyclesPlausible, r.Enumerated.CyclesSeen)
		default:
			fmt.Fprintf(&b, "enumeration: all %d cycles provably spurious — certified DEADLOCK-FREE\n",
				r.Enumerated.CyclesSeen)
		}
	}
	for _, v := range r.Spectrum {
		fmt.Fprintf(&b, "  spectrum %-24s may-deadlock=%-5v hypotheses=%d scc-runs=%d\n",
			v.Algorithm.String()+":", v.MayDeadlock, v.Hypotheses, v.SCCRuns)
	}
	if r.Stall.StallFree() {
		b.WriteString("stall balance (Lemma 3/4): balanced in every linearization — no stall from count imbalance\n")
	} else {
		b.WriteString("stall balance (Lemma 3/4): POSSIBLE STALL —\n")
		for _, v := range r.Stall.Unbalanced() {
			if !v.Constant {
				fmt.Fprintf(&b, "  signal %s: count varies with branches of task %s\n", v.Sig, v.VaryingTask)
			} else {
				fmt.Fprintf(&b, "  signal %s: sends minus accepts = %+d\n", v.Sig, v.Delta)
			}
		}
	}
	if r.Exact != nil {
		fmt.Fprintf(&b, "exact waves: %d states, %d transitions, deadlock=%v stall=%v anomalous-waves=%d truncated=%v\n",
			r.Exact.States, r.Exact.Transitions, r.Exact.Deadlock, r.Exact.Stall,
			r.Exact.AnomalousWaves, r.Exact.Truncated)
	}
	if r.Degraded {
		fmt.Fprintf(&b, "DEGRADED (conservative verdicts above remain sound): %s\n",
			strings.Join(r.DegradedReasons, "; "))
	}
	return b.String()
}
