package siwa

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestAnalyzeHandshake(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  t2.sig1;
  accept sig2;
end;
task t2 is
begin
  accept sig1;
  t1.sig2;
end;
`)
	rep, err := Analyze(p, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock.MayDeadlock {
		t.Fatal("handshake flagged")
	}
	if !rep.DeadlockFree() {
		t.Fatal("DeadlockFree() false")
	}
	if !rep.Stall.StallFree() {
		t.Fatal("balanced handshake flagged for stall")
	}
	if rep.Exact == nil || rep.Exact.HasAnomaly() {
		t.Fatalf("exact: %+v", rep.Exact)
	}
	if rep.Unrolled != rep.Program {
		t.Fatal("loop-free program should not be rewritten")
	}
	s := rep.Summary()
	if !strings.Contains(s, "DEADLOCK-FREE") {
		t.Fatalf("summary:\n%s", s)
	}
}

func TestAnalyzeDeadlock(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  accept sig1;
  t2.sig2;
end;
task t2 is
begin
  accept sig2;
  t1.sig1;
end;
`)
	rep, err := Analyze(p, Options{AllAlgorithms: true, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deadlock.MayDeadlock || !rep.Exact.Deadlock {
		t.Fatal("deadlock missed")
	}
	if len(rep.Spectrum) != 5 {
		t.Fatalf("spectrum=%d", len(rep.Spectrum))
	}
	for _, v := range rep.Spectrum {
		if !v.MayDeadlock {
			t.Fatalf("%v certified a real deadlock", v.Algorithm)
		}
	}
	s := rep.Summary()
	if !strings.Contains(s, "MAY DEADLOCK") || !strings.Contains(s, "witness") {
		t.Fatalf("summary:\n%s", s)
	}
}

func TestAnalyzeLoopyProgramUnrolls(t *testing.T) {
	p := MustParse(`
task a is
begin
  while more loop
    b.m;
  end loop;
end;
task b is
begin
  while more loop
    accept m;
  end loop;
end;
`)
	// Unrolling duplicates the same-signal rendezvous, which (as with the
	// Figure-1 class) the single-head refined detector cannot clear; the
	// head-pair extension certifies it.
	rep, err := Analyze(p, Options{Algorithm: AlgoRefinedPairs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrolled == rep.Program {
		t.Fatal("loops not unrolled")
	}
	if rep.Unrolled.CountRendezvous() != 2*p.CountRendezvous() {
		t.Fatalf("unroll factor wrong: %d vs %d", rep.Unrolled.CountRendezvous(), p.CountRendezvous())
	}
	if rep.Deadlock.MayDeadlock {
		t.Fatal("producer/consumer loop flagged by head pairs")
	}
	// Summary mentions the transform.
	if !strings.Contains(rep.Summary(), "Lemma 1") {
		t.Fatalf("summary:\n%s", rep.Summary())
	}
}

func TestAnalyzeStallReport(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  accept go;
end;
task t2 is
begin
  t1.go;
  accept done;
end;
`)
	rep, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stall.StallFree() {
		t.Fatal("missing sender not reported")
	}
	if !strings.Contains(rep.Summary(), "POSSIBLE STALL") {
		t.Fatalf("summary:\n%s", rep.Summary())
	}
}

func TestAnalyzeConstraint4(t *testing.T) {
	p := MustParse(`
task T1 is
begin
  r: accept mr;
  s: T2.mt;
end;
task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;
task W is
begin
  w: T2.mt;
end;
`)
	rep, err := Analyze(p, Options{Constraint4: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deadlock.MayDeadlock {
		t.Fatal("local constraints should leave the figure-3 cycle")
	}
	if !rep.Constraint4Conclusive || !rep.Constraint4Free {
		t.Fatal("constraint 4 certification failed")
	}
	if !rep.DeadlockFree() {
		t.Fatal("overall verdict should be deadlock-free")
	}
}

func TestAnalyzeFIFO(t *testing.T) {
	// A loop-free pipeline stage pair with repeated messages: the FIFO
	// refinement removes the out-of-order pairings and even naive
	// certifies.
	src := `
task a is
begin
  b.m;
  b.m;
  b.m;
end;
task b is
begin
  accept m;
  accept m;
  accept m;
end;
`
	base, err := Analyze(MustParse(src), Options{Algorithm: AlgoNaive})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Deadlock.MayDeadlock {
		t.Fatal("expected the baseline false alarm")
	}
	fifo, err := Analyze(MustParse(src), Options{Algorithm: AlgoNaive, FIFO: true})
	if err != nil {
		t.Fatal(err)
	}
	if fifo.FIFORemoved != 6 {
		t.Fatalf("removed=%d, want 6 off-diagonal edges", fifo.FIFORemoved)
	}
	if fifo.Deadlock.MayDeadlock {
		t.Fatal("naive+FIFO should certify")
	}
	if !strings.Contains(fifo.Summary(), "FIFO refinement") {
		t.Fatalf("summary:\n%s", fifo.Summary())
	}
	// Loopy programs: the refinement must be skipped.
	loopy, err := Analyze(MustParse(`
task a is
begin
  loop 3 times
    b.m;
  end loop;
end;
task b is
begin
  loop 3 times
    accept m;
  end loop;
end;
`), Options{FIFO: true})
	if err != nil {
		t.Fatal(err)
	}
	if loopy.FIFORemoved != 0 {
		t.Fatal("FIFO refinement applied through the unroll; unsound")
	}
}

func TestAnalyzeProcedures(t *testing.T) {
	// Interprocedural extension: calls are inlined before analysis; the
	// handshake hidden inside the procedure is found in both directions.
	p := MustParse(`
procedure exchange is
begin
  peer.ping;
  accept pong;
end;

task me is
begin
  call exchange;
end;

task peer is
begin
  accept ping;
  me.pong;
end;
`)
	rep, err := Analyze(p, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock.MayDeadlock || rep.Exact.HasAnomaly() {
		t.Fatalf("clean interprocedural handshake flagged:\n%s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "procedures inlined") {
		t.Fatalf("summary:\n%s", rep.Summary())
	}
	// The deadlocking variant: both tasks accept first inside procedures.
	p2 := MustParse(`
procedure waitFirst1 is
begin
  accept a;
  t2.b;
end;
procedure waitFirst2 is
begin
  accept b;
  t1.a;
end;
task t1 is
begin
  call waitFirst1;
end;
task t2 is
begin
  call waitFirst2;
end;
`)
	rep2, err := Analyze(p2, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Deadlock.MayDeadlock || !rep2.Exact.Deadlock {
		t.Fatal("interprocedural deadlock missed")
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	p := &Program{}
	if _, err := Analyze(p, Options{}); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestWitnessLabels(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  r: accept sig1;
  s: t2.sig2;
end;
task t2 is
begin
  u: accept sig2;
  v: t1.sig1;
end;
`)
	rep, err := Analyze(p, Options{Algorithm: AlgoNaive})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deadlock.Witnesses) == 0 {
		t.Fatal("no witness")
	}
	labels := rep.WitnessLabels(rep.Deadlock.Witnesses[0])
	joined := strings.Join(labels, " ")
	for _, want := range []string{"r", "s", "u", "v"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("labels=%v", labels)
		}
	}
}

func TestAnalyzeContextCancelled(t *testing.T) {
	p := MustParse(`
task t1 is
begin
  t2.sig1;
  accept sig2;
end;
task t2 is
begin
  accept sig1;
  t1.sig2;
end;
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, p, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// Background context behaves exactly like Analyze.
	rep, err := AnalyzeContext(context.Background(), p, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock.MayDeadlock || rep.Exact == nil {
		t.Fatalf("rep: %+v", rep.Deadlock)
	}
}

// TestAnalyzeContextDeadlineInterruptsExact checks the promptness claim:
// an already-expired deadline aborts an Exact exploration whose wave space
// is exponential, wrapping context.DeadlineExceeded.
func TestAnalyzeContextDeadlineInterruptsExact(t *testing.T) {
	p := MustParse(forkFanSource(7, 5))
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := AnalyzeContext(ctx, p, Options{Exact: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// forkFanSource mirrors workload.ForkFan without importing it (the
// workload package is internal test tooling; this keeps the root package's
// tests self-contained).
func forkFanSource(n, depth int) string {
	var b strings.Builder
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "task a%d is\nbegin\n", k)
		for d := 0; d < depth; d++ {
			fmt.Fprintf(&b, "  b%d.m;\n", k)
		}
		b.WriteString("end;\n")
		fmt.Fprintf(&b, "task b%d is\nbegin\n", k)
		for d := 0; d < depth; d++ {
			b.WriteString("  accept m;\n")
		}
		b.WriteString("end;\n")
	}
	return b.String()
}
