// Memoized analysis pipeline: AnalyzeSourceContext keyed on the SHA-256
// content address of the program source.
//
// The paper's pipeline is strictly staged, and everything up to the
// detector sweep depends only on the source (plus the FIFO refinement
// flag, which rewrites the sync graph). The stage cache exploits that
// shape with three memoization layers:
//
//	src:<digest>              parse + inline + Lemma-1 unroll artifacts
//	an:<digest>:f<fifo>       sync graph (post-FIFO) + CLG + ordering tables
//	vd:<digest>:f<fifo>:<alg> one detector verdict
//	st:<digest>               stall balance (FIFO-independent: it reads the
//	                          inlined program, never the sync graph)
//	c4:<digest>:f<fifo>       constraint-4 certificate
//	en:<digest>:f<fifo>:<n>   cycle-enumeration verdict at budget n
//
// so a warm source asked for a new algorithm runs only that algorithm's
// sweep, and a warm (source, algorithm) pair runs nothing at all. The
// exact wave explorer is never memoized — its outcome depends on
// deadlines and cancellation, not just the source.
//
// Immutability discipline: cached artifacts are shared by every request
// that hits them, concurrently. The sync graph, analyzer tables and
// programs are read-only after construction (the PR-4 contract); per-run
// knobs (Parallelism, Trace) live on core.Analyzer.Session views, never
// on the shared Analyzer. Report fields populated from the cache must be
// treated as read-only by callers.
//
// Resource limits are NOT part of any key: they are service policy, not
// content. Builds run under the requester's limits (so an unroll bomb is
// still refused by arithmetic before allocation), and every request —
// hit or miss — rechecks its own limits against the cached artifact's
// actual counts, so a cache warmed by a generous caller cannot smuggle
// an oversized program past a strict one.
package siwa

import (
	"context"
	"errors"
	"strconv"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/sg"
	"repro/internal/stall"
)

// StageCache is the content-addressed, byte-budgeted stage cache consumed
// via Options.StageCache. One cache may (and should) be shared by any
// number of concurrent analyses: admission is LRU over artifact bytes,
// and concurrent misses on one key build the artifact exactly once.
type StageCache = memo.Cache

// StageCacheStats is a point-in-time snapshot of stage-cache counters.
type StageCacheStats = memo.Stats

// NewStageCache returns a stage cache admitting at most maxBytes of
// artifact footprint.
func NewStageCache(maxBytes int64) *StageCache { return memo.New(maxBytes) }

// AnalyzeSource parses and analyzes src, consulting Options.StageCache
// (when set) for every memoizable pipeline stage.
func AnalyzeSource(src string, opt Options) (*Report, error) {
	return AnalyzeSourceContext(context.Background(), src, opt)
}

// AnalyzeSourceContext is AnalyzeSource with cooperative cancellation
// (see AnalyzeContext for the cancellation and containment contract).
// With a nil Options.StageCache it is exactly Parse + AnalyzeContext;
// with a cache it memoizes shared-prefix artifacts on the source digest,
// so repeated analyses of one source — including with different
// algorithms — skip the already-built stages. Parse errors surface
// exactly as from Parse.
func AnalyzeSourceContext(ctx context.Context, src string, opt Options) (*Report, error) {
	if opt.StageCache == nil {
		prog, err := Parse(src)
		if err != nil {
			return nil, err
		}
		return AnalyzeContext(ctx, prog, opt)
	}
	return analyzeMemo(ctx, src, opt)
}

// srcEntry is the front-end artifact: the parsed program with procedures
// inlined and loops twice-unrolled (Lemma 1). inlined and unrolled alias
// prog when the respective transform was a no-op.
type srcEntry struct {
	prog     *Program
	inlined  *Program
	unrolled *Program
	hasLoops bool // loops in the inlined program (decides FIFO eligibility)
}

func (e *srcEntry) SizeBytes() int64 {
	sz := e.prog.SizeEstimate() + 64
	if e.inlined != e.prog {
		sz += e.inlined.SizeEstimate()
	}
	if e.unrolled != e.inlined {
		sz += e.unrolled.SizeEstimate()
	}
	return sz
}

// graphEntry is the mid-pipeline artifact: the (post-FIFO) sync graph and
// the analyzer holding its CLG, ordering matrices and hypothesis tables.
type graphEntry struct {
	graph       *sg.Graph
	fifoRemoved int
	analyzer    *core.Analyzer
}

func (e *graphEntry) SizeBytes() int64 {
	return e.graph.SizeBytes() + e.analyzer.SizeBytes() + 64
}

// verdictEntry caches one detector verdict.
type verdictEntry struct{ v Verdict }

func (e *verdictEntry) SizeBytes() int64 { return 96 + witnessBytes(e.v.Witnesses) }

// enumEntry caches one cycle-enumeration verdict at a given budget.
type enumEntry struct{ v core.EnumerationVerdict }

func (e *enumEntry) SizeBytes() int64 { return 128 + witnessBytes(e.v.Witnesses) }

func witnessBytes(ws [][]int) int64 {
	sz := int64(len(ws)) * 24
	for _, w := range ws {
		sz += int64(len(w)) * 8
	}
	return sz
}

// stallEntry caches the Lemma 3/4 balance report.
type stallEntry struct{ r *StallReport }

func (e *stallEntry) SizeBytes() int64 { return 64 + int64(len(e.r.Signals))*80 }

// c4Entry caches the constraint-4 certificate.
type c4Entry struct{ free, conclusive bool }

func (e *c4Entry) SizeBytes() int64 { return 16 }

// doEntry is Cache.Do hardened against single-flight cancellation
// sharing: when a shared flight fails with a cancellation error but OUR
// context is still live, the failure belongs to the flight leader's
// deadline, not to us — retry instead of propagating it. The retry
// either finds the entry now cached, joins a fresh flight, or becomes
// the new leader and builds under its own (live) context.
func doEntry(ctx context.Context, mc *memo.Cache, key string, build func() (memo.Entry, error)) (memo.Entry, bool, error) {
	for {
		v, built, err := mc.Do(key, build)
		if err == nil || built || ctx.Err() != nil || !isCancellation(err) {
			return v, built, err
		}
	}
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// analyzeMemo is the memoized twin of AnalyzeContext: the same stages
// under the same discipline (deadline gate, span, fault point, panic
// containment), with each memoizable stage group wrapped in a
// single-flight cache transaction. On a hit the group is replaced by a
// zero-work span carrying stage_cache=hit, so traces and per-stage
// service metrics still account for every stage.
func analyzeMemo(ctx context.Context, src string, opt Options) (*Report, error) {
	mc := opt.StageCache
	digest := memo.SourceDigest(src)
	dk := digest.Key()

	tr := opt.Tracer
	if tr == nil && opt.Trace {
		tr = obs.NewTracer()
	}
	root := tr.Start("analyze") // nil span when tracing is off
	defer root.End()
	root.SetAttr("source_digest", digest.String())
	stage := stageRunner(ctx, root)

	hits, misses := 0, 0
	// hitSpan records a memoized stage group that was served from cache.
	hitSpan := func(name string) {
		hits++
		sp := root.StartChild(name)
		sp.SetAttr("stage_cache", "hit")
		sp.End()
	}
	// missSpan marks a stage span as built by this request (the flight
	// leader); followers that waited on the flight record a hit.
	missSpan := func(sp *Span) {
		sp.SetAttr("stage_cache", "miss")
	}

	// --- Front end: parse + inline + unroll, keyed on the digest alone.
	fv, built, err := doEntry(ctx, mc, "src:"+dk, func() (memo.Entry, error) {
		misses++
		e := &srcEntry{}
		if err := stage("parse", func(sp *Span) error {
			missSpan(sp)
			p, err := Parse(src)
			if err != nil {
				return err
			}
			if err := p.Validate(); err != nil {
				return err
			}
			e.prog, e.inlined, e.unrolled = p, p, p
			return nil
		}); err != nil {
			return nil, err
		}
		if len(e.prog.Procs) > 0 || e.prog.HasCalls() {
			if err := stage("inline", func(sp *Span) error {
				missSpan(sp)
				e.inlined = e.prog.InlineCalls()
				e.unrolled = e.inlined
				return nil
			}); err != nil {
				return nil, err
			}
		}
		// The requester's limits guard the build (an unroll bomb must be
		// refused by arithmetic, not allocated); the post-build recheck
		// below applies every caller's own limits to hits too.
		if err := checkLimit("tasks", opt.Limits.MaxTasks, len(e.prog.Tasks)); err != nil {
			return nil, err
		}
		if err := checkLimit("rendezvous nodes", opt.Limits.MaxNodes, e.inlined.CountRendezvous()); err != nil {
			return nil, err
		}
		e.hasLoops = cfg.HasLoops(e.inlined)
		if e.hasLoops {
			if err := stage("unroll", func(sp *Span) error {
				missSpan(sp)
				unrolled, err := cfg.UnrollBounded(e.inlined, opt.Limits.MaxUnrolledNodes)
				if err != nil {
					return err
				}
				e.unrolled = unrolled
				if sp != nil {
					sp.Set("rendezvous_before", int64(e.inlined.CountRendezvous()))
					sp.Set("rendezvous_after", int64(e.unrolled.CountRendezvous()))
				}
				return nil
			}); err != nil {
				return nil, err
			}
		}
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	if !built {
		hitSpan("parse+unroll")
	}
	fe := fv.(*srcEntry)

	// Limits are not part of the cache key, so a hit built under someone
	// else's limits is rechecked arithmetically against ours.
	if err := checkLimit("tasks", opt.Limits.MaxTasks, len(fe.prog.Tasks)); err != nil {
		return nil, err
	}
	if err := checkLimit("rendezvous nodes", opt.Limits.MaxNodes, fe.inlined.CountRendezvous()); err != nil {
		return nil, err
	}
	if err := checkLimit("unrolled rendezvous nodes", opt.Limits.MaxUnrolledNodes, fe.unrolled.CountRendezvous()); err != nil {
		return nil, err
	}

	// The FIFO refinement rewrites the sync graph, so it is part of the
	// mid-pipeline key — as the EFFECTIVE flag (requested AND loop-free),
	// letting a FIFO request on a loopy source share the plain entry.
	effFIFO := opt.FIFO && !fe.hasLoops
	fifoKey := ":f0"
	if effFIFO {
		fifoKey = ":f1"
	}

	// --- Mid pipeline: sync graph + FIFO + CLG/ordering tables.
	gv, built, err := doEntry(ctx, mc, "an:"+dk+fifoKey, func() (memo.Entry, error) {
		misses++
		e := &graphEntry{}
		if err := stage("sync-graph", func(sp *Span) error {
			missSpan(sp)
			g, err := sg.FromProgram(fe.unrolled)
			if err != nil {
				return err
			}
			e.graph = g
			if sp != nil {
				sp.Set("tasks", int64(len(g.Tasks)))
				sp.Set("rendezvous_nodes", int64(g.NumRendezvous()))
				sp.Set("sync_edges", int64(g.NumSyncEdges()))
				sp.Set("control_edges", int64(g.NumControlEdges()))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if effFIFO {
			if err := stage("fifo", func(sp *Span) error {
				missSpan(sp)
				info := order.Compute(e.graph)
				e.fifoRemoved = e.graph.RemoveSyncEdges(info.InfeasibleSyncPairs())
				sp.Set("removed_sync_edges", int64(e.fifoRemoved))
				return nil
			}); err != nil {
				return nil, err
			}
		}
		if err := stage("clg", func(sp *Span) error {
			missSpan(sp)
			e.analyzer = core.NewAnalyzerTraced(e.graph, sp)
			return nil
		}); err != nil {
			return nil, err
		}
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	if !built {
		hitSpan("clg")
	}
	ge := gv.(*graphEntry)

	rep := &Report{
		Program:     fe.prog,
		Unrolled:    fe.unrolled,
		Graph:       ge.graph,
		FIFORemoved: ge.fifoRemoved,
		Trace:       root,
		// A Session copy, not the shared Analyzer: advanced callers may
		// set its knobs without racing other requests on the same digest.
		Analyzer: ge.analyzer.Session(opt.Parallelism, nil),
	}
	degrade := func(reason string) {
		rep.Degraded = true
		rep.DegradedReasons = append(rep.DegradedReasons, reason)
	}

	// --- Detector verdicts, keyed per (digest, fifo, algorithm): the
	// selected algorithm and the spectrum share entries, so AllAlgorithms
	// on a warm source is five hits.
	runAlgo := func(name string, algo Algorithm) (Verdict, error) {
		key := "vd:" + dk + fifoKey + ":" + strconv.Itoa(int(algo))
		v, built, err := doEntry(ctx, mc, key, func() (memo.Entry, error) {
			misses++
			var out Verdict
			if err := stage(name, func(sp *Span) error {
				missSpan(sp)
				out = ge.analyzer.Session(opt.Parallelism, sp).Run(algo)
				return nil
			}); err != nil {
				return nil, err
			}
			return &verdictEntry{v: out}, nil
		})
		if err != nil {
			return Verdict{}, err
		}
		if !built {
			hitSpan(name)
		}
		return v.(*verdictEntry).v, nil
	}

	if rep.Deadlock, err = runAlgo("detect:"+opt.Algorithm.String(), opt.Algorithm); err != nil {
		return nil, err
	}
	if opt.AllAlgorithms {
		for _, a := range []Algorithm{
			AlgoNaive, AlgoRefined, AlgoRefinedPairs,
			AlgoRefinedHeadTail, AlgoRefinedHeadTailPairs,
		} {
			v, err := runAlgo("spectrum:"+a.String(), a)
			if err != nil {
				return nil, err
			}
			rep.Spectrum = append(rep.Spectrum, v)
		}
	}

	if opt.Constraint4 && rep.Deadlock.MayDeadlock {
		v, built, err := doEntry(ctx, mc, "c4:"+dk+fifoKey, func() (memo.Entry, error) {
			misses++
			e := &c4Entry{}
			if err := stage("constraint4", func(sp *Span) error {
				missSpan(sp)
				e.free, e.conclusive = ge.analyzer.Session(opt.Parallelism, sp).Constraint4Certify(0)
				return nil
			}); err != nil {
				return nil, err
			}
			return e, nil
		})
		if err != nil {
			return nil, err
		}
		if !built {
			hitSpan("constraint4")
		}
		c4 := v.(*c4Entry)
		rep.Constraint4Free, rep.Constraint4Conclusive = c4.free, c4.conclusive
	}

	// --- Stall balance, keyed on the digest alone: it reads the inlined
	// program, so FIFO (a sync-graph rewrite) cannot change it.
	sv, built, err := doEntry(ctx, mc, "st:"+dk, func() (memo.Entry, error) {
		misses++
		e := &stallEntry{}
		if err := stage("stall", func(sp *Span) error {
			missSpan(sp)
			e.r = stall.CheckAllLinearizations(fe.inlined)
			if sp != nil {
				sp.Set("unbalanced_signals", int64(len(e.r.Unbalanced())))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	if !built {
		hitSpan("stall")
	}
	rep.Stall = sv.(*stallEntry).r

	// --- Enumeration, keyed on the resolved budget: the verdict is a
	// deterministic function of (graph, limit), including the
	// budget-exceeded inconclusive outcome.
	if opt.Enumerate {
		lim := opt.EnumerateLimit
		if lim <= 0 {
			lim = 4096
		}
		if cerr := ctx.Err(); cerr != nil && opt.Degrade {
			degrade("enumeration skipped: " + cerr.Error())
		} else {
			key := "en:" + dk + fifoKey + ":" + strconv.Itoa(lim)
			v, built, err := doEntry(ctx, mc, key, func() (memo.Entry, error) {
				misses++
				e := &enumEntry{}
				if err := stage("enumerate", func(sp *Span) error {
					missSpan(sp)
					e.v = ge.analyzer.Session(opt.Parallelism, sp).Enumerate(lim)
					return nil
				}); err != nil {
					return nil, err
				}
				return e, nil
			})
			if err != nil {
				return nil, err
			}
			if !built {
				hitSpan("enumerate")
			}
			ev := v.(*enumEntry).v
			rep.Enumerated = &ev
			if opt.Degrade && !rep.Enumerated.Conclusive {
				degrade("enumeration budget exceeded; polynomial verdict stands")
			}
		}
	}

	switch {
	case misses == 0:
		root.SetAttr("stage_cache", "hit")
	case hits == 0:
		root.SetAttr("stage_cache", "miss")
	default:
		root.SetAttr("stage_cache", "partial")
	}

	// --- Exact wave exploration: never memoized (see runExactStage).
	if opt.Exact {
		if err := runExactStage(ctx, stage, rep, fe.inlined, opt, degrade); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
