package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const ctxflowFixture = "../../internal/lint/testdata/ctxflow"
const ignoreFixture = "../../internal/lint/testdata/ignore"

// TestJSONOutput pins the machine-readable contract: one JSON object
// with diagnostics (file/line/analyzer/message), the suppressed count,
// and the ignore audit, exit 1 while findings remain.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-fixtures", ctxflowFixture}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has findings); stderr: %s", code, stderr.String())
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("output is not one JSON object: %v\n%s", err, stdout.String())
	}
	if len(out.Diagnostics) == 0 {
		t.Fatal("no diagnostics in JSON output")
	}
	for _, d := range out.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Analyzer != "ctxflow" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestListIgnores: the audit mode lists every //lint:ignore site with
// its reason and whether it suppressed anything.
func TestListIgnores(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-list-ignores", "-fixtures", ignoreFixture}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	got := stdout.String()
	if !strings.Contains(got, "[ctxflow]") || !strings.Contains(got, "(used)") {
		t.Errorf("audit output missing analyzer tag or used marker:\n%s", got)
	}
}

// TestAnalyzerSelection: -analyzers restricts the run, and an unknown
// name is a usage error (exit 2).
func TestAnalyzerSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "waitlock", "-fixtures", ctxflowFixture}, &stdout, &stderr); code != 0 {
		t.Errorf("waitlock-only over ctxflow fixture: exit = %d, want 0 (no waitlock findings)\n%s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-analyzers", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}
