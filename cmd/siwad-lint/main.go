// Command siwad-lint runs the repo's static-analysis suite: the source
// paper's infinite-wait lens (blocking-under-lock, unreleased acquires,
// broken context flow) plus the exposition-surface checks (metric
// registration, error taxonomy) over Go packages, using only the
// standard library's go/ast + go/types.
//
// Usage:
//
//	siwad-lint [flags] [packages]
//
//	-analyzers name,name   run only the named analyzers
//	-json                  machine-readable output (one JSON object)
//	-list-ignores          audit every //lint:ignore site and exit
//	-fixtures dir          analyze a bare directory of Go files (golden fixtures)
//
// Exit status: 0 when no unsuppressed diagnostics, 1 when findings
// remain, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

type jsonDiagnostic struct {
	File           string `json:"file"`
	Line           int    `json:"line"`
	Column         int    `json:"column"`
	Analyzer       string `json:"analyzer"`
	Message        string `json:"message"`
	Hint           string `json:"hint,omitempty"`
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppress_reason,omitempty"`
}

type jsonIgnore struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

type jsonOutput struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Suppressed  int              `json:"suppressed"`
	Ignores     []jsonIgnore     `json:"ignores"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("siwad-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzerList = fs.String("analyzers", "", "comma-separated analyzer names (default: all)")
		jsonOut      = fs.Bool("json", false, "emit one machine-readable JSON object")
		listIgnores  = fs.Bool("list-ignores", false, "audit //lint:ignore sites instead of reporting diagnostics")
		fixturesDir  = fs.String("fixtures", "", "analyze a bare directory of Go files instead of packages")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers
	if *analyzerList != "" {
		analyzers = nil
		for _, name := range strings.Split(*analyzerList, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "siwad-lint: unknown analyzer %q (have:%s)\n", name, analyzerNames())
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader := lint.NewLoader("")
	var pkgs []*lint.Package
	if *fixturesDir != "" {
		pkg, err := loader.LoadDir(*fixturesDir)
		if err != nil {
			fmt.Fprintf(stderr, "siwad-lint: %v\n", err)
			return 2
		}
		pkgs = []*lint.Package{pkg}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var err error
		pkgs, err = loader.Load(patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "siwad-lint: %v\n", err)
			return 2
		}
	}

	res := lint.RunWithContext(loader.Fset, pkgs, loader.Typed(), analyzers)

	if *listIgnores {
		return printIgnores(stdout, res)
	}
	if *jsonOut {
		return printJSON(stdout, stderr, res)
	}
	return printText(stdout, res)
}

func analyzerNames() string {
	var b strings.Builder
	for _, a := range lint.Analyzers {
		b.WriteString(" ")
		b.WriteString(a.Name)
	}
	return b.String()
}

func printText(stdout io.Writer, res *lint.Result) int {
	unsuppressed := res.Unsuppressed()
	for _, d := range unsuppressed {
		fmt.Fprintln(stdout, d.String())
	}
	if n := res.SuppressedCount(); n > 0 {
		fmt.Fprintf(stdout, "siwad-lint: %d finding(s) suppressed by //lint:ignore (run -list-ignores to audit)\n", n)
	}
	if len(unsuppressed) > 0 {
		fmt.Fprintf(stdout, "siwad-lint: %d unsuppressed finding(s)\n", len(unsuppressed))
		return 1
	}
	return 0
}

func printJSON(stdout, stderr io.Writer, res *lint.Result) int {
	out := jsonOutput{
		Diagnostics: []jsonDiagnostic{},
		Suppressed:  res.SuppressedCount(),
		Ignores:     []jsonIgnore{},
	}
	for _, d := range res.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			File:           d.Pos.Filename,
			Line:           d.Pos.Line,
			Column:         d.Pos.Column,
			Analyzer:       d.Analyzer,
			Message:        d.Message,
			Hint:           d.Hint,
			Suppressed:     d.Suppressed,
			SuppressReason: d.SuppressReason,
		})
	}
	for _, ig := range res.Ignores {
		out.Ignores = append(out.Ignores, jsonIgnore{
			File:     ig.Pos.Filename,
			Line:     ig.Pos.Line,
			Analyzer: ig.Analyzer,
			Reason:   ig.Reason,
			Used:     ig.Used,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(stderr, "siwad-lint: encode: %v\n", err)
		return 2
	}
	if len(res.Unsuppressed()) > 0 {
		return 1
	}
	return 0
}

func printIgnores(stdout io.Writer, res *lint.Result) int {
	if len(res.Ignores) == 0 {
		fmt.Fprintln(stdout, "siwad-lint: no //lint:ignore sites")
		return 0
	}
	for _, ig := range res.Ignores {
		used := "unused"
		if ig.Used {
			used = "used"
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s (%s)\n", ig.Pos.Filename, ig.Pos.Line, ig.Analyzer, ig.Reason, used)
	}
	return 0
}
