package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanProgramExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "-algo", "pairs", "../../testdata/handshake.ada")
	if code != 0 {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	if !strings.Contains(out, "DEADLOCK-FREE") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestDeadlockExitsOne(t *testing.T) {
	code, out, _ := runCLI(t, "../../testdata/deadlock.ada")
	if code != 1 {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	if !strings.Contains(out, "MAY DEADLOCK") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestStallExitsOne(t *testing.T) {
	code, out, _ := runCLI(t, "../../testdata/stall.ada")
	if code != 1 {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	if !strings.Contains(out, "POSSIBLE STALL") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestConstraint4Flag(t *testing.T) {
	// Without -c4 the figure-3 program is flagged; with it, certified.
	code, _, _ := runCLI(t, "../../testdata/figure3.ada")
	if code != 1 {
		t.Fatalf("without -c4: exit=%d", code)
	}
	code, out, _ := runCLI(t, "-c4", "../../testdata/figure3.ada")
	if code != 0 {
		t.Fatalf("with -c4: exit=%d\n%s", code, out)
	}
	if !strings.Contains(out, "constraint 4") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestEnumerateFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-enum", "../../testdata/handshake.ada")
	if code != 0 || !strings.Contains(out, "enumeration") {
		t.Fatalf("exit=%d\n%s", code, out)
	}
}

func TestLoopPipelineWithExact(t *testing.T) {
	code, out, _ := runCLI(t, "-algo", "pairs", "-exact", "../../testdata/loop_pipeline.ada")
	if code != 0 {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	for _, want := range []string{"Lemma 1", "exact waves", "deadlock=false"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAllAlgorithmsFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-all", "../../testdata/philosophers.ada")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
	for _, want := range []string{"naive", "refined+head-pairs", "refined+head-tail-pairs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("spectrum row %q missing:\n%s", want, out)
		}
	}
}

func TestDotOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-dot", "sync", "../../testdata/handshake.ada")
	if code != 0 || !strings.Contains(out, "graph sync") {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	code, out, _ = runCLI(t, "-dot", "clg", "../../testdata/handshake.ada")
	if code != 0 || !strings.Contains(out, "digraph clg") {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	code, out, _ = runCLI(t, "-dot", "waves", "../../testdata/handshake.ada")
	if code != 0 || !strings.Contains(out, "digraph waves") || !strings.Contains(out, "doublecircle") {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	code, _, errOut := runCLI(t, "-dot", "bogus", "../../testdata/handshake.ada")
	if code != 2 || !strings.Contains(errOut, "unknown -dot kind") {
		t.Fatalf("exit=%d err=%s", code, errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatal("no-args should be a usage error")
	}
	code, _, errOut := runCLI(t, "-algo", "bogus", "../../testdata/handshake.ada")
	if code != 2 {
		t.Fatal("unknown algorithm accepted")
	}
	// The error must list every valid spelling, derived from the registry.
	for name := range algoNames {
		if !strings.Contains(errOut, name) {
			t.Fatalf("unknown-algorithm error does not list %q:\n%s", name, errOut)
		}
	}
	if code, _, _ := runCLI(t, "/nonexistent/file.ada"); code != 2 {
		t.Fatal("missing file accepted")
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	// A syntactically broken file via stdin is awkward in tests; use a
	// temp file through testdata-relative paths instead: reuse an
	// existing directory as an unreadable "file".
	if code, _, _ := runCLI(t, "../../testdata"); code != 2 {
		t.Fatal("directory accepted as input")
	}
}

func TestJSONFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "-enum", "../../testdata/deadlock.ada")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(out, `"mayDeadlock": true`) || !strings.Contains(out, `"deadlockFree": false`) {
		t.Fatalf("json:\n%s", out)
	}
}

func TestProceduresFile(t *testing.T) {
	code, out, _ := runCLI(t, "-exact", "../../testdata/procedures.ada")
	if code != 0 {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	for _, want := range []string{"procedures inlined", "DEADLOCK-FREE", "deadlock=false"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestAnomalyTraceFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-anomaly-trace", "../../testdata/stall.ada")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(out, "anomaly 1 (stall) trace:") {
		t.Fatalf("trace missing:\n%s", out)
	}
	// -anomaly-trace implies -exact.
	if !strings.Contains(out, "exact waves") {
		t.Fatalf("exact summary missing:\n%s", out)
	}
}

func TestPipelineTraceFlag(t *testing.T) {
	// -trace prints the span tree and must name every pipeline stage that
	// ran: a plain refined run passes through sync-graph, clg, the
	// detector, and the stall balance analysis.
	code, out, _ := runCLI(t, "-trace", "../../testdata/stall.ada")
	if code != 1 {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	for _, stage := range []string{
		"-- pipeline trace --", "analyze",
		"sync-graph", "clg", "detect:refined", "stall",
	} {
		if !strings.Contains(out, stage) {
			t.Fatalf("stage %q missing from -trace output:\n%s", stage, out)
		}
	}
	// Work counters from the detector must be present and nonzero.
	if !strings.Contains(out, "hypotheses=") || !strings.Contains(out, "scc_runs=") {
		t.Fatalf("detector counters missing:\n%s", out)
	}
	if strings.Contains(out, "hypotheses=0") {
		t.Fatalf("hypotheses counter is zero:\n%s", out)
	}

	// Optional stages appear when their flags are set.
	_, out, _ = runCLI(t, "-trace", "-all", "-enum", "-exact",
		"../../testdata/handshake.ada")
	for _, stage := range []string{"spectrum:naive", "enumerate", "exact-waves"} {
		if !strings.Contains(out, stage) {
			t.Fatalf("stage %q missing from -trace -all output:\n%s", stage, out)
		}
	}
	// constraint4 only runs when the primary detector says may-deadlock.
	_, out, _ = runCLI(t, "-trace", "-c4", "../../testdata/figure3.ada")
	if !strings.Contains(out, "constraint4") {
		t.Fatalf("stage constraint4 missing:\n%s", out)
	}
}

func TestTraceJSON(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "-trace", "../../testdata/handshake.ada")
	if code != 0 {
		t.Fatalf("exit=%d\n%s", code, out)
	}
	for _, want := range []string{`"trace"`, `"name": "analyze"`, `"durationMs"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in json:\n%s", want, out)
		}
	}
	// Without -trace the field is omitted entirely.
	_, out, _ = runCLI(t, "-json", "../../testdata/handshake.ada")
	if strings.Contains(out, `"trace"`) {
		t.Fatalf("untraced json should omit trace:\n%s", out)
	}
}

func TestMultipleFiles(t *testing.T) {
	code, out, _ := runCLI(t, "-algo", "pairs",
		"../../testdata/handshake.ada", "../../testdata/deadlock.ada")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
	if strings.Count(out, "== ") != 2 {
		t.Fatalf("expected two report headers:\n%s", out)
	}
}
