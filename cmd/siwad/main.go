// Command siwad analyzes MiniAda programs for infinite wait anomalies
// (stalls and deadlocks) using the detectors of Masticola & Ryder (ICPP
// 1990).
//
// Usage:
//
//	siwad [flags] file.ada...        # analyze files
//	siwad [flags] -                  # analyze stdin
//
// Flags:
//
//	-algo NAME      detector: naive, refined, pairs, head-tail, ht-pairs,
//	                k-pairs, enumerate (default refined)
//	-all            run the whole detector spectrum
//	-c4             also try the constraint-4 (outside breaker) certifier
//	-enum           also run the cycle-enumeration detector (exact 1c)
//	-fifo           apply the FIFO sync-edge refinement first (loop-free)
//	-exact          also run the exact wave explorer (exponential)
//	-trace          print the pipeline span tree: per-stage durations and
//	                work counters (hypotheses, SCC runs, pruned nodes, ...)
//	-anomaly-trace  print rendezvous traces to each anomaly (implies -exact)
//	-json           machine-readable output (includes the span tree under
//	                "trace" when -trace is set)
//	-max-states N   state cap for -exact and -dot waves (default 1<<20)
//	-limits SPEC    per-analysis resource caps as tasks=N,nodes=N,unrolled=N
//	                (any subset), or "default" for the server-side caps;
//	                unbounded when omitted
//	-degrade        when the exact explorer hits a deadline or state budget,
//	                keep the (sound, conservative) polynomial verdicts and
//	                mark the report DEGRADED instead of failing
//	-dot KIND       print a Graphviz graph instead of analyzing:
//	                sync | clg | waves (the Taylor concurrency state graph)
//
// Exit status: 0 when every input is certified deadlock-free, 1 when any
// input may deadlock or stall, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	siwa "repro"
	"repro/internal/clg"
	"repro/internal/waves"
)

// algoNames is the shared CLI/service registry; the -algo flag's accepted
// spellings and the unknown-algorithm error both derive from it.
var algoNames = siwa.Algorithms()

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("siwad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "refined", "detector: naive, refined, pairs, head-tail, ht-pairs, k-pairs, enumerate")
	all := fs.Bool("all", false, "run the whole detector spectrum")
	c4 := fs.Bool("c4", false, "also run the constraint-4 certifier")
	enum := fs.Bool("enum", false, "also run the cycle-enumeration detector (exact constraint 1c)")
	fifo := fs.Bool("fifo", false, "apply the FIFO sync-edge refinement (loop-free programs)")
	exact := fs.Bool("exact", false, "also run the exact wave explorer")
	trace := fs.Bool("trace", false, "print the pipeline span tree (per-stage durations and work counters)")
	anomalyTrace := fs.Bool("anomaly-trace", false, "with the exact explorer, print rendezvous traces to each anomaly (implies -exact)")
	maxStates := fs.Int("max-states", 1<<20, "state cap for -exact")
	limitsSpec := fs.String("limits", "", "resource caps: tasks=N,nodes=N,unrolled=N, or default (unbounded when omitted)")
	parallelism := fs.Int("parallelism", 0, "worker count for detector hypothesis sweeps (0 = GOMAXPROCS, 1 = serial)")
	degrade := fs.Bool("degrade", false, "degrade to the polynomial verdicts when the exact explorer is cut short")
	dot := fs.String("dot", "", "emit a Graphviz graph (sync|clg|waves) instead of analyzing")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of the text report")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "siwad: no input files (use - for stdin)")
		fs.Usage()
		return 2
	}
	algorithm, ok := algoNames[*algo]
	if !ok {
		fmt.Fprintf(stderr, "siwad: unknown algorithm %q (valid: %s)\n",
			*algo, strings.Join(siwa.AlgorithmNames(), ", "))
		return 2
	}
	// Unlike the server, the CLI is unbounded unless asked: analyzing your
	// own large program locally should not need a flag to opt out of caps.
	limits, err := siwa.ParseLimits(*limitsSpec, siwa.Limits{})
	if err != nil {
		fmt.Fprintf(stderr, "siwad: %v\n", err)
		return 2
	}

	anomalous := false
	for _, path := range fs.Args() {
		src, err := readInput(path)
		if err != nil {
			fmt.Fprintf(stderr, "siwad: %v\n", err)
			return 2
		}
		prog, err := siwa.Parse(src)
		if err != nil {
			fmt.Fprintf(stderr, "siwad: %s: %v\n", path, err)
			return 2
		}
		rep, err := siwa.Analyze(prog, siwa.Options{
			Algorithm:     algorithm,
			AllAlgorithms: *all,
			Constraint4:   *c4,
			Enumerate:     *enum,
			FIFO:          *fifo,
			Exact:         *exact || *anomalyTrace,
			ExactOptions:  waves.Options{MaxStates: *maxStates, Traces: *anomalyTrace},
			Trace:         *trace,
			Limits:        limits,
			Parallelism:   *parallelism,
			Degrade:       *degrade,
		})
		if err != nil {
			fmt.Fprintf(stderr, "siwad: %s: %v\n", path, err)
			return 2
		}
		if *dot != "" {
			switch *dot {
			case "sync":
				fmt.Fprint(stdout, rep.Graph.DOT())
			case "clg":
				fmt.Fprint(stdout, clg.Build(rep.Graph).DOT())
			case "waves":
				eg, err := waves.ExploreProgramGraph(prog)
				if err != nil {
					fmt.Fprintf(stderr, "siwad: %s: %v\n", path, err)
					return 2
				}
				sgph := waves.BuildStateGraph(eg, *maxStates)
				if sgph.Truncated {
					fmt.Fprintf(stderr, "siwad: %s: state graph truncated at %d states\n", path, *maxStates)
				}
				fmt.Fprint(stdout, sgph.DOT())
			default:
				fmt.Fprintf(stderr, "siwad: unknown -dot kind %q\n", *dot)
				return 2
			}
			continue
		}
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(stderr, "siwad: %s: %v\n", path, err)
				return 2
			}
			fmt.Fprintf(stdout, "%s\n", data)
			if !rep.DeadlockFree() || !rep.Stall.StallFree() {
				anomalous = true
			}
			continue
		}
		fmt.Fprintf(stdout, "== %s ==\n%s", path, rep.Summary())
		if *anomalyTrace && rep.Exact != nil {
			for i, a := range rep.Exact.Anomalies {
				kind := "stall"
				if len(a.DeadlockSet) > 0 {
					kind = "deadlock"
				}
				fmt.Fprintf(stdout, "  anomaly %d (%s) trace: %s\n", i+1, kind, rep.AnomalyTraceString(a))
			}
		}
		if *trace {
			fmt.Fprintf(stdout, "-- pipeline trace --\n%s", rep.TraceString())
		}
		if !rep.DeadlockFree() || !rep.Stall.StallFree() {
			anomalous = true
		}
	}
	if anomalous {
		return 1
	}
	return 0
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
