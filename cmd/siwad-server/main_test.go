package main

import "testing"

func TestBadFlagExitsTwo(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Fatalf("exit=%d", code)
	}
	if code := run([]string{"-workers", "nope"}); code != 2 {
		t.Fatalf("exit=%d", code)
	}
	if code := run([]string{"-limits", "bogus=1"}); code != 2 {
		t.Fatalf("exit=%d", code)
	}
}

func TestBadAddrExitsOne(t *testing.T) {
	if code := run([]string{"-addr", "256.256.256.256:http"}); code != 1 {
		t.Fatalf("exit=%d", code)
	}
}
