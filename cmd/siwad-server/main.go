// Command siwad-server runs the siwa analysis service: a long-running
// HTTP JSON front end over the Masticola & Ryder detectors with a
// content-addressed result cache and a bounded worker pool.
//
// Endpoints:
//
//	POST /v1/analyze        one MiniAda program + options -> JSONReport
//	POST /v1/analyze/batch  many programs, fanned out across the pool
//	GET  /v1/algorithms     the detector spectrum with descriptions
//	GET  /healthz           liveness probe
//	GET  /readyz            readiness probe; 503 while starting or draining
//	GET  /metrics           counters + latency histograms, Prometheus text
//	GET  /debug/traces      retained traces (sampled + slow/degraded/errored)
//	GET  /debug/traces/{id} one trace's span trees by trace id
//	GET  /debug/pprof/...   runtime profiles (only with -pprof)
//
// Flags:
//
//	-addr HOST:PORT   listen address (default :8080)
//	-workers N        concurrent analyses (default GOMAXPROCS)
//	-parallelism N    sweep workers inside each analysis (default 1: the
//	                  pool already parallelizes across requests; 0 uses
//	                  GOMAXPROCS — verdicts are identical either way)
//	-queue-depth N    admitted analyses that may wait for a worker; beyond
//	                  it requests are shed with 429 (0 = 4x workers, -1
//	                  disables waiting)
//	-limits SPEC      per-analysis resource caps as tasks=N,nodes=N,
//	                  unrolled=N (any subset), or "off" / "default"
//	-cache N          result cache entries; 0 default (1024), -1 disables
//	-stage-cache-mb N stage cache byte budget in MiB: memoized pipeline
//	                  artifacts (parse+unroll, CLG + ordering tables,
//	                  per-algorithm verdicts) keyed on the source digest;
//	                  0 default (64), -1 disables
//	-max-body N       request body limit in bytes (default 4 MiB)
//	-max-batch N      programs per batch request (default 256)
//	-timeout D        default per-request analysis deadline (default 30s)
//	-max-timeout D    upper clamp on client-requested deadlines (default 5m)
//	-deadline-floor D smallest propagated X-Deadline-Ms budget worth
//	                  admitting; below it requests are shed outright and
//	                  counted in siwa_deadline_shed_total (default 5ms)
//	-log MODE         request logging: text, json, or off (default text)
//	-trace            trace every analysis, feeding the per-stage latency
//	                  histograms (requests can still opt in per-call)
//	-trace-sample N   head-sample 1 in N traces into /debug/traces (default
//	                  1 = every trace; 0 disables sampling — slow, degraded
//	                  and errored requests are always retained)
//	-slow-ms N        slow-request threshold in milliseconds: slower
//	                  requests log at WARN with their stage breakdown and
//	                  are always retained (default 1000; 0 disables)
//	-trace-ring N     retained-trace ring capacity (default 256)
//	-pprof            mount net/http/pprof under /debug/pprof/
//
// The SIWA_FAULTS environment variable arms fault-injection points for
// chaos drills ("point:kind[=arg][:every=N];...", see internal/fault).
//
// The server drains in-flight requests on SIGINT/SIGTERM and exits 0 on a
// clean shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	siwa "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("siwad-server", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
	parallelism := fs.Int("parallelism", 1, "sweep workers per analysis (1 = serial, 0 = GOMAXPROCS; the pool already parallelizes across requests)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue depth before shedding (0 = 4x workers, -1 disables waiting)")
	limitsSpec := fs.String("limits", "", "per-analysis resource caps: tasks=N,nodes=N,unrolled=N, or off/default (default: default)")
	cache := fs.Int("cache", 0, "result cache entries (0 = 1024, -1 disables)")
	stageCacheMB := fs.Int("stage-cache-mb", 0, "stage cache byte budget in MiB (0 = 64, -1 disables)")
	maxBody := fs.Int64("max-body", 0, "request body limit in bytes (0 = 4 MiB)")
	maxBatch := fs.Int("max-batch", 0, "programs per batch request (0 = 256)")
	timeout := fs.Duration("timeout", 0, "default analysis deadline (0 = 30s)")
	maxTimeout := fs.Duration("max-timeout", 0, "deadline clamp (0 = 5m)")
	deadlineFloor := fs.Duration("deadline-floor", 0, "smallest propagated deadline budget worth admitting (0 = 5ms)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain budget")
	logMode := fs.String("log", "text", "request logging: text, json, or off")
	trace := fs.Bool("trace", false, "trace every analysis into the per-stage latency histograms")
	traceSample := fs.Int("trace-sample", 1, "head-sample 1 in N traces into /debug/traces (0 disables sampling)")
	slowMS := fs.Int("slow-ms", 1000, "slow-request threshold in ms for WARN logging and trace retention (0 disables)")
	traceRing := fs.Int("trace-ring", 256, "retained-trace ring capacity")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	limits, err := siwa.ParseLimits(*limitsSpec, siwa.DefaultLimits())
	if err != nil {
		fmt.Fprintf(os.Stderr, "siwad-server: %v\n", err)
		return 2
	}
	if err := fault.InitFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "siwad-server: %v\n", err)
		return 2
	}
	if fault.Active() {
		fmt.Fprintln(os.Stderr, "siwad-server: WARNING: fault injection armed via SIWA_FAULTS")
	}
	var logger *slog.Logger
	switch *logMode {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "siwad-server: unknown -log mode %q (valid: text, json, off)\n", *logMode)
		return 2
	}
	srv := service.New(service.Config{
		Addr:           *addr,
		Workers:        *workers,
		Parallelism:    configParallelism(*parallelism),
		QueueDepth:     *queueDepth,
		Limits:         limits,
		CacheEntries:   *cache,
		StageCacheMB:   *stageCacheMB,
		MaxBodyBytes:   *maxBody,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DeadlineFloor:  *deadlineFloor,
		ShutdownGrace:  *grace,
		Logger:         logger,
		EnablePprof:    *enablePprof,
		TraceAll:       *trace,
		TraceSample:    zeroDisables(*traceSample),
		SlowThreshold:  time.Duration(zeroDisables(*slowMS)) * time.Millisecond,
		TraceRing:      *traceRing,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "siwad-server: %s listening on %s\n", obs.VersionString(), *addr)
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "siwad-server: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "siwad-server: drained, bye")
	return 0
}

// configParallelism maps the flag convention (0 = GOMAXPROCS, matching
// siwad) onto service.Config's (0 = serial default, negative = GOMAXPROCS).
func configParallelism(flagVal int) int {
	if flagVal == 0 {
		return -1
	}
	return flagVal
}

// zeroDisables maps the flag convention (0 = off) onto the config
// convention (0 = default, negative = off).
func zeroDisables(flagVal int) int {
	if flagVal == 0 {
		return -1
	}
	return flagVal
}
