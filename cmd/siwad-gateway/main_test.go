package main

import (
	"reflect"
	"testing"
)

func TestBadFlagExitsTwo(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Fatalf("exit=%d", code)
	}
	if code := run([]string{"-backends", "http://a:1", "-retries", "nope"}); code != 2 {
		t.Fatalf("exit=%d", code)
	}
}

func TestMissingBackendsExitsTwo(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("exit=%d", code)
	}
	if code := run([]string{"-backends", " , ,"}); code != 2 {
		t.Fatalf("exit=%d", code)
	}
}

func TestDuplicateBackendExitsTwo(t *testing.T) {
	if code := run([]string{"-backends", "http://a:1,http://a:1/"}); code != 2 {
		t.Fatalf("exit=%d (trailing slash must not disguise a duplicate)", code)
	}
}

func TestBadLogModeExitsTwo(t *testing.T) {
	if code := run([]string{"-backends", "http://a:1", "-log", "xml"}); code != 2 {
		t.Fatalf("exit=%d", code)
	}
}

func TestBadAddrExitsOne(t *testing.T) {
	if code := run([]string{"-backends", "http://a:1", "-addr", "256.256.256.256:http", "-log", "off"}); code != 1 {
		t.Fatalf("exit=%d", code)
	}
}

func TestParseBackends(t *testing.T) {
	got := parseBackends(" http://a:8080/ ,, http://b:8080 ,")
	want := []string{"http://a:8080", "http://b:8080"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseBackends=%v, want %v", got, want)
	}
	if got := parseBackends(""); got != nil {
		t.Fatalf("empty spec parsed to %v", got)
	}
}
