// Command siwad-gateway fronts a fleet of siwad-server replicas: it
// routes each program to the replica that owns its digest on a
// consistent-hash ring (so replica result caches hit like a single
// node's), health-checks the fleet, wraps every backend in a circuit
// breaker, and scatter-gathers batch requests across the ring.
//
// Endpoints:
//
//	POST /v1/analyze        routed by program digest, single-flight deduped
//	POST /v1/analyze/batch  sharded by digest, merged in input order
//	GET  /v1/algorithms     relayed from any live replica
//	GET  /v1/fleet/status   merged fleet snapshot (scrapes every replica)
//	GET  /healthz           gateway liveness
//	GET  /readyz            503 until at least one backend is routable
//	GET  /metrics           per-backend counters, breaker states, ring shares
//	GET  /debug/traces      retained trace summaries (newest first)
//	GET  /debug/traces/ID   one trace, replica spans stitched under gateway spans
//
// Flags:
//
//	-addr HOST:PORT        listen address (default :8090)
//	-backends LIST         comma-separated replica base URLs (required),
//	                       e.g. http://a:8080,http://b:8080
//	-vnodes N              virtual nodes per backend on the ring (default 64)
//	-health-interval D     active /healthz + /readyz probe period (default 2s)
//	-health-timeout D      per-probe timeout (default 1s)
//	-breaker-threshold N   consecutive transport failures that open a
//	                       backend's breaker (default 3)
//	-breaker-cooldown D    open-state cooldown before a half-open probe
//	                       (default 2s)
//	-retries N             extra attempts after an upstream 429/503
//	                       (default 2, -1 disables)
//	-retry-budget RATIO    retry tokens earned per upstream success; retries
//	                       and hedges spend whole tokens, capping the
//	                       sustained retry ratio (default 0.1, 0 disables)
//	-retry-burst N         retry-token bucket capacity and initial fill
//	                       (default 10)
//	-hedge-after P         hedge single analyzes once the primary exceeds
//	                       its observed P-th latency percentile: one
//	                       speculative attempt to the next ring candidate,
//	                       first answer wins (default 95, 0 disables)
//	-default-timeout D     end-to-end deadline budget for requests without
//	                       a timeoutMs; the remainder is propagated to
//	                       replicas via X-Deadline-Ms (default 30s)
//	-max-timeout D         clamp on client-requested deadline budgets
//	                       (default 5m)
//	-chunk N               items per upstream sub-batch (default 16)
//	-max-batch N           programs per gateway batch request (default 1024)
//	-max-body N            request body limit in bytes (default 4 MiB)
//	-grace D               shutdown drain budget (default 10s)
//	-log MODE              request logging: text, json, or off (default text)
//	-trace-sample N        head-sample 1 in N requests for trace retention
//	                       (default 1 = every request, 0 disables)
//	-slow-ms N             slow-request WARN + trace retention threshold
//	                       (default 1000, 0 disables)
//	-trace-ring N          retained traces in the debug ring (default 256)
//
// The SIWA_FAULTS environment variable arms fault-injection points
// (including the proxy-path point "gateway.forward") for chaos drills.
//
// The gateway drains in-flight requests on SIGINT/SIGTERM and exits 0 on
// a clean shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("siwad-gateway", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8090", "listen address")
	backends := fs.String("backends", "", "comma-separated replica base URLs (required)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per backend (0 = 64)")
	healthInterval := fs.Duration("health-interval", 0, "health probe period (0 = 2s)")
	healthTimeout := fs.Duration("health-timeout", 0, "per-probe timeout (0 = 1s)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "transport failures that open a breaker (0 = 3)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker cooldown (0 = 2s)")
	retries := fs.Int("retries", 0, "extra attempts after upstream 429/503 (0 = 2, -1 disables)")
	retryBudget := fs.Float64("retry-budget", 0.1, "retry tokens earned per upstream success (0 disables retry budgeting)")
	retryBurst := fs.Int("retry-burst", 0, "retry-token bucket capacity (0 = 10)")
	hedgeAfter := fs.Int("hedge-after", 95, "hedge single analyzes after this latency percentile, 1-99 (0 disables)")
	defaultTimeout := fs.Duration("default-timeout", 0, "deadline budget for requests without timeoutMs (0 = 30s)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on client-requested deadline budgets (0 = 5m)")
	chunk := fs.Int("chunk", 0, "items per upstream sub-batch (0 = 16)")
	maxBatch := fs.Int("max-batch", 0, "programs per batch request (0 = 1024)")
	maxBody := fs.Int64("max-body", 0, "request body limit in bytes (0 = 4 MiB)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain budget")
	logMode := fs.String("log", "text", "request logging: text, json, or off")
	traceSample := fs.Int("trace-sample", 1, "head-sample 1 in N requests for tracing (0 disables)")
	slowMS := fs.Int("slow-ms", 1000, "slow-request threshold in milliseconds (0 disables)")
	traceRing := fs.Int("trace-ring", 256, "retained traces in the debug ring")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	urls := parseBackends(*backends)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "siwad-gateway: -backends is required (comma-separated replica URLs)")
		return 2
	}
	if err := fault.InitFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "siwad-gateway: %v\n", err)
		return 2
	}
	if fault.Active() {
		fmt.Fprintln(os.Stderr, "siwad-gateway: WARNING: fault injection armed via SIWA_FAULTS")
	}
	var logger *slog.Logger
	switch *logMode {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "siwad-gateway: unknown -log mode %q (valid: text, json, off)\n", *logMode)
		return 2
	}
	g, err := cluster.New(cluster.Config{
		Addr:             *addr,
		Backends:         urls,
		VirtualNodes:     *vnodes,
		HealthInterval:   *healthInterval,
		HealthTimeout:    *healthTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxRetries:       *retries,
		RetryBudgetRatio: zeroDisablesF(*retryBudget),
		RetryBudgetBurst: *retryBurst,
		HedgePercentile:  *hedgeAfter,
		DefaultTimeout:   *defaultTimeout,
		MaxTimeout:       *maxTimeout,
		BatchChunk:       *chunk,
		MaxBatch:         *maxBatch,
		MaxBodyBytes:     *maxBody,
		ShutdownGrace:    *grace,
		Logger:           logger,
		TraceSample:      zeroDisables(*traceSample),
		SlowThreshold:    time.Duration(zeroDisables(*slowMS)) * time.Millisecond,
		TraceRing:        *traceRing,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "siwad-gateway: %v\n", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "siwad-gateway: %s listening on %s, routing to %d backends\n",
		obs.VersionString(), *addr, len(urls))
	if err := g.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "siwad-gateway: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "siwad-gateway: drained, bye")
	return 0
}

// zeroDisables maps the flag convention (0 = off) onto the Config
// convention (0 = default, negative = off).
func zeroDisables(flagVal int) int {
	if flagVal == 0 {
		return -1
	}
	return flagVal
}

// zeroDisablesF is zeroDisables for float-valued flags (-retry-budget).
func zeroDisablesF(flagVal float64) float64 {
	if flagVal == 0 {
		return -1
	}
	return flagVal
}

// parseBackends splits the -backends list, trimming blanks and trailing
// slashes so "http://a:8080/" and "http://a:8080" name the same replica.
func parseBackends(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}
