package main

import (
	"strings"
	"testing"
)

func TestRunAllQuick(t *testing.T) {
	var out strings.Builder
	if err := runAll(&out, true, 11, 10); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"F1-F5", "F6-F8", "F9",
		"T1:", "T2:", "T2b:", "T3:", "T4:", "T5:", "T6:", "T7:",
		"verdicts-agree", "+k-pairs",
		"agree with DPLL",
		"canonical UNSAT formula: theorem2-cycle=false theorem3-cycle=false",
		"false-alarm-rate",
		"enumerate",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// All precision rows must report zero misses.
	if strings.Contains(s, "missed") {
		t.Fatalf("unexpected misses:\n%s", s)
	}
}
