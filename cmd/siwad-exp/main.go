// Command siwad-exp regenerates every experiment in EXPERIMENTS.md: the
// per-figure reproductions (F1-F5), the Appendix A reduction validations
// (F6-F9) and the quantitative claims (T1-T7).
//
// Usage:
//
//	siwad-exp [-quick] [-seed S] [-samples N]
//
// -quick shrinks the workloads so the whole run finishes in a couple of
// seconds; the default sizes match the numbers recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/exp"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "smaller workloads")
	seed := flag.Int64("seed", 11, "random seed for sampled experiments")
	samples := flag.Int("samples", 200, "sample count for the precision experiment")
	flag.Parse()

	if err := runAll(os.Stdout, *quick, *seed, *samples); err != nil {
		fmt.Fprintf(os.Stderr, "siwad-exp: %v\n", err)
		os.Exit(1)
	}
}

// runAll prints every experiment to w.
func runAll(out io.Writer, quick bool, seed int64, samples int) error {
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	fmt.Fprintln(out, "== F1-F5: figure reproductions (detector spectrum vs exact ground truth) ==")
	figs, err := exp.RunFigures()
	if err != nil {
		fail(err)
	}
	exp.PrintFigures(out, figs)

	fmt.Fprintln(out, "\n== F6-F8: Theorem 2 reduction (3-SAT -> unsequenceable-head cycles) ==")
	n2 := 40
	if quick {
		n2 = 10
	}
	t2, err := exp.RunTheorem2Agreement(seed, n2, 4, 2)
	if err != nil {
		fail(err)
	}
	exp.PrintTheoremAgreement(out, "Theorem 2 (sparse, 4 vars x 2 clauses)", t2)
	t2d, err := exp.RunTheorem2Agreement(seed, n2, 3, 7)
	if err != nil {
		fail(err)
	}
	exp.PrintTheoremAgreement(out, "Theorem 2 (dense, 3 vars x 7 clauses)", t2d)

	fmt.Fprintln(out, "\n== F9: Theorem 3 reduction (3-SAT -> constraint-1+2 cycles) ==")
	t3, err := exp.RunTheorem3Agreement(seed, n2, 4, 2)
	if err != nil {
		fail(err)
	}
	exp.PrintTheoremAgreement(out, "Theorem 3 (sparse, 4 vars x 2 clauses)", t3)
	t3d, err := exp.RunTheorem3Agreement(seed, n2, 3, 7)
	if err != nil {
		fail(err)
	}
	exp.PrintTheoremAgreement(out, "Theorem 3 (dense, 3 vars x 7 clauses)", t3d)
	c2, c3, err := exp.RunCanonicalUnsat()
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(out, "canonical UNSAT formula: theorem2-cycle=%v theorem3-cycle=%v (both must be false)\n", c2, c3)

	fmt.Fprintln(out, "\n== T1: detector runtime vs program size (CrossRing family) ==")
	sizes := [][2]int{{4, 2}, {8, 2}, {16, 2}, {32, 2}, {64, 2}}
	if quick {
		sizes = [][2]int{{4, 2}, {8, 2}, {16, 2}}
	}
	sc, err := exp.RunScaling(sizes, !quick)
	if err != nil {
		fail(err)
	}
	exp.PrintScaling(out, sc)

	fmt.Fprintln(out, "\n== T2: precision against exact ground truth (random programs) ==")
	ns := samples
	if quick {
		ns = 40
	}
	prec, skipped, err := exp.RunPrecision(seed, ns, workload.Config{
		Tasks: 3, StmtsPerTask: 3, Msgs: 2, BranchProb: 0.25, MaxDepth: 2, AcceptRatio: 0.5,
	})
	if err != nil {
		fail(err)
	}
	exp.PrintPrecision(out, prec, skipped)

	fmt.Fprintln(out, "\n== T2b: detector matrix on the structured workload families ==")
	fams, err := exp.RunFamilies()
	if err != nil {
		fail(err)
	}
	exp.PrintFamilies(out, fams)

	fmt.Fprintln(out, "\n== T3: exact (exponential) vs static (polynomial) — ForkFan family ==")
	pairs := []int{1, 2, 3, 4, 6, 8}
	if quick {
		pairs = []int{1, 2, 3, 4}
	}
	evs, err := exp.RunExactVsStatic(pairs, 2, 1<<22)
	if err != nil {
		fail(err)
	}
	exp.PrintExactVsStatic(out, evs)

	fmt.Fprintln(out, "\n== T4: Lemma 1 twice-unroll growth vs loop nest depth ==")
	depths := []int{1, 2, 3, 4, 6, 8}
	if quick {
		depths = []int{1, 2, 3, 4}
	}
	exp.PrintUnrollGrowth(out, exp.RunUnrollGrowth(depths, 4))

	fmt.Fprintln(out, "\n== T5: Lemma 3 stall counting is O(|N|) ==")
	szs := []int{10, 100, 1000, 10000}
	if quick {
		szs = []int{10, 100, 1000}
	}
	exp.PrintStallScaling(out, exp.RunStallScaling(szs))

	fmt.Fprintln(out, "\n== T6: extension ladder on Pipeline(4,3) — precision up, cost up ==")
	lad, err := exp.RunLadder(workload.Pipeline(4, 3))
	if err != nil {
		fail(err)
	}
	exp.PrintLadder(out, lad)

	fmt.Fprintln(out, "\n== T7: exact baselines — wave explorer vs Petri-net reachability ==")
	base, err := exp.RunBaselines()
	if err != nil {
		fail(err)
	}
	exp.PrintBaselines(out, base)
	return firstErr
}
