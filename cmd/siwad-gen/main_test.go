package main

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func gen(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb strings.Builder
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	return out.String()
}

func TestAllFamiliesEmitValidPrograms(t *testing.T) {
	families := []string{
		"pipeline", "ring", "ring-broken", "client-server",
		"barrier", "crossring", "forkfan", "nested", "random",
	}
	for _, f := range families {
		t.Run(f, func(t *testing.T) {
			src := gen(t, "-family", f, "-tasks", "3", "-depth", "2")
			if _, err := lang.Parse(src); err != nil {
				t.Fatalf("emitted invalid program: %v\n%s", err, src)
			}
		})
	}
}

func TestSat2Family(t *testing.T) {
	src := gen(t, "-family", "sat2", "-vars", "3", "-clauses", "2")
	if !strings.HasPrefix(src, "-- formula:") {
		t.Fatalf("formula comment missing:\n%s", src)
	}
	if _, err := lang.Parse(src); err != nil {
		t.Fatalf("gadget does not parse: %v", err)
	}
}

func TestUnknownFamily(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-family", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(errb.String(), "unknown family") {
		t.Fatalf("stderr=%s", errb.String())
	}
}

func TestSeedDeterminism(t *testing.T) {
	a := gen(t, "-family", "random", "-seed", "7")
	b := gen(t, "-family", "random", "-seed", "7")
	c := gen(t, "-family", "random", "-seed", "8")
	if a != b {
		t.Fatal("same seed differs")
	}
	if a == c {
		t.Fatal("different seeds identical")
	}
}
