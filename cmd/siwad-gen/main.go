// Command siwad-gen emits MiniAda workload programs on stdout, for feeding
// siwad or for building corpora.
//
// Usage:
//
//	siwad-gen -family NAME [flags]
//
// Families:
//
//	pipeline      -tasks N -depth D    deadlock-free chain
//	ring          -tasks N             circular-wait deadlock
//	ring-broken   -tasks N             ring with one flipped task (clean)
//	client-server -tasks N             request/reply (clean)
//	barrier       -tasks N -depth D    phased barrier (clean)
//	crossring     -tasks N -depth D    token ring, dense sync edges
//	forkfan       -tasks N -depth D    independent pairs (exponential waves)
//	nested        -depth D -stmts K    nested-loop kernel (unroll growth)
//	random        -tasks N -stmts K -seed S -branch P -loop P -msgs M
//	sat2          -vars V -clauses C -seed S   Theorem 2 gadget program
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/lang"
	"repro/internal/sat3"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("siwad-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "pipeline", "workload family")
	tasks := fs.Int("tasks", 4, "task count")
	depth := fs.Int("depth", 2, "depth / phases / loop nest")
	stmts := fs.Int("stmts", 4, "statements per task (random, nested)")
	seed := fs.Int64("seed", 1, "random seed")
	branch := fs.Float64("branch", 0.25, "branch probability (random)")
	loop := fs.Float64("loop", 0, "loop probability (random)")
	msgs := fs.Int("msgs", 2, "message pool size (random)")
	vars := fs.Int("vars", 4, "variables (sat2)")
	clauses := fs.Int("clauses", 2, "clauses (sat2)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var p *lang.Program
	switch *family {
	case "pipeline":
		p = workload.Pipeline(*tasks, *depth)
	case "ring":
		p = workload.Ring(*tasks)
	case "ring-broken":
		p = workload.RingBroken(*tasks)
	case "client-server":
		p = workload.ClientServer(*tasks)
	case "barrier":
		p = workload.Barrier(*tasks, *depth)
	case "crossring":
		p = workload.CrossRing(*tasks, *depth)
	case "forkfan":
		p = workload.ForkFan(*tasks, *depth)
	case "nested":
		p = workload.NestedLoops(*depth, *stmts)
	case "random":
		cfg := workload.Config{
			Tasks:        *tasks,
			StmtsPerTask: *stmts,
			Msgs:         *msgs,
			BranchProb:   *branch,
			LoopProb:     *loop,
			MaxDepth:     2,
			AcceptRatio:  0.5,
		}
		p = workload.Random(rand.New(rand.NewSource(*seed)), cfg)
	case "sat2":
		f := sat3.Random(rand.New(rand.NewSource(*seed)), *vars, *clauses)
		var err error
		p, err = sat3.BuildTheorem2(f)
		if err != nil {
			fmt.Fprintf(stderr, "siwad-gen: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "-- formula: %s\n", f)
	default:
		fmt.Fprintf(stderr, "siwad-gen: unknown family %q\n", *family)
		return 2
	}
	fmt.Fprint(stdout, p.String())
	return 0
}
