// Dining philosophers as a rendezvous ring: every philosopher calls its
// right neighbour's entry before accepting its own — the classic circular
// wait. The static detectors flag it; flipping one philosopher ("leftie")
// removes the cycle and the same detectors certify the fix.
//
//	go run ./examples/dining [-n philosophers]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	siwa "repro"
)

func ring(n int, leftie bool) string {
	var b strings.Builder
	for k := 0; k < n; k++ {
		right := (k + 1) % n
		fmt.Fprintf(&b, "task phil%d is\nbegin\n", k)
		if leftie && k == 0 {
			fmt.Fprintf(&b, "  accept fork;\n  phil%d.fork;\n", right)
		} else {
			fmt.Fprintf(&b, "  phil%d.fork;\n  accept fork;\n", right)
		}
		b.WriteString("end;\n")
	}
	return b.String()
}

func analyze(title, src string) {
	prog, err := siwa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := siwa.Analyze(prog, siwa.Options{Algorithm: siwa.AlgoRefinedPairs, Exact: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n", title)
	fmt.Print(rep.Summary())
	fmt.Println()
}

func main() {
	n := flag.Int("n", 5, "number of philosophers")
	flag.Parse()
	analyze(fmt.Sprintf("ring of %d (all right-handed): circular wait", *n), ring(*n, false))
	analyze("same ring with one leftie: cycle broken", ring(*n, true))
}
