// Quickstart: parse a small MiniAda program, run the deadlock-detector
// spectrum and the stall balance check, and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	siwa "repro"
)

// Two workers exchange a token through a coordinator. The program is
// deadlock-free, but only because the coordinator accepts in the order the
// workers send — flip the two accepts and it deadlocks (try it!).
const src = `
task coord is
begin
  accept hello;     -- from either worker
  accept hello;
  w1.go;
  w2.go;
end;

task w1 is
begin
  coord.hello;
  accept go;
end;

task w2 is
begin
  coord.hello;
  accept go;
end;
`

func main() {
	prog, err := siwa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := siwa.Analyze(prog, siwa.Options{
		Algorithm:     siwa.AlgoRefinedPairs,
		AllAlgorithms: true,
		Exact:         true, // tiny program: exact ground truth is cheap
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	if rep.DeadlockFree() {
		fmt.Println("\n=> certified deadlock-free by the static analysis")
	} else {
		fmt.Println("\n=> possible deadlock; inspect the witnesses above")
	}
}
