// The certifier ladder in action: a program (the paper's Figure 3) whose
// deadlock cycle survives every local constraint, so the whole masked-SCC
// spectrum raises a false alarm — and the two global certifiers that can
// still prove it deadlock-free:
//
//   - the constraint-4 certifier: task W is always ready to rendezvous
//     with head t, so the cycle can never actually strand;
//
//   - for comparison, the same machinery on Figure 4(c), where the cycle
//     is impossible for a different reason (it would need both branches
//     of one task at once) and the enumeration detector's exact
//     constraint-1c check certifies.
//
//     go run ./examples/certifiers
package main

import (
	"fmt"
	"log"

	siwa "repro"
)

const figure3 = `
task T1 is
begin
  r: accept mr;
  s: T2.mt;
end;
task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;
task W is
begin
  w: T2.mt;
end;
`

const figure4c = `
task X is
begin
  if c then
    a: accept m1;
    bb: Y.m2;
  else
    cc: accept m3;
    d: Z.m4;
  end if;
end;
task Y is
begin
  e1: accept m2;
  f1: X.m3;
end;
task Z is
begin
  g: accept m4;
  h: X.m1;
end;
`

func show(title, src string) {
	prog, err := siwa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := siwa.Analyze(prog, siwa.Options{
		AllAlgorithms: true,
		Constraint4:   true,
		Enumerate:     true,
		Exact:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n%s", title, rep.Summary())
	if rep.DeadlockFree() {
		fmt.Println("=> certified deadlock-free despite the spectrum's alarms")
	}
	fmt.Println()
}

func main() {
	show("Figure 3: broken by an outside task (constraint 4)", figure3)
	show("Figure 4(c): impossible double-branch cycle (constraint 1c via enumeration)", figure4c)
}
