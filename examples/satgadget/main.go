// Build the paper's Theorem 2 NP-hardness gadget for a 3-CNF formula,
// print the generated MiniAda program, and show the equivalence: the sync
// graph has a deadlock cycle with pairwise-unsequenceable head nodes
// exactly when the formula is satisfiable (cross-checked with DPLL).
//
//	go run ./examples/satgadget [-unsat]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sat3"
	"repro/internal/sg"
)

func main() {
	unsat := flag.Bool("unsat", false, "use the canonical unsatisfiable formula")
	flag.Parse()

	// (v1 | v2 | ~v3) & (~v1 | v2 | v3): satisfiable (e.g. set v2).
	f := &sat3.Formula{NumVars: 3, Clauses: []sat3.Clause{
		{1, 2, -3}, {-1, 2, 3},
	}}
	if *unsat {
		// All eight sign patterns over three variables: unsatisfiable.
		f = &sat3.Formula{NumVars: 3, Clauses: []sat3.Clause{
			{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
			{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
		}}
	}
	fmt.Printf("formula: %s\n\n", f)

	prog, err := sat3.BuildTheorem2(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- generated gadget: %d tasks, %d rendezvous statements\n",
		len(prog.Tasks), prog.CountRendezvous())
	if !*unsat {
		fmt.Println(prog) // the full 8-clause gadget is long; print only the small one
	}

	g, err := sg.FromProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	an := core.NewAnalyzer(g)
	cycle, complete := sat3.Theorem2HasValidCycle(an, 0)
	if !complete {
		log.Fatal("cycle enumeration truncated")
	}
	sat, assign := sat3.Solve(f)
	fmt.Printf("DPLL:   satisfiable = %v\n", sat)
	if sat {
		fmt.Printf("        assignment: ")
		for v := 1; v <= f.NumVars; v++ {
			fmt.Printf("v%d=%v ", v, assign[v])
		}
		fmt.Println()
	}
	fmt.Printf("gadget: unsequenceable-head deadlock cycle = %v\n", cycle)
	if cycle == sat {
		fmt.Println("=> Theorem 2 equivalence holds on this instance")
	} else {
		fmt.Println("=> MISMATCH: reduction broken!")
	}
}
