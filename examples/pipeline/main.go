// A producer/filter/consumer pipeline with bounded loops — the workload
// the paper's loop handling (Lemma 1) exists for. The analysis unrolls
// every loop twice, and the head-pair detector certifies the pipeline
// deadlock-free; the stall balance check (Lemma 4) verifies the message
// counts agree in every linearization.
//
// The -broken flag drops one accept from the consumer, which the balance
// check catches as a stall (a message that can never be delivered).
//
//	go run ./examples/pipeline [-broken]
package main

import (
	"flag"
	"fmt"
	"log"

	siwa "repro"
)

const goodPipeline = `
task producer is
begin
  loop 4 times
    filter.raw;
  end loop;
end;

task filter is
begin
  loop 4 times
    accept raw;
    consumer.cooked;
  end loop;
end;

task consumer is
begin
  loop 4 times
    accept cooked;
  end loop;
end;
`

const brokenPipeline = `
task producer is
begin
  loop 4 times
    filter.raw;
  end loop;
end;

task filter is
begin
  loop 4 times
    accept raw;
    consumer.cooked;
  end loop;
end;

task consumer is
begin
  loop 3 times
    accept cooked;
  end loop;
end;
`

func main() {
	broken := flag.Bool("broken", false, "drop one consumer accept (stall demo)")
	flag.Parse()
	src := goodPipeline
	if *broken {
		src = brokenPipeline
	}
	prog, err := siwa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := siwa.Analyze(prog, siwa.Options{
		Algorithm: siwa.AlgoRefinedPairs,
		Exact:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	switch {
	case !rep.Stall.StallFree():
		fmt.Println("\n=> the balance check caught the missing accept (Lemma 4)")
	case rep.DeadlockFree():
		fmt.Println("\n=> pipeline certified: no deadlock, counts balanced")
	}
}
