package siwa

// Benchmark harness: one benchmark per experiment row in DESIGN.md §3.
// Run with: go test -bench=. -benchmem
//
//	BenchmarkFigure*       — the per-figure analyses (F1..F5)
//	BenchmarkTheorem2      — Appendix A gadget construction + validation
//	BenchmarkRefinedScaling— T1: detector runtime vs program size
//	BenchmarkPrecision     — T2: spectrum cost on the precision workload
//	BenchmarkExactVsStatic — T3: exponential baseline vs polynomial static
//	BenchmarkUnrollGrowth  — T4: Lemma 1 transform cost vs nest depth
//	BenchmarkStallCounting — T5: O(|N|) balance analysis
//	BenchmarkExtensionLadder — T6: the precision/cost spectrum
import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/petri"
	"repro/internal/sat3"
	"repro/internal/sg"
	"repro/internal/stall"
	"repro/internal/waves"
	"repro/internal/workload"
)

func benchAnalyzer(b *testing.B, src string) *core.Analyzer {
	b.Helper()
	g, err := sg.FromProgram(MustParse(src))
	if err != nil {
		b.Fatal(err)
	}
	return core.NewAnalyzer(g)
}

// --- figures ---------------------------------------------------------------

func BenchmarkFigure1Naive(b *testing.B) {
	a := benchAnalyzer(b, exp.Figure1Class)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := a.Naive(); !v.MayDeadlock {
			b.Fatal("verdict changed")
		}
	}
}

func BenchmarkFigure1RefinedPairs(b *testing.B) {
	a := benchAnalyzer(b, exp.Figure1Class)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := a.RefinedPairs(); v.MayDeadlock {
			b.Fatal("verdict changed")
		}
	}
}

func BenchmarkFigure2StallExact(b *testing.B) {
	p := MustParse(exp.Figure2a)
	for i := 0; i < b.N; i++ {
		res, err := waves.ExploreProgram(p, waves.Options{})
		if err != nil || !res.Stall {
			b.Fatal("verdict changed")
		}
	}
}

func BenchmarkFigure2DeadlockRefined(b *testing.B) {
	a := benchAnalyzer(b, exp.Figure2b)
	for i := 0; i < b.N; i++ {
		if v := a.Refined(); !v.MayDeadlock {
			b.Fatal("verdict changed")
		}
	}
}

func BenchmarkFigure3Constraint4(b *testing.B) {
	a := benchAnalyzer(b, exp.Figure3)
	for i := 0; i < b.N; i++ {
		free, conclusive := a.Constraint4Certify(0)
		if !free || !conclusive {
			b.Fatal("verdict changed")
		}
	}
}

func BenchmarkFigure4CLGBuild(b *testing.B) {
	p := MustParse(exp.Figure4a)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := sg.FromProgram(p)
		if err != nil {
			b.Fatal(err)
		}
		a := core.NewAnalyzer(g)
		if v := a.Naive(); v.MayDeadlock {
			b.Fatal("verdict changed")
		}
	}
}

func BenchmarkFigure5MergeTransform(b *testing.B) {
	p := MustParse(exp.Figure5bc)
	for i := 0; i < b.N; i++ {
		m := stall.MergeBranches(p)
		if !stall.IsStraightLine(m) {
			b.Fatal("transform regressed")
		}
	}
}

// --- Appendix A -------------------------------------------------------------

func BenchmarkTheorem2(b *testing.B) {
	for _, size := range []struct{ v, c int }{{4, 2}, {5, 3}} {
		b.Run(fmt.Sprintf("vars=%d/clauses=%d", size.v, size.c), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := sat3.Random(rng, size.v, size.c)
			for i := 0; i < b.N; i++ {
				p, err := sat3.BuildTheorem2(f)
				if err != nil {
					b.Fatal(err)
				}
				g, err := sg.FromProgram(p)
				if err != nil {
					b.Fatal(err)
				}
				an := core.NewAnalyzer(g)
				if _, ok := sat3.Theorem2HasValidCycle(an, 60000); !ok {
					b.Fatal("truncated")
				}
			}
		})
	}
}

func BenchmarkTheorem3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := sat3.Random(rng, 4, 2)
	for i := 0; i < b.N; i++ {
		g, err := sat3.BuildTheorem3(f)
		if err != nil {
			b.Fatal(err)
		}
		an := core.NewAnalyzer(g)
		if _, ok := sat3.Theorem3HasValidCycle(an, 60000); !ok {
			b.Fatal("truncated")
		}
	}
}

// --- T1: runtime scaling ----------------------------------------------------

func BenchmarkRefinedScaling(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		p := workload.CrossRing(n, 2)
		g, err := sg.FromProgram(p)
		if err != nil {
			b.Fatal(err)
		}
		a := core.NewAnalyzer(g)
		b.Run(fmt.Sprintf("tasks=%d/nodes=%d", n, g.N()-2), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Refined()
			}
		})
	}
}

func BenchmarkNaiveScaling(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		p := workload.CrossRing(n, 2)
		g, err := sg.FromProgram(p)
		if err != nil {
			b.Fatal(err)
		}
		a := core.NewAnalyzer(g)
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Naive()
			}
		})
	}
}

// --- T2: precision workload --------------------------------------------------

func BenchmarkPrecision(b *testing.B) {
	// Cost of scoring one random program with the whole spectrum.
	rng := rand.New(rand.NewSource(3))
	progs := make([]*Program, 32)
	for i := range progs {
		progs[i] = workload.Random(rng, workload.DefaultConfig())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := progs[i%len(progs)]
		g, err := sg.FromProgram(p)
		if err != nil {
			b.Fatal(err)
		}
		a := core.NewAnalyzer(g)
		for _, algo := range exp.Algorithms {
			a.Run(algo)
		}
	}
}

// --- T3: exact exponential baseline vs polynomial static ---------------------

func BenchmarkExactVsStatic(b *testing.B) {
	for _, n := range []int{2, 4, 6} {
		p := workload.ForkFan(n, 2)
		b.Run(fmt.Sprintf("exact/pairs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := waves.ExploreProgram(p, waves.Options{MaxStates: 1 << 22})
				if err != nil || res.Truncated {
					b.Fatal("exploration failed")
				}
			}
		})
		b.Run(fmt.Sprintf("static/pairs=%d", n), func(b *testing.B) {
			g, err := sg.FromProgram(p)
			if err != nil {
				b.Fatal(err)
			}
			a := core.NewAnalyzer(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Refined()
			}
		})
	}
}

// --- T4: Lemma 1 unroll growth ------------------------------------------------

func BenchmarkUnrollGrowth(b *testing.B) {
	for _, d := range []int{1, 2, 4, 6} {
		p := workload.NestedLoops(d, 4)
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				u := cfg.Unroll(p)
				if cfg.HasLoops(u) {
					b.Fatal("unroll failed")
				}
			}
		})
	}
}

// --- T5: stall counting --------------------------------------------------------

func BenchmarkStallCounting(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		p := workload.Pipeline(4, n)
		b.Run(fmt.Sprintf("nodes=%d", p.CountRendezvous()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stall.CountNodes(p)
			}
		})
	}
}

func BenchmarkStallLinearizations(b *testing.B) {
	p := MustParse(exp.Figure5d)
	for i := 0; i < b.N; i++ {
		stall.CheckAllLinearizations(p)
	}
}

// --- T6: extension ladder -------------------------------------------------------

func BenchmarkExtensionLadder(b *testing.B) {
	g, err := sg.FromProgram(workload.Pipeline(4, 3))
	if err != nil {
		b.Fatal(err)
	}
	a := core.NewAnalyzer(g)
	for _, algo := range exp.Algorithms {
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Run(algo)
			}
		})
	}
	b.Run("refined+k-pairs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.RefinedKPairs(3, core.KPairsBudget{})
		}
	})
	b.Run("enumerate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Enumerate(1 << 16)
		}
	})
}

func BenchmarkEnumerateFixtures(b *testing.B) {
	for _, name := range []string{"figure1", "figure4c"} {
		src := exp.Figure1Class
		if name == "figure4c" {
			src = exp.Figure4c
		}
		a := benchAnalyzer(b, src)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := a.Enumerate(0)
				if v.MayDeadlock || !v.Conclusive {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

// --- T7: Petri-net baseline ---------------------------------------------------

func BenchmarkPetriReach(b *testing.B) {
	for _, n := range []int{2, 4, 6} {
		p := workload.ForkFan(n, 2)
		pb, err := petri.FromProgram(p, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pairs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := pb.Reach(petri.ReachOptions{MaxMarkings: 1 << 22})
				if res.Truncated || !res.Completed {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

func BenchmarkPetriInvariants(b *testing.B) {
	pb, err := petri.FromProgram(workload.Pipeline(4, 3), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		petri.PInvariants(pb.Net)
		petri.TInvariants(pb.Net)
	}
}

// --- pipeline stages (component costs) -------------------------------------------

func BenchmarkParse(b *testing.B) {
	src := workload.CrossRing(16, 4).String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncGraphBuild(b *testing.B) {
	p := workload.CrossRing(16, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sg.FromProgram(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderingFacts(b *testing.B) {
	g, err := sg.FromProgram(workload.CrossRing(8, 2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.NewAnalyzer(g)
	}
}

func BenchmarkEndToEndAnalyze(b *testing.B) {
	p := workload.Pipeline(6, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(p, Options{Algorithm: AlgoRefinedPairs}); err != nil {
			b.Fatal(err)
		}
	}
}
