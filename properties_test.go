package siwa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/waves"
	"repro/internal/workload"
)

// End-to-end safety through the full Lemma 1 pipeline: for random programs
// *with loops*, if the exact explorer (with bounded loops expanded
// precisely) can reach a deadlock, every detector run on the twice-
// unrolled program must report it. This exercises parse -> unroll -> sync
// graph -> CLG -> detectors as one unit.
func TestQuickLoopPipelineSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(2)
		cfg.BranchProb = 0.2
		cfg.LoopProb = 0.3
		p := workload.Random(rng, cfg)
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || exact.Truncated || !exact.Deadlock {
			return true // no ground-truth deadlock to miss
		}
		for _, algo := range []Algorithm{
			AlgoNaive, AlgoRefined, AlgoRefinedPairs,
			AlgoRefinedHeadTail, AlgoRefinedHeadTailPairs,
		} {
			rep, err := Analyze(p, Options{Algorithm: algo})
			if err != nil {
				return false
			}
			if !rep.Deadlock.MayDeadlock {
				t.Logf("UNSOUND through unroll pipeline: %v missed deadlock in\n%s", algo, p)
				return false
			}
		}
		// The enumeration detector must stay safe through the pipeline.
		rep, err := Analyze(p, Options{Enumerate: true, EnumerateLimit: 1 << 16})
		if err != nil {
			return false
		}
		if rep.Enumerated.Conclusive && !rep.Enumerated.MayDeadlock {
			t.Logf("UNSOUND through unroll pipeline: enumeration missed deadlock in\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// FIFO-refined detection stays safe end to end on loop-free programs.
func TestQuickFIFOSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		cfg.BranchProb = 0.25
		p := workload.Random(rng, cfg)
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || exact.Truncated || !exact.Deadlock {
			return true
		}
		for _, algo := range []Algorithm{AlgoNaive, AlgoRefined, AlgoRefinedPairs} {
			rep, err := Analyze(p, Options{Algorithm: algo, FIFO: true})
			if err != nil {
				return false
			}
			if !rep.Deadlock.MayDeadlock {
				t.Logf("UNSOUND with FIFO: %v missed deadlock in\n%s", algo, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Safety of the constraint-4 certifier end to end: it may never certify a
// program whose exact exploration deadlocks.
func TestQuickConstraint4Safety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(2)
		p := workload.Random(rng, cfg)
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || exact.Truncated || !exact.Deadlock {
			return true
		}
		rep, err := Analyze(p, Options{Constraint4: true})
		if err != nil {
			return false
		}
		if rep.Constraint4Conclusive && rep.Constraint4Free {
			t.Logf("UNSOUND constraint-4 certificate for\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Stall-analysis safety end to end: on loop-free programs, when the
// balance check says "balanced in every linearization", the exact
// explorer must not find a pure stall (stalls without deadlock).
func TestQuickStallBalanceSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		cfg.BranchProb = 0.35
		p := workload.Random(rng, cfg)
		rep, err := Analyze(p, Options{})
		if err != nil {
			return false
		}
		if !rep.Stall.StallFree() {
			return true // flagged; nothing to check
		}
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || exact.Truncated {
			return true
		}
		if exact.Stall && !exact.Deadlock {
			t.Logf("balanced program stalled without deadlock:\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: analyzing the same program twice yields identical verdicts
// and witness sets (the detectors are pure functions of the sync graph).
func TestQuickAnalysisDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Random(rng, workload.DefaultConfig())
		r1, err1 := Analyze(p, Options{AllAlgorithms: true})
		r2, err2 := Analyze(p, Options{AllAlgorithms: true})
		if err1 != nil || err2 != nil {
			return false
		}
		if len(r1.Spectrum) != len(r2.Spectrum) {
			return false
		}
		for i := range r1.Spectrum {
			a, b := r1.Spectrum[i], r2.Spectrum[i]
			if a.MayDeadlock != b.MayDeadlock || len(a.Witnesses) != len(b.Witnesses) ||
				a.Hypotheses != b.Hypotheses || a.SCCRuns != b.SCCRuns {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
