package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// statusRecorder captures the response status for the trace exporter's
// retention decision.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// withTracing opens the gateway's root span per API request — this is
// where fleet traces are usually born, so the head-sampling decision is
// made here and propagated to the replicas via the traceparent flags. An
// inbound traceparent (a client already tracing) is continued instead.
// X-Trace-Id is echoed, and the finished tree goes to the debug ring.
func (g *Gateway) withTracing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		tracer := obs.NewTracer()
		var sampled bool
		if tid, parent, remoteSampled, ok := obs.ExtractTraceparent(r.Header); ok {
			tracer.SetRemote(tid, parent)
			sampled = remoteSampled
		} else {
			sampled = g.exporter.SampleNext()
		}
		root := tracer.Start("gateway " + r.URL.Path)
		th := &obs.TraceHandle{Tracer: tracer, Root: root, Sampled: sampled}
		w.Header().Set("X-Trace-Id", root.TraceID.String())
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			root.End()
			g.exporter.Export(root, sampled, sr.status)
			g.logSlowRequest(r, root, w.Header().Get("X-Request-Id"))
		}()
		next.ServeHTTP(sr, r.WithContext(obs.ContextWithTrace(r.Context(), th)))
	})
}

// logSlowRequest emits the gateway's slow-request WARN line: trace id,
// backend, and the route/retry/chunk breakdown of where the time went.
func (g *Gateway) logSlowRequest(r *http.Request, root *obs.Span, requestID string) {
	slow := g.exporter.SlowThreshold()
	if slow <= 0 || root == nil || root.Dur < slow || g.cfg.Logger == nil {
		return
	}
	retries := 0
	for _, c := range root.Children {
		if c.Name == "retry" {
			retries++
		}
	}
	attrs := []slog.Attr{
		slog.String("trace", root.TraceID.String()),
		slog.String("id", requestID),
		slog.String("endpoint", r.URL.Path),
		slog.Float64("ms", float64(root.Dur)/float64(time.Millisecond)),
		slog.Int("retries", retries),
	}
	if backend := root.Attr("backend"); backend != "" {
		attrs = append(attrs, slog.String("backend", backend))
	}
	if breakdown := root.ChildSummary(); breakdown != "" {
		attrs = append(attrs, slog.String("spans", breakdown))
	}
	g.cfg.Logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
}

// handleTraceGet serves GET /debug/traces/{id} with cross-process
// stitching: the gateway's own retained records are returned with each
// replica's records for the same trace grafted under the gateway span
// that parented them (matched by parentSpanId), so one response shows
// the full request tree — gateway root, routing spans, and the replica's
// per-stage pipeline spans as descendants.
func (g *Gateway) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	recs := g.exporter.Get(id) // deep copies: grafting never mutates the ring
	if len(recs) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: service.ErrorBody{
			Code:    service.CodeNotFound,
			Message: fmt.Sprintf("no retained trace %q", id),
		}})
		return
	}
	// Index every span of our own records by span id, so replica roots can
	// find the gateway span that parented them.
	byID := make(map[string]*obs.SpanJSON)
	for _, rec := range recs {
		rec.Root.Walk(func(sp *obs.SpanJSON) {
			if sp.SpanID != "" {
				byID[sp.SpanID] = sp
			}
		})
	}
	for _, remote := range g.fetchBackendTraces(r.Context(), id) {
		root := remote.Root
		if root == nil {
			continue
		}
		if parent, ok := byID[root.ParentSpanID]; ok && root.ParentSpanID != "" {
			parent.Children = append(parent.Children, root)
			continue
		}
		// No matching gateway span (e.g. the parent request was sampled
		// away here but retained on the replica): keep the record whole.
		recs = append(recs, remote)
	}
	writeJSON(w, http.StatusOK, obs.TraceLookup{TraceID: id, Records: recs})
}

// fetchBackendTraces collects every replica's retained records for one
// trace id. Debug traffic: short per-backend timeout, down backends are
// skipped, failures are ignored, and the breakers are never fed.
func (g *Gateway) fetchBackendTraces(ctx context.Context, id string) []*obs.ExportedTrace {
	var (
		mu  sync.Mutex
		out []*obs.ExportedTrace
		wg  sync.WaitGroup
	)
	for _, b := range g.backends {
		if !b.up.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(cctx, http.MethodGet, b.name+"/debug/traces/"+id, nil)
			if err != nil {
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var lookup obs.TraceLookup
			if err := json.NewDecoder(resp.Body).Decode(&lookup); err != nil {
				return
			}
			mu.Lock()
			out = append(out, lookup.Records...)
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	obs.SortRecordsByStart(out)
	return out
}
