package cluster

// metricFamilies is the gateway's metric pre-registration table: every
// family the gateway exposes, mapped to its label key ("" = unlabeled).
// siwad-lint's metricreg analyzer checks the exposition literals and
// WriteProm calls in metrics.go against it (and the replica-name lookups
// in fleet.go against the service package's table — the tables are
// unioned across the run), and TestGatewayMetricFamiliesRegistered
// cross-checks the rendered exposition at runtime.
var metricFamilies = map[string]string{
	"siwa_gateway_requests_total":               "endpoint",
	"siwa_gateway_singleflight_dedup_total":     "",
	"siwa_gateway_retries_total":                "",
	"siwa_gateway_unavailable_total":            "",
	"siwa_gateway_panics_total":                 "",
	"siwa_gateway_hedges_total":                 "",
	"siwa_gateway_hedge_wins_total":             "",
	"siwa_gateway_retry_budget_exhausted_total": "",
	"siwa_gateway_retry_budget_tokens":          "scope",
	"siwa_gateway_batch_items_total":            "outcome",
	"siwa_gateway_backend_requests_total":       "backend",
	"siwa_gateway_backend_failures_total":       "backend",
	"siwa_gateway_backend_up":                   "backend",
	"siwa_gateway_breaker_state":                "backend",
	"siwa_gateway_ring_ownership_millionths":    "backend",
	"siwa_gateway_backend_request_seconds":      "backend",
}
