package cluster

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// TestRetryBudgetTokenBucket covers the bucket arithmetic: the burst is
// spendable immediately, partial tokens never fund a retry, earning is
// fractional and capped at the limit, and refunds cannot overflow.
func TestRetryBudgetTokenBucket(t *testing.T) {
	rb := newRetryBudget(2, 0.5)
	if !rb.TrySpend() || !rb.TrySpend() {
		t.Fatal("bucket starts at burst; the first two spends must succeed")
	}
	if rb.TrySpend() {
		t.Fatal("empty bucket funded a retry")
	}
	rb.Earn() // 0.5 tokens: not enough
	if rb.TrySpend() {
		t.Fatal("a partial token funded a retry")
	}
	rb.Earn() // 1.0
	if !rb.TrySpend() {
		t.Fatal("two successes at ratio 0.5 should fund one retry")
	}
	for i := 0; i < 100; i++ {
		rb.Earn()
	}
	if got := rb.Tokens(); got != 2 {
		t.Fatalf("tokens=%g after heavy earning, want the cap 2", got)
	}
	rb.Refund()
	if got := rb.Tokens(); got != 2 {
		t.Fatalf("refund overflowed the cap: tokens=%g", got)
	}
}

// TestRetryBudgetLowWatermark pins the hedging gate: Low trips strictly
// below half capacity, so hedges stop before genuine retries run dry.
func TestRetryBudgetLowWatermark(t *testing.T) {
	rb := newRetryBudget(4, 0.1)
	if rb.Low() {
		t.Fatal("full bucket reported low")
	}
	rb.TrySpend()
	rb.TrySpend()
	if rb.Low() {
		t.Fatal("bucket at exactly half capacity reported low")
	}
	rb.TrySpend()
	if !rb.Low() {
		t.Fatal("bucket below half capacity not reported low")
	}
}

// TestRetryBudgetNilDisabled pins the disabled object: a nil bucket
// always funds spends and never reports low.
func TestRetryBudgetNilDisabled(t *testing.T) {
	var rb *retryBudget
	rb.Earn()
	rb.Refund()
	if !rb.TrySpend() {
		t.Fatal("nil budget must always fund retries")
	}
	if rb.Low() {
		t.Fatal("nil budget must never report low")
	}
	if got := rb.Tokens(); got != 0 {
		t.Fatalf("nil budget tokens=%g", got)
	}
}

// TestGatewayRetryBudgetExhaustion drives a permanently shedding replica
// with a small retry budget: exactly burst retries happen before the
// bucket drains, the suppression is recorded in its own metric and the
// X-Retry-Budget response header, and the client still sees the
// upstream's own shed body (taxonomy code "shed") — never a gateway
// rewrap to "unavailable", because the replica answered, it just pushed
// back.
func TestGatewayRetryBudgetExhaustion(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	f.wraps[0].shed = 1000
	g, gts := newTestGateway(t, f.urls, Config{
		MaxRetries:       8,
		RetryBackoff:     time.Millisecond,
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 2,
	})
	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(4).String()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if eb := decodeError(t, data); eb.Code != service.CodeShed {
		t.Fatalf("code=%q, want %q (upstream body relayed, not rewrapped)", eb.Code, service.CodeShed)
	}
	if got := resp.Header.Get("X-Retry-Budget"); got != "exhausted" {
		t.Fatalf("X-Retry-Budget=%q, want %q", got, "exhausted")
	}
	// MaxRetries allowed 8 extra attempts, but the budget's burst of 2 is
	// the binding cap: amplification stops when the bucket drains.
	if got := g.Metrics().Retries.Load(); got != 2 {
		t.Fatalf("retries=%d, want exactly the burst of 2", got)
	}
	if got := g.Metrics().RetryBudgetExhausted.Load(); got != 1 {
		t.Fatalf("retry_budget_exhausted=%d, want 1", got)
	}
	if got := f.wraps[0].analyzeCalls(); got != 3 {
		t.Fatalf("replica saw %d attempts, want 3 (initial + 2 budgeted retries)", got)
	}

	code, text := getBody(t, gts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status=%d", code)
	}
	if got := promCounter(t, text, "siwa_gateway_retry_budget_exhausted_total"); got != 1 {
		t.Fatalf("siwa_gateway_retry_budget_exhausted_total=%d, want 1", got)
	}
	for _, want := range []string{
		`siwa_gateway_retry_budget_tokens{scope="global"} 0`,
		"siwa_gateway_hedges_total",
		"siwa_gateway_hedge_wins_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestGatewayRetrySucceedsWithinBudget is the control: with the budget
// on and tokens available, the ordinary shed-then-recover retry still
// works and no exhaustion is recorded.
func TestGatewayRetrySucceedsWithinBudget(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	f.wraps[0].shed = 1
	g, gts := newTestGateway(t, f.urls, Config{
		MaxRetries:       2,
		RetryBackoff:     time.Millisecond,
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 10,
	})
	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(5).String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if got := g.Metrics().Retries.Load(); got != 1 {
		t.Fatalf("retries=%d, want 1", got)
	}
	if got := g.Metrics().RetryBudgetExhausted.Load(); got != 0 {
		t.Fatalf("retry_budget_exhausted=%d, want 0", got)
	}
	if resp.Header.Get("X-Retry-Budget") != "" {
		t.Fatal("successful response wrongly carries X-Retry-Budget")
	}
}

// TestSleepRetryRespectsDeadlineBudget pins the budget-aware backoff: a
// request whose remaining budget cannot cover the wait plus another
// attempt refuses to sleep at all, and an uncapped upstream Retry-After
// hint cannot hold the connection past the budget either.
func TestSleepRetryRespectsDeadlineBudget(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	g, _ := newTestGateway(t, f.urls, Config{RetryBackoff: time.Millisecond})

	ctx := withBudget(context.Background(), time.Now().Add(2*time.Millisecond))
	start := time.Now()
	if g.sleepRetry(ctx, 0, "1") { // Retry-After: 1s >> 2ms of budget
		t.Fatal("sleepRetry agreed to wait out a backoff the deadline will kill")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("budget-refused sleep still took %v", elapsed)
	}

	// Without a budget in the context the old contract holds: the sleep
	// happens (full jitter means any delay in [0, backoff<<attempt]).
	if !g.sleepRetry(context.Background(), 0, "") {
		t.Fatal("sleepRetry failed with no deadline pressure")
	}
}
