package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/service"
	"repro/internal/workload"
)

// BenchmarkGatewayProxyOverhead measures what the gateway adds on the hot
// path: a cache-hit analyze against one replica, requested directly over
// HTTP versus through the gateway's handler (invoked in process, so both
// variants contain exactly one real network hop and the delta is gateway
// software — routing, single-flight, relay).
func BenchmarkGatewayProxyOverhead(b *testing.B) {
	s := service.New(service.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g, err := New(Config{Backends: []string{ts.URL}})
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(service.AnalyzeRequest{Source: workload.Ring(8).String()})
	if err != nil {
		b.Fatal(err)
	}
	// Seed the replica cache so every measured request is a pure hit.
	warm, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		b.Fatalf("warmup status=%d", warm.StatusCode)
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status=%d", resp.StatusCode)
			}
		}
	})
	b.Run("gateway", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			g.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status=%d body=%s", rec.Code, rec.Body.String())
			}
		}
	})
	// The untraced variant isolates the tracing middleware + exporter's
	// marginal cost on the proxy path. Both variants pay a real network
	// hop, so run-to-run variance dominates small deltas here; the tight
	// <2% exporter budget is enforced by the in-process service-tier pair
	// (BenchmarkServiceCacheHit vs BenchmarkServiceCacheHitUntraced).
	gu, err := New(Config{Backends: []string{ts.URL}, TraceSample: -1, SlowThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gateway-untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			gu.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status=%d body=%s", rec.Code, rec.Body.String())
			}
		}
	})
}
