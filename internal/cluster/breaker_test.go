package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Fail()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures: state=%v", i+1, got)
		}
	}
	b.Fail()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures: state=%v", got)
	}
	if b.Ready() || b.Acquire() {
		t.Fatal("open breaker inside cooldown must refuse traffic")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Fail()
	b.Fail()
	b.Success()
	b.Fail()
	b.Fail()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Fail()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state=%v", got)
	}
	clk.advance(time.Second)
	// Cooldown elapsed: Ready is true but does not consume the slot.
	if !b.Ready() || !b.Ready() {
		t.Fatal("Ready must be repeatable after the cooldown")
	}
	if !b.Acquire() {
		t.Fatal("first Acquire after cooldown must grant the probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", got)
	}
	if b.Ready() || b.Acquire() {
		t.Fatal("half-open breaker must admit exactly one probe")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("successful probe should close: %v", got)
	}
	if !b.Acquire() {
		t.Fatal("closed breaker must admit traffic")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.Fail()
	b.Fail()
	clk.advance(time.Second)
	if !b.Acquire() {
		t.Fatal("probe not granted")
	}
	b.Fail() // one failed probe, not threshold-many, re-opens immediately
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state=%v, want open", got)
	}
	if b.Acquire() {
		t.Fatal("re-opened breaker must wait out a fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.Acquire() {
		t.Fatal("second cooldown must grant another probe")
	}
}

func TestBreakerReleaseReturnsProbeSlot(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Fail()
	clk.advance(time.Second)
	if !b.Acquire() {
		t.Fatal("probe not granted")
	}
	// The probe was abandoned (e.g. client cancel mid-send) before the
	// backend's reachability could be judged: the slot must come back.
	b.Release()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state=%v, want open after Release", got)
	}
	if !b.Acquire() {
		t.Fatal("Release must allow the next caller to re-probe immediately")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open on re-probe", got)
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state=%v, want closed after successful re-probe", got)
	}
}

func TestBreakerReleaseClosedIsNoop(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	if !b.Acquire() {
		t.Fatal("closed breaker must admit traffic")
	}
	b.Release()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state=%v, want closed", got)
	}
	b.Fail()
	b.Fail()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("Release must not touch the failure count; state=%v", got)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "?",
	} {
		if got := state.String(); got != want {
			t.Errorf("State(%d).String()=%q, want %q", int(state), got, want)
		}
	}
}

func TestBreakerMinimumThreshold(t *testing.T) {
	b, _ := newTestBreaker(0, time.Second)
	b.Fail()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("threshold<1 must be raised to 1; state=%v", got)
	}
}
