package cluster

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive transport failures are
	// counted and trip the breaker at the threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend is presumed dead; all traffic is refused
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe request
	// is in flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// Breaker is a per-backend circuit breaker over transport-level outcomes.
// Only failures to reach the backend at all (dial/read errors) count as
// failures — an HTTP error status proves the replica is alive, and e.g. a
// 503 analysis timeout says something about the program, not the replica.
// Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	state    BreakerState
	failures int
	until    time.Time // when open: earliest half-open probe time
}

// NewBreaker trips to open after threshold consecutive failures
// (threshold < 1 is raised to 1) and allows a half-open probe after each
// cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State reports the current state (open flips to reflect an elapsed
// cooldown only when a caller acquires the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Ready reports whether a request could be sent right now, without
// consuming the half-open probe slot: true when closed, or when open with
// the cooldown elapsed. Routing decisions that may not lead to an actual
// send (e.g. batch sharding) use Ready; the send itself uses Acquire.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return !b.now().Before(b.until)
	}
	return false // half-open: the probe slot is taken
}

// Acquire claims the right to send one request. In the open state with an
// elapsed cooldown it transitions to half-open and grants exactly one
// caller the probe; every Acquire must be resolved by Success, Fail, or
// Release — otherwise a half-open breaker is stuck forever.
func (b *Breaker) Acquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	}
	return false
}

// Release returns an acquired slot without judging the backend: the send
// was abandoned before reachability could be observed (client cancelled
// mid-flight, or the request was never constructed). A half-open probe
// reverts to open with an already-elapsed cooldown, so the slot is not
// leaked and the next caller may re-probe immediately; in the closed
// state Acquire consumed nothing and Release is a no-op.
func (b *Breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.until = b.now()
	}
}

// Success records a reachable backend: half-open probes close the
// breaker, and any success resets the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
}

// Fail records a transport failure: a failed half-open probe re-opens
// immediately; in the closed state the breaker opens once threshold
// consecutive failures accumulate.
func (b *Breaker) Fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.state = BreakerOpen
		b.failures = 0
		b.until = b.now().Add(b.cooldown)
	}
}
