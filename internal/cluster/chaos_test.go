package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestGatewayChaosKillMidBatch is the chaos acceptance test: one of three
// replicas dies mid-batch (every connection aborts, like a crashed
// process). The batch must still come back 200 and in input order; ONLY
// the items that were in flight to the corpse carry the taxonomy code
// "unavailable"; the breaker opens and subsequent chunks — and follow-up
// singles — reroute to ring successors without touching the dead replica.
func TestGatewayChaosKillMidBatch(t *testing.T) {
	const n, chunk = 50, 4
	f := newFleet(t, 3, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{
		BatchChunk:       chunk,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // stays open for the rest of the test
		RetryBackoff:     time.Millisecond,
	})

	progs := make([]service.BatchProgram, n)
	ownerOf := make([]int, n)
	shard := make([]int, 3)
	for i := range progs {
		src := workload.Ring(i + 2).String()
		progs[i] = service.BatchProgram{ID: fmt.Sprintf("p%d", i), Source: src}
		ownerOf[i] = g.Ring().Candidates(DigestOf(src))[0]
		shard[ownerOf[i]]++
	}
	// Kill the replica owning the most items, after it has served one
	// sub-batch: its second chunk is "in flight to a dead replica".
	killed := 0
	for i, c := range shard {
		if c > shard[killed] {
			killed = i
		}
	}
	if shard[killed] < 2*chunk+1 {
		t.Fatalf("backend %d owns only %d of %d items; widen the workload", killed, shard[killed], n)
	}
	f.wraps[killed].mu.Lock()
	f.wraps[killed].killAfter = 1
	f.wraps[killed].mu.Unlock()

	resp, data := postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{Programs: progs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d body=%s (a dying replica must not fail the batch)", resp.StatusCode, data)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	var br service.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != n {
		t.Fatalf("results=%d, want %d", len(br.Results), n)
	}
	var unavailable []int
	for i, r := range br.Results {
		if r.ID != fmt.Sprintf("p%d", i) {
			t.Fatalf("result %d has id %q: order not preserved under chaos", i, r.ID)
		}
		switch r.ErrorCode {
		case "":
			if len(r.Report) == 0 {
				t.Fatalf("item %d: no error but no report", i)
			}
		case service.CodeUnavailable:
			unavailable = append(unavailable, i)
		default:
			t.Fatalf("item %d: code=%q, want %q or success", i, r.ErrorCode, service.CodeUnavailable)
		}
	}
	// Exactly one full chunk was in flight when the kill fired; everything
	// sharded to the corpse afterwards rerouted via the open breaker.
	if len(unavailable) != chunk {
		t.Fatalf("unavailable items=%v (%d), want exactly the in-flight chunk of %d",
			unavailable, len(unavailable), chunk)
	}
	for _, i := range unavailable {
		if ownerOf[i] != killed {
			t.Fatalf("item %d marked unavailable but belongs to live backend %d", i, ownerOf[i])
		}
	}
	if got := g.BreakerState(killed); got != BreakerOpen {
		t.Fatalf("killed backend's breaker is %v, want open", got)
	}
	if got := g.Metrics().ItemsUnavailable.Load(); got != uint64(chunk) {
		t.Fatalf("items_unavailable metric=%d, want %d", got, chunk)
	}
	if ok := g.Metrics().ItemsOK.Load(); ok != uint64(n-chunk) {
		t.Fatalf("items_ok metric=%d, want %d", ok, n-chunk)
	}

	// Follow-up single for a digest the corpse owns: rerouted, no new
	// traffic reaches the dead replica.
	deadCalls := f.wraps[killed].analyzeCalls()
	src := ownedBy(t, g, killed)
	resp2, data2 := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up analyze: status=%d body=%s", resp2.StatusCode, data2)
	}
	if got := f.wraps[killed].analyzeCalls(); got != deadCalls {
		t.Fatalf("dead replica received %d new calls", got-deadCalls)
	}

	// The whole ordeal is one trace: the retained record shows the chunk
	// fan-out, the kill (a chunk span with an error attr), and the
	// re-scatter of the items that rerouted to ring successors.
	lookup := fetchTrace(t, gts.URL, traceID)
	root := lookup.Records[0].Root
	var chunkSpans, errChunks, rescatters int
	root.Walk(func(sp *obs.SpanJSON) {
		switch sp.Name {
		case "batch-chunk":
			chunkSpans++
			if sp.Attrs["error"] != "" {
				errChunks++
			}
		case "re-scatter":
			rescatters++
		}
	})
	if chunkSpans == 0 || errChunks == 0 {
		t.Fatalf("trace shows %d chunk spans, %d failed: want the dead chunk recorded (%v)",
			chunkSpans, errChunks, spanNames(lookup))
	}
	if rescatters == 0 {
		t.Fatalf("no re-scatter span in the chaos trace: %v", spanNames(lookup))
	}

	// The active probe also notices the corpse.
	g.CheckNow(context.Background())
	if g.BackendUp(killed) {
		t.Fatal("killed replica still marked up after probe")
	}
	if g.BackendUp((killed+1)%3) != true || g.BackendUp((killed+2)%3) != true {
		t.Fatal("survivors wrongly marked down")
	}
}

// TestGatewayForwardFaultHook arms the gateway.forward injection point:
// an injected transport error must surface as "unavailable", feed the
// breaker's failure count, and clear cleanly once the fault is removed.
func TestGatewayForwardFaultHook(t *testing.T) {
	defer fault.Reset()
	f := newFleet(t, 1, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{BreakerThreshold: 3})

	fault.Set("gateway.forward", fault.Mode{Kind: fault.KindError})
	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(3).String()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if eb := decodeError(t, data); eb.Code != service.CodeUnavailable {
		t.Fatalf("code=%q, want %q", eb.Code, service.CodeUnavailable)
	}
	if fault.Hits("gateway.forward") == 0 {
		t.Fatal("fault point never fired")
	}
	if got := g.Metrics().backend(f.urls[0]).Failures.Load(); got != 1 {
		t.Fatalf("backend failures=%d, want 1", got)
	}
	if got := g.BreakerState(0); got != BreakerClosed {
		t.Fatalf("one failure under threshold 3 opened the breaker: %v", got)
	}

	fault.Reset()
	resp2, data2 := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(3).String()})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-fault analyze: status=%d body=%s", resp2.StatusCode, data2)
	}
}

// TestGatewayShedReroutesAcrossFleet makes a digest's owner shed: the
// retry must land on the next ring candidate and succeed, with the shed
// never surfacing to the client.
func TestGatewayShedReroutesAcrossFleet(t *testing.T) {
	f := newFleet(t, 3, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{MaxRetries: 2, RetryBackoff: time.Millisecond})
	const owner = 0
	src := ownedBy(t, g, owner)
	f.wraps[owner].mu.Lock()
	f.wraps[owner].shed = 1000 // sheds for the whole test
	f.wraps[owner].mu.Unlock()

	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s (retry should have rerouted)", resp.StatusCode, data)
	}
	if got := g.Metrics().Retries.Load(); got == 0 {
		t.Fatal("no retry recorded")
	}
	// Shedding is an HTTP answer, not a transport failure: the breaker
	// must stay closed and the replica must stay "up".
	if got := g.BreakerState(owner); got != BreakerClosed {
		t.Fatalf("shedding opened the breaker: %v", got)
	}
	g.CheckNow(context.Background())
	if !g.BackendUp(owner) {
		t.Fatal("shedding replica marked down by probe")
	}
}
