package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// marshalBatchRequest is a seam for tests: sub-batch marshalling cannot
// fail through the public API (every wire field is a plain type), so the
// regression test for the marshal-error cleanup path swaps it out.
var marshalBatchRequest = json.Marshal

// batchItem is one program riding through the scatter-gather machinery,
// pinned to its slot in the client's request so the merged response
// preserves input order no matter how the fleet reshuffles the work.
type batchItem struct {
	idx    int // position in the inbound request (and the results slice)
	prog   service.BatchProgram
	digest Digest
}

// batchMeta is the batch-level envelope replicated onto every upstream
// sub-batch. deadline is the whole batch's absolute deadline budget: each
// sub-batch carries the time REMAINING when it is sent (not the client's
// original timeoutMs — a chunk re-scattered after a slow first pass must
// not grant its new replica the full budget all over again). A zero
// deadline (negative timeoutMs, left for the replica to reject) relays
// timeoutMs verbatim.
type batchMeta struct {
	options   *service.WireOptions
	timeoutMs int64
	deadline  time.Time
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	g.metrics.RequestsBatch.Add(1)
	start := time.Now()
	body, err := g.readBody(w, r)
	if err != nil {
		return
	}
	var req service.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			"invalid request body: %v", err)
		return
	}
	if len(req.Programs) == 0 {
		g.writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "empty batch")
		return
	}
	if len(req.Programs) > g.cfg.MaxBatch {
		g.writeError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			"batch of %d exceeds limit %d", len(req.Programs), g.cfg.MaxBatch)
		return
	}
	items := make([]batchItem, len(req.Programs))
	for i, p := range req.Programs {
		items[i] = batchItem{idx: i, prog: p, digest: DigestOf(p.Source)}
	}
	results := make([]service.BatchResult, len(req.Programs))
	meta := batchMeta{options: req.Options, timeoutMs: req.TimeoutMs}
	rctx := r.Context()
	if req.TimeoutMs >= 0 {
		d := g.cfg.budgetFor(req.TimeoutMs)
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(rctx, d)
		defer cancel()
		meta.deadline = time.Now().Add(d)
		rctx = withBudget(rctx, meta.deadline)
	}
	g.scatter(rctx, meta, items, results, 0)
	var ok, failed, unavailable int
	for i := range results {
		switch results[i].ErrorCode {
		case "":
			ok++
			g.metrics.ItemsOK.Add(1)
		case service.CodeUnavailable:
			unavailable++
			g.metrics.ItemsUnavailable.Add(1)
		default:
			failed++
			g.metrics.ItemsError.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, service.BatchResponse{
		Results:   results,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
	g.logRequest(r, "batch", http.StatusOK, start,
		slog.Int("programs", len(results)),
		slog.Int("ok", ok),
		slog.Int("failed", failed),
		slog.Int("unavailable", unavailable))
}

// scatter shards items across the fleet by digest and runs every shard
// concurrently, each shard streaming to its owner in BatchChunk-sized
// sub-batches. pass counts re-sharding rounds: when a shard's owner
// becomes ineligible mid-stream (breaker opened, probe marked it down),
// the remaining items re-enter scatter and land on each digest's next
// ring candidate. The pass budget (one per backend) guarantees
// termination when the whole fleet is dying; items that exhaust it come
// back "unavailable". Every item's slot in results is written exactly
// once, and no two writers share a slot, so the merge is lock-free.
func (g *Gateway) scatter(ctx context.Context, meta batchMeta, items []batchItem, results []service.BatchResult, pass int) {
	if pass > 0 {
		// Mark the re-sharding round in the trace: the chaos case "replica
		// died mid-batch" shows up as a re-scatter span whose chunk spans
		// target the items' next ring candidates. StartChild is safe from
		// this shard goroutine; the span's own fields stay goroutine-local.
		sp := obs.TraceFromContext(ctx).RootSpan().StartChild("re-scatter")
		sp.Set("items", int64(len(items)))
		sp.Set("pass", int64(pass))
		defer sp.End()
	}
	if pass > len(g.backends) {
		for _, it := range items {
			results[it.idx] = unavailableResult(it, errNoBackend)
			g.metrics.Unavailable.Add(1)
		}
		return
	}
	shards := make(map[int][]batchItem)
	for _, it := range items {
		owner := -1
		for _, ci := range g.ring.Candidates(it.digest) {
			if g.backends[ci].eligible() {
				owner = ci
				break
			}
		}
		if owner < 0 {
			results[it.idx] = unavailableResult(it, errNoBackend)
			g.metrics.Unavailable.Add(1)
			continue
		}
		shards[owner] = append(shards[owner], it)
	}
	var wg sync.WaitGroup
	for ci, shard := range shards {
		wg.Add(1)
		go func(b *backend, shard []batchItem) {
			defer wg.Done()
			for off := 0; off < len(shard); off += g.cfg.BatchChunk {
				end := off + g.cfg.BatchChunk
				if end > len(shard) {
					end = len(shard)
				}
				chunk := shard[off:end]
				if ctx.Err() != nil {
					for _, it := range chunk {
						results[it.idx] = service.BatchResult{
							ID:        it.prog.ID,
							Error:     fmt.Sprintf("batch aborted: %v", ctx.Err()),
							ErrorCode: service.CodeTimeout,
						}
					}
					continue
				}
				if !b.up.Load() || !b.breaker.Acquire() {
					// The owner died between chunks: re-shard everything
					// not yet sent, including this chunk. Each item moves
					// to its own next ring candidate.
					g.scatter(ctx, meta, shard[off:], results, pass+1)
					return
				}
				g.sendChunk(ctx, b, meta, chunk, results, pass)
			}
		}(g.backends[ci], shard)
	}
	wg.Wait()
}

// sendChunk forwards one sub-batch to its owner and merges the replica's
// results back into the client's slots. Transport failure marks exactly
// this chunk's items "unavailable" — they were in flight to a dead
// replica — and feeds the breaker so later chunks reroute. A whole-chunk
// 429/503 (the replica is shedding) is retried via re-scatter after
// honoring Retry-After; other upstream error bodies are propagated into
// the affected items verbatim, never rewrapped.
func (g *Gateway) sendChunk(ctx context.Context, b *backend, meta batchMeta, chunk []batchItem, results []service.BatchResult, pass int) {
	progs := make([]service.BatchProgram, len(chunk))
	for i, it := range chunk {
		progs[i] = it.prog
	}
	// Decrement the deadline by time already elapsed: a sub-batch sent (or
	// re-scattered) late in the budget carries only what is left, never
	// the caller's original timeoutMs verbatim. Floor of 1ms: 0 would mean
	// "use the replica default" on the wire.
	timeoutMs := meta.timeoutMs
	if !meta.deadline.IsZero() {
		rem := time.Until(meta.deadline)
		if rem < time.Millisecond {
			rem = time.Millisecond
		}
		timeoutMs = int64(rem / time.Millisecond)
	}
	body, err := marshalBatchRequest(service.BatchRequest{
		Programs:  progs,
		Options:   meta.options,
		TimeoutMs: timeoutMs,
	})
	if err != nil {
		// scatter acquired the probe slot for this chunk and send() is
		// what resolves it on every path; bailing out before send must
		// release the slot itself, or a half-open breaker stays stuck
		// forever with no probe ever reaching the backend.
		b.breaker.Release()
		for _, it := range chunk {
			results[it.idx] = service.BatchResult{
				ID:        it.prog.ID,
				Error:     fmt.Sprintf("marshal sub-batch: %v", err),
				ErrorCode: service.CodeInternal,
			}
		}
		return
	}
	// Every chunk gets its own sibling span under the request root, so a
	// scattered batch reads as parallel chunk spans each parenting its
	// replica's pipeline spans (via the traceparent send injects).
	sp := obs.TraceFromContext(ctx).RootSpan().StartChild("batch-chunk")
	sp.SetAttr("backend", b.name)
	sp.Set("items", int64(len(chunk)))
	sp.Set("pass", int64(pass))
	res, err := g.send(ctx, b, http.MethodPost, "/v1/analyze/batch", body, "", sp)
	if err != nil {
		sp.SetAttr("error", err.Error())
	} else {
		sp.Set("status", int64(res.status))
	}
	sp.End()
	if err != nil {
		for _, it := range chunk {
			results[it.idx] = unavailableResult(it, &unavailableError{backend: b.name, err: err})
			g.metrics.Unavailable.Add(1)
		}
		return
	}
	if retryable(res.status) && pass < len(g.backends) {
		// A re-scatter is a retry: it must clear the global retry budget
		// (the retried items fan back out across the ring, so no single
		// backend's bucket is the target) and fit the remaining deadline.
		switch {
		case !g.trySpendRetryGlobal():
			g.metrics.RetryBudgetExhausted.Add(1)
		case g.sleepRetry(ctx, pass, res.retryAfter):
			g.metrics.Retries.Add(1)
			g.scatter(ctx, meta, chunk, results, pass+1)
			return
		default:
			g.retryBudget.Refund() // deadline aborted the sleep; the retry never ran
		}
	}
	if res.status != http.StatusOK {
		// Upstream refused the whole chunk; relay its taxonomy error into
		// each affected item without rewrapping.
		code, msg := service.CodeInternal, fmt.Sprintf("upstream status %d", res.status)
		var er errorResponse
		if json.Unmarshal(res.body, &er) == nil && er.Error.Code != "" {
			code, msg = er.Error.Code, er.Error.Message
		}
		for _, it := range chunk {
			results[it.idx] = service.BatchResult{ID: it.prog.ID, Error: msg, ErrorCode: code}
		}
		return
	}
	var br service.BatchResponse
	if err := json.Unmarshal(res.body, &br); err != nil || len(br.Results) != len(chunk) {
		for _, it := range chunk {
			results[it.idx] = service.BatchResult{
				ID:        it.prog.ID,
				Error:     fmt.Sprintf("malformed sub-batch response from %s", b.name),
				ErrorCode: service.CodeInternal,
			}
		}
		return
	}
	for i, r := range br.Results {
		results[chunk[i].idx] = r
	}
}

// unavailableResult is the per-item shape of a dead replica: the batch
// survives, the item reports the taxonomy code "unavailable".
func unavailableResult(it batchItem, err error) service.BatchResult {
	return service.BatchResult{
		ID:        it.prog.ID,
		Error:     err.Error(),
		ErrorCode: service.CodeUnavailable,
	}
}
