package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

var hexTraceID = regexp.MustCompile(`^[0-9a-f]{32}$`)

func fetchTrace(t *testing.T, baseURL, id string) obs.TraceLookup {
	t.Helper()
	code, body := getBody(t, baseURL+"/debug/traces/"+id)
	if code != http.StatusOK {
		t.Fatalf("trace lookup %s: status=%d body=%s", id, code, body)
	}
	var lookup obs.TraceLookup
	if err := json.Unmarshal([]byte(body), &lookup); err != nil {
		t.Fatal(err)
	}
	return lookup
}

// spanNames flattens every span name in a lookup, depth first.
func spanNames(lookup obs.TraceLookup) []string {
	var names []string
	for _, rec := range lookup.Records {
		rec.Root.Walk(func(sp *obs.SpanJSON) { names = append(names, sp.Name) })
	}
	return names
}

func findSpan(root *obs.SpanJSON, name string) *obs.SpanJSON {
	var found *obs.SpanJSON
	root.Walk(func(sp *obs.SpanJSON) {
		if found == nil && sp.Name == name {
			found = sp
		}
	})
	return found
}

// TestFleetTraceE2E is the tentpole acceptance test: one analyze through
// the gateway produces ONE trace id visible on both tiers, and the
// gateway's /debug/traces/{id} stitches the replica's per-stage pipeline
// spans under the gateway's routing span.
func TestFleetTraceE2E(t *testing.T) {
	f := newFleet(t, 2, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})

	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{
		Source: workload.Ring(4).String(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status=%d body=%s", resp.StatusCode, data)
	}
	id := resp.Header.Get("X-Trace-Id")
	if !hexTraceID.MatchString(id) {
		t.Fatalf("gateway X-Trace-Id %q", id)
	}

	// The same trace id is retained on exactly one replica (the digest
	// owner) under the SAME id — one trace spanning both tiers.
	replicaHits := 0
	for _, u := range f.urls {
		code, _ := getBody(t, u+"/debug/traces/"+id)
		if code == http.StatusOK {
			replicaHits++
		}
	}
	if replicaHits != 1 {
		t.Fatalf("trace id retained on %d replicas, want 1", replicaHits)
	}

	// The gateway's stitched view: gateway root -> route span -> replica
	// request span -> analyze -> pipeline stages, all one tree.
	lookup := fetchTrace(t, gts.URL, id)
	if lookup.TraceID != id || len(lookup.Records) != 1 {
		t.Fatalf("lookup: %+v", lookup)
	}
	root := lookup.Records[0].Root
	if root.Name != "gateway /v1/analyze" || root.TraceID != id {
		t.Fatalf("gateway root: %+v", root)
	}
	route := findSpan(root, "route")
	if route == nil {
		t.Fatalf("no route span under gateway root: %v", spanNames(lookup))
	}
	if route.Attrs["backend"] == "" {
		t.Fatalf("route span has no backend attr: %+v", route)
	}
	serverSpan := findSpan(route, "server /v1/analyze")
	if serverSpan == nil {
		t.Fatalf("replica request span not grafted under route: %v", spanNames(lookup))
	}
	if serverSpan.ParentSpanID != route.SpanID {
		t.Fatalf("replica root parent %q != route span %q", serverSpan.ParentSpanID, route.SpanID)
	}
	analyzeSpan := findSpan(serverSpan, "analyze")
	if analyzeSpan == nil {
		t.Fatalf("no analyze span in the grafted replica tree: %v", spanNames(lookup))
	}
	for _, stage := range []string{"sync-graph", "detect:naive"} {
		if findSpan(analyzeSpan, stage) == nil {
			t.Fatalf("pipeline stage %q missing from the stitched trace: %v", stage, spanNames(lookup))
		}
	}
}

// TestFleetBatchChunkSpans: a scattered batch shows up as sibling
// batch-chunk spans under the gateway root, each chunk parenting its
// replica's request span — still one trace id fleet-wide.
func TestFleetBatchChunkSpans(t *testing.T) {
	f := newFleet(t, 2, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{BatchChunk: 2})

	progs := make([]service.BatchProgram, 8)
	for i := range progs {
		progs[i] = service.BatchProgram{ID: string(rune('a' + i)), Source: workload.Ring(i + 2).String()}
	}
	resp, data := postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{Programs: progs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d body=%s", resp.StatusCode, data)
	}
	id := resp.Header.Get("X-Trace-Id")

	lookup := fetchTrace(t, gts.URL, id)
	root := lookup.Records[0].Root
	if root.Name != "gateway /v1/analyze/batch" {
		t.Fatalf("root: %+v", root)
	}
	var chunks []*obs.SpanJSON
	for _, c := range root.Children {
		if c.Name == "batch-chunk" {
			chunks = append(chunks, c)
		}
	}
	// 8 items, chunk size 2: at least 4 sibling chunk spans (exactly 4
	// when nothing resharded).
	if len(chunks) < 4 {
		t.Fatalf("chunk spans=%d, want >=4: %v", len(chunks), spanNames(lookup))
	}
	grafted := 0
	backends := map[string]bool{}
	for _, c := range chunks {
		if c.Attrs["backend"] == "" {
			t.Fatalf("chunk without backend attr: %+v", c)
		}
		backends[c.Attrs["backend"]] = true
		if sub := findSpan(c, "server /v1/analyze/batch"); sub != nil {
			grafted++
		}
	}
	if len(backends) != 2 {
		t.Fatalf("chunks hit %d backends, want both", len(backends))
	}
	if grafted != len(chunks) {
		t.Fatalf("%d of %d chunk spans have grafted replica spans", grafted, len(chunks))
	}
}

// TestGatewayMalformedTraceparent: a broken client traceparent never
// fails a request at the gateway; it opens a fresh fleet trace.
func TestGatewayMalformedTraceparent(t *testing.T) {
	f := newFleet(t, 2, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})
	body, _ := json.Marshal(service.AnalyzeRequest{Source: workload.Ring(4).String()})
	req, err := http.NewRequest(http.MethodPost, gts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-garbage-in-garbage-out")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d, malformed traceparent must not fail the request", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); !hexTraceID.MatchString(id) {
		t.Fatalf("fresh trace id %q", id)
	}
}

// TestGatewayTraceparentContinuation: a valid client traceparent is
// continued — the gateway root becomes a child of the client span and the
// echoed trace id is the client's.
func TestGatewayTraceparentContinuation(t *testing.T) {
	f := newFleet(t, 2, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})
	tid, parent := obs.NewTraceID(), obs.NewSpanID()
	body, _ := json.Marshal(service.AnalyzeRequest{Source: workload.Ring(4).String()})
	req, err := http.NewRequest(http.MethodPost, gts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(tid, parent, true))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid.String() {
		t.Fatalf("X-Trace-Id %q, want %q", got, tid)
	}
	lookup := fetchTrace(t, gts.URL, tid.String())
	if lookup.Records[0].Root.ParentSpanID != parent.String() {
		t.Fatalf("gateway root parent %q, want client span %q",
			lookup.Records[0].Root.ParentSpanID, parent)
	}
}

// TestGatewayRetrySpans: a shedding owner forces a retry; the retained
// trace shows the failed route attempt and the retry as separate spans.
func TestGatewayRetrySpans(t *testing.T) {
	f := newFleet(t, 3, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{MaxRetries: 2, RetryBackoff: 1})
	const owner = 0
	src := ownedBy(t, g, owner)
	f.wraps[owner].mu.Lock()
	f.wraps[owner].shed = 1000
	f.wraps[owner].mu.Unlock()

	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	id := resp.Header.Get("X-Trace-Id")
	lookup := fetchTrace(t, gts.URL, id)
	root := lookup.Records[0].Root
	route, retry := findSpan(root, "route"), findSpan(root, "retry")
	if route == nil || retry == nil {
		t.Fatalf("want route + retry spans, got %v", spanNames(lookup))
	}
	if route.Counters["status"] != http.StatusTooManyRequests {
		t.Fatalf("route span status=%d, want 429", route.Counters["status"])
	}
	if retry.Counters["status"] != http.StatusOK {
		t.Fatalf("retry span status=%d, want 200", retry.Counters["status"])
	}
	if route.Attrs["backend"] == retry.Attrs["backend"] {
		t.Fatal("retry did not move to another backend")
	}
}

// TestFleetStatus: the aggregation endpoint merges gateway-side facts
// (probe verdict, breaker, ring share) with replica-scraped telemetry
// (readiness, cache hit rate, queue gauges, stage quantiles).
func TestFleetStatus(t *testing.T) {
	f := newFleet(t, 2, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})

	// Generate some load: distinct programs, then a repeat for cache hits.
	for i := 0; i < 4; i++ {
		resp, _ := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(i + 2).String()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %d failed", i)
		}
	}
	resp, _ := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(2).String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("repeat analyze failed")
	}

	code, body := getBody(t, gts.URL+"/v1/fleet/status")
	if code != http.StatusOK {
		t.Fatalf("fleet status=%d body=%s", code, body)
	}
	var fs FleetStatus
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Total != 2 || fs.Eligible != 2 || len(fs.Backends) != 2 {
		t.Fatalf("fleet: %+v", fs)
	}
	var share float64
	var analyses, hits uint64
	for _, b := range fs.Backends {
		if b.Error != "" {
			t.Fatalf("scrape error for %s: %s", b.Backend, b.Error)
		}
		if !b.Up || !b.Ready || b.Breaker != "closed" {
			t.Fatalf("backend %+v", b)
		}
		if b.Workers <= 0 {
			t.Fatalf("workers=%d", b.Workers)
		}
		share += b.RingShare
		analyses += b.Analyses
		hits += b.CacheHits
		for stage, q := range b.Stages {
			if q.Count == 0 || q.P50Ms < 0 || q.P50Ms > q.P90Ms || q.P90Ms > q.P99Ms {
				t.Fatalf("stage %q quantiles not monotone: %+v", stage, q)
			}
		}
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("ring shares sum to %v", share)
	}
	// 4 distinct programs analyzed, 1 repeat served from a replica cache.
	if analyses != 4 || hits != 1 {
		t.Fatalf("analyses=%d hits=%d, want 4/1", analyses, hits)
	}
	// The digest owners actually ran the pipeline: somebody has stage
	// quantiles for the total stage.
	hasStages := false
	for _, b := range fs.Backends {
		if _, ok := b.Stages["total"]; ok {
			hasStages = true
		}
	}
	if !hasStages {
		t.Fatalf("no backend reported stage quantiles: %s", body)
	}
}

// TestFleetStatusScrapeFailure: a dead replica yields a per-backend error
// field; the endpoint itself still answers 200 with the gateway-side
// facts for the corpse.
func TestFleetStatusScrapeFailure(t *testing.T) {
	f := newFleet(t, 2, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})
	f.wraps[1].mu.Lock()
	f.wraps[1].killed = true
	f.wraps[1].mu.Unlock()

	code, body := getBody(t, gts.URL+"/v1/fleet/status")
	if code != http.StatusOK {
		t.Fatalf("fleet status=%d", code)
	}
	var fs FleetStatus
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Backends[0].Error != "" {
		t.Fatalf("live replica reported error: %s", fs.Backends[0].Error)
	}
	if fs.Backends[1].Error == "" {
		t.Fatal("dead replica reported no scrape error")
	}
	if fs.Backends[1].Backend != f.urls[1] {
		t.Fatalf("order not preserved: %+v", fs.Backends)
	}
}

// TestQuantileFromBuckets pins the interpolation math.
func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.4}
	// 10 samples: 5 in (0,0.1], 3 in (0.1,0.2], 1 in (0.2,0.4], 1 beyond.
	cum := []uint64{5, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 0.1},  // rank 5 = exactly the first bound
		{0.80, 0.2},  // rank 8 = exactly the second bound
		{0.90, 0.4},  // rank 9 = third bound
		{0.99, 0.4},  // rank 9.9 in the +Inf bucket: clamp to last bound
		{0.10, 0.02}, // rank 1 of 5 in the first bucket: 0.1 * 1/5... interpolated
	}
	for _, c := range cases {
		got := quantileFromBuckets(bounds, cum, c.q)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
	if quantileFromBuckets(nil, nil, 0.5) != 0 {
		t.Error("empty histogram must yield 0")
	}
	if quantileFromBuckets(bounds, []uint64{0, 0, 0, 0}, 0.5) != 0 {
		t.Error("zero-count histogram must yield 0")
	}
}

// TestParsePromText pins the scrape parser against the exposition formats
// the replicas actually emit.
func TestParsePromText(t *testing.T) {
	text := strings.Join([]string{
		"# HELP siwa_analyses_total Total analyses.",
		"# TYPE siwa_analyses_total counter",
		"siwa_analyses_total 42",
		`siwa_batch_items_total{outcome="ok"} 7`,
		`siwa_analyze_stage_seconds_bucket{stage="clg",le="0.001"} 3`,
		`siwa_analyze_stage_seconds_bucket{stage="clg",le="+Inf"} 5`,
		`siwa_build_info{version="abc123",go="go1.22.0"} 1`,
		"", // blank line
		"garbage line without value",
	}, "\n")
	samples := parsePromText([]byte(text))
	if got := samples.value("siwa_analyses_total", nil); got != 42 {
		t.Fatalf("plain counter: %v", got)
	}
	if got := samples.value("siwa_batch_items_total", map[string]string{"outcome": "ok"}); got != 7 {
		t.Fatalf("labeled counter: %v", got)
	}
	if got := samples.value("siwa_analyze_stage_seconds_bucket",
		map[string]string{"stage": "clg", "le": "+Inf"}); got != 5 {
		t.Fatalf("+Inf bucket: %v", got)
	}
	if got := samples.value("siwa_build_info",
		map[string]string{"version": "abc123", "go": "go1.22.0"}); got != 1 {
		t.Fatalf("build info: %v", got)
	}
	if got := samples.value("missing_metric", nil); got != 0 {
		t.Fatalf("missing metric: %v", got)
	}
}

// TestGatewaySingleFlightTraceSpans: concurrent identical requests — the
// followers' traces record a single-flight-wait span instead of a
// duplicate upstream call.
func TestGatewaySingleFlightTraceSpans(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{})
	f.wraps[0].mu.Lock()
	f.wraps[0].delay = 50 * time.Millisecond // holds the flight open
	f.wraps[0].mu.Unlock()

	src := workload.Ring(6).String()
	ids := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status=%d body=%s", resp.StatusCode, data)
			}
			ids <- resp.Header.Get("X-Trace-Id")
		}()
	}
	a, b := <-ids, <-ids
	if a == "" || b == "" || a == b {
		t.Fatalf("trace ids %q / %q: want two distinct traces", a, b)
	}
	if g.Metrics().Dedup.Load() == 0 {
		t.Skip("requests did not coalesce; timing-dependent")
	}
	// The replica body is relayed verbatim, so the follower is identified
	// by its trace: it carries the wait span instead of a route span.
	waits := 0
	for _, id := range []string{a, b} {
		lookup := fetchTrace(t, gts.URL, id)
		if findSpan(lookup.Records[0].Root, "single-flight-wait") != nil {
			waits++
		}
	}
	if waits != 1 {
		t.Fatalf("single-flight-wait spans in %d of 2 traces, want exactly the follower", waits)
	}
}
