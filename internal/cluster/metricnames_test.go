package cluster

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// dynamicGatewayFamilies are families rendered with a caller-supplied
// prefix (trace-exporter counters, Go runtime telemetry) rather than a
// literal name at the observation site. They sit outside the static
// metricFamilies table — siwad-lint's metricreg analyzer exempts dynamic
// names for the same reason — so the runtime cross-check allowlists them.
var dynamicGatewayFamilies = map[string]bool{
	"siwa_gateway_traces_retained_total":     true,
	"siwa_gateway_traces_dropped_total":      true,
	"siwa_gateway_go_goroutines":             true,
	"siwa_gateway_go_heap_inuse_bytes":       true,
	"siwa_gateway_go_gc_pause_seconds_total": true,
	"siwa_build_info":                        true,
}

// TestGatewayMetricFamiliesRegistered is the runtime half of the
// metricreg contract for the gateway tier: every family in the
// metricFamilies table renders on /metrics, every rendered sample of a
// registered family carries exactly the registered label key, and only
// the documented dynamic families may appear outside the table. The
// static half — literal observation sites match the table — is enforced
// by siwad-lint.
func TestGatewayMetricFamiliesRegistered(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	g, err := New(Config{Backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}

	declared := map[string]bool{}
	type sample struct {
		family string
		label  string
		line   string
	}
	var samples []sample
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			if f := strings.Fields(line); len(f) >= 3 {
				declared[f[2]] = true
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		label := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			if j := strings.IndexByte(line[i+1:], '='); j >= 0 {
				label = line[i+1 : i+1+j]
			}
		}
		// Histogram series fold back onto their registered base family,
		// mirroring the metricreg analyzer's suffix handling.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name {
				if _, ok := metricFamilies[base]; ok {
					name = base
				}
				break
			}
		}
		samples = append(samples, sample{family: name, label: label, line: line})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan exposition: %v", err)
	}

	for family := range metricFamilies {
		if !declared[family] {
			t.Errorf("registered family %q is not declared by /metrics (stale metricFamilies entry?)", family)
		}
	}
	for _, s := range samples {
		want, ok := metricFamilies[s.family]
		if !ok {
			if !dynamicGatewayFamilies[s.family] {
				t.Errorf("unregistered family %q rendered by /metrics: %s", s.family, s.line)
			}
			continue
		}
		if s.label != want {
			t.Errorf("family %q rendered with label key %q, registered with %q: %s", s.family, s.label, want, s.line)
		}
	}
}
