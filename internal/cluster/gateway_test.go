package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// wrapped sits between the gateway and a real replica handler so tests
// can break the replica in controlled ways: kill it mid-run (abort every
// connection, like a crashed process), shed the next N analyze requests
// with 429, delay analyze requests, or fail readiness while staying live.
type wrapped struct {
	next http.Handler

	mu        sync.Mutex
	calls     int  // analyze-path requests seen
	killAfter int  // >0: abort everything once calls exceeds this
	killed    bool // once true, every request aborts (process is "dead")
	shed      int  // respond 429 to this many analyze requests
	delay     time.Duration

	notReady bool   // force /readyz to 503 (drain simulation)
	lastID   string // last X-Request-Id seen on an analyze path
}

func (wr *wrapped) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	analyzePath := strings.HasPrefix(r.URL.Path, "/v1/analyze")
	wr.mu.Lock()
	if wr.killed {
		wr.mu.Unlock()
		panic(http.ErrAbortHandler)
	}
	if analyzePath {
		wr.calls++
		if wr.killAfter > 0 && wr.calls > wr.killAfter {
			wr.killed = true
			wr.mu.Unlock()
			panic(http.ErrAbortHandler)
		}
		if id := r.Header.Get("X-Request-Id"); id != "" {
			wr.lastID = id
		}
		if wr.shed > 0 {
			wr.shed--
			wr.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"shed","message":"synthetic shed"}}`)
			return
		}
	}
	if wr.notReady && r.URL.Path == "/readyz" {
		wr.mu.Unlock()
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	delay := wr.delay
	wr.mu.Unlock()
	if analyzePath && delay > 0 {
		time.Sleep(delay)
	}
	wr.next.ServeHTTP(w, r)
}

func (wr *wrapped) analyzeCalls() int {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	return wr.calls
}

func (wr *wrapped) setNotReady(v bool) {
	wr.mu.Lock()
	wr.notReady = v
	wr.mu.Unlock()
}

func (wr *wrapped) lastRequestID() string {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	return wr.lastID
}

// fleet is n real service.Server replicas behind wrapped handlers.
type fleet struct {
	servers []*service.Server
	wraps   []*wrapped
	urls    []string
}

func newFleet(t *testing.T, n int, cfg service.Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		s := service.New(cfg)
		wr := &wrapped{next: s.Handler()}
		ts := httptest.NewServer(wr)
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.wraps = append(f.wraps, wr)
		f.urls = append(f.urls, ts.URL)
	}
	return f
}

// newTestGateway builds a Gateway over urls and mounts it under httptest.
// No background health checker runs: tests drive probes via CheckNow for
// deterministic transitions.
func newTestGateway(t *testing.T, urls []string, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg.Backends = urls
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func decodeError(t *testing.T, data []byte) service.ErrorBody {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("bad error body %v\n%s", err, data)
	}
	return er.Error
}

// promCounter extracts the value of an unlabeled counter from a
// Prometheus text exposition.
func promCounter(t *testing.T, text, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestGatewayDigestAffinityCacheHitRate is the headline acceptance test:
// the same shuffled request sequence is played through a 3-replica
// cluster (via the gateway) and through one standalone replica, and the
// fleet's aggregate cache hit/miss counters — scraped from each
// replica's own /metrics — must equal the single node's exactly. Digest
// affinity means a fleet caches like one big node: M distinct programs
// cost M misses total, no matter which replica's cache holds each one.
func TestGatewayDigestAffinityCacheHitRate(t *testing.T) {
	const M, repeats = 12, 4
	sources := make([]string, M)
	for i := range sources {
		sources[i] = workload.Ring(i + 2).String()
	}
	seq := make([]int, 0, M*repeats)
	for r := 0; r < repeats; r++ {
		for i := 0; i < M; i++ {
			seq = append(seq, i)
		}
	}
	rand.New(rand.NewSource(42)).Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

	f := newFleet(t, 3, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})
	for _, si := range seq {
		resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: sources[si]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gateway analyze: status=%d body=%s", resp.StatusCode, data)
		}
	}

	single := service.New(service.Config{})
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()
	for _, si := range seq {
		resp, _ := postJSON(t, sts.URL+"/v1/analyze", service.AnalyzeRequest{Source: sources[si]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single-node analyze: status=%d", resp.StatusCode)
		}
	}

	var fleetHits, fleetMisses uint64
	for i, url := range f.urls {
		code, text := getBody(t, url+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("replica %d /metrics: status=%d", i, code)
		}
		fleetHits += promCounter(t, text, "siwa_cache_hits_total")
		fleetMisses += promCounter(t, text, "siwa_cache_misses_total")
	}
	_, singleText := getBody(t, sts.URL+"/metrics")
	singleHits := promCounter(t, singleText, "siwa_cache_hits_total")
	singleMisses := promCounter(t, singleText, "siwa_cache_misses_total")

	if singleMisses != M || singleHits != M*(repeats-1) {
		t.Fatalf("single-node control off: hits=%d misses=%d", singleHits, singleMisses)
	}
	if fleetMisses != singleMisses || fleetHits != singleHits {
		t.Fatalf("fleet cache rate differs from single node: fleet hits=%d misses=%d, single hits=%d misses=%d",
			fleetHits, fleetMisses, singleHits, singleMisses)
	}
}

// TestGatewayTaxonomyRoundTrip pins the relay contract: every error code
// in the service taxonomy (and a success body) must pass through the
// gateway byte-for-byte — same status, same body, no rewrapping.
func TestGatewayTaxonomyRoundTrip(t *testing.T) {
	var mu sync.Mutex
	status, payload, retryAfter := http.StatusOK, "", ""
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		io.WriteString(w, payload)
	}))
	defer stub.Close()

	// MaxRetries -1 disables retries so even 429/503 relay the first
	// upstream answer untouched.
	_, gts := newTestGateway(t, []string{stub.URL}, Config{MaxRetries: -1})

	errBody := func(code string) string {
		return fmt.Sprintf(`{"error":{"code":%q,"message":"synthetic %s"}}`, code, code)
	}
	cases := []struct {
		name       string
		status     int
		body       string
		retryAfter string
	}{
		{"ok", http.StatusOK, `{"report":{"x":1},"cached":true,"elapsedMs":0.1}`, ""},
		{service.CodeInvalidRequest, http.StatusBadRequest, errBody(service.CodeInvalidRequest), ""},
		{service.CodeParseError, http.StatusUnprocessableEntity, errBody(service.CodeParseError), ""},
		{service.CodeTooLarge, http.StatusRequestEntityTooLarge, errBody(service.CodeTooLarge), ""},
		{service.CodeTimeout, http.StatusServiceUnavailable, errBody(service.CodeTimeout), "2"},
		{service.CodeShed, http.StatusTooManyRequests, errBody(service.CodeShed), "5"},
		{service.CodeResourceLimit, http.StatusUnprocessableEntity, errBody(service.CodeResourceLimit), ""},
		{service.CodeInternal, http.StatusInternalServerError, errBody(service.CodeInternal), ""},
		{service.CodeUnavailable, http.StatusServiceUnavailable, errBody(service.CodeUnavailable), "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mu.Lock()
			status, payload, retryAfter = tc.status, tc.body, tc.retryAfter
			mu.Unlock()
			resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: "task main { }"})
			if resp.StatusCode != tc.status {
				t.Fatalf("status=%d, want %d (body %s)", resp.StatusCode, tc.status, data)
			}
			if string(data) != tc.body {
				t.Fatalf("body rewritten:\n got %s\nwant %s", data, tc.body)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.retryAfter {
				t.Fatalf("Retry-After=%q, want %q", got, tc.retryAfter)
			}
		})
	}
}

// TestGatewaySingleFlight holds a replica's analyze path slow and fires
// identical concurrent requests: exactly one upstream analysis must run,
// the rest share the leader's response.
func TestGatewaySingleFlight(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	f.wraps[0].delay = 500 * time.Millisecond
	g, gts := newTestGateway(t, f.urls, Config{})

	const concurrent = 8
	req := service.AnalyzeRequest{Source: workload.Ring(4).String()}
	body, _ := json.Marshal(req)
	var wg sync.WaitGroup
	responses := make([][]byte, concurrent)
	statuses := make([]int, concurrent)
	// The leader needs to be registered in the flight group before the
	// followers arrive; its 500ms upstream delay gives them ample room.
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				time.Sleep(50 * time.Millisecond)
			}
			resp, err := http.Post(gts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			responses[i] = data
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrent; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status=%d body=%s", i, statuses[i], responses[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("request %d got a different body than the leader", i)
		}
	}
	if got := f.wraps[0].analyzeCalls(); got != 1 {
		t.Fatalf("replica saw %d analyze calls, want 1 (single-flight)", got)
	}
	if got := f.servers[0].Metrics().Analyses.Load(); got != 1 {
		t.Fatalf("replica executed %d analyses, want 1", got)
	}
	if got := g.Metrics().Dedup.Load(); got != concurrent-1 {
		t.Fatalf("dedup=%d, want %d", got, concurrent-1)
	}
}

// TestGatewayRequestIDPropagation checks the correlation id end to end:
// client-supplied ids are echoed by the gateway and forwarded to the
// replica; absent or malformed ids are replaced with a gateway-minted one.
func TestGatewayRequestIDPropagation(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})
	body, _ := json.Marshal(service.AnalyzeRequest{Source: workload.Ring(3).String()})

	req, _ := http.NewRequest(http.MethodPost, gts.URL+"/v1/analyze", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Fatalf("gateway echoed id %q, want trace-me-42", got)
	}
	if got := f.wraps[0].lastRequestID(); got != "trace-me-42" {
		t.Fatalf("replica received id %q, want trace-me-42", got)
	}

	resp2, _ := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(3).String()})
	if got := resp2.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "gw-") {
		t.Fatalf("generated id %q lacks gw- prefix", got)
	}

	req3, _ := http.NewRequest(http.MethodPost, gts.URL+"/v1/analyze", bytes.NewReader(body))
	req3.Header.Set("Content-Type", "application/json")
	req3.Header.Set("X-Request-Id", "has a space")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "gw-") {
		t.Fatalf("malformed inbound id kept: %q", got)
	}
}

// ownedBy finds a workload program whose digest's first ring candidate is
// backend i.
func ownedBy(t *testing.T, g *Gateway, i int) string {
	t.Helper()
	for n := 2; n < 200; n++ {
		src := workload.Ring(n).String()
		if g.Ring().Candidates(DigestOf(src))[0] == i {
			return src
		}
	}
	t.Fatalf("no sample program routes to backend %d", i)
	return ""
}

// TestGatewayReadyzDrivenRouting drains one replica (its /readyz turns
// 503 while /healthz stays 200), probes, and requires traffic for that
// replica's digests to shift to their ring successors. The gateway's own
// /readyz flips only when the whole fleet is unroutable.
func TestGatewayReadyzDrivenRouting(t *testing.T) {
	f := newFleet(t, 3, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{})
	g.CheckNow(context.Background())
	for i := range f.urls {
		if !g.BackendUp(i) {
			t.Fatalf("backend %d down after initial probe", i)
		}
	}
	if code, _ := getBody(t, gts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("gateway /readyz=%d with a healthy fleet", code)
	}

	const drained = 1
	src := ownedBy(t, g, drained)
	f.wraps[drained].setNotReady(true)
	g.CheckNow(context.Background())
	if g.BackendUp(drained) {
		t.Fatal("draining replica still marked up after probe")
	}

	before := f.wraps[drained].analyzeCalls()
	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze during drain: status=%d body=%s", resp.StatusCode, data)
	}
	if got := f.wraps[drained].analyzeCalls(); got != before {
		t.Fatalf("draining replica received %d new analyze calls", got-before)
	}
	if code, _ := getBody(t, gts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("gateway /readyz=%d, two backends remain", code)
	}

	for i := range f.wraps {
		f.wraps[i].setNotReady(true)
	}
	g.CheckNow(context.Background())
	if code, body := getBody(t, gts.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "no backend available") {
		t.Fatalf("gateway /readyz=%d body=%s with the whole fleet draining", code, body)
	}

	// Un-drain: the fleet recovers and the replica takes traffic again.
	for i := range f.wraps {
		f.wraps[i].setNotReady(false)
	}
	g.CheckNow(context.Background())
	if !g.BackendUp(drained) {
		t.Fatal("replica still down after recovery probe")
	}
	resp2, _ := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery analyze: status=%d", resp2.StatusCode)
	}
	if got := f.wraps[drained].analyzeCalls(); got != before+1 {
		t.Fatalf("recovered replica calls=%d, want %d", got, before+1)
	}
}

// TestGatewayBatchOrderAndSharding scatters a batch across 3 replicas and
// checks the merged response is in input order with every item analyzed,
// and that the work actually spread across the fleet.
func TestGatewayBatchOrderAndSharding(t *testing.T) {
	f := newFleet(t, 3, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{BatchChunk: 4})
	const n = 30
	progs := make([]service.BatchProgram, n)
	for i := range progs {
		progs[i] = service.BatchProgram{
			ID:     fmt.Sprintf("p%d", i),
			Source: workload.Ring(i + 2).String(),
		}
	}
	resp, data := postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{Programs: progs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d body=%s", resp.StatusCode, data)
	}
	var br service.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != n {
		t.Fatalf("results=%d, want %d", len(br.Results), n)
	}
	for i, r := range br.Results {
		if r.ID != fmt.Sprintf("p%d", i) {
			t.Fatalf("result %d has id %q: order not preserved", i, r.ID)
		}
		if r.ErrorCode != "" || len(r.Report) == 0 {
			t.Fatalf("item %d failed: code=%q err=%q", i, r.ErrorCode, r.Error)
		}
	}
	if got := g.Metrics().ItemsOK.Load(); got != n {
		t.Fatalf("items ok=%d, want %d", got, n)
	}
	busy := 0
	for _, wr := range f.wraps {
		if wr.analyzeCalls() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("batch hit %d replicas; sharding did not spread", busy)
	}
}

// TestGatewayRetryOn429 verifies the backoff-and-retry path: the digest's
// owner sheds once, the retry lands (here on the same lone backend) and
// the client sees a clean 200.
func TestGatewayRetryOn429(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	f.wraps[0].shed = 1
	g, gts := newTestGateway(t, f.urls, Config{MaxRetries: 2, RetryBackoff: time.Millisecond})
	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(5).String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if got := g.Metrics().Retries.Load(); got != 1 {
		t.Fatalf("retries=%d, want 1", got)
	}

	// Retries exhausted: the last upstream 429 is relayed verbatim.
	f.wraps[0].mu.Lock()
	f.wraps[0].shed = 10
	f.wraps[0].mu.Unlock()
	resp2, data2 := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(6).String()})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted retries: status=%d body=%s", resp2.StatusCode, data2)
	}
	if eb := decodeError(t, data2); eb.Code != service.CodeShed {
		t.Fatalf("code=%q, want %q (upstream body relayed, not rewrapped)", eb.Code, service.CodeShed)
	}
}

// TestGatewayNoBackendAvailable points the gateway at a dead address: the
// client gets the taxonomy code "unavailable" with a Retry-After hint.
func TestGatewayNoBackendAvailable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	g, gts := newTestGateway(t, []string{url}, Config{})
	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: "task main { }"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if eb := decodeError(t, data); eb.Code != service.CodeUnavailable {
		t.Fatalf("code=%q, want %q", eb.Code, service.CodeUnavailable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unavailable response missing Retry-After")
	}
	g.CheckNow(context.Background())
	if code, _ := getBody(t, gts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("gateway /readyz=%d with every backend dead", code)
	}
	if got := g.Metrics().Unavailable.Load(); got == 0 {
		t.Fatal("unavailable counter not incremented")
	}
}

// TestGatewayInputValidation covers the gateway-authored 4xx responses.
func TestGatewayInputValidation(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{MaxBatch: 4, MaxBodyBytes: 512})

	resp, err := http.Post(gts.URL+"/v1/analyze", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status=%d", resp.StatusCode)
	}
	if eb := decodeError(t, data); eb.Code != service.CodeInvalidRequest {
		t.Fatalf("code=%q", eb.Code)
	}

	resp2, data2 := postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status=%d body=%s", resp2.StatusCode, data2)
	}

	over := make([]service.BatchProgram, 5)
	for i := range over {
		over[i] = service.BatchProgram{Source: "task main { }"}
	}
	resp3, data3 := postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{Programs: over})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch: status=%d body=%s", resp3.StatusCode, data3)
	}

	big := service.AnalyzeRequest{Source: strings.Repeat("x", 2048)}
	resp4, data4 := postJSON(t, gts.URL+"/v1/analyze", big)
	if resp4.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status=%d body=%s", resp4.StatusCode, data4)
	}
	if eb := decodeError(t, data4); eb.Code != service.CodeTooLarge {
		t.Fatalf("code=%q", eb.Code)
	}
}

// TestGatewayAlgorithmsRelay compares the listing through the gateway
// with the replica's own answer.
func TestGatewayAlgorithmsRelay(t *testing.T) {
	f := newFleet(t, 2, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})
	gc, gb := getBody(t, gts.URL+"/v1/algorithms")
	rc, rb := getBody(t, f.urls[0]+"/v1/algorithms")
	if gc != http.StatusOK || rc != http.StatusOK {
		t.Fatalf("status gateway=%d replica=%d", gc, rc)
	}
	if gb != rb {
		t.Fatalf("listing differs through gateway:\n%s\nvs\n%s", gb, rb)
	}
}

// TestGatewayMetricsExposition drives some traffic and checks every
// metric family appears, with ring ownership summing to the whole
// keyspace.
func TestGatewayMetricsExposition(t *testing.T) {
	f := newFleet(t, 3, service.Config{})
	_, gts := newTestGateway(t, f.urls, Config{})
	postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: workload.Ring(3).String()})
	postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{Programs: []service.BatchProgram{
		{Source: workload.Ring(4).String()},
	}})
	code, text := getBody(t, gts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status=%d", code)
	}
	for _, want := range []string{
		`siwa_gateway_requests_total{endpoint="analyze"} 1`,
		`siwa_gateway_requests_total{endpoint="batch"} 1`,
		"siwa_gateway_singleflight_dedup_total",
		"siwa_gateway_retries_total",
		"siwa_gateway_unavailable_total",
		"siwa_gateway_panics_total",
		`siwa_gateway_batch_items_total{outcome="ok"} 1`,
		"siwa_gateway_backend_requests_total{backend=",
		"siwa_gateway_backend_failures_total{backend=",
		"siwa_gateway_backend_up{backend=",
		"siwa_gateway_breaker_state{backend=",
		"siwa_gateway_ring_ownership_millionths{backend=",
		"siwa_gateway_backend_request_seconds_bucket",
		"siwa_gateway_backend_request_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	var ownSum int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "siwa_gateway_ring_ownership_millionths{") {
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			ownSum += v
		}
	}
	if ownSum < 999997 || ownSum > 1000003 {
		t.Fatalf("ring ownership sums to %d millionths, want ~1000000", ownSum)
	}
}

// TestGatewayServeDrain runs the gateway's own Serve loop and checks the
// drain flag: once the context is cancelled the (shared) handler reports
// draining on /readyz.
func TestGatewayServeDrain(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{ShutdownGrace: time.Second, HealthInterval: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ln := newLocalListener(t)
	go func() { done <- g.Serve(ctx, ln) }()
	waitFor(t, "serve up", func() bool {
		resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	code, body := getBody(t, gts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("post-drain /readyz=%d body=%s", code, body)
	}
}

// TestFlightGroupLeaderCancelDoesNotPoisonFollowers pins the detachment
// of the single-flight leader's upstream call from its own request
// context: when the leader's client disconnects mid-flight, followers
// sharing the flight still get the real upstream result instead of the
// leader's context.Canceled.
func TestFlightGroupLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	fg := newFlightGroup(5 * time.Second)
	key := sha256.Sum256([]byte("body"))
	want := &upstream{status: http.StatusOK}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	var leaderRes, followerRes *upstream
	var leaderErr, followerErr error
	var followerShared bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderRes, leaderErr, _ = fg.do(leaderCtx, key, func(ctx context.Context) (*upstream, error) {
			close(started)
			<-release
			// The point under test: the leader's cancellation must not
			// reach the context the shared result is produced under.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return want, nil
		})
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerRes, followerErr, followerShared = fg.do(context.Background(), key,
			func(context.Context) (*upstream, error) {
				t.Error("follower must not execute the flight")
				return nil, nil
			})
	}()
	// Give the follower a beat to block on the flight, then cancel the
	// leader's request and let the upstream call finish.
	time.Sleep(100 * time.Millisecond)
	cancelLeader()
	close(release)
	wg.Wait()
	if followerErr != nil || followerRes != want || !followerShared {
		t.Fatalf("follower: res=%v err=%v shared=%v, want the leader's result shared",
			followerRes, followerErr, followerShared)
	}
	if leaderErr != nil || leaderRes != want {
		t.Fatalf("leader: res=%v err=%v", leaderRes, leaderErr)
	}
}

// TestGatewayCancelledProbeReleasesBreaker pins the Acquire contract on
// the client-cancel path: a request that wins the half-open probe slot
// and is then cancelled mid-send must return the slot. Before Release
// existed the breaker stayed half-open forever — Ready and Acquire both
// false — and the backend was permanently out of rotation.
func TestGatewayCancelledProbeReleasesBreaker(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	g, _ := newTestGateway(t, f.urls, Config{BreakerThreshold: 1, BreakerCooldown: time.Millisecond})
	br := g.backends[0].breaker
	br.Fail() // threshold 1: one transport failure opens the circuit
	if got := br.State(); got != BreakerOpen {
		t.Fatalf("state=%v, want open", got)
	}
	time.Sleep(5 * time.Millisecond) // cooldown elapses; a probe is allowed

	// Slow the replica down, then issue the probe-winning request with a
	// deadline that fires mid-send.
	f.wraps[0].mu.Lock()
	f.wraps[0].delay = 300 * time.Millisecond
	f.wraps[0].mu.Unlock()
	body, _ := json.Marshal(service.AnalyzeRequest{Source: workload.Ring(3).String()})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := g.forward(ctx, DigestOf("x"), "/v1/analyze", body, ""); err == nil {
		t.Fatal("request cancelled mid-send should fail")
	}
	if got := br.State(); got != BreakerOpen {
		t.Fatalf("state=%v after abandoned probe, want open (slot returned)", got)
	}

	// The next request must be able to re-probe immediately and close the
	// breaker.
	f.wraps[0].mu.Lock()
	f.wraps[0].delay = 0
	f.wraps[0].mu.Unlock()
	res, err := g.forward(context.Background(), DigestOf("x"), "/v1/analyze", body, "")
	if err != nil {
		t.Fatalf("re-probe forward: %v", err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("re-probe status=%d", res.status)
	}
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("state=%v after successful re-probe, want closed", got)
	}
}

// TestGatewayAlgorithmsClientCancel: a client abandoning /v1/algorithms
// is reported as a timeout-coded abort, not "no healthy backend", and
// does not count toward the unavailable metric.
func TestGatewayAlgorithmsClientCancel(t *testing.T) {
	f := newFleet(t, 1, service.Config{})
	g, _ := newTestGateway(t, f.urls, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/algorithms", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status=%d, want 503", rec.Code)
	}
	eb := decodeError(t, rec.Body.Bytes())
	if eb.Code != service.CodeTimeout {
		t.Fatalf("code=%q, want %q (client cancel is not a fleet problem)", eb.Code, service.CodeTimeout)
	}
	if got := g.Metrics().Unavailable.Load(); got != 0 {
		t.Fatalf("unavailable metric=%d, want 0", got)
	}
}
