// Package cluster implements the siwa cluster gateway: a client-side
// routing front end that fans /v1/analyze and /v1/analyze/batch traffic
// out across N siwad-server replicas.
//
// Routing is by program digest on a consistent-hash ring (ring.go): the
// detectors are pure functions of program text, so sending each program
// to the replica that already analyzed it makes the fleet's aggregate
// cache hit rate match a single node's. Replica failure is handled by
// active /healthz + /readyz probing (health.go) plus per-backend circuit
// breakers over transport outcomes (breaker.go); a dead backend's keys
// move to each key's ring successor and everything else stays put.
//
// The proxy path (proxy.go) deduplicates identical in-flight analyze
// bodies (single-flight), retries 429/503 responses with bounded backoff
// honoring upstream Retry-After, and otherwise relays upstream bodies
// byte-for-byte — the gateway never rewraps a well-formed error from the
// service error taxonomy. Batches (batch.go) are sharded by digest,
// streamed to each owner in chunks, and merged back in request order;
// items whose replica dies mid-flight come back with the taxonomy code
// "unavailable" instead of failing the batch. cmd/siwad-gateway wires
// this package to flags and signals.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

// Config shapes a Gateway. The zero value is not usable directly; call
// Normalize (New does) to fill unset fields.
type Config struct {
	// Addr is the listen address for Gateway.Run ("host:port").
	Addr string
	// Backends are the replica base URLs ("http://host:port"), the ring
	// membership. Order does not affect routing — ring points hash the
	// URL, not the index — so config reordering never reshuffles keys.
	Backends []string
	// VirtualNodes is the number of ring points per backend. 0 means 64.
	VirtualNodes int
	// HealthInterval is the active probe period. 0 means 2s.
	HealthInterval time.Duration
	// HealthTimeout bounds each probe round trip. 0 means 1s.
	HealthTimeout time.Duration
	// BreakerThreshold is how many consecutive transport failures open a
	// backend's circuit breaker. 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// allowing a half-open probe. 0 means 2s.
	BreakerCooldown time.Duration
	// MaxRetries bounds additional attempts after an upstream 429/503 on
	// the analyze proxy path (total attempts = MaxRetries+1). Negative
	// disables retries. 0 means 2.
	MaxRetries int
	// RetryBackoff is the base retry delay, doubled per attempt; an
	// upstream Retry-After header overrides it. 0 means 25ms.
	RetryBackoff time.Duration
	// RetryAfterCap clamps how long the gateway will honor an upstream
	// Retry-After hint before retrying. 0 means 2s.
	RetryAfterCap time.Duration
	// UpstreamTimeout bounds a single-flight leader's upstream analyze
	// call. The leader runs detached from its own request context (its
	// result is shared with followers whose requests are still live, so
	// one client disconnecting must not cancel everyone); this is the
	// replacement bound. 0 means 60s.
	UpstreamTimeout time.Duration
	// DefaultTimeout is the end-to-end deadline budget applied to requests
	// that carry no timeoutMs of their own. The budget is decremented
	// across retries, backoff sleeps, and batch re-scatter rounds, and the
	// remainder is propagated to replicas via the X-Deadline-Ms header.
	// 0 means 30s, matching the replica default.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadline budgets. 0 means 5m,
	// matching the replica clamp.
	MaxTimeout time.Duration
	// RetryBudgetRatio is the fraction of a retry token each upstream
	// success earns: retries (and hedges) spend whole tokens from a global
	// bucket plus the target backend's bucket, so the sustained retry
	// ratio can never exceed RetryBudgetRatio and retries shut off during
	// a brownout instead of amplifying it. 0 means 0.1; negative disables
	// retry budgeting (retries bounded only by MaxRetries).
	RetryBudgetRatio float64
	// RetryBudgetBurst is each bucket's capacity and initial fill — the
	// number of retries a cold gateway may spend before earning any.
	// 0 means 10.
	RetryBudgetBurst int
	// HedgePercentile arms hedged requests for single analyzes: when the
	// primary backend has not answered within its observed latency at this
	// percentile (from the per-backend histogram; 100ms until enough
	// samples exist), the gateway issues one speculative attempt to the
	// next ring candidate and takes whichever answers first. 1-99; 0 (the
	// zero value) or negative disables hedging.
	HedgePercentile int
	// BatchChunk is how many items of one backend's batch share go into
	// each upstream sub-batch request: small chunks stream a large batch
	// through the fleet and bound the blast radius of a mid-batch replica
	// death to one chunk. 0 means 16.
	BatchChunk int
	// MaxBatch caps the number of programs in one gateway batch request.
	// 0 means 1024.
	MaxBatch int
	// MaxBodyBytes caps inbound request bodies. 0 means 4 MiB.
	MaxBodyBytes int64
	// ShutdownGrace bounds the drain after Run's context is cancelled.
	// 0 means 10s.
	ShutdownGrace time.Duration
	// Logger receives one structured record per proxied request. Nil
	// disables request logging.
	Logger *slog.Logger
	// TraceSample is the head-sampling rate: 1 in N new traces born at the
	// gateway is marked sampled, and the decision propagates to the
	// replicas via the traceparent flags. Slow, degraded, and errored
	// requests are retained regardless. 0 means 1 (sample everything);
	// negative disables sampling.
	TraceSample int
	// SlowThreshold marks gateway requests at least this long as slow:
	// always retained in the trace ring and logged at WARN with backend
	// and retry breakdown. 0 means 1s; negative disables.
	SlowThreshold time.Duration
	// TraceRing caps the in-memory ring of retained traces served at
	// /debug/traces. 0 means 256.
	TraceRing int
}

// Normalize fills unset fields with their defaults and returns the result.
func (c Config) Normalize() Config {
	if c.Addr == "" {
		c.Addr = ":8090"
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 2 * time.Second
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 60 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.1
	}
	if c.RetryBudgetBurst <= 0 {
		c.RetryBudgetBurst = 10
	}
	if c.HedgePercentile < 0 {
		c.HedgePercentile = 0
	} else if c.HedgePercentile > 99 {
		c.HedgePercentile = 99
	}
	if c.BatchChunk <= 0 {
		c.BatchChunk = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = time.Second
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	return c
}

// backend is one replica's runtime state: admin identity, the latest
// active-probe verdict, and the circuit breaker over transport outcomes.
type backend struct {
	name    string // base URL, also the ring point seed
	breaker *Breaker
	retry   *retryBudget // per-backend retry tokens; nil when disabled
	up      atomic.Bool  // latest /healthz + /readyz verdict; starts true
}

// eligible reports whether new work may be routed here right now, without
// consuming the breaker's half-open probe slot.
func (b *backend) eligible() bool { return b.up.Load() && b.breaker.Ready() }

// Gateway routes analyze traffic across the configured replicas.
// Construct with New; serve with Run, or mount Handler under httptest and
// drive probes via CheckNow/RunChecker. Safe for concurrent use.
type Gateway struct {
	cfg         Config
	ring        *Ring
	backends    []*backend
	metrics     *Metrics
	flights     *flightGroup
	exporter    *obs.Exporter
	client      *http.Client
	handler     http.Handler
	retryBudget *retryBudget // global retry tokens; nil when disabled
	reqID       atomic.Uint64
	draining    atomic.Bool
}

// New builds a Gateway over cfg.Backends (at least one required).
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.Normalize()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	seen := map[string]bool{}
	for _, b := range cfg.Backends {
		if seen[b] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", b)
		}
		seen[b] = true
	}
	g := &Gateway{
		cfg:     cfg,
		ring:    NewRing(cfg.Backends, cfg.VirtualNodes),
		flights: newFlightGroup(cfg.UpstreamTimeout),
		// One shared client: keep-alive connection reuse to every replica
		// is what keeps the proxy hop cheap. The fault wrapper is free
		// (one atomic load) until SIWA_FAULTS arms a gateway.net.* point,
		// at which point chaos drills can add latency, reset connections,
		// black-hole requests, or truncate bodies on the upstream wire.
		client: &http.Client{Transport: fault.NewTransport(&http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}, "gateway.net")},
	}
	if cfg.RetryBudgetRatio > 0 {
		g.retryBudget = newRetryBudget(cfg.RetryBudgetBurst, cfg.RetryBudgetRatio)
	}
	for _, name := range cfg.Backends {
		b := &backend{
			name:    name,
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
		if cfg.RetryBudgetRatio > 0 {
			b.retry = newRetryBudget(cfg.RetryBudgetBurst, cfg.RetryBudgetRatio)
		}
		b.up.Store(true) // optimistic until the first probe says otherwise
		g.backends = append(g.backends, b)
	}
	g.metrics = newMetrics(g)
	sampleN, slow := cfg.TraceSample, cfg.SlowThreshold
	if sampleN < 0 {
		sampleN = 0
	}
	if slow < 0 {
		slow = 0
	}
	g.exporter = obs.NewExporter(cfg.TraceRing, sampleN, slow)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", g.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", g.handleBatch)
	mux.HandleFunc("GET /v1/algorithms", g.handleAlgorithms)
	mux.HandleFunc("GET /v1/fleet/status", g.handleFleetStatus)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /debug/traces", g.exporter.ServeList)
	mux.HandleFunc("GET /debug/traces/{id}", g.handleTraceGet)
	// Tracing wraps panic recovery so a recovered panic's 500 is observed
	// by the status recorder and the trace is retained as errored.
	g.handler = g.withTracing(g.recoverPanics(g.withRequestID(mux)))
	return g, nil
}

// Exporter exposes the gateway's trace ring (for tests).
func (g *Gateway) Exporter() *obs.Exporter { return g.exporter }

// Handler returns the gateway's HTTP handler, for mounting or httptest.
func (g *Gateway) Handler() http.Handler { return g.handler }

// Metrics exposes the live counters (shared, not a snapshot).
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Ring exposes the routing ring (immutable), so tests and tooling can
// predict which backend owns a digest.
func (g *Gateway) Ring() *Ring { return g.ring }

// BreakerState reports backend i's circuit-breaker state.
func (g *Gateway) BreakerState(i int) BreakerState { return g.backends[i].breaker.State() }

// BackendUp reports backend i's latest active-probe verdict.
func (g *Gateway) BackendUp(i int) bool { return g.backends[i].up.Load() }

// writeJSON mirrors the replica wire format (indented JSON) for
// gateway-authored bodies; proxied bodies are relayed verbatim instead.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorResponse is the wire shape of gateway-authored errors — the same
// {"error":{code,message}} taxonomy the replicas speak.
type errorResponse struct {
	Error service.ErrorBody `json:"error"`
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: service.ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		TraceID: w.Header().Get("X-Trace-Id"),
	}})
}

// recoverPanics turns a panic on the request goroutine into a structured
// 500, keeping the gateway serving.
func (g *Gateway) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			g.metrics.Panics.Add(1)
			if g.cfg.Logger != nil {
				g.cfg.Logger.LogAttrs(r.Context(), slog.LevelError, "panic recovered",
					slog.String("endpoint", r.URL.Path),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())))
			}
			g.writeError(w, http.StatusInternalServerError, service.CodeInternal,
				"internal error: %v", rec)
		}()
		next.ServeHTTP(w, r)
	})
}

// withRequestID accepts or mints the X-Request-Id, echoes it on the
// gateway response, and stashes it in the context; the proxy path copies
// it onto upstream requests so one id traces gateway -> replica.
func (g *Gateway) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = "gw-" + strconv.FormatUint(g.reqID.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// requestIDKey carries the per-request correlation id in the context.
type requestIDKey struct{}

// requestID returns the correlation id assigned by withRequestID.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// validRequestID mirrors the replica's header hygiene: 1-128 printable
// ASCII characters, no spaces.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// logRequest emits one structured record per gateway request.
func (g *Gateway) logRequest(r *http.Request, endpoint string, status int, start time.Time, attrs ...slog.Attr) {
	if g.cfg.Logger == nil {
		return
	}
	common := []slog.Attr{
		slog.String("id", requestID(r.Context())),
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Float64("ms", float64(time.Since(start))/float64(time.Millisecond)),
	}
	if trace := obs.TraceFromContext(r.Context()).TraceIDString(); trace != "" {
		common = append(common, slog.String("trace", trace))
	}
	g.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "gateway request", append(common, attrs...)...)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether the gateway can do useful work: at least
// one backend must be routable. A draining gateway is never ready.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	eligible := 0
	for _, b := range g.backends {
		if b.eligible() {
			eligible++
		}
	}
	status, state := http.StatusOK, "ready"
	switch {
	case g.draining.Load():
		status, state = http.StatusServiceUnavailable, "draining"
	case eligible == 0:
		status, state = http.StatusServiceUnavailable, "no backend available"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"backends": len(g.backends),
		"eligible": eligible,
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.WriteTo(w, g)
	g.exporter.WriteProm(w, "siwa_gateway")
	obs.WriteRuntimeMetrics(w, "siwa_gateway")
}

// Run listens on the configured address, starts the health checker, and
// serves until ctx is cancelled, then drains like the replica server.
func (g *Gateway) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", g.cfg.Addr)
	if err != nil {
		return err
	}
	return g.Serve(ctx, ln)
}

// Serve is Run on a caller-provided listener. It owns ln and closes it on
// return.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	cctx, stopChecker := context.WithCancel(ctx)
	defer stopChecker()
	go g.RunChecker(cctx)
	hs := &http.Server{
		Handler:           g.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	g.draining.Store(true)
	//lint:ignore ctxflow ctx is already done here; the grace window must outlive it to drain in-flight requests
	sctx, cancel := context.WithTimeout(context.Background(), g.cfg.ShutdownGrace)
	defer cancel()
	err := hs.Shutdown(sctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
