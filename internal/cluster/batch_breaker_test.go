package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSendChunkMarshalErrorReleasesProbeSlot pins the marshal-error
// cleanup path in sendChunk: scatter acquires the breaker's probe slot
// before handing the chunk over, and send() resolves it on every path it
// reaches — so an early exit before send must release the slot itself.
// Before the fix, a half-open breaker whose probe chunk failed to
// marshal stayed half-open forever: every later Acquire returned false
// and the backend was never probed again (the same leak class as the
// PR-5 probe-slot bug siwad-lint's pairup analyzer exists to catch).
func TestSendChunkMarshalErrorReleasesProbeSlot(t *testing.T) {
	orig := marshalBatchRequest
	marshalBatchRequest = func(any) ([]byte, error) { return nil, errors.New("injected marshal failure") }
	defer func() { marshalBatchRequest = orig }()

	br := NewBreaker(1, time.Minute)
	now := time.Now()
	br.now = func() time.Time { return now }
	br.Fail() // trip to open
	now = now.Add(2 * time.Minute)
	if !br.Acquire() { // as scatter does before calling sendChunk
		t.Fatal("expected the half-open probe slot")
	}

	g := &Gateway{}
	b := &backend{name: "http://replica", breaker: br}
	chunk := []batchItem{{idx: 0, prog: service.BatchProgram{ID: "p1", Source: "task main { }"}}}
	results := make([]service.BatchResult, 1)
	g.sendChunk(context.Background(), b, batchMeta{}, chunk, results, 0)

	if results[0].ErrorCode != service.CodeInternal {
		t.Fatalf("results[0].ErrorCode = %q, want %q", results[0].ErrorCode, service.CodeInternal)
	}
	if !br.Acquire() {
		t.Fatal("probe slot leaked: breaker stuck half-open after the marshal-error path")
	}
	br.Release()
}
