package cluster

import (
	"context"
	"time"
)

// The deadline budget is the end-to-end time the client gave this request
// (timeoutMs, or the gateway default), carried through the proxy path as
// an absolute deadline so every stage can ask "how much is left?". It
// rides in a context VALUE — not the context deadline alone — because the
// single-flight leader detaches from its request context with
// context.WithoutCancel, which drops the deadline but keeps values: the
// leader still knows the budget it is working under even though its
// cancellation is decoupled from the client that started it.
//
// Every upstream request carries the remaining budget in the
// X-Deadline-Ms header (a duration, not a wall-clock timestamp, so clock
// skew between gateway and replica cannot corrupt it), and the replica
// adopts it as its context deadline: no replica computes past the
// caller's deadline, and a budget already too small to be worth admitting
// is shed before any work starts.

// budgetKey carries the absolute deadline in the context.
type budgetKey struct{}

// withBudget attaches the request's absolute deadline to ctx.
func withBudget(ctx context.Context, deadline time.Time) context.Context {
	return context.WithValue(ctx, budgetKey{}, deadline)
}

// remainingBudget reports how much of the request's deadline budget is
// left. ok is false when the request carries no budget (direct callers of
// internal helpers, health probes).
func remainingBudget(ctx context.Context) (time.Duration, bool) {
	deadline, ok := ctx.Value(budgetKey{}).(time.Time)
	if !ok {
		return 0, false
	}
	return time.Until(deadline), true
}

// minAttemptHeadroom is the smallest remaining budget worth spending on
// another network attempt: below it, retries and hedges stop and the
// request's current outcome stands.
const minAttemptHeadroom = 5 * time.Millisecond

// budgetFor resolves a client-requested timeoutMs (already validated
// non-negative) against the gateway's default and clamp, mirroring the
// replica's own resolution so the two tiers agree on the budget.
func (c Config) budgetFor(timeoutMs int64) time.Duration {
	d := c.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > c.MaxTimeout {
		d = c.MaxTimeout
	}
	return d
}
