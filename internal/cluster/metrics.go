package cluster

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/obs"
)

// BackendMetrics holds one replica's per-backend counters and the
// request-latency histogram, all updated atomically.
type BackendMetrics struct {
	Name     string
	Requests atomic.Uint64 // upstream requests attempted (probes excluded)
	Failures atomic.Uint64 // transport-level failures (fed the breaker)
	Latency  *obs.Histogram
}

// Metrics holds the gateway counters, exported by GET /metrics in the
// same hand-rolled Prometheus text format the replicas use.
type Metrics struct {
	RequestsAnalyze atomic.Uint64 // POST /v1/analyze requests received
	RequestsBatch   atomic.Uint64 // POST /v1/analyze/batch requests received
	Dedup           atomic.Uint64 // analyze calls served by single-flight sharing
	Retries         atomic.Uint64 // upstream 429/503 responses retried
	Unavailable     atomic.Uint64 // requests/items that found no reachable backend
	Panics          atomic.Uint64 // panics recovered in gateway handlers

	Hedges               atomic.Uint64 // speculative attempts launched for slow primaries
	HedgeWins            atomic.Uint64 // hedged attempts whose answer was relayed
	RetryBudgetExhausted atomic.Uint64 // retries suppressed by an empty retry budget

	ItemsOK          atomic.Uint64 // batch items proxied successfully
	ItemsError       atomic.Uint64 // batch items with an upstream error code
	ItemsUnavailable atomic.Uint64 // batch items lost to a dead replica

	perBackend map[string]*BackendMetrics
	order      []string // stable exposition order = config order
}

func newMetrics(g *Gateway) *Metrics {
	m := &Metrics{perBackend: make(map[string]*BackendMetrics, len(g.backends))}
	for _, b := range g.backends {
		m.perBackend[b.name] = &BackendMetrics{
			Name:    b.name,
			Latency: obs.NewHistogram(obs.LatencyBuckets()...),
		}
		m.order = append(m.order, b.name)
	}
	return m
}

// backend returns the per-backend metric block (fixed at construction).
func (m *Metrics) backend(name string) *BackendMetrics { return m.perBackend[name] }

// WriteTo renders the exposition. Families and label sets come out in a
// fixed order (config order for backends) so scrapes are reproducible.
func (m *Metrics) WriteTo(w io.Writer, g *Gateway) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP siwa_gateway_requests_total requests received by the gateway\n# TYPE siwa_gateway_requests_total counter\n")
	fmt.Fprintf(w, "siwa_gateway_requests_total{endpoint=%q} %d\n", "analyze", m.RequestsAnalyze.Load())
	fmt.Fprintf(w, "siwa_gateway_requests_total{endpoint=%q} %d\n", "batch", m.RequestsBatch.Load())
	counter("siwa_gateway_singleflight_dedup_total", "analyze requests served by sharing an identical in-flight upstream call", m.Dedup.Load())
	counter("siwa_gateway_retries_total", "upstream 429/503 responses retried with backoff", m.Retries.Load())
	counter("siwa_gateway_unavailable_total", "requests or batch items that found no reachable backend", m.Unavailable.Load())
	counter("siwa_gateway_panics_total", "panics recovered in gateway handlers", m.Panics.Load())
	counter("siwa_gateway_hedges_total", "speculative attempts launched for slow primaries", m.Hedges.Load())
	counter("siwa_gateway_hedge_wins_total", "hedged attempts whose answer was relayed to the client", m.HedgeWins.Load())
	counter("siwa_gateway_retry_budget_exhausted_total", "retries suppressed because the retry budget was empty", m.RetryBudgetExhausted.Load())
	if g.retryBudget != nil {
		fmt.Fprintf(w, "# HELP siwa_gateway_retry_budget_tokens retry tokens available\n# TYPE siwa_gateway_retry_budget_tokens gauge\n")
		fmt.Fprintf(w, "siwa_gateway_retry_budget_tokens{scope=%q} %g\n", "global", g.retryBudget.Tokens())
		for _, b := range g.backends {
			fmt.Fprintf(w, "siwa_gateway_retry_budget_tokens{scope=%q} %g\n", b.name, b.retry.Tokens())
		}
	}
	fmt.Fprintf(w, "# HELP siwa_gateway_batch_items_total per-item outcomes inside proxied batches\n# TYPE siwa_gateway_batch_items_total counter\n")
	fmt.Fprintf(w, "siwa_gateway_batch_items_total{outcome=%q} %d\n", "ok", m.ItemsOK.Load())
	fmt.Fprintf(w, "siwa_gateway_batch_items_total{outcome=%q} %d\n", "error", m.ItemsError.Load())
	fmt.Fprintf(w, "siwa_gateway_batch_items_total{outcome=%q} %d\n", "unavailable", m.ItemsUnavailable.Load())

	fmt.Fprintf(w, "# HELP siwa_gateway_backend_requests_total upstream requests per backend\n# TYPE siwa_gateway_backend_requests_total counter\n")
	for _, name := range m.order {
		fmt.Fprintf(w, "siwa_gateway_backend_requests_total{backend=%q} %d\n", name, m.perBackend[name].Requests.Load())
	}
	fmt.Fprintf(w, "# HELP siwa_gateway_backend_failures_total transport-level failures per backend\n# TYPE siwa_gateway_backend_failures_total counter\n")
	for _, name := range m.order {
		fmt.Fprintf(w, "siwa_gateway_backend_failures_total{backend=%q} %d\n", name, m.perBackend[name].Failures.Load())
	}
	fmt.Fprintf(w, "# HELP siwa_gateway_backend_up latest active health probe verdict (1 up, 0 down)\n# TYPE siwa_gateway_backend_up gauge\n")
	for _, b := range g.backends {
		up := 0
		if b.up.Load() {
			up = 1
		}
		fmt.Fprintf(w, "siwa_gateway_backend_up{backend=%q} %d\n", b.name, up)
	}
	fmt.Fprintf(w, "# HELP siwa_gateway_breaker_state circuit breaker state per backend (0 closed, 1 open, 2 half-open)\n# TYPE siwa_gateway_breaker_state gauge\n")
	for _, b := range g.backends {
		fmt.Fprintf(w, "siwa_gateway_breaker_state{backend=%q} %d\n", b.name, int(b.breaker.State()))
	}
	fmt.Fprintf(w, "# HELP siwa_gateway_ring_ownership_millionths fraction of the hash keyspace owned, in millionths\n# TYPE siwa_gateway_ring_ownership_millionths gauge\n")
	own := g.ring.Ownership()
	for i, name := range m.order {
		fmt.Fprintf(w, "siwa_gateway_ring_ownership_millionths{backend=%q} %d\n", name, int64(own[i]*1e6+0.5))
	}
	fmt.Fprintf(w, "# HELP siwa_gateway_backend_request_seconds upstream request wall time by backend\n# TYPE siwa_gateway_backend_request_seconds histogram\n")
	for _, name := range m.order {
		m.perBackend[name].Latency.WriteProm(w, "siwa_gateway_backend_request_seconds", "backend", name)
	}
}
