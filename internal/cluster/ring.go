package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Digest is the routing key for one program: the SHA-256 of its source
// text. It is the same content address the replica result cache hashes
// (the replica folds options into its cache key on top), so routing by
// Digest sends every option-variant of one program to the replica that
// already holds its results — near-perfect cache affinity.
type Digest [sha256.Size]byte

// DigestOf content-addresses a program source for routing.
func DigestOf(source string) Digest { return sha256.Sum256([]byte(source)) }

// ringPoint is one virtual node: a position on the hash circle owned by a
// backend index.
type ringPoint struct {
	hash    uint64
	backend int
}

// Ring is a consistent-hash ring over a fixed backend list. Each backend
// contributes vnodes virtual points, hashed from its name, so ownership
// is deterministic across processes and restarts: two gateways configured
// with the same backend names route every digest identically. Membership
// health is deliberately not the ring's business — the ring is immutable,
// and callers walk Candidates to skip unhealthy backends, which yields
// the classic consistent-hash rebalance: when a backend dies, each of its
// keys moves to that key's own clockwise successor, and keys owned by
// healthy backends do not move at all.
type Ring struct {
	names  []string
	points []ringPoint
}

// NewRing builds the ring for the given backend names with vnodes virtual
// points per backend (vnodes < 1 is raised to 1).
func NewRing(names []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for bi, name := range names {
		for v := 0; v < vnodes; v++ {
			h := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", name, v)))
			r.points = append(r.points, ringPoint{
				hash:    binary.BigEndian.Uint64(h[:8]),
				backend: bi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between different backends' vnode
		// hashes is astronomically unlikely; break the tie by name so
		// ordering stays deterministic anyway.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// Backends reports how many backends the ring spans.
func (r *Ring) Backends() int { return len(r.names) }

// start returns the index into points where the clockwise walk for d
// begins: the first point at or after the digest's position, wrapping.
func (r *Ring) start(d Digest) int {
	h := binary.BigEndian.Uint64(d[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the backend index that owns d when every backend is
// eligible.
func (r *Ring) Owner(d Digest) int { return r.points[r.start(d)].backend }

// Candidates returns every backend index exactly once, ordered by the
// clockwise walk from d's ring position: Candidates(d)[0] is the owner,
// and when the first k candidates are dead, Candidates(d)[k] is exactly
// where consistent hashing moves the key. Callers take the first eligible
// entry.
func (r *Ring) Candidates(d Digest) []int {
	out := make([]int, 0, len(r.names))
	seen := make([]bool, len(r.names))
	start := r.start(d)
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// Ownership reports the fraction of the 64-bit hash keyspace each backend
// owns (summing to 1). Exported on /metrics so an operator can see a
// pathological vnode layout instead of inferring it from load skew.
func (r *Ring) Ownership() []float64 {
	own := make([]float64, len(r.names))
	if len(r.points) == 1 {
		own[r.points[0].backend] = 1
		return own
	}
	const whole = float64(1<<63) * 2 // 2^64
	for i, p := range r.points {
		// The arc (previous point, p] lands on p's backend; the i==0 arc
		// wraps past zero, which uint64 subtraction handles for free.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		own[p.backend] += float64(p.hash-prev) / whole
	}
	return own
}
