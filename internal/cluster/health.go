package cluster

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// probe checks one replica's liveness AND readiness: /healthz proves the
// process is alive, /readyz proves it is accepting new work (a draining
// replica answers 503 there while it finishes in-flight requests, and
// must stop receiving traffic before it disappears). Both must be 200.
func (g *Gateway) probe(ctx context.Context, b *backend) bool {
	for _, path := range []string{"/healthz", "/readyz"} {
		pctx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
		ok := func() bool {
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.name+path, nil)
			if err != nil {
				return false
			}
			resp, err := g.client.Do(req)
			if err != nil {
				return false
			}
			resp.Body.Close()
			return resp.StatusCode == http.StatusOK
		}()
		cancel()
		if !ok {
			return false
		}
	}
	return true
}

// CheckNow probes every backend once, in parallel, and updates their
// up/down state. Tests call it directly for deterministic health
// transitions; RunChecker calls it on a timer.
func (g *Gateway) CheckNow(ctx context.Context) {
	done := make(chan struct{}, len(g.backends))
	for _, b := range g.backends {
		go func(b *backend) {
			defer func() { done <- struct{}{} }()
			up := g.probe(ctx, b)
			was := b.up.Swap(up)
			if was != up && g.cfg.Logger != nil {
				level := slog.LevelWarn
				if up {
					level = slog.LevelInfo
				}
				g.cfg.Logger.LogAttrs(ctx, level, "backend health changed",
					slog.String("backend", b.name), slog.Bool("up", up))
			}
		}(b)
	}
	for range g.backends {
		<-done
	}
}

// RunChecker probes immediately and then every HealthInterval until ctx
// is cancelled.
func (g *Gateway) RunChecker(ctx context.Context) {
	g.CheckNow(ctx)
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.CheckNow(ctx)
		}
	}
}
