package cluster

import (
	"context"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Hedged requests bound tail latency when one replica browns out: if the
// digest's owner has not answered within its own observed latency at the
// configured percentile, the gateway issues one speculative attempt to
// the next ring candidate and takes whichever answers first, cancelling
// the loser. Hedging is safe here by construction — analyses are pure
// functions of (source, options), results are content-addressed, and the
// replica caches make a duplicate attempt nearly free — so the only real
// cost is the extra request, which is charged to the retry budget:
// hedges are disabled when the budget runs low, so speculation never
// competes with genuine retries during an outage.

const (
	// hedgeMinSamples is how many latency observations a backend needs
	// before its own histogram drives the hedge delay.
	hedgeMinSamples = 16
	// hedgeFallbackDelay is the hedge delay for a cold backend.
	hedgeFallbackDelay = 100 * time.Millisecond
)

// hedgeEnabled reports whether this request may hedge: hedging is
// configured on, the request is a single analyze (batch chunks have their
// own re-scatter machinery), there is a second candidate to hedge to, and
// the retry budget is not running low.
func (g *Gateway) hedgeEnabled(path string, elig []*backend) bool {
	return g.cfg.HedgePercentile > 0 &&
		path == "/v1/analyze" &&
		len(elig) >= 2 &&
		!g.retryBudget.Low()
}

// hedgeDelay is how long the primary gets before the hedge fires: its own
// latency at the configured percentile, once enough samples exist.
func (g *Gateway) hedgeDelay(primary *backend) time.Duration {
	s := g.metrics.backend(primary.name).Latency.Snapshot()
	if s.Count < hedgeMinSamples {
		return hedgeFallbackDelay
	}
	d := time.Duration(s.Quantile(float64(g.cfg.HedgePercentile)/100) * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// pickHedge chooses and charges the hedge target: the first non-primary
// candidate whose breaker slot and retry tokens are both available. nil
// means no hedge this time.
func (g *Gateway) pickHedge(ctx context.Context, elig []*backend, primary *backend) *backend {
	if rem, ok := remainingBudget(ctx); ok && rem < minAttemptHeadroom {
		return nil // the deadline will kill the hedge before it helps
	}
	for _, b := range elig {
		if b == primary {
			continue
		}
		if !b.breaker.Acquire() {
			continue
		}
		if !g.trySpendRetry(b) {
			b.breaker.Release()
			return nil
		}
		return b
	}
	return nil
}

// attemptResult is one attempt's outcome crossing back to the
// coordinating goroutine. idx 0 is the primary, 1 the hedge.
type attemptResult struct {
	idx int
	res *upstream
	err error
}

// usable reports whether an attempt produced an answer worth relaying.
func (r *attemptResult) usable() bool {
	return r != nil && r.err == nil && !retryable(r.res.status)
}

// hedgedAttempt runs the first routing attempt with one speculative
// backup: the primary is sent immediately; if it has not answered within
// hedgeDelay, one hedge goes to the next candidate and the first usable
// answer wins, the loser's context is cancelled, and its send is drained
// before returning so nothing outlives the attempt.
//
// Concurrency contract with obs.Span: each attempt's span is created,
// attributed, and ended by THIS goroutine only. The sender goroutines
// receive the span purely for traceparent injection (immutable id reads)
// plus send's deadline_ms counter, and every such write is sequenced
// before this goroutine's End by the result-channel receive.
func (g *Gateway) hedgedAttempt(ctx context.Context, elig []*backend, path string, body []byte, reqID string, root *obs.Span) (*upstream, error) {
	primary := elig[0]
	pname := attemptSpanName(primary, 0)
	if !primary.breaker.Acquire() {
		return nil, errProbeLost
	}
	results := make(chan attemptResult, 2) // buffered: a loser's late send never blocks
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	psp := root.StartChild(pname)
	psp.SetAttr("backend", primary.name)
	psp.Set("attempt", 0)
	go func() {
		res, err := g.send(pctx, primary, http.MethodPost, path, body, reqID, psp)
		results <- attemptResult{idx: 0, res: res, err: err}
	}()

	// Phase 1: give the primary its hedge window.
	timer := time.NewTimer(g.hedgeDelay(primary))
	defer timer.Stop()
	select {
	case r := <-results:
		finishAttemptSpan(psp, r.res, r.err)
		return g.finishUnhedged(ctx, primary, r)
	case <-ctx.Done():
		pcancel()
		r := <-results
		finishAttemptSpan(psp, r.res, r.err)
		return nil, ctx.Err()
	case <-timer.C:
	}

	// Phase 2: the primary is slow — launch the hedge if a candidate and
	// the budget allow.
	hedge := g.pickHedge(ctx, elig, primary)
	if hedge == nil {
		r := <-results
		finishAttemptSpan(psp, r.res, r.err)
		return g.finishUnhedged(ctx, primary, r)
	}
	g.metrics.Hedges.Add(1)
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hsp := root.StartChild("hedge")
	hsp.SetAttr("backend", hedge.name)
	hsp.Set("attempt", 0)
	go func() {
		res, err := g.send(hctx, hedge, http.MethodPost, path, body, reqID, hsp)
		results <- attemptResult{idx: 1, res: res, err: err}
	}()

	spans := [2]*obs.Span{psp, hsp}
	cancels := [2]context.CancelFunc{pcancel, hcancel}
	first := <-results
	if first.usable() {
		// Cancel and drain the loser before touching either span: the
		// drain sequences the loser goroutine's last span write before the
		// Ends below.
		cancels[1-first.idx]()
		loser := <-results
		finishAttemptSpan(spans[first.idx], first.res, first.err)
		finishAttemptSpan(spans[loser.idx], loser.res, loser.err)
		spans[loser.idx].SetAttr("hedge_outcome", "cancelled")
		if first.idx == 1 {
			g.metrics.HedgeWins.Add(1)
		}
		return first.res, nil
	}
	// The first answer was a shed/timeout/transport failure: the other
	// attempt is still live and may yet produce a real answer — wait for
	// it rather than burning a retry.
	second := <-results
	finishAttemptSpan(spans[first.idx], first.res, first.err)
	finishAttemptSpan(spans[second.idx], second.res, second.err)
	if second.usable() {
		if second.idx == 1 {
			g.metrics.HedgeWins.Add(1)
		}
		return second.res, nil
	}
	// Neither attempt produced a usable answer: surface the PRIMARY's
	// outcome so hedging never changes the failure semantics the retry
	// loop and the client see.
	p := first
	if p.idx != 0 {
		p = second
	}
	return g.finishUnhedged(ctx, primary, p)
}

// finishUnhedged maps a lone attempt's outcome onto the routing loop's
// contract, mirroring attemptOne's error mapping.
func (g *Gateway) finishUnhedged(ctx context.Context, b *backend, r attemptResult) (*upstream, error) {
	if r.err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &unavailableError{backend: b.name, err: r.err}
	}
	return r.res, nil
}
