package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/workload"
)

// hostOf extracts the HOST:PORT part of an httptest base URL, for
// host-qualified network fault points.
func hostOf(t *testing.T, url string) string {
	t.Helper()
	host, ok := strings.CutPrefix(url, "http://")
	if !ok {
		t.Fatalf("unexpected test URL %q", url)
	}
	return host
}

// TestGatewayChaosBrownout is the overload-resilience acceptance test:
// one of three replicas browns out — every byte toward it stalls 800ms
// at the injected network layer, the failure mode breakers cannot see
// (the replica is healthy, the wire is slow) — while clients call with a
// 2s end-to-end deadline budget. Hedging must bound the tail: every
// request for a digest the browned replica owns completes via a
// speculative attempt to the next ring candidate in a small fraction of
// the brownout latency. And no replica may do work the deadline already
// orphaned: the browned replica serves zero analyses (its cancelled
// primaries never get past the stalled wire), and every span retained on
// the survivors starts and ends inside the budget window.
func TestGatewayChaosBrownout(t *testing.T) {
	defer fault.Reset()
	f := newFleet(t, 3, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{
		HedgePercentile:  95,
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 20,
		MaxRetries:       2,
		RetryBackoff:     time.Millisecond,
	})

	const browned = 0
	const brownout = 800 * time.Millisecond
	fault.Set("gateway.net.latency@"+fault.HostKey(hostOf(t, f.urls[browned])),
		fault.Mode{Kind: fault.KindDelay, Delay: brownout})

	// Programs the browned replica owns: every request's primary attempt
	// routes into the stalled wire.
	var sources []string
	for n := 2; n < 400 && len(sources) < 5; n++ {
		src := workload.Ring(n).String()
		if g.Ring().Candidates(DigestOf(src))[0] == browned {
			sources = append(sources, src)
		}
	}
	if len(sources) < 5 {
		t.Fatalf("only %d sample programs route to backend %d; widen the workload", len(sources), browned)
	}

	testStart := time.Now()
	var worst time.Duration
	var lastDeadline time.Time
	for _, src := range sources {
		reqStart := time.Now()
		lastDeadline = reqStart.Add(2 * time.Second)
		resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src, TimeoutMs: 2000})
		if elapsed := time.Since(reqStart); elapsed > worst {
			worst = elapsed
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze during brownout: status=%d body=%s", resp.StatusCode, data)
		}
	}
	// The hedge fires at the cold-backend fallback delay (100ms), far
	// below the 800ms the primary is stuck for: even the slowest request
	// must beat the brownout latency outright.
	if worst >= brownout {
		t.Fatalf("worst request took %v with an %v brownout; hedging failed to bound the tail", worst, brownout)
	}
	if hedges := g.Metrics().Hedges.Load(); hedges < uint64(len(sources)) {
		t.Fatalf("hedges=%d, want >= %d (every browned-owner request should hedge)", hedges, len(sources))
	}
	if wins := g.Metrics().HedgeWins.Load(); wins < uint64(len(sources)) {
		t.Fatalf("hedge_wins=%d, want >= %d", wins, len(sources))
	}

	// Zero post-deadline (indeed, zero) work on the browned replica: the
	// injected stall sits before its requests leave the gateway, and the
	// hedge win cancels each primary long before the stall elapses.
	if got := f.wraps[browned].analyzeCalls(); got != 0 {
		t.Fatalf("browned replica served %d analyzes; cancelled primaries must not reach it", got)
	}
	// The survivors' retained spans all fit inside the deadline window.
	for i, srv := range f.servers {
		for _, rec := range srv.Exporter().List().Traces {
			if rec.Start.Before(testStart) {
				continue // retained from another test's server reuse (none today, but cheap to guard)
			}
			end := rec.Start.Add(time.Duration(rec.DurationMs * float64(time.Millisecond)))
			if end.After(lastDeadline) {
				t.Fatalf("replica %d trace %s ran until %v, past the last request deadline %v",
					i, rec.TraceID, end, lastDeadline)
			}
		}
	}

	// The gateway's view of the ordeal is priced honestly: speculation was
	// charged to the retry budget, and with every hedge answered the
	// bucket never hit empty.
	if got := g.Metrics().RetryBudgetExhausted.Load(); got != 0 {
		t.Fatalf("retry_budget_exhausted=%d during a hedged brownout, want 0", got)
	}
}

// TestGatewayHedgeChargesRetryBudget pins the speculation price: a
// drained retry budget disables hedging entirely, so the brownout
// latency comes back to the client instead of a hedge racing it.
func TestGatewayHedgeChargesRetryBudget(t *testing.T) {
	defer fault.Reset()
	f := newFleet(t, 3, service.Config{})
	g, gts := newTestGateway(t, f.urls, Config{
		HedgePercentile:  95,
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 4,
		MaxRetries:       -1,
	})
	const browned = 0
	fault.Set("gateway.net.latency@"+fault.HostKey(hostOf(t, f.urls[browned])),
		fault.Mode{Kind: fault.KindDelay, Delay: 300 * time.Millisecond})

	// Drain the bucket below the Low watermark by hand.
	for g.retryBudget.Tokens() >= 2 {
		g.retryBudget.TrySpend()
	}
	src := ownedBy(t, g, browned)
	start := time.Now()
	resp, data := postJSON(t, gts.URL+"/v1/analyze", service.AnalyzeRequest{Source: src, TimeoutMs: 2000})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if got := g.Metrics().Hedges.Load(); got != 0 {
		t.Fatalf("hedges=%d with a low retry budget, want 0 (speculation must not compete with retries)", got)
	}
	if elapsed < 300*time.Millisecond {
		t.Fatalf("request finished in %v; with hedging off it must ride out the %v stall", elapsed, 300*time.Millisecond)
	}
}

// TestGatewayDeadlineBudgetShedsAtReplica pins the end-to-end deadline
// propagation contract: the gateway derives a budget from the client's
// timeoutMs, forwards the remainder via X-Deadline-Ms, and a replica
// whose admission floor exceeds that budget refuses the work before any
// analysis starts — a deliberate, counted shed, not a timeout discovered
// the slow way.
func TestGatewayDeadlineBudgetShedsAtReplica(t *testing.T) {
	f := newFleet(t, 1, service.Config{DeadlineFloor: 2 * time.Second})
	_, gts := newTestGateway(t, f.urls, Config{MaxRetries: -1})

	resp, data := postJSON(t, gts.URL+"/v1/analyze",
		service.AnalyzeRequest{Source: workload.Ring(3).String(), TimeoutMs: 1000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	eb := decodeError(t, data)
	if eb.Code != service.CodeTimeout {
		t.Fatalf("code=%q, want %q", eb.Code, service.CodeTimeout)
	}
	if !strings.Contains(eb.Message, "below admission floor") {
		t.Fatalf("message %q does not name the admission floor", eb.Message)
	}
	if got := f.servers[0].Metrics().DeadlineShed.Load(); got != 1 {
		t.Fatalf("replica deadline_shed=%d, want 1", got)
	}
	if got := f.servers[0].Metrics().Analyses.Load(); got != 0 {
		t.Fatalf("replica ran %d analyses for a dead-on-arrival budget, want 0", got)
	}
	code, text := getBody(t, f.urls[0]+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("replica /metrics status=%d", code)
	}
	if got := promCounter(t, text, "siwa_deadline_shed_total"); got != 1 {
		t.Fatalf("siwa_deadline_shed_total=%d, want 1", got)
	}

	// A budget above the floor clears admission and analyzes normally.
	resp2, data2 := postJSON(t, gts.URL+"/v1/analyze",
		service.AnalyzeRequest{Source: workload.Ring(3).String(), TimeoutMs: 10_000})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("ample budget: status=%d body=%s", resp2.StatusCode, data2)
	}
	if got := f.servers[0].Metrics().Analyses.Load(); got != 1 {
		t.Fatalf("replica analyses=%d after an admitted request, want 1", got)
	}
}

// TestGatewayBatchDeadlineDecrement pins the re-scatter budget fix: a
// sub-batch re-sent after upstream pushback carries the time REMAINING
// in the batch's budget, never the client's original timeoutMs verbatim
// — while a negative timeoutMs (left for the replica to reject) does
// relay verbatim, so the replica's validation error stays authoritative.
func TestGatewayBatchDeadlineDecrement(t *testing.T) {
	var mu sync.Mutex
	var seen []int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/analyze/batch" {
			w.WriteHeader(http.StatusOK)
			return
		}
		var req service.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("stub: bad sub-batch body: %v", err)
		}
		mu.Lock()
		seen = append(seen, req.TimeoutMs)
		n := len(seen)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if n == 1 {
			// First pass: burn a visible slice of the budget, then shed the
			// whole chunk so the gateway re-scatters it.
			time.Sleep(300 * time.Millisecond)
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"shed","message":"synthetic shed"}}`)
			return
		}
		results := make([]service.BatchResult, len(req.Programs))
		for i, p := range req.Programs {
			results[i] = service.BatchResult{ID: p.ID, Report: json.RawMessage(`{"x":1}`)}
		}
		json.NewEncoder(w).Encode(service.BatchResponse{Results: results})
	}))
	defer stub.Close()
	_, gts := newTestGateway(t, []string{stub.URL}, Config{RetryBackoff: time.Millisecond})

	resp, data := postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{
		Programs:  []service.BatchProgram{{ID: "p0", Source: "task main { }"}},
		TimeoutMs: 2000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d body=%s", resp.StatusCode, data)
	}
	var br service.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil || len(br.Results) != 1 || br.Results[0].ErrorCode != "" {
		t.Fatalf("re-scattered batch did not recover: %s", data)
	}
	mu.Lock()
	got := append([]int64(nil), seen...)
	mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("stub saw %d sub-batches, want 2 (original + re-scatter)", len(got))
	}
	if got[0] < 1500 || got[0] > 2000 {
		t.Fatalf("first pass timeoutMs=%d, want ~2000 (the whole budget)", got[0])
	}
	if got[1] < 1 {
		t.Fatalf("re-scattered timeoutMs=%d; 0 would mean \"replica default\" on the wire", got[1])
	}
	if got[1] > got[0]-250 {
		t.Fatalf("re-scattered timeoutMs=%d after first pass %d: 300ms of elapsed budget not decremented",
			got[1], got[0])
	}

	// Negative timeoutMs: no budget is derived and the value relays
	// verbatim for the replica to reject.
	resp2, _ := postJSON(t, gts.URL+"/v1/analyze/batch", service.BatchRequest{
		Programs:  []service.BatchProgram{{ID: "p1", Source: "task main { }"}},
		TimeoutMs: -7,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stub relay status=%d", resp2.StatusCode)
	}
	mu.Lock()
	last := seen[len(seen)-1]
	mu.Unlock()
	if last != -7 {
		t.Fatalf("negative timeoutMs relayed as %d, want -7 verbatim", last)
	}
}
