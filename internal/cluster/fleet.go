package cluster

import (
	"bufio"
	"context"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// StageQuantiles are latency quantiles for one pipeline stage, estimated
// from the replica's cumulative histogram buckets (linear interpolation
// inside the bucket that crosses each quantile, clamped to the last
// finite bound for tail samples in the +Inf bucket).
type StageQuantiles struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// FleetBackend is one replica's merged snapshot inside /v1/fleet/status.
type FleetBackend struct {
	Backend string `json:"backend"`
	// Up is the gateway's latest active-probe verdict; Breaker the
	// circuit-breaker state. Both are gateway-side facts, present even
	// when the scrape below failed.
	Up      bool   `json:"up"`
	Breaker string `json:"breaker"`
	// RingShare is the fraction of the hash keyspace this replica owns.
	RingShare float64 `json:"ringShare"`
	// Error reports a failed /metrics or /readyz scrape; the fields below
	// are zero when set.
	Error string `json:"error,omitempty"`
	Ready bool   `json:"ready"`
	// Replica-reported load and cache facts, scraped from /metrics.
	CacheHitRate float64 `json:"cacheHitRate"`
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	Analyses     uint64  `json:"analyses"`
	Workers      int64   `json:"workers"`
	WorkersBusy  int64   `json:"workersBusy"`
	QueueDepth   int64   `json:"queueDepth"`
	Queued       int64   `json:"queued"`
	// Stages maps pipeline stage name to estimated latency quantiles,
	// from the siwa_analyze_stage_seconds histograms.
	Stages map[string]StageQuantiles `json:"stages,omitempty"`
}

// FleetStatus is the GET /v1/fleet/status body: one merged answer to "is
// the fleet healthy and balanced".
type FleetStatus struct {
	Backends []FleetBackend `json:"backends"`
	Total    int            `json:"total"`
	Eligible int            `json:"eligible"`
}

// handleFleetStatus scrapes every backend's /metrics and /readyz in
// parallel and merges them with the gateway's own view (probe verdicts,
// breaker states, ring ownership) into one JSON snapshot.
func (g *Gateway) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	own := g.ring.Ownership()
	out := FleetStatus{Backends: make([]FleetBackend, len(g.backends)), Total: len(g.backends)}
	var wg sync.WaitGroup
	for i, b := range g.backends {
		out.Backends[i] = FleetBackend{
			Backend:   b.name,
			Up:        b.up.Load(),
			Breaker:   b.breaker.State().String(),
			RingShare: own[i],
		}
		if b.eligible() {
			out.Eligible++
		}
		wg.Add(1)
		go func(fb *FleetBackend, b *backend) {
			defer wg.Done()
			g.scrapeBackend(r.Context(), fb, b)
		}(&out.Backends[i], b)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// scrapeBackend fills fb from one replica's /readyz and /metrics. Debug
// traffic: bounded by the health timeout, never fed to the breaker.
func (g *Gateway) scrapeBackend(ctx context.Context, fb *FleetBackend, b *backend) {
	cctx, cancel := context.WithTimeout(ctx, 2*g.cfg.HealthTimeout)
	defer cancel()
	ready, err := g.scrapeGet(cctx, b.name+"/readyz")
	if err != nil {
		fb.Error = err.Error()
		return
	}
	fb.Ready = ready.status == http.StatusOK
	metrics, err := g.scrapeGet(cctx, b.name+"/metrics")
	if err != nil {
		fb.Error = err.Error()
		return
	}
	samples := parsePromText(metrics.body)
	hits := samples.value("siwa_cache_hits_total", nil)
	misses := samples.value("siwa_cache_misses_total", nil)
	if hits+misses > 0 {
		fb.CacheHitRate = hits / (hits + misses)
	}
	fb.CacheHits = uint64(hits)
	fb.CacheMisses = uint64(misses)
	fb.Analyses = uint64(samples.value("siwa_analyses_total", nil))
	fb.Workers = int64(samples.value("siwa_workers", nil))
	fb.WorkersBusy = int64(samples.value("siwa_workers_busy", nil))
	fb.QueueDepth = int64(samples.value("siwa_queue_depth", nil))
	fb.Queued = int64(samples.value("siwa_queued", nil))
	fb.Stages = stageQuantiles(samples)
}

// scrapeGet performs one plain GET without touching the breaker: scrape
// failures already surface in the response, and a debug endpoint must
// never push a loaded replica toward an open circuit.
func (g *Gateway) scrapeGet(ctx context.Context, url string) (*upstream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := readAllSized(resp.Body, resp.ContentLength)
	if err != nil {
		return nil, err
	}
	return &upstream{status: resp.StatusCode, body: data}, nil
}

// promSample is one parsed exposition line: name, label set, value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promSamples []promSample

// value returns the first sample matching name and every given label
// (nil labels = match any), or 0.
func (ps promSamples) value(name string, labels map[string]string) float64 {
	for _, s := range ps {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.value
		}
	}
	return 0
}

// parsePromText is a minimal Prometheus text-format parser: enough for
// the expositions the replicas produce (hand-rolled by internal/obs and
// internal/service, so the full grammar — escapes inside label values
// beyond \" and \\, exemplars, timestamps — is not needed).
func parsePromText(body []byte) promSamples {
	var out promSamples
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if s, ok := parsePromLine(line); ok {
			out = append(out, s)
		}
	}
	return out
}

func parsePromLine(line string) (promSample, bool) {
	var s promSample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, false
	}
	s.name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, false
		}
		s.labels = parsePromLabels(rest[1:close])
		rest = rest[close+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, false
	}
	s.value = v
	return s, true
}

func parsePromLabels(spec string) map[string]string {
	labels := make(map[string]string, 2)
	for len(spec) > 0 {
		eq := strings.Index(spec, "=")
		if eq < 0 || len(spec) < eq+2 || spec[eq+1] != '"' {
			break
		}
		key := spec[:eq]
		rest := spec[eq+2:]
		var b strings.Builder
		i := 0
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
			}
			b.WriteByte(rest[i])
			i++
		}
		labels[key] = b.String()
		spec = rest[i:]
		spec = strings.TrimPrefix(spec, `"`)
		spec = strings.TrimPrefix(spec, ",")
	}
	return labels
}

// stageQuantiles rebuilds each stage's cumulative histogram from the
// _bucket samples and estimates p50/p90/p99.
func stageQuantiles(samples promSamples) map[string]StageQuantiles {
	type bucket struct {
		le  float64
		inf bool
		n   uint64
	}
	byStage := make(map[string][]bucket)
	for _, s := range samples {
		if s.name != "siwa_analyze_stage_seconds_bucket" {
			continue
		}
		stage := s.labels["stage"]
		le := s.labels["le"]
		b := bucket{n: uint64(s.value)}
		if le == "+Inf" {
			b.inf = true
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			b.le = v
		}
		byStage[stage] = append(byStage[stage], b)
	}
	if len(byStage) == 0 {
		return nil
	}
	out := make(map[string]StageQuantiles, len(byStage))
	for stage, bs := range byStage {
		sort.SliceStable(bs, func(i, j int) bool {
			if bs[i].inf != bs[j].inf {
				return bs[j].inf
			}
			return bs[i].le < bs[j].le
		})
		bounds := make([]float64, 0, len(bs))
		cum := make([]uint64, 0, len(bs))
		for _, b := range bs {
			if !b.inf {
				bounds = append(bounds, b.le)
			}
			cum = append(cum, b.n)
		}
		if len(cum) == 0 || cum[len(cum)-1] == 0 {
			continue
		}
		out[stage] = StageQuantiles{
			Count: cum[len(cum)-1],
			P50Ms: quantileFromBuckets(bounds, cum, 0.50) * 1000,
			P90Ms: quantileFromBuckets(bounds, cum, 0.90) * 1000,
			P99Ms: quantileFromBuckets(bounds, cum, 0.99) * 1000,
		}
	}
	return out
}

// quantileFromBuckets estimates the q-quantile (in seconds) from
// cumulative bucket counts parsed out of a replica's exposition, by way
// of obs.HistogramSnapshot.Quantile — the same interpolation the hedging
// path uses on live histograms, so fleet-reported and hedge-observed
// percentiles can never disagree about what a bucket layout means.
func quantileFromBuckets(bounds []float64, cumulative []uint64, q float64) float64 {
	if len(cumulative) == 0 {
		return 0
	}
	return obs.HistogramSnapshot{
		Bounds:     bounds,
		Cumulative: cumulative,
		Count:      cumulative[len(cumulative)-1],
	}.Quantile(q)
}
