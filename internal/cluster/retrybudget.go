package cluster

import "sync"

// retryBudget is a token bucket that caps the retry (and hedge) ratio:
// every upstream success earns a fractional token, every retry spends a
// whole one, so sustained retries can never exceed ratio× the success
// rate plus the burst the bucket started with. During a blip the burst
// absorbs the retries and successes on the rerouted path keep the bucket
// topped up; during a brownout nothing succeeds, the bucket drains, and
// retries shut off instead of amplifying the overload.
//
// A nil *retryBudget is the "budgeting disabled" object: spends always
// succeed and the bucket is never low.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	limit  float64 // bucket capacity, also the initial fill (the burst)
	ratio  float64 // tokens earned per success
}

// newRetryBudget builds a bucket holding burst tokens that earns ratio
// per success.
func newRetryBudget(burst int, ratio float64) *retryBudget {
	return &retryBudget{tokens: float64(burst), limit: float64(burst), ratio: ratio}
}

// Earn credits one success.
func (rb *retryBudget) Earn() {
	if rb == nil {
		return
	}
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.limit {
		rb.tokens = rb.limit
	}
	rb.mu.Unlock()
}

// TrySpend takes one whole token for a retry, reporting whether the
// budget covered it. A bucket below one token refuses: partial tokens
// never fund a retry.
func (rb *retryBudget) TrySpend() bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// Refund returns a spent token (used when a paired spend on another
// bucket failed, so the retry never happened).
func (rb *retryBudget) Refund() {
	if rb == nil {
		return
	}
	rb.mu.Lock()
	rb.tokens++
	if rb.tokens > rb.limit {
		rb.tokens = rb.limit
	}
	rb.mu.Unlock()
}

// Low reports whether the bucket has drained below half capacity — the
// gate that disables speculative (hedged) requests while genuine retries
// still have room.
func (rb *retryBudget) Low() bool {
	if rb == nil {
		return false
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.tokens < rb.limit/2
}

// Tokens reports the current balance, for /metrics.
func (rb *retryBudget) Tokens() float64 {
	if rb == nil {
		return 0
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.tokens
}

// trySpendRetry takes one token from the global bucket and one from the
// target backend's; both must cover it or neither is charged.
func (g *Gateway) trySpendRetry(b *backend) bool {
	if g.retryBudget == nil {
		return true
	}
	if !g.retryBudget.TrySpend() {
		return false
	}
	if !b.retry.TrySpend() {
		g.retryBudget.Refund()
		return false
	}
	return true
}

// trySpendRetryGlobal charges the global bucket only — the batch
// re-scatter path, where the retried items fan back out across the ring
// and no single backend is the target.
func (g *Gateway) trySpendRetryGlobal() bool {
	if g.retryBudget == nil {
		return true
	}
	return g.retryBudget.TrySpend()
}
