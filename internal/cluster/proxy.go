package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

// upstream is one replica response, captured whole so it can be relayed
// byte-for-byte (and shared across single-flight waiters). Only the
// headers the gateway forwards are kept.
type upstream struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
	backend     string
	// budgetExhausted marks a response whose retries were cut off by the
	// retry budget rather than MaxRetries; relay surfaces it as the
	// X-Retry-Budget: exhausted header so clients can tell "the fleet is
	// shedding and the gateway stopped amplifying" from an ordinary 429.
	budgetExhausted bool
}

// relay writes an upstream response to the client unchanged: same status,
// same body bytes. The gateway never rewraps a well-formed upstream error.
func (u *upstream) relay(w http.ResponseWriter) {
	if u.contentType != "" {
		w.Header().Set("Content-Type", u.contentType)
	}
	if u.retryAfter != "" {
		w.Header().Set("Retry-After", u.retryAfter)
	}
	if u.budgetExhausted {
		w.Header().Set("X-Retry-Budget", "exhausted")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(u.body)))
	w.WriteHeader(u.status)
	w.Write(u.body)
}

// readAllSized is io.ReadAll with a capacity hint, so relaying a response
// whose length is known up front costs one allocation instead of a
// doubling growth chain.
func readAllSized(r io.Reader, sizeHint int64) ([]byte, error) {
	if sizeHint <= 0 || sizeHint > 1<<24 {
		return io.ReadAll(r)
	}
	buf := bytes.NewBuffer(make([]byte, 0, sizeHint+1))
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// unavailableError reports that a backend could not be reached at the
// transport level; the breaker has already been fed.
type unavailableError struct {
	backend string
	err     error
}

func (e *unavailableError) Error() string {
	return fmt.Sprintf("replica %s unreachable: %v", e.backend, e.err)
}

// errNoBackend means routing found no eligible backend at all.
var errNoBackend = errors.New("no healthy backend available")

// send performs one upstream request and resolves the backend's breaker
// slot on every path: any HTTP response (whatever the status) proves the
// replica reachable (Success); a transport error counts toward opening
// the circuit (Fail); a send abandoned by the caller's own context is
// released without judgment (Release). The fault point
// "gateway.forward" fires before the network touch, so chaos tests can
// slow or sever the proxy path without real packet loss.
//
// sp names the span covering this call: when the request is traced, the
// W3C traceparent header carries (trace id, sp's span id) upstream, so
// the replica's spans hang under exactly the routing attempt (or batch
// chunk) that caused them. Nil sp falls back to the request root; health
// probes bypass send entirely and stay untraced.
func (g *Gateway) send(ctx context.Context, b *backend, method, path string, body []byte, reqID string, sp *obs.Span) (*upstream, error) {
	bm := g.metrics.backend(b.name)
	bm.Requests.Add(1)
	start := time.Now()
	if err := fault.Inject("gateway.forward"); err != nil {
		bm.Failures.Add(1)
		b.breaker.Fail()
		return nil, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.name+path, rd)
	if err != nil {
		// Config bug: the backend was never contacted, so this proves
		// nothing about reachability either way — return the slot.
		b.breaker.Release()
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	if rem, ok := remainingBudget(ctx); ok {
		// Propagate the budget as a remaining duration (not a wall-clock
		// deadline), so replica clock skew cannot corrupt it. The replica
		// adopts it as its context deadline and sheds outright when it is
		// below the admission floor.
		ms := rem.Milliseconds()
		if ms < 0 {
			ms = 0
		}
		req.Header.Set(service.DeadlineHeader, strconv.FormatInt(ms, 10))
		sp.Set("deadline_ms", ms)
	}
	if tp := obs.TraceFromContext(ctx).Traceparent(sp); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The client went away or the deadline passed mid-send; that
			// says nothing about the backend. Return any half-open probe
			// slot Acquire consumed, or the breaker would be stuck.
			b.breaker.Release()
			return nil, ctx.Err()
		}
		bm.Failures.Add(1)
		b.breaker.Fail()
		return nil, err
	}
	data, err := readAllSized(resp.Body, resp.ContentLength)
	resp.Body.Close()
	if err != nil {
		if ctx.Err() != nil {
			b.breaker.Release()
			return nil, ctx.Err()
		}
		bm.Failures.Add(1)
		b.breaker.Fail()
		return nil, err
	}
	b.breaker.Success()
	bm.Latency.Observe(time.Since(start))
	if !retryable(resp.StatusCode) {
		// A useful answer funds future retries; a shed or timeout does not
		// (paying retry tokens out of pushback would let a drowning fleet
		// keep financing the retries that drown it).
		b.retry.Earn()
		g.retryBudget.Earn()
	}
	return &upstream{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        data,
		backend:     b.name,
	}, nil
}

// sleepRetry waits out the backoff before a retry attempt: the delay is
// drawn uniformly from [0, base<<attempt] (full jitter — a synchronized
// herd of clients whose replica just recovered must not all retry in the
// same instant and shed it again), and an upstream Retry-After hint
// overrides it (clamped to RetryAfterCap — the gateway holds a client
// connection while it waits, so it will not honor a multi-minute hint).
// Returns false if ctx expired first, or if the request's remaining
// deadline budget cannot cover the sleep plus another attempt — waiting
// out a backoff the deadline will kill anyway is pure waste.
func (g *Gateway) sleepRetry(ctx context.Context, attempt int, retryAfter string) bool {
	ceil := g.cfg.RetryBackoff << attempt
	d := time.Duration(rand.Int64N(int64(ceil) + 1))
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		if d > g.cfg.RetryAfterCap {
			d = g.cfg.RetryAfterCap
		}
	}
	if rem, ok := remainingBudget(ctx); ok && rem < d+minAttemptHeadroom {
		return false
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// errProbeLost is the internal sentinel for an attempt that never started
// because the backend's half-open probe slot was already taken; the
// routing loop moves on to the next candidate.
var errProbeLost = errors.New("half-open probe slot taken")

// retryable reports whether an upstream status is worth another attempt:
// 429 (shed) and 503 (timeout/unavailable) are load conditions that a
// different replica may not share.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// attemptSpanName names an attempt span by what it is: the first routing
// decision, a retry after upstream pushback, or the single half-open
// probe that tests a recovering backend.
func attemptSpanName(b *backend, attempt int) string {
	if b.breaker.State() != BreakerClosed {
		return "breaker-probe"
	}
	if attempt > 0 {
		return "retry"
	}
	return "route"
}

// finishAttemptSpan closes an attempt span with its outcome.
func finishAttemptSpan(sp *obs.Span, res *upstream, err error) {
	sp.End()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return
	}
	sp.Set("status", int64(res.status))
}

// attemptOne performs one routing attempt against b: acquire the breaker
// slot, trace it, send. Errors are mapped for the routing loop:
// errProbeLost means "never started, try the next candidate"; a context
// error means the client is gone; anything else is a transport-level
// unavailableError.
func (g *Gateway) attemptOne(ctx context.Context, b *backend, attempt int, path string, body []byte, reqID string, root *obs.Span) (*upstream, error) {
	name := attemptSpanName(b, attempt)
	if !b.breaker.Acquire() {
		return nil, errProbeLost
	}
	sp := root.StartChild(name)
	sp.SetAttr("backend", b.name)
	sp.Set("attempt", int64(attempt))
	res, err := g.send(ctx, b, http.MethodPost, path, body, reqID, sp)
	finishAttemptSpan(sp, res, err)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &unavailableError{backend: b.name, err: err}
	}
	return res, nil
}

// forward routes one request body to the digest's owner, with bounded
// retry: 429 (shed) and 503 (timeout/unavailable) responses are retried
// against the next ring candidate after a jittered backoff, up to
// MaxRetries extra attempts — each retry spending a token from the retry
// budget, so a browned-out fleet sheds retries instead of being swamped
// by them; when retries run out (or the budget is exhausted) the last
// upstream response is relayed verbatim. A transport failure is NOT
// retried — the items in flight to a dying replica surface as
// "unavailable" immediately, the breaker opens after the threshold, and
// subsequent requests route around the corpse. Single analyzes on a
// hedging-enabled gateway race the first attempt against one speculative
// attempt to the next ring candidate (hedge.go).
func (g *Gateway) forward(ctx context.Context, d Digest, path string, body []byte, reqID string) (*upstream, error) {
	elig := make([]*backend, 0, len(g.backends))
	for _, ci := range g.ring.Candidates(d) {
		if b := g.backends[ci]; b.eligible() {
			elig = append(elig, b)
		}
	}
	if len(elig) == 0 {
		return nil, errNoBackend
	}
	root := obs.TraceFromContext(ctx).RootSpan()
	var last *upstream
	for attempt := 0; attempt <= g.cfg.MaxRetries; attempt++ {
		b := elig[attempt%len(elig)]
		var res *upstream
		var err error
		if attempt == 0 && g.hedgeEnabled(path, elig) {
			res, err = g.hedgedAttempt(ctx, elig, path, body, reqID, root)
		} else {
			res, err = g.attemptOne(ctx, b, attempt, path, body, reqID, root)
		}
		if err != nil {
			if errors.Is(err, errProbeLost) {
				continue // lost the half-open probe slot; try the next candidate
			}
			return nil, err
		}
		if !retryable(res.status) {
			return res, nil
		}
		last = res
		if attempt == g.cfg.MaxRetries {
			break
		}
		// The retry targets the NEXT candidate: charge its bucket (plus the
		// global one) before committing to another attempt.
		if !g.trySpendRetry(elig[(attempt+1)%len(elig)]) {
			g.metrics.RetryBudgetExhausted.Add(1)
			last.budgetExhausted = true
			break
		}
		g.metrics.Retries.Add(1)
		if !g.sleepRetry(ctx, attempt, res.retryAfter) {
			break
		}
	}
	if last != nil {
		return last, nil
	}
	return nil, errNoBackend
}

// flight is one in-progress upstream analyze call; followers block on
// done and share the result.
type flight struct {
	done chan struct{}
	res  *upstream
	err  error
}

// flightGroup deduplicates identical in-flight analyze requests, keyed by
// the SHA-256 of the raw request body (source, options, trace flag — an
// exact match, so no response is ever shared across differing requests).
type flightGroup struct {
	mu      sync.Mutex
	m       map[[sha256.Size]byte]*flight
	timeout time.Duration // bound on the leader's detached execution
}

func newFlightGroup(timeout time.Duration) *flightGroup {
	return &flightGroup{m: make(map[[sha256.Size]byte]*flight), timeout: timeout}
}

// begin claims single-flight leadership for key. The returned bool is
// true for the leader, which must resolve the flight with finish on
// every subsequent path: followers block on the flight until then, so an
// abandoned leadership is an infinite wait for everyone behind it (the
// PR-5 cancellation-sharing bug was exactly this shape — siwad-lint's
// pairup analyzer now tracks the begin/finish pair). Followers get the
// existing flight and false.
func (fg *flightGroup) begin(key [sha256.Size]byte) (*flight, bool) {
	fg.mu.Lock()
	defer fg.mu.Unlock()
	if f, ok := fg.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	fg.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and wakes every follower parked
// on the flight. Exactly one finish per successful begin.
func (fg *flightGroup) finish(key [sha256.Size]byte, f *flight, res *upstream, err error) {
	f.res, f.err = res, err
	fg.mu.Lock()
	delete(fg.m, key)
	fg.mu.Unlock()
	close(f.done)
}

// do runs fn once per key among concurrent callers: the leader executes,
// followers wait and share the leader's result. The leader runs fn on a
// context detached from its own request (bounded by fg.timeout instead):
// the result is shared with followers whose requests are still live, so
// the leader's client disconnecting mid-flight must not turn into a
// cancellation error for everyone. A follower that cancels only abandons
// its own wait. shared reports whether this caller was a follower.
func (fg *flightGroup) do(ctx context.Context, key [sha256.Size]byte, fn func(context.Context) (*upstream, error)) (res *upstream, err error, shared bool) {
	f, leader := fg.begin(key)
	if !leader {
		select {
		case <-f.done:
			return f.res, f.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	// WithoutCancel keeps context VALUES, so the deadline budget survives
	// the detachment: a leader working under a short client budget is
	// bounded by that budget, not the full upstream timeout.
	timeout := fg.timeout
	if rem, ok := remainingBudget(ctx); ok && rem < timeout {
		timeout = rem
	}
	ectx, cancel := context.WithTimeout(context.WithoutCancel(ctx), timeout)
	res, err = fn(ectx)
	cancel()
	fg.finish(key, f, res, err)
	return res, err, false
}

// readBody slurps the request body under the configured cap.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	hint := r.ContentLength
	if hint > g.cfg.MaxBodyBytes {
		hint = 0 // let MaxBytesReader fail it without a giant allocation
	}
	data, err := readAllSized(r.Body, hint)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			g.writeError(w, http.StatusRequestEntityTooLarge, service.CodeTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return nil, err
		}
		g.writeError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			"read body: %v", err)
		return nil, err
	}
	return data, nil
}

// writeRouteError maps a forward() failure onto the taxonomy: everything
// that kept the analysis from being attempted is "unavailable" (the
// client should back off and retry — the ring will have healed), except a
// client-side deadline, which stays "timeout".
func (g *Gateway) writeRouteError(w http.ResponseWriter, err error) (status int, code string) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		g.writeError(w, http.StatusServiceUnavailable, service.CodeTimeout,
			"request aborted: %v", err)
		return http.StatusServiceUnavailable, service.CodeTimeout
	}
	g.metrics.Unavailable.Add(1)
	w.Header().Set("Retry-After", "1")
	g.writeError(w, http.StatusServiceUnavailable, service.CodeUnavailable, "%v", err)
	return http.StatusServiceUnavailable, service.CodeUnavailable
}

func (g *Gateway) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	g.metrics.RequestsAnalyze.Add(1)
	start := time.Now()
	body, err := g.readBody(w, r)
	if err != nil {
		return
	}
	// The gateway needs only the source (for the routing digest) and the
	// timeout (for the deadline budget); the replica owns full validation.
	// A body that is not JSON at all cannot be routed and is rejected here.
	var req struct {
		Source    string `json:"source"`
		TimeoutMs int64  `json:"timeoutMs"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			"invalid request body: %v", err)
		return
	}
	rctx := r.Context()
	if req.TimeoutMs >= 0 {
		// Derive the end-to-end deadline budget from the client's timeoutMs
		// (or the gateway default) and enforce it on the whole proxy
		// journey: retries, backoff sleeps, and the upstream calls all draw
		// down one budget. A negative timeoutMs is left for the replica to
		// reject, so the error body comes from one place.
		d := g.cfg.budgetFor(req.TimeoutMs)
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(rctx, d)
		defer cancel()
		rctx = withBudget(rctx, time.Now().Add(d))
	}
	res, err, shared := g.flights.do(rctx, sha256.Sum256(body), func(ctx context.Context) (*upstream, error) {
		return g.forward(ctx, DigestOf(req.Source), "/v1/analyze", body, requestID(r.Context()))
	})
	th := obs.TraceFromContext(r.Context())
	if shared {
		g.metrics.Dedup.Add(1)
		// A follower executed nothing: its trace shows one retroactive span
		// covering the wait for the leader's in-flight upstream call.
		sp := th.RootSpan().StartChild("single-flight-wait")
		sp.Start = start
		if res != nil {
			sp.SetAttr("backend", res.backend)
		}
		sp.End()
	}
	if err != nil {
		status, code := g.writeRouteError(w, err)
		g.logRequest(r, "analyze", status, start, slog.String("code", code))
		return
	}
	th.RootSpan().SetAttr("backend", res.backend)
	res.relay(w)
	g.logRequest(r, "analyze", res.status, start,
		slog.String("backend", res.backend),
		slog.Bool("deduped", shared))
}

// handleAlgorithms relays the detector listing from any live replica —
// the listing is identical fleet-wide, so the first eligible backend
// wins and transport failures just try the next.
func (g *Gateway) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	for _, b := range g.backends {
		if !b.eligible() || !b.breaker.Acquire() {
			continue
		}
		res, err := g.send(r.Context(), b, http.MethodGet, "/v1/algorithms", nil, requestID(r.Context()), nil)
		if err != nil {
			if cerr := r.Context().Err(); cerr != nil {
				// The client went away, not the fleet: report the cancel,
				// not a bogus "no healthy backend".
				g.writeRouteError(w, cerr)
				return
			}
			continue
		}
		res.relay(w)
		return
	}
	g.writeRouteError(w, errNoBackend)
}
