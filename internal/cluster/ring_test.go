package cluster

import (
	"fmt"
	"math"
	"testing"
)

func testDigests(n int) []Digest {
	out := make([]Digest, n)
	for i := range out {
		out[i] = DigestOf(fmt.Sprintf("program %d", i))
	}
	return out
}

// TestRingDeterministic pins the property the whole design leans on: two
// independently built rings over the same backend names route every
// digest identically, regardless of list construction.
func TestRingDeterministic(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing(names, 64)
	r2 := NewRing(names, 64)
	for _, d := range testDigests(500) {
		if r1.Owner(d) != r2.Owner(d) {
			t.Fatalf("rings disagree on %x", d[:4])
		}
		c1, c2 := r1.Candidates(d), r2.Candidates(d)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("candidate order differs on %x: %v vs %v", d[:4], c1, c2)
			}
		}
	}
}

// TestRingCandidatesCoverAllBackends checks the failover walk: every
// backend appears exactly once, led by the owner.
func TestRingCandidatesCoverAllBackends(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 32)
	for _, d := range testDigests(200) {
		c := r.Candidates(d)
		if len(c) != 4 {
			t.Fatalf("candidates=%v", c)
		}
		if c[0] != r.Owner(d) {
			t.Fatalf("first candidate %d is not the owner %d", c[0], r.Owner(d))
		}
		seen := map[int]bool{}
		for _, b := range c {
			if seen[b] {
				t.Fatalf("backend %d listed twice: %v", b, c)
			}
			seen[b] = true
		}
	}
}

// TestRingRebalanceMovesOnlyOrphans is the consistent-hashing contract:
// simulating one backend's death by skipping it in the candidate walk
// must remap exactly the digests that backend owned — every other
// digest keeps its owner, so surviving replicas keep their cache hits.
func TestRingRebalanceMovesOnlyOrphans(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(names, 64)
	const dead = 1
	moved := 0
	for _, d := range testDigests(2000) {
		before := r.Owner(d)
		after := -1
		for _, ci := range r.Candidates(d) {
			if ci != dead {
				after = ci
				break
			}
		}
		if before != dead && after != before {
			t.Fatalf("digest %x moved from live backend %d to %d", d[:4], before, after)
		}
		if before == dead {
			if after == dead {
				t.Fatalf("digest %x still routed to the dead backend", d[:4])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dead backend owned nothing; the test exercised no rebalance")
	}
}

// TestRingDistribution bounds the vnode-smoothed load split: with 64
// vnodes each of 3 backends should own a sane share of both the keyspace
// measure and an empirical digest sample.
func TestRingDistribution(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(names, 64)
	own := r.Ownership()
	total := 0.0
	for i, o := range own {
		total += o
		if o < 0.10 || o > 0.60 {
			t.Errorf("backend %d owns %.3f of the keyspace; vnode layout is pathological", i, o)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("ownership sums to %v, want 1", total)
	}
	counts := make([]int, len(names))
	sample := testDigests(3000)
	for _, d := range sample {
		counts[r.Owner(d)]++
	}
	for i, c := range counts {
		share := float64(c) / float64(len(sample))
		if share < 0.10 || share > 0.60 {
			t.Errorf("backend %d drew %.3f of sampled digests", i, share)
		}
		// The empirical share should roughly track the measured ownership.
		if math.Abs(share-own[i]) > 0.10 {
			t.Errorf("backend %d: sampled %.3f vs owned %.3f", i, share, own[i])
		}
	}
}

// TestRingOrderIndependent reorders the config list: ring points hash
// backend names, so digests keep their owner (by name) no matter how the
// operator orders -backends.
func TestRingOrderIndependent(t *testing.T) {
	a := []string{"http://a:1", "http://b:1", "http://c:1"}
	b := []string{"http://c:1", "http://a:1", "http://b:1"}
	ra, rb := NewRing(a, 64), NewRing(b, 64)
	for _, d := range testDigests(300) {
		if a[ra.Owner(d)] != b[rb.Owner(d)] {
			t.Fatalf("owner changed with config order for %x", d[:4])
		}
	}
}

func TestRingSingleBackend(t *testing.T) {
	r := NewRing([]string{"solo"}, 1)
	if own := r.Ownership(); own[0] != 1 {
		t.Fatalf("ownership=%v", own)
	}
	for _, d := range testDigests(10) {
		if r.Owner(d) != 0 || len(r.Candidates(d)) != 1 {
			t.Fatal("single backend must own everything")
		}
	}
}
