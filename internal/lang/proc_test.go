package lang

import (
	"strings"
	"testing"
)

const procProgram = `
procedure greet is
begin
  srv.hello;
  accept ok;
end;

procedure twice is
begin
  call greet;
  call greet;
end;

task client is
begin
  call twice;
end;

task srv is
begin
  accept hello;
  client.ok;
  accept hello;
  client.ok;
end;
`

func TestParseProcedures(t *testing.T) {
	p := MustParse(procProgram)
	if len(p.Procs) != 2 || len(p.Tasks) != 2 {
		t.Fatalf("procs=%d tasks=%d", len(p.Procs), len(p.Tasks))
	}
	if !p.HasCalls() {
		t.Fatal("calls not detected")
	}
}

func TestInlineCalls(t *testing.T) {
	p := MustParse(procProgram)
	q := p.InlineCalls()
	if q.HasCalls() || len(q.Procs) != 0 {
		t.Fatal("inlining left calls or procedures behind")
	}
	// client ends up with 2 copies of greet = 2 sends + 2 accepts.
	client := q.TaskByName("client")
	n := 0
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *Send, *Accept:
				n++
			case *If:
				walk(v.Then)
				walk(v.Else)
			case *Loop:
				walk(v.Body)
			}
		}
	}
	walk(client.Body)
	if n != 4 {
		t.Fatalf("client rendezvous=%d, want 4", n)
	}
	// Accept inside the procedure bound to the inlining task.
	sigs := map[Signal]bool{}
	for _, s := range q.Signals() {
		sigs[s] = true
	}
	if !sigs[Signal{Task: "client", Msg: "ok"}] {
		t.Fatalf("accept did not bind to inlining task: %v", q.Signals())
	}
	// Original untouched.
	if !p.HasCalls() {
		t.Fatal("InlineCalls mutated its input")
	}
}

func TestInlineLabelsUnique(t *testing.T) {
	p := MustParse(`
procedure pr is
begin
  r: srv.ping;
end;
task cli is
begin
  call pr;
  call pr;
end;
task srv is
begin
  accept ping;
  accept ping;
end;
`)
	q := p.InlineCalls()
	labels := map[string]bool{}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *Send, *Accept:
				if labels[s.Label()] {
					t.Fatalf("duplicate label %q", s.Label())
				}
				labels[s.Label()] = true
			case *If:
				walk(v.Then)
				walk(v.Else)
			case *Loop:
				walk(v.Body)
			}
		}
	}
	for _, task := range q.Tasks {
		walk(task.Body)
	}
}

func TestProcValidationErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unknown proc", "task a is begin call nope; end;", "unknown procedure"},
		{"direct recursion", `
procedure p is begin call p; end;
task a is begin call p; end;`, "recursive"},
		{"mutual recursion", `
procedure p is begin call q; end;
procedure q is begin call p; end;
task a is begin call p; end;`, "recursive"},
		{"duplicate proc", `
procedure p is begin null; end;
procedure p is begin null; end;
task a is begin null; end;`, "duplicate procedure"},
		{"bad send in proc", `
procedure p is begin nosuch.m; end;
task a is begin call p; end;`, "unknown task"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("accepted:\n%s", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q lacks %q", err, c.wantSub)
			}
		})
	}
}

func TestProcRoundTrip(t *testing.T) {
	p := MustParse(procProgram)
	printed := p.String()
	q, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if q.String() != printed {
		t.Fatalf("unstable print:\n%s\n---\n%s", printed, q.String())
	}
}

func TestNestedProcInlining(t *testing.T) {
	// Procedures calling procedures inside control structures.
	p := MustParse(`
procedure inner is
begin
  srv.m;
end;
procedure outer is
begin
  if c then
    call inner;
  end if;
  loop 2 times
    call inner;
  end loop;
end;
task cli is
begin
  call outer;
end;
task srv is
begin
  accept m;
  accept m;
  accept m;
end;
`)
	q := p.InlineCalls()
	if q.HasCalls() {
		t.Fatal("nested calls left behind")
	}
	if got := q.CountRendezvous(); got != 2+3 {
		t.Fatalf("rendezvous=%d", got)
	}
}
