package lang

import "fmt"

// The paper's model confines rendezvous to task main procedures and names
// an interprocedural extension as future work ("we hope to extend this
// model to an interprocedural one"). MiniAda supports the standard static
// treatment: non-recursive procedures that are inlined away before
// analysis, so every downstream phase keeps seeing the intraprocedural
// model the paper defines.
//
//	procedure NAME is begin <stmts> end;
//	call NAME;
//
// Procedures may call other procedures; recursion (direct or mutual) is
// rejected at validation time. Accept statements inside a procedure bind
// to whichever task the call is inlined into.

// Proc is a procedure declaration.
type Proc struct {
	Name string
	Body []Stmt
	Pos  Pos
}

// Call invokes a procedure; InlineCalls replaces it with the body.
type Call struct {
	labeled
	Name string
	Pos  Pos
}

func (*Call) stmt() {}

// HasCalls reports whether any task still contains a call statement.
func (p *Program) HasCalls() bool {
	found := false
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *Call:
				found = true
			case *If:
				walk(v.Then)
				walk(v.Else)
			case *Loop:
				walk(v.Body)
			}
		}
	}
	for _, t := range p.Tasks {
		walk(t.Body)
	}
	return found
}

// procByName returns the named procedure or nil.
func (p *Program) procByName(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// validateProcs checks that calls resolve and that the procedure call
// graph is acyclic (no recursion).
func (p *Program) validateProcs() error {
	// Resolve call targets in tasks and procedures.
	var check func(where string, ss []Stmt) error
	check = func(where string, ss []Stmt) error {
		for _, s := range ss {
			switch v := s.(type) {
			case *Call:
				if p.procByName(v.Name) == nil {
					return fmt.Errorf("lang: %s at %s: call to unknown procedure %q", where, v.Pos, v.Name)
				}
			case *If:
				if err := check(where, v.Then); err != nil {
					return err
				}
				if err := check(where, v.Else); err != nil {
					return err
				}
			case *Loop:
				if err := check(where, v.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	names := map[string]bool{}
	for _, pr := range p.Procs {
		if names[pr.Name] {
			return fmt.Errorf("lang: duplicate procedure %q", pr.Name)
		}
		names[pr.Name] = true
	}
	for _, t := range p.Tasks {
		if err := check("task "+t.Name, t.Body); err != nil {
			return err
		}
	}
	for _, pr := range p.Procs {
		if err := check("procedure "+pr.Name, pr.Body); err != nil {
			return err
		}
	}
	// Recursion check: DFS over the procedure call graph.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		color[name] = gray
		pr := p.procByName(name)
		var scan func(ss []Stmt) error
		scan = func(ss []Stmt) error {
			for _, s := range ss {
				switch v := s.(type) {
				case *Call:
					switch color[v.Name] {
					case gray:
						return fmt.Errorf("lang: recursive procedure %q (via %q)", v.Name, name)
					case white:
						if err := visit(v.Name); err != nil {
							return err
						}
					}
				case *If:
					if err := scan(v.Then); err != nil {
						return err
					}
					if err := scan(v.Else); err != nil {
						return err
					}
				case *Loop:
					if err := scan(v.Body); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := scan(pr.Body); err != nil {
			return err
		}
		color[name] = black
		return nil
	}
	for _, pr := range p.Procs {
		if color[pr.Name] == white {
			if err := visit(pr.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// InlineCalls returns a copy of p with every call statement replaced by
// the called procedure's body, recursively. Labels of inlined rendezvous
// get per-call-site suffixes so node names stay unique. The result has no
// procedures and no calls.
func (p *Program) InlineCalls() *Program {
	q := p.Clone()
	site := 0
	var inline func(ss []Stmt) []Stmt
	inline = func(ss []Stmt) []Stmt {
		var out []Stmt
		for _, s := range ss {
			switch v := s.(type) {
			case *Call:
				pr := q.procByName(v.Name)
				site++
				body := cloneStmts(pr.Body)
				suffixLabels(body, fmt.Sprintf("@%s%d", v.Name, site))
				out = append(out, inline(body)...)
			case *If:
				v.Then = inline(v.Then)
				v.Else = inline(v.Else)
				out = append(out, v)
			case *Loop:
				v.Body = inline(v.Body)
				out = append(out, v)
			default:
				out = append(out, s)
			}
		}
		return out
	}
	for _, t := range q.Tasks {
		t.Body = inline(t.Body)
	}
	q.Procs = nil
	q.AssignLabels()
	return q
}

func suffixLabels(ss []Stmt, suffix string) {
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *Send, *Accept:
				if s.Label() != "" {
					s.SetLabel(s.Label() + suffix)
				}
			case *If:
				walk(v.Then)
				walk(v.Else)
			case *Loop:
				walk(v.Body)
			case *Call:
				_ = v
			}
		}
	}
	walk(ss)
}
