package lang

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokDot
	tokSemi
	tokColon
	// Keywords.
	tokTask
	tokIs
	tokBegin
	tokEnd
	tokAccept
	tokIf
	tokThen
	tokElse
	tokLoop
	tokWhile
	tokTimes
	tokNull
	tokProcedure
	tokCall
)

var keywords = map[string]tokenKind{
	"task":      tokTask,
	"is":        tokIs,
	"begin":     tokBegin,
	"end":       tokEnd,
	"accept":    tokAccept,
	"if":        tokIf,
	"then":      tokThen,
	"else":      tokElse,
	"loop":      tokLoop,
	"while":     tokWhile,
	"times":     tokTimes,
	"null":      tokNull,
	"procedure": tokProcedure,
	"call":      tokCall,
}

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokDot:
		return "'.'"
	case tokSemi:
		return "';'"
	case tokColon:
		return "':'"
	}
	for s, kk := range keywords {
		if kk == k {
			return "'" + s + "'"
		}
	}
	return "token"
}

type token struct {
	kind tokenKind
	text string
	pos  Pos
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("lang: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// next scans the following token. Comments run from "--" to end of line.
func (l *lexer) next() (token, error) {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.off+1 < len(l.src) && l.src[l.off+1] == '-':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: Pos{l.line, l.col}}, nil

scan:
	pos := Pos{l.line, l.col}
	c := l.advance()
	switch {
	case c == '.':
		return token{tokDot, ".", pos}, nil
	case c == ';':
		return token{tokSemi, ";", pos}, nil
	case c == ':':
		return token{tokColon, ":", pos}, nil
	case isIdentStart(c):
		start := l.off - 1
		for l.off < len(l.src) && isIdentPart(l.src[l.off]) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[strings.ToLower(text)]; ok {
			return token{k, text, pos}, nil
		}
		return token{tokIdent, text, pos}, nil
	case c >= '0' && c <= '9':
		start := l.off - 1
		for l.off < len(l.src) && l.src[l.off] >= '0' && l.src[l.off] <= '9' {
			l.advance()
		}
		return token{tokInt, l.src[start:l.off], pos}, nil
	default:
		return token{}, l.errorf(pos, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
