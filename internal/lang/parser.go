package lang

import (
	"fmt"
	"strconv"
)

// Parse parses MiniAda source into a validated Program with labels assigned
// to every rendezvous statement.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.bump(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		switch p.tok.kind {
		case tokProcedure:
			pr, err := p.parseProc()
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, pr)
		default:
			t, err := p.parseTask()
			if err != nil {
				return nil, err
			}
			prog.Tasks = append(prog.Tasks, t)
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	prog.AssignLabels()
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and fixed examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) bump() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("lang: %s: expected %s, found %q", p.tok.pos, k, p.tok.text)
	}
	t := p.tok
	if err := p.bump(); err != nil {
		return token{}, err
	}
	return t, nil
}

// parseTask parses: task NAME is begin stmts end ;
func (p *parser) parseTask() (*Task, error) {
	start, err := p.expect(tokTask)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIs); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokBegin); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEnd); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &Task{Name: name.text, Body: body, Pos: start.pos}, nil
}

// parseProc parses: procedure NAME is begin stmts end ;
func (p *parser) parseProc() (*Proc, error) {
	start, err := p.expect(tokProcedure)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIs); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokBegin); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEnd); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &Proc{Name: name.text, Body: body, Pos: start.pos}, nil
}

// parseStmts parses statements until a token that ends a block
// (end / else) without consuming it.
func (p *parser) parseStmts() ([]Stmt, error) {
	var out []Stmt
	for {
		switch p.tok.kind {
		case tokEnd, tokElse, tokEOF:
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	// Optional label: IDENT ':' (only when followed by ':').
	label := ""
	if p.tok.kind == tokIdent {
		// Look ahead: save lexer state is awkward, so peek by checking the
		// next token after tentatively reading. We emulate one-token
		// lookahead with a sub-scan of the lexer copy.
		save := *p.lex
		saveTok := p.tok
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokColon {
			label = saveTok.text
			if err := p.bump(); err != nil {
				return nil, err
			}
		} else {
			*p.lex = save
			p.tok = saveTok
		}
	}

	var s Stmt
	var err error
	switch p.tok.kind {
	case tokIdent:
		s, err = p.parseSend()
	case tokAccept:
		s, err = p.parseAccept()
	case tokIf:
		s, err = p.parseIf()
	case tokLoop, tokWhile:
		s, err = p.parseLoop()
	case tokCall:
		pos := p.tok.pos
		if err := p.bump(); err != nil {
			return nil, err
		}
		name, err2 := p.expect(tokIdent)
		if err2 != nil {
			return nil, err2
		}
		if _, err2 := p.expect(tokSemi); err2 != nil {
			return nil, err2
		}
		s = &Call{Name: name.text, Pos: pos}
	case tokNull:
		pos := p.tok.pos
		if err := p.bump(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		s = &Null{Pos: pos}
	default:
		return nil, fmt.Errorf("lang: %s: expected statement, found %q", p.tok.pos, p.tok.text)
	}
	if err != nil {
		return nil, err
	}
	if label != "" {
		s.SetLabel(label)
	}
	return s, nil
}

// parseSend parses: TARGET '.' MSG ';'
func (p *parser) parseSend() (Stmt, error) {
	target, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	msg, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &Send{Target: target.text, Msg: msg.text, Pos: target.pos}, nil
}

// parseAccept parses: accept MSG ';'
func (p *parser) parseAccept() (Stmt, error) {
	kw, err := p.expect(tokAccept)
	if err != nil {
		return nil, err
	}
	msg, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &Accept{Msg: msg.text, Pos: kw.pos}, nil
}

// parseIf parses: if [COND] then stmts [else stmts] end if ';'
func (p *parser) parseIf() (Stmt, error) {
	kw, err := p.expect(tokIf)
	if err != nil {
		return nil, err
	}
	cond := ""
	if p.tok.kind == tokIdent {
		cond = p.tok.text
		if err := p.bump(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokThen); err != nil {
		return nil, err
	}
	thenBody, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	var elseBody []Stmt
	if p.tok.kind == tokElse {
		if err := p.bump(); err != nil {
			return nil, err
		}
		elseBody, err = p.parseStmts()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokEnd); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIf); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &If{Cond: cond, Then: thenBody, Else: elseBody, Pos: kw.pos}, nil
}

// parseLoop parses either
//
//	loop [N times] stmts end loop ';'     (at-least-once unless bounded)
//	while [COND] loop stmts end loop ';'  (zero or more)
func (p *parser) parseLoop() (Stmt, error) {
	loop := &Loop{}
	switch p.tok.kind {
	case tokWhile:
		loop.Pos = p.tok.pos
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokIdent {
			loop.Cond = p.tok.text
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokLoop); err != nil {
			return nil, err
		}
	case tokLoop:
		loop.Pos = p.tok.pos
		loop.AtLeastOnce = true
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokInt {
			n, err := strconv.Atoi(p.tok.text)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("lang: %s: bad loop count %q", p.tok.pos, p.tok.text)
			}
			loop.Count = n
			if err := p.bump(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokTimes); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	loop.Body = body
	if _, err := p.expect(tokEnd); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLoop); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return loop, nil
}
