package lang

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	if (Pos{3, 7}).String() != "3:7" {
		t.Fatal("Pos.String")
	}
	if (Signal{Task: "a", Msg: "m"}).String() != "a.m" {
		t.Fatal("Signal.String")
	}
	for k := tokEOF; k <= tokCall; k++ {
		if k.String() == "" {
			t.Fatalf("empty name for token kind %d", k)
		}
	}
}

func TestParseErrorPathsExhaustive(t *testing.T) {
	bad := []string{
		// Task header errors.
		"task", "task a", "task a is", "task a is begin",
		"task a is begin null;",
		// Send form errors.
		"task a is begin b. end; task b is begin null; end;",
		"task a is begin b.m end; task b is begin null; end;",
		// Accept form errors.
		"task a is begin accept; end;",
		"task a is begin accept m end;",
		// If form errors.
		"task a is begin if c null; end if; end;",
		"task a is begin if c then null; end; end;",
		"task a is begin if c then null; end if end;",
		// Loop form errors.
		"task a is begin loop 2 null; end loop; end;",
		"task a is begin loop null; end; end;",
		"task a is begin loop null; end loop end;",
		"task a is begin while w null; end loop; end;",
		// Call form errors.
		"procedure p is begin null; end; task a is begin call; end;",
		"procedure p is begin null; end; task a is begin call p end;",
		// Procedure header errors.
		"procedure is begin null; end;",
		"procedure p begin null; end;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("accepted: %q", src)
		}
	}
}

func TestCloneStmtsExported(t *testing.T) {
	p := MustParse(`
task a is
begin
  if c then
    b.m;
  end if;
end;
task b is
begin
  accept m;
end;
`)
	cp := CloneStmts(p.Tasks[0].Body)
	cp[0].(*If).Then[0].(*Send).Msg = "changed"
	if p.Tasks[0].Body[0].(*If).Then[0].(*Send).Msg == "changed" {
		t.Fatal("CloneStmts shares structure")
	}
}

func TestProgramStringWithProcs(t *testing.T) {
	p := MustParse(`
procedure q is
begin
  null;
end;
task a is
begin
  call q;
end;
`)
	s := p.String()
	if !strings.Contains(s, "procedure q is") || !strings.Contains(s, "call q;") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("not a program")
}
