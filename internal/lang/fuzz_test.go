package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// addCorpusSeeds feeds every checked-in example program (the repo-root
// testdata/*.ada corpus) to a fuzz target, so fuzzing starts from real
// programs exercising every construct, not just the inline snippets.
func addCorpusSeeds(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ada"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no testdata seeds found")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzParse checks that the parser never panics, and that accepted
// programs survive a print/reparse round trip with identical structure.
// Seeds cover every statement form; `go test -fuzz=FuzzParse` explores
// further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"task a is begin null; end;",
		"task a is begin b.m; end; task b is begin accept m; end;",
		"task a is begin l: accept m; end; task b is begin a.m; end;",
		"task a is begin if c then null; else null; end if; end;",
		"task a is begin loop 3 times null; end loop; end;",
		"task a is begin while w loop null; end loop; end;",
		"procedure p is begin null; end; task a is begin call p; end;",
		"-- comment only",
		"task a is begin @#$ end;",
		"task a is begin if then end if; end;",
		"task task is begin end;",
		"task a is begin loop 99999999999999999999 times null; end loop; end;",
		strings.Repeat("task a is begin null; end;", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	addCorpusSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := p.String()
		q, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted unparseable source: %v\n%s", err, printed)
		}
		if q.String() != printed {
			t.Fatalf("print not idempotent:\n%s\n---\n%s", printed, q.String())
		}
		if p.CountRendezvous() != q.CountRendezvous() || len(p.Tasks) != len(q.Tasks) {
			t.Fatal("round trip changed structure")
		}
	})
}

// FuzzInline checks that inlining valid programs never panics and always
// eliminates calls.
func FuzzInline(f *testing.F) {
	f.Add("procedure p is begin s.m; end; task a is begin call p; end; task s is begin accept m; end;")
	f.Add("procedure p is begin call q; end; procedure q is begin null; end; task a is begin call p; call p; end;")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		q := p.InlineCalls()
		if q.HasCalls() || len(q.Procs) != 0 {
			t.Fatal("inline left calls")
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("inlined program invalid: %v", err)
		}
	})
}
