package lang

import (
	"strings"
	"testing"
)

const handshake = `
-- canonical two-task handshake
task t1 is
begin
  t2.sig1;
  accept sig2;
end;

task t2 is
begin
  accept sig1;
  t1.sig2;
end;
`

func TestParseHandshake(t *testing.T) {
	p, err := Parse(handshake)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 2 {
		t.Fatalf("tasks=%d", len(p.Tasks))
	}
	t1 := p.TaskByName("t1")
	if t1 == nil || len(t1.Body) != 2 {
		t.Fatalf("t1 body wrong: %+v", t1)
	}
	send, ok := t1.Body[0].(*Send)
	if !ok || send.Target != "t2" || send.Msg != "sig1" {
		t.Fatalf("first stmt: %+v", t1.Body[0])
	}
	acc, ok := t1.Body[1].(*Accept)
	if !ok || acc.Msg != "sig2" {
		t.Fatalf("second stmt: %+v", t1.Body[1])
	}
	if p.CountRendezvous() != 4 {
		t.Fatalf("rendezvous=%d", p.CountRendezvous())
	}
}

func TestParseLabels(t *testing.T) {
	p := MustParse(`
task a is
begin
  r: b.m;
  accept n;
end;
task b is
begin
  accept m;
  s: a.n;
end;
`)
	if p.Tasks[0].Body[0].Label() != "r" {
		t.Fatalf("user label lost: %q", p.Tasks[0].Body[0].Label())
	}
	// Auto labels assigned to unlabeled rendezvous.
	if p.Tasks[0].Body[1].Label() == "" {
		t.Fatal("auto label missing")
	}
}

func TestParseIfElse(t *testing.T) {
	p := MustParse(`
task a is
begin
  if c then
    b.m;
  else
    accept n;
  end if;
end;
task b is
begin
  accept m;
  a.n;
end;
`)
	iff, ok := p.Tasks[0].Body[0].(*If)
	if !ok {
		t.Fatalf("not an if: %T", p.Tasks[0].Body[0])
	}
	if iff.Cond != "c" || len(iff.Then) != 1 || len(iff.Else) != 1 {
		t.Fatalf("if parsed wrong: %+v", iff)
	}
}

func TestParseIfWithoutCond(t *testing.T) {
	p := MustParse(`
task a is
begin
  if then
    b.m;
  end if;
end;
task b is
begin
  accept m;
end;
`)
	iff := p.Tasks[0].Body[0].(*If)
	if iff.Cond != "" || len(iff.Else) != 0 {
		t.Fatalf("%+v", iff)
	}
}

func TestParseLoops(t *testing.T) {
	p := MustParse(`
task a is
begin
  loop 3 times
    b.m;
  end loop;
  while going loop
    b.m;
  end loop;
  loop
    b.m;
  end loop;
end;
task b is
begin
  accept m;
end;
`)
	l1 := p.Tasks[0].Body[0].(*Loop)
	if l1.Count != 3 || !l1.AtLeastOnce {
		t.Fatalf("bounded loop: %+v", l1)
	}
	l2 := p.Tasks[0].Body[1].(*Loop)
	if l2.Count != 0 || l2.AtLeastOnce || l2.Cond != "going" {
		t.Fatalf("while loop: %+v", l2)
	}
	l3 := p.Tasks[0].Body[2].(*Loop)
	if l3.Count != 0 || !l3.AtLeastOnce {
		t.Fatalf("plain loop: %+v", l3)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "no tasks"},
		{"unknown target", "task a is begin b.m; end;", "unknown task"},
		{"self send", "task a is begin a.m; end;", "own entry"},
		{"duplicate task", "task a is begin null; end; task a is begin null; end;", "duplicate"},
		{"missing semi", "task a is begin null end;", "expected"},
		{"bad char", "task a is begin @ end;", "unexpected character"},
		{"zero loop count", "task a is begin loop 0 times null; end loop; end;", "bad loop count"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestCommentsAndCase(t *testing.T) {
	p := MustParse(`
-- leading comment
TASK a IS
BEGIN
  NULL; -- trailing comment
END;
`)
	if len(p.Tasks) != 1 || p.Tasks[0].Name != "a" {
		t.Fatalf("%+v", p.Tasks)
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		handshake,
		`
task a is
begin
  if c then
    b.m;
  else
    accept q;
    if d then
      b.m;
    end if;
  end if;
  loop 2 times
    accept q;
  end loop;
  while w loop
    b.m;
  end loop;
end;
task b is
begin
  accept m;
  a.q;
end;
`,
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, printed)
		}
		if p2.String() != printed {
			t.Fatalf("print not stable:\n%s\n---\n%s", printed, p2.String())
		}
		if p1.CountRendezvous() != p2.CountRendezvous() {
			t.Fatal("rendezvous count changed through round trip")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustParse(handshake)
	q := p.Clone()
	q.Tasks[0].Body[0].(*Send).Msg = "changed"
	if p.Tasks[0].Body[0].(*Send).Msg == "changed" {
		t.Fatal("clone shares statements")
	}
}

func TestSignals(t *testing.T) {
	p := MustParse(handshake)
	sigs := p.Signals()
	if len(sigs) != 2 {
		t.Fatalf("signals=%v", sigs)
	}
	want := map[Signal]bool{
		{Task: "t2", Msg: "sig1"}: true,
		{Task: "t1", Msg: "sig2"}: true,
	}
	for _, s := range sigs {
		if !want[s] {
			t.Fatalf("unexpected signal %v", s)
		}
	}
}

func TestAssignLabelsStable(t *testing.T) {
	p := MustParse(handshake)
	l1 := p.Tasks[0].Body[0].Label()
	p.AssignLabels() // idempotent
	if p.Tasks[0].Body[0].Label() != l1 {
		t.Fatal("labels changed on reassign")
	}
}

func TestValidateNegativeLoopCount(t *testing.T) {
	p := &Program{Tasks: []*Task{{Name: "a", Body: []Stmt{
		&Loop{Count: -1},
	}}}}
	if err := p.Validate(); err == nil {
		t.Fatal("negative loop count accepted")
	}
}
