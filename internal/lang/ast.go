// Package lang implements MiniAda, the small Ada-like tasking language the
// paper's model is defined over: statically created tasks communicating by
// barrier rendezvous through entry calls (sends) and accepts, with
// conditional branching and reducible loops but no select statements.
//
// A program is a set of tasks. Statements:
//
//	target.msg;                 -- entry call: send signal (target, msg)
//	accept msg;                 -- accept signal (self, msg)
//	if [cond] then ... [else ...] end if;
//	loop [N times] ... end loop;
//	while [cond] loop ... end loop;
//	null;
//
// Any statement may carry a label ("l1: accept msg;") so that tests and
// reports can name individual rendezvous points.
package lang

import (
	"fmt"
	"strings"
)

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed MiniAda program. Procs hold procedure declarations
// until InlineCalls expands them into the task bodies (see proc.go).
type Program struct {
	Tasks []*Task
	Procs []*Proc
}

// Task is one statically created task with a straight body of statements.
type Task struct {
	Name string
	Body []Stmt
	Pos  Pos
}

// Stmt is any MiniAda statement.
type Stmt interface {
	// Label returns the user or auto-assigned label, empty if none.
	Label() string
	// SetLabel attaches a label.
	SetLabel(string)
	stmt()
}

type labeled struct {
	Lbl string
}

func (l *labeled) Label() string     { return l.Lbl }
func (l *labeled) SetLabel(s string) { l.Lbl = s }

// Send is an entry call: the executing task signals (Target, Msg).
type Send struct {
	labeled
	Target string
	Msg    string
	Pos    Pos
}

// Accept waits for any task to signal (self, Msg).
type Accept struct {
	labeled
	Msg string
	Pos Pos
}

// If is a two-way conditional with an opaque condition name.
type If struct {
	labeled
	Cond string // informational only; conditions are opaque to analysis
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// Loop is a reducible loop. Count > 0 bounds the iterations (used by the
// wave simulator); Count == 0 means statically unknown (0 or more).
// AtLeastOnce records "loop ... end loop" Ada semantics (the body runs at
// least once) versus while-style zero-or-more.
type Loop struct {
	labeled
	Count       int
	AtLeastOnce bool
	Cond        string // for while loops; informational
	Body        []Stmt
	Pos         Pos
}

// Null is a no-op placeholder statement.
type Null struct {
	labeled
	Pos Pos
}

func (*Send) stmt()   {}
func (*Accept) stmt() {}
func (*If) stmt()     {}
func (*Loop) stmt()   {}
func (*Null) stmt()   {}

// TaskByName returns the named task or nil.
func (p *Program) TaskByName(name string) *Task {
	for _, t := range p.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Clone deep-copies the program (transforms mutate copies, never inputs).
func (p *Program) Clone() *Program {
	q := &Program{Tasks: make([]*Task, len(p.Tasks)), Procs: make([]*Proc, len(p.Procs))}
	for i, t := range p.Tasks {
		q.Tasks[i] = &Task{Name: t.Name, Body: cloneStmts(t.Body), Pos: t.Pos}
	}
	for i, pr := range p.Procs {
		q.Procs[i] = &Proc{Name: pr.Name, Body: cloneStmts(pr.Body), Pos: pr.Pos}
	}
	return q
}

// CloneStmts deep-copies a statement list.
func CloneStmts(ss []Stmt) []Stmt { return cloneStmts(ss) }

func cloneStmts(ss []Stmt) []Stmt {
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch v := s.(type) {
	case *Send:
		c := *v
		return &c
	case *Accept:
		c := *v
		return &c
	case *Null:
		c := *v
		return &c
	case *If:
		c := *v
		c.Then = cloneStmts(v.Then)
		c.Else = cloneStmts(v.Else)
		return &c
	case *Loop:
		c := *v
		c.Body = cloneStmts(v.Body)
		return &c
	case *Call:
		c := *v
		return &c
	default:
		panic(fmt.Sprintf("lang: unknown statement %T", s))
	}
}

// Validate checks static semantic rules: unique task names, send targets
// that exist, and non-empty program.
func (p *Program) Validate() error {
	if len(p.Tasks) == 0 {
		return fmt.Errorf("lang: program has no tasks")
	}
	names := map[string]bool{}
	for _, t := range p.Tasks {
		if names[t.Name] {
			return fmt.Errorf("lang: duplicate task %q", t.Name)
		}
		names[t.Name] = true
	}
	for _, t := range p.Tasks {
		if err := validateStmts(t, t.Body, names); err != nil {
			return err
		}
	}
	for _, pr := range p.Procs {
		// Sends inside procedures must still target real tasks; the
		// enclosing-task self-call check applies only after inlining.
		if err := validateStmts(&Task{Name: ""}, pr.Body, names); err != nil {
			return err
		}
	}
	return p.validateProcs()
}

func validateStmts(t *Task, ss []Stmt, tasks map[string]bool) error {
	for _, s := range ss {
		switch v := s.(type) {
		case *Send:
			if !tasks[v.Target] {
				return fmt.Errorf("lang: task %s at %s: send to unknown task %q", t.Name, v.Pos, v.Target)
			}
			if v.Target == t.Name {
				return fmt.Errorf("lang: task %s at %s: task cannot call its own entry %q", t.Name, v.Pos, v.Msg)
			}
		case *If:
			if err := validateStmts(t, v.Then, tasks); err != nil {
				return err
			}
			if err := validateStmts(t, v.Else, tasks); err != nil {
				return err
			}
		case *Loop:
			if v.Count < 0 {
				return fmt.Errorf("lang: task %s at %s: negative loop count", t.Name, v.Pos)
			}
			if err := validateStmts(t, v.Body, tasks); err != nil {
				return err
			}
		}
	}
	return nil
}

// AssignLabels gives every unlabeled rendezvous statement a deterministic
// label of the form task.kN (k = "s" send, "a" accept) so analyses can
// report stable node names. Existing labels are preserved.
func (p *Program) AssignLabels() {
	for _, t := range p.Tasks {
		n := 0
		var walk func(ss []Stmt)
		walk = func(ss []Stmt) {
			for _, s := range ss {
				switch v := s.(type) {
				case *Send:
					n++
					if v.Lbl == "" {
						v.Lbl = fmt.Sprintf("%s.s%d", t.Name, n)
					}
				case *Accept:
					n++
					if v.Lbl == "" {
						v.Lbl = fmt.Sprintf("%s.a%d", t.Name, n)
					}
				case *If:
					walk(v.Then)
					walk(v.Else)
				case *Loop:
					walk(v.Body)
				}
			}
		}
		walk(t.Body)
	}
}

// CountRendezvous returns the total number of send/accept statements.
func (p *Program) CountRendezvous() int {
	n := 0
	for _, t := range p.Tasks {
		n += countRendezvous(t.Body)
	}
	return n
}

func countRendezvous(ss []Stmt) int {
	n := 0
	for _, s := range ss {
		switch v := s.(type) {
		case *Send, *Accept:
			n++
		case *If:
			n += countRendezvous(v.Then) + countRendezvous(v.Else)
		case *Loop:
			n += countRendezvous(v.Body)
		}
		_ = s
	}
	return n
}

// CountStatements returns the total number of statements, counting
// nested conditional and loop bodies.
func (p *Program) CountStatements() int {
	n := 0
	for _, t := range p.Tasks {
		n += countStatements(t.Body)
	}
	return n
}

func countStatements(ss []Stmt) int {
	n := len(ss)
	for _, s := range ss {
		switch v := s.(type) {
		case *If:
			n += countStatements(v.Then) + countStatements(v.Else)
		case *Loop:
			n += countStatements(v.Body)
		}
	}
	return n
}

// SizeEstimate approximates the program's resident footprint in bytes
// (AST nodes plus per-task overhead), for byte-budgeted caches. It only
// needs to be proportional to the real footprint, not exact.
func (p *Program) SizeEstimate() int64 {
	return int64(p.CountStatements())*96 + int64(len(p.Tasks)+len(p.Procs))*128
}

// Signal identifies a rendezvous channel: the receiving task and message.
type Signal struct {
	Task string // receiving task
	Msg  string // message type
}

func (sg Signal) String() string { return sg.Task + "." + sg.Msg }

// Signals returns all distinct signals appearing in the program, in a
// deterministic order.
func (p *Program) Signals() []Signal {
	seen := map[Signal]bool{}
	var out []Signal
	add := func(s Signal) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, t := range p.Tasks {
		var walk func(ss []Stmt)
		walk = func(ss []Stmt) {
			for _, s := range ss {
				switch v := s.(type) {
				case *Send:
					add(Signal{v.Target, v.Msg})
				case *Accept:
					add(Signal{t.Name, v.Msg})
				case *If:
					walk(v.Then)
					walk(v.Else)
				case *Loop:
					walk(v.Body)
				}
			}
		}
		walk(t.Body)
	}
	return out
}

// String renders the program as parseable MiniAda source.
func (p *Program) String() string {
	var b strings.Builder
	for i, pr := range p.Procs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "procedure %s is\nbegin\n", pr.Name)
		printStmts(&b, pr.Body, 1)
		b.WriteString("end;\n")
	}
	for i, t := range p.Tasks {
		if i > 0 || len(p.Procs) > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "task %s is\nbegin\n", t.Name)
		printStmts(&b, t.Body, 1)
		b.WriteString("end;\n")
	}
	return b.String()
}

func printStmts(b *strings.Builder, ss []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range ss {
		lbl := ""
		if s.Label() != "" && isIdent(s.Label()) {
			lbl = s.Label() + ": "
		}
		switch v := s.(type) {
		case *Send:
			fmt.Fprintf(b, "%s%s%s.%s;\n", ind, lbl, v.Target, v.Msg)
		case *Accept:
			fmt.Fprintf(b, "%s%saccept %s;\n", ind, lbl, v.Msg)
		case *Null:
			fmt.Fprintf(b, "%s%snull;\n", ind, lbl)
		case *Call:
			fmt.Fprintf(b, "%s%scall %s;\n", ind, lbl, v.Name)
		case *If:
			cond := v.Cond
			if cond == "" {
				cond = "cond"
			}
			fmt.Fprintf(b, "%s%sif %s then\n", ind, lbl, cond)
			printStmts(b, v.Then, depth+1)
			if len(v.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", ind)
				printStmts(b, v.Else, depth+1)
			}
			fmt.Fprintf(b, "%send if;\n", ind)
		case *Loop:
			switch {
			case v.Count > 0:
				fmt.Fprintf(b, "%s%sloop %d times\n", ind, lbl, v.Count)
			case !v.AtLeastOnce:
				cond := v.Cond
				if cond == "" {
					cond = "cond"
				}
				fmt.Fprintf(b, "%s%swhile %s loop\n", ind, lbl, cond)
			default:
				fmt.Fprintf(b, "%s%sloop\n", ind, lbl)
			}
			printStmts(b, v.Body, depth+1)
			fmt.Fprintf(b, "%send loop;\n", ind)
		}
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
