// Package core implements the paper's two polynomial-time deadlock
// detection algorithms and the extension spectrum of §4.2.
//
// Naive (§3.1): the program may deadlock only if its cycle location graph
// has a directed cycle. Refined (§4.2): for every hypothesized head node h,
// nodes sequenceable with h are blocked from acting as heads (sync edge
// into k_i removed), same-type co-accepts are blocked from sync traversal
// entirely, and nodes that cannot co-execute with h are removed; h is a
// possible deadlock head only if a strong component through h_i survives.
// Extensions hypothesize head pairs, head–tail pairs, and two head–tail
// pairs, trading time for precision exactly as the paper describes.
//
// All detectors are conservative: they never report "deadlock-free" for a
// program that can deadlock (property-tested against the exact wave
// explorer), but may report possible deadlocks that cannot occur.
//
// Every algorithm expects a loop-free sync graph; apply cfg.Unroll first
// (Analyze in the facade package does this automatically).
package core

import (
	"sort"

	"repro/internal/clg"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/sg"
)

// Algorithm names the detection variants, in increasing precision/cost.
type Algorithm int

const (
	// AlgoNaive is CLG cycle detection (constraint 1 only).
	AlgoNaive Algorithm = iota
	// AlgoRefined hypothesizes single head nodes (the paper's main
	// algorithm, approximating constraints 2 and 3a).
	AlgoRefined
	// AlgoRefinedPairs hypothesizes pairs of head nodes.
	AlgoRefinedPairs
	// AlgoRefinedHeadTail hypothesizes head-tail node pairs.
	AlgoRefinedHeadTail
	// AlgoRefinedHeadTailPairs hypothesizes two head-tail pairs (k = 2).
	AlgoRefinedHeadTailPairs
)

func (a Algorithm) String() string {
	switch a {
	case AlgoNaive:
		return "naive"
	case AlgoRefined:
		return "refined"
	case AlgoRefinedPairs:
		return "refined+head-pairs"
	case AlgoRefinedHeadTail:
		return "refined+head-tail"
	case AlgoRefinedHeadTailPairs:
		return "refined+head-tail-pairs"
	case AlgoRefinedKPairs:
		return "refined+k-pairs"
	case AlgoEnumerate:
		return "enumerate"
	}
	return "?"
}

// Verdict is the outcome of one detection run.
type Verdict struct {
	Algorithm Algorithm
	// MayDeadlock is true unless the program was certified deadlock-free.
	MayDeadlock bool
	// Witnesses holds, per surviving hypothesis, the sync-graph node ids
	// of a strong component supporting a possible deadlock (deduplicated).
	Witnesses [][]int
	// Hypotheses counts head (or pair) hypotheses tested; SCCRuns counts
	// masked strong-component searches performed.
	Hypotheses int
	SCCRuns    int
}

// Analyzer bundles a sync graph with its derived structures so the
// detection spectrum can be run without recomputing them. An Analyzer is
// not safe for concurrent use: hypothesis masks and the strong-component
// search reuse epoch-stamped scratch buffers across runs.
type Analyzer struct {
	SG  *sg.Graph
	CLG *clg.CLG
	Ord *order.Info

	// Trace, when non-nil, receives the detector's work counters
	// (hypotheses tested, SCC runs, nodes pruned by each marking rule).
	// The facade points it at the active pipeline-stage span before each
	// detector run; a nil Trace records nothing and costs one branch.
	Trace *obs.Span

	scratch struct {
		epoch       int
		blocked     []int // DO-NOT-ENTER, valid when == epoch
		noSyncInto  []int
		noSyncOutOf []int

		sccEpoch int
		visited  []int // Tarjan visitation stamp
		index    []int
		low      []int
		onStack  []bool
		compOf   []int
		stack    []int
		frames   []sccFrame
	}
}

type sccFrame struct {
	v  int
	ei int
}

// NewAnalyzer builds the CLG and ordering facts for g. The sync graph must
// be loop-free for the refined detectors to gain any precision; with
// control cycles they degrade (safely) toward the naive answer.
func NewAnalyzer(g *sg.Graph) *Analyzer {
	return NewAnalyzerTraced(g, nil)
}

// NewAnalyzerTraced is NewAnalyzer recording the derived structures' sizes
// (CLG nodes/edges) into span (nil span records nothing).
func NewAnalyzerTraced(g *sg.Graph, span *obs.Span) *Analyzer {
	return &Analyzer{SG: g, CLG: clg.BuildTraced(g, span), Ord: order.Compute(g)}
}

// PossibleHeads returns the paper's POSS-HEADS set: rendezvous nodes with
// at least one sync edge that are the tail of at least one control edge
// leading to another rendezvous node.
func (a *Analyzer) PossibleHeads() []int {
	g := a.SG
	var out []int
	for _, n := range g.Nodes {
		if !n.IsRendezvous() || len(g.Sync[n.ID]) == 0 {
			continue
		}
		for _, s := range g.Control.Succ(n.ID) {
			if s != g.E && g.Nodes[s].IsRendezvous() {
				out = append(out, n.ID)
				break
			}
		}
	}
	return out
}

// Naive runs CLG cycle detection.
func (a *Analyzer) Naive() Verdict {
	v := Verdict{Algorithm: AlgoNaive}
	v.Witnesses = a.CLG.Cycles()
	v.MayDeadlock = len(v.Witnesses) > 0
	v.Hypotheses = 1
	v.SCCRuns = 1
	return v
}

// mask holds the per-hypothesis CLG markings, epoch-stamped into the
// analyzer's scratch buffers so successive hypotheses reuse memory.
type mask struct {
	a     *Analyzer
	epoch int
}

func (m *mask) block(v int)          { m.a.scratch.blocked[v] = m.epoch }
func (m *mask) blockSyncInto(v int)  { m.a.scratch.noSyncInto[v] = m.epoch }
func (m *mask) blockSyncOutOf(v int) { m.a.scratch.noSyncOutOf[v] = m.epoch }
func (m *mask) isBlocked(v int) bool { return m.a.scratch.blocked[v] == m.epoch }
func (m *mask) noSyncIn(v int) bool  { return m.a.scratch.noSyncInto[v] == m.epoch }
func (m *mask) noSyncOut(v int) bool { return m.a.scratch.noSyncOutOf[v] == m.epoch }

func (a *Analyzer) newMask() *mask {
	n := a.CLG.N()
	s := &a.scratch
	if len(s.blocked) < n {
		s.blocked = make([]int, n)
		s.noSyncInto = make([]int, n)
		s.noSyncOutOf = make([]int, n)
	}
	s.epoch++
	return &mask{a: a, epoch: s.epoch}
}

// markHead applies the single-head markings for hypothesized head h:
//   - SEQUENCEABLE[h]: cannot be heads of the same cycle (constraint 3a),
//     so sync edges into k_i are blocked. Blocking k's outgoing sync edge
//     too, as the paper's main-loop text literally reads, would also
//     forbid k as a *tail* and is demonstrably unsound (see DESIGN.md);
//     the paper's own head-tail extension marks only r_i, which we follow.
//   - COACCEPT[h]: same-type accepts cannot carry the cycle out of h's
//     task without forcing a constraint-2 violation (Lemma 2), so both
//     halves lose sync traversal.
//   - NOT-COEXEC[h]: cannot appear in any run with h (constraint 3b), so
//     the nodes are removed outright.
func (a *Analyzer) markHead(m *mask, h int) {
	c := a.CLG
	seq := a.Ord.SequenceableSet(h)
	for _, k := range seq {
		m.blockSyncInto(c.In[k])
	}
	coacc := a.Ord.CoAccept[h]
	for _, k := range coacc {
		m.blockSyncInto(c.In[k])
		m.blockSyncOutOf(c.Out[k])
	}
	ncx := a.Ord.NotCoexecSet(h)
	for _, k := range ncx {
		m.block(c.In[k])
		m.block(c.Out[k])
	}
	if t := a.Trace; t != nil {
		t.Add("pruned_sequenceable", int64(len(seq)))
		t.Add("pruned_coaccept", int64(len(coacc)))
		t.Add("pruned_notcoexec", int64(len(ncx)))
	}
}

// markHeadTail applies the head-tail variant markings for (h, t):
// NOT-COEXEC of either hypothesis is removed; SEQUENCEABLE[h] lose head
// status; COACCEPT needs no marking because the tail is fixed.
func (a *Analyzer) markHeadTail(m *mask, h, t int) {
	c := a.CLG
	seq := a.Ord.SequenceableSet(h)
	for _, k := range seq {
		m.blockSyncInto(c.In[k])
	}
	ncxH := a.Ord.NotCoexecSet(h)
	for _, k := range ncxH {
		m.block(c.In[k])
		m.block(c.Out[k])
	}
	ncxT := a.Ord.NotCoexecSet(t)
	for _, k := range ncxT {
		m.block(c.In[k])
		m.block(c.Out[k])
	}
	if tr := a.Trace; tr != nil {
		tr.Add("pruned_sequenceable", int64(len(seq)))
		tr.Add("pruned_notcoexec", int64(len(ncxH)+len(ncxT)))
	}
}

// sccThrough runs a masked strong-component search and returns the set of
// CLG nodes in the component containing start, when that component is
// nontrivial (contains a cycle). Nil means start lies on no cycle under
// the mask.
func (a *Analyzer) sccThrough(m *mask, start int) []int {
	comp, ok := maskedSCC(a.CLG, m, start)
	if !ok {
		return nil
	}
	return comp
}

// maskedSCC computes the strongly-connected component of start in the CLG
// under mask m, restricted to nodes reachable from start, reusing the
// analyzer's epoch-stamped scratch buffers. Returns the component members
// and whether the component is nontrivial.
func maskedSCC(c *clg.CLG, m *mask, start int) ([]int, bool) {
	if m.isBlocked(start) {
		return nil, false
	}
	g := c.G
	n := g.N()
	s := &m.a.scratch
	if len(s.visited) < n {
		s.visited = make([]int, n)
		s.index = make([]int, n)
		s.low = make([]int, n)
		s.onStack = make([]bool, n)
		s.compOf = make([]int, n)
	}
	s.sccEpoch++
	epoch := s.sccEpoch
	seen := func(v int) bool { return s.visited[v] == epoch }
	visit := func(v, idx int) {
		s.visited[v] = epoch
		s.index[v], s.low[v] = idx, idx
		s.onStack[v] = true
		s.stack = append(s.stack, v)
	}
	stackBase := len(s.stack)
	idx := 0
	ncomp := 0

	allowed := func(u, v int) bool {
		if m.isBlocked(v) {
			return false
		}
		if c.IsSyncEdge(u, v) && (m.noSyncOut(u) || m.noSyncIn(v)) {
			return false
		}
		return true
	}

	s.frames = append(s.frames[:0], sccFrame{start, 0})
	visit(start, 0)
	idx = 1
	startComp := -1
	for len(s.frames) > 0 {
		f := &s.frames[len(s.frames)-1]
		v := f.v
		if f.ei < len(g.Succ(v)) {
			w := g.Succ(v)[f.ei]
			f.ei++
			if !allowed(v, w) {
				continue
			}
			if !seen(w) {
				visit(w, idx)
				idx++
				s.frames = append(s.frames, sccFrame{w, 0})
			} else if s.onStack[w] && s.index[w] < s.low[v] {
				s.low[v] = s.index[w]
			}
			continue
		}
		if s.low[v] == s.index[v] {
			for {
				w := s.stack[len(s.stack)-1]
				s.stack = s.stack[:len(s.stack)-1]
				s.onStack[w] = false
				s.compOf[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
		s.frames = s.frames[:len(s.frames)-1]
		if len(s.frames) > 0 {
			p := s.frames[len(s.frames)-1].v
			if s.low[v] < s.low[p] {
				s.low[p] = s.low[v]
			}
		}
	}
	s.stack = s.stack[:stackBase]
	startComp = s.compOf[start]

	var members []int
	for v := 0; v < n; v++ {
		if s.visited[v] == epoch && s.compOf[v] == startComp {
			members = append(members, v)
		}
	}
	if len(members) > 1 {
		return members, true
	}
	// Single-node component: nontrivial only with an allowed self-loop
	// (the CLG construction never creates one, but stay defensive).
	for _, w := range g.Succ(start) {
		if w == start && allowed(start, start) {
			return members, true
		}
	}
	return nil, false
}

// witnessNodes maps CLG component members back to deduplicated, sorted
// sync-graph node ids for reporting.
func (a *Analyzer) witnessNodes(comp []int) []int {
	set := map[int]bool{}
	var out []int
	for _, v := range comp {
		o := a.CLG.Orig[v]
		if !set[o] {
			set[o] = true
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}

// Refined runs the paper's main refined algorithm: one masked SCC search
// per possible head node. Total time O(|N_CLG| * (|N_CLG| + |E_CLG|)).
func (a *Analyzer) Refined() Verdict {
	v := Verdict{Algorithm: AlgoRefined}
	for _, h := range a.PossibleHeads() {
		v.Hypotheses++
		m := a.newMask()
		a.markHead(m, h)
		v.SCCRuns++
		if comp := a.sccThrough(m, a.CLG.In[h]); comp != nil {
			v.MayDeadlock = true
			v.Witnesses = appendWitness(v.Witnesses, a.witnessNodes(comp))
		}
	}
	return v
}

// RefinedPairs hypothesizes unordered pairs of head nodes in distinct
// tasks. Pairs that are sequenceable (constraint 3a) or joined by a sync
// edge (constraint 2) cannot both head one cycle and are skipped; every
// deadlock cycle couples at least two tasks, so the pair sweep is
// exhaustive and the detector remains safe.
func (a *Analyzer) RefinedPairs() Verdict {
	v := Verdict{Algorithm: AlgoRefinedPairs}
	heads := a.PossibleHeads()
	g := a.SG
	for i, h1 := range heads {
		for _, h2 := range heads[i+1:] {
			if g.TaskOf[h1] == g.TaskOf[h2] ||
				a.Ord.Sequenceable(h1, h2) ||
				g.HasSyncEdge(h1, h2) ||
				a.Ord.NotCoexec[h1][h2] {
				continue
			}
			v.Hypotheses++
			m := a.newMask()
			a.markHead(m, h1)
			a.markHead(m, h2)
			v.SCCRuns++
			comp := a.sccThrough(m, a.CLG.In[h1])
			if comp == nil || !contains(comp, a.CLG.In[h2]) {
				continue
			}
			v.MayDeadlock = true
			v.Witnesses = appendWitness(v.Witnesses, a.witnessNodes(comp))
		}
	}
	return v
}

// tailCandidates returns valid tails for head h: rendezvous nodes with
// sync edges, strictly control-reachable from h, not same-type co-accepts
// of h and co-executable with h.
func (a *Analyzer) tailCandidates(h int) []int {
	g := a.SG
	reach := g.Control.ReachableFrom(g.Control.Succ(h)...)
	coacc := map[int]bool{}
	for _, k := range a.Ord.CoAccept[h] {
		coacc[k] = true
	}
	var out []int
	for _, n := range g.Nodes {
		t := n.ID
		if !n.IsRendezvous() || !reach[t] || len(g.Sync[t]) == 0 {
			continue
		}
		if coacc[t] || a.Ord.NotCoexec[h][t] {
			continue
		}
		out = append(out, t)
	}
	return out
}

// RefinedHeadTail hypothesizes (head, tail) pairs within one task and
// requires the strong component to contain both h_i and t_o.
func (a *Analyzer) RefinedHeadTail() Verdict {
	v := Verdict{Algorithm: AlgoRefinedHeadTail}
	for _, h := range a.PossibleHeads() {
		for _, t := range a.tailCandidates(h) {
			v.Hypotheses++
			m := a.newMask()
			a.markHeadTail(m, h, t)
			v.SCCRuns++
			comp := a.sccThrough(m, a.CLG.In[h])
			if comp == nil || !contains(comp, a.CLG.Out[t]) {
				continue
			}
			v.MayDeadlock = true
			v.Witnesses = appendWitness(v.Witnesses, a.witnessNodes(comp))
		}
	}
	return v
}

// RefinedHeadTailPairs combines both extensions with k = 2: two head-tail
// pairs in distinct tasks must share one strong component. The paper notes
// k = 2 is the safe limit without a separate small-cycle search, because
// every deadlock cycle joins at least two tasks.
func (a *Analyzer) RefinedHeadTailPairs() Verdict {
	v := Verdict{Algorithm: AlgoRefinedHeadTailPairs}
	g := a.SG
	type ht struct{ h, t int }
	var hyps []ht
	for _, h := range a.PossibleHeads() {
		for _, t := range a.tailCandidates(h) {
			hyps = append(hyps, ht{h, t})
		}
	}
	for i, p1 := range hyps {
		for _, p2 := range hyps[i+1:] {
			if g.TaskOf[p1.h] == g.TaskOf[p2.h] ||
				a.Ord.Sequenceable(p1.h, p2.h) ||
				g.HasSyncEdge(p1.h, p2.h) ||
				a.Ord.NotCoexec[p1.h][p2.h] {
				continue
			}
			v.Hypotheses++
			m := a.newMask()
			a.markHeadTail(m, p1.h, p1.t)
			a.markHeadTail(m, p2.h, p2.t)
			v.SCCRuns++
			comp := a.sccThrough(m, a.CLG.In[p1.h])
			if comp == nil ||
				!contains(comp, a.CLG.Out[p1.t]) ||
				!contains(comp, a.CLG.In[p2.h]) ||
				!contains(comp, a.CLG.Out[p2.t]) {
				continue
			}
			v.MayDeadlock = true
			v.Witnesses = appendWitness(v.Witnesses, a.witnessNodes(comp))
		}
	}
	return v
}

// Run dispatches by algorithm. AlgoRefinedKPairs runs with k = 3 and
// default budgets; AlgoEnumerate runs with the default cycle budget (its
// inconclusive outcome maps to a conservative may-deadlock verdict).
func (a *Analyzer) Run(algo Algorithm) Verdict {
	var v Verdict
	switch algo {
	case AlgoNaive:
		v = a.Naive()
	case AlgoRefined:
		v = a.Refined()
	case AlgoRefinedPairs:
		v = a.RefinedPairs()
	case AlgoRefinedHeadTail:
		v = a.RefinedHeadTail()
	case AlgoRefinedHeadTailPairs:
		v = a.RefinedHeadTailPairs()
	case AlgoRefinedKPairs:
		v = a.RefinedKPairs(3, KPairsBudget{})
	case AlgoEnumerate:
		v = a.Enumerate(0).Verdict
	default:
		v = a.Refined()
	}
	a.recordVerdict(v)
	return v
}

// recordVerdict copies a verdict's work counts into the active trace span,
// so stage spans expose the same numbers the Verdict always carried.
func (a *Analyzer) recordVerdict(v Verdict) {
	if t := a.Trace; t != nil {
		t.Add("hypotheses", int64(v.Hypotheses))
		t.Add("scc_runs", int64(v.SCCRuns))
		t.Add("witnesses", int64(len(v.Witnesses)))
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func appendWitness(ws [][]int, w []int) [][]int {
	for _, x := range ws {
		if equalInts(x, w) {
			return ws
		}
	}
	return append(ws, w)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
