// Package core implements the paper's two polynomial-time deadlock
// detection algorithms and the extension spectrum of §4.2.
//
// Naive (§3.1): the program may deadlock only if its cycle location graph
// has a directed cycle. Refined (§4.2): for every hypothesized head node h,
// nodes sequenceable with h are blocked from acting as heads (sync edge
// into k_i removed), same-type co-accepts are blocked from sync traversal
// entirely, and nodes that cannot co-execute with h are removed; h is a
// possible deadlock head only if a strong component through h_i survives.
// Extensions hypothesize head pairs, head–tail pairs, and two head–tail
// pairs, trading time for precision exactly as the paper describes.
//
// All detectors are conservative: they never report "deadlock-free" for a
// program that can deadlock (property-tested against the exact wave
// explorer), but may report possible deadlocks that cannot occur.
//
// Every algorithm expects a loop-free sync graph; apply cfg.Unroll first
// (Analyze in the facade package does this automatically).
//
// Execution model: the refined detectors all test streams of independent
// hypotheses, so they run on the parallel sweep engine in sweep.go —
// per-worker probe state, deterministic merge, verdicts byte-identical to
// serial runs. See the Analyzer doc for the concurrency contract.
package core

import (
	"encoding/binary"
	"sync"

	"repro/internal/clg"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/sg"
)

// Algorithm names the detection variants, in increasing precision/cost.
type Algorithm int

const (
	// AlgoNaive is CLG cycle detection (constraint 1 only).
	AlgoNaive Algorithm = iota
	// AlgoRefined hypothesizes single head nodes (the paper's main
	// algorithm, approximating constraints 2 and 3a).
	AlgoRefined
	// AlgoRefinedPairs hypothesizes pairs of head nodes.
	AlgoRefinedPairs
	// AlgoRefinedHeadTail hypothesizes head-tail node pairs.
	AlgoRefinedHeadTail
	// AlgoRefinedHeadTailPairs hypothesizes two head-tail pairs (k = 2).
	AlgoRefinedHeadTailPairs
)

func (a Algorithm) String() string {
	switch a {
	case AlgoNaive:
		return "naive"
	case AlgoRefined:
		return "refined"
	case AlgoRefinedPairs:
		return "refined+head-pairs"
	case AlgoRefinedHeadTail:
		return "refined+head-tail"
	case AlgoRefinedHeadTailPairs:
		return "refined+head-tail-pairs"
	case AlgoRefinedKPairs:
		return "refined+k-pairs"
	case AlgoEnumerate:
		return "enumerate"
	}
	return "?"
}

// Verdict is the outcome of one detection run.
type Verdict struct {
	Algorithm Algorithm
	// MayDeadlock is true unless the program was certified deadlock-free.
	MayDeadlock bool
	// Witnesses holds, per surviving hypothesis, the sync-graph node ids
	// of a strong component supporting a possible deadlock (deduplicated).
	Witnesses [][]int
	// Hypotheses counts head (or pair) hypotheses tested; SCCRuns counts
	// masked strong-component searches performed.
	Hypotheses int
	SCCRuns    int
}

// Analyzer bundles a sync graph with its derived structures so the
// detection spectrum can be run without recomputing them.
//
// Concurrency: an Analyzer is read-only after construction and safe for
// concurrent use — any number of goroutines may call the detector methods
// on one shared Analyzer. All per-hypothesis mutable state (markings,
// Tarjan scratch) lives in pooled probe values, never in the Analyzer.
// The two exceptions to the read-only contract are the exported knobs
// Parallelism and Trace, which callers set before handing the Analyzer
// out. Trace aggregation is not synchronized across detector runs:
// concurrent runs on one Analyzer require a nil Trace (the facade traces
// only its own single-goroutine pipeline, so this composes).
type Analyzer struct {
	SG  *sg.Graph
	CLG *clg.CLG
	Ord *order.Info

	// Parallelism caps the worker count of hypothesis sweeps. 0 (the
	// default) means GOMAXPROCS; 1 forces serial execution; values above
	// GOMAXPROCS are honored (useful for exercising the parallel path on
	// small machines). Verdicts are identical at every setting.
	Parallelism int

	// Trace, when non-nil, receives the detector's work counters
	// (hypotheses tested, SCC runs, nodes pruned by each marking rule,
	// sweep worker counts). The facade points it at the active
	// pipeline-stage span before each detector run; a nil Trace records
	// nothing and costs one branch. Only the coordinating goroutine
	// writes to it — workers accumulate privately and the sums are merged
	// after each sweep, so totals match serial runs exactly.
	Trace *obs.Span

	// Immutable hypothesis tables, materialized once at construction so
	// the per-hypothesis hot path never recomputes or allocates them:
	// POSS-HEADS, SEQUENCEABLE and NOT-COEXEC sets per rendezvous node,
	// and tail candidates per possible head.
	heads   []int
	seqSets [][]int
	ncxSets [][]int
	tails   [][]int

	// probes is behind a pointer so Session views share one scratch pool
	// with the analyzer they alias (copying a sync.Pool is illegal).
	probes *sync.Pool
}

// Session returns a lightweight view of the analyzer binding per-run
// knobs without mutating the shared value: the view aliases every
// immutable table (and the probe pool) but carries its own Parallelism
// and Trace. Stage caches that share one Analyzer per program digest
// across concurrently running algorithms must run detectors through
// sessions — writing the knobs on the shared Analyzer would race.
func (a *Analyzer) Session(parallelism int, trace *obs.Span) *Analyzer {
	s := *a
	s.Parallelism = parallelism
	s.Trace = trace
	return &s
}

// SizeBytes approximates the analyzer's resident footprint — the derived
// CLG, ordering matrices, and memoized hypothesis tables — for
// byte-budgeted caches that retain one Analyzer per program digest. The
// sync graph itself is excluded: front-end cache entries account for it.
func (a *Analyzer) SizeBytes() int64 {
	sz := a.CLG.SizeBytes() + a.Ord.SizeBytes()
	sz += int64(len(a.heads)) * 8
	for _, t := range [][][]int{a.seqSets, a.ncxSets, a.tails} {
		sz += int64(len(t)) * 24 // slice headers
		for _, row := range t {
			sz += int64(len(row)) * 8
		}
	}
	return sz
}

// NewAnalyzer builds the CLG and ordering facts for g. The sync graph must
// be loop-free for the refined detectors to gain any precision; with
// control cycles they degrade (safely) toward the naive answer.
//
// Ordering facts are snapshotted here: order.Info.AddNotCoexec calls made
// after construction are not seen by this Analyzer's detectors.
func NewAnalyzer(g *sg.Graph) *Analyzer {
	return NewAnalyzerTraced(g, nil)
}

// NewAnalyzerTraced is NewAnalyzer recording the derived structures' sizes
// (CLG nodes/edges) into span (nil span records nothing).
func NewAnalyzerTraced(g *sg.Graph, span *obs.Span) *Analyzer {
	a := &Analyzer{SG: g, CLG: clg.BuildTraced(g, span), Ord: order.Compute(g), probes: new(sync.Pool)}
	a.heads = a.computeHeads()
	n := g.N()
	a.seqSets = make([][]int, n)
	a.ncxSets = make([][]int, n)
	a.tails = make([][]int, n)
	for _, nd := range g.Nodes {
		if !nd.IsRendezvous() {
			continue
		}
		a.seqSets[nd.ID] = a.Ord.SequenceableSet(nd.ID)
		a.ncxSets[nd.ID] = a.Ord.NotCoexecSet(nd.ID)
	}
	for _, h := range a.heads {
		a.tails[h] = a.computeTailCandidates(h)
	}
	return a
}

// computeHeads derives the paper's POSS-HEADS set: rendezvous nodes with
// at least one sync edge that are the tail of at least one control edge
// leading to another rendezvous node.
func (a *Analyzer) computeHeads() []int {
	g := a.SG
	var out []int
	for _, n := range g.Nodes {
		if !n.IsRendezvous() || len(g.Sync[n.ID]) == 0 {
			continue
		}
		for _, s := range g.Control.Succ(n.ID) {
			if s != g.E && g.Nodes[s].IsRendezvous() {
				out = append(out, n.ID)
				break
			}
		}
	}
	return out
}

// PossibleHeads returns the paper's POSS-HEADS set, memoized at
// construction. Callers must not modify the returned slice.
func (a *Analyzer) PossibleHeads() []int { return a.heads }

// Naive runs CLG cycle detection.
func (a *Analyzer) Naive() Verdict {
	v := Verdict{Algorithm: AlgoNaive}
	v.Witnesses = a.CLG.Cycles()
	v.MayDeadlock = len(v.Witnesses) > 0
	v.Hypotheses = 1
	v.SCCRuns = 1
	return v
}

// computeTailCandidates derives valid tails for head h: rendezvous nodes
// with sync edges, strictly control-reachable from h, not same-type
// co-accepts of h and co-executable with h.
func (a *Analyzer) computeTailCandidates(h int) []int {
	g := a.SG
	reach := g.Control.ReachableFrom(g.Control.Succ(h)...)
	coacc := map[int]bool{}
	for _, k := range a.Ord.CoAccept[h] {
		coacc[k] = true
	}
	var out []int
	for _, n := range g.Nodes {
		t := n.ID
		if !n.IsRendezvous() || !reach[t] || len(g.Sync[t]) == 0 {
			continue
		}
		if coacc[t] || a.Ord.NotCoexec.Get(h, t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// tailCandidates returns the cached tail set for possible head h (nil for
// nodes outside POSS-HEADS). Callers must not modify the returned slice.
func (a *Analyzer) tailCandidates(h int) []int { return a.tails[h] }

// Refined runs the paper's main refined algorithm: one masked SCC search
// per possible head node. Total time O(|N_CLG| * (|N_CLG| + |E_CLG|)),
// divided across sweep workers.
func (a *Analyzer) Refined() Verdict {
	return a.sweep(AlgoRefined, a.refinedHyps())
}

// RefinedPairs hypothesizes unordered pairs of head nodes in distinct
// tasks. Pairs that are sequenceable (constraint 3a) or joined by a sync
// edge (constraint 2) cannot both head one cycle and are skipped; every
// deadlock cycle couples at least two tasks, so the pair sweep is
// exhaustive and the detector remains safe.
func (a *Analyzer) RefinedPairs() Verdict {
	return a.sweep(AlgoRefinedPairs, a.refinedPairHyps())
}

// RefinedHeadTail hypothesizes (head, tail) pairs within one task and
// requires the strong component to contain both h_i and t_o.
func (a *Analyzer) RefinedHeadTail() Verdict {
	return a.sweep(AlgoRefinedHeadTail, a.headTailHyps())
}

// RefinedHeadTailPairs combines both extensions with k = 2: two head-tail
// pairs in distinct tasks must share one strong component. The paper notes
// k = 2 is the safe limit without a separate small-cycle search, because
// every deadlock cycle joins at least two tasks.
func (a *Analyzer) RefinedHeadTailPairs() Verdict {
	return a.sweep(AlgoRefinedHeadTailPairs, a.headTailPairHyps())
}

// Run dispatches by algorithm. AlgoRefinedKPairs runs with k = 3 and
// default budgets; AlgoEnumerate runs with the default cycle budget (its
// inconclusive outcome maps to a conservative may-deadlock verdict).
func (a *Analyzer) Run(algo Algorithm) Verdict {
	var v Verdict
	switch algo {
	case AlgoNaive:
		v = a.Naive()
	case AlgoRefined:
		v = a.Refined()
	case AlgoRefinedPairs:
		v = a.RefinedPairs()
	case AlgoRefinedHeadTail:
		v = a.RefinedHeadTail()
	case AlgoRefinedHeadTailPairs:
		v = a.RefinedHeadTailPairs()
	case AlgoRefinedKPairs:
		v = a.RefinedKPairs(3, KPairsBudget{})
	case AlgoEnumerate:
		v = a.Enumerate(0).Verdict
	default:
		v = a.Refined()
	}
	a.recordVerdict(v)
	return v
}

// recordVerdict copies a verdict's work counts into the active trace span,
// so stage spans expose the same numbers the Verdict always carried.
func (a *Analyzer) recordVerdict(v Verdict) {
	if t := a.Trace; t != nil {
		t.Add("hypotheses", int64(v.Hypotheses))
		t.Add("scc_runs", int64(v.SCCRuns))
		t.Add("witnesses", int64(len(v.Witnesses)))
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// witnessSet accumulates witness node lists, deduplicating by content
// while preserving first-seen order. Keys are varint-packed so dedup is
// O(total witness length), not quadratic in the number of witnesses.
type witnessSet struct {
	keys map[string]bool
	list [][]int
}

func (ws *witnessSet) add(w []int) {
	k := witnessKey(w)
	if ws.keys == nil {
		ws.keys = map[string]bool{}
	}
	if ws.keys[k] {
		return
	}
	ws.keys[k] = true
	ws.list = append(ws.list, w)
}

func witnessKey(w []int) string {
	buf := make([]byte, 0, 4*len(w))
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range w {
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], int64(v))]...)
	}
	return string(buf)
}
