package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sg"
	"repro/internal/waves"
	"repro/internal/workload"
)

func TestEnumerateOnFixtures(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		alarm bool
	}{
		{"real deadlock", reversedHandshake, true},
		{"figure 1 class", figure1Class, false},
		{"figure 4c", figure4c, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := analyzer(t, c.src)
			v := a.Enumerate(0)
			if !v.Conclusive {
				t.Fatal("truncated")
			}
			if v.MayDeadlock != c.alarm {
				t.Fatalf("alarm=%v, want %v (plausible=%d of %d)",
					v.MayDeadlock, c.alarm, v.CyclesPlausible, v.CyclesSeen)
			}
		})
	}
}

func TestEnumerateInconclusiveOnTinyBudget(t *testing.T) {
	a := analyzer(t, figure1Class)
	v := a.Enumerate(1)
	if v.Conclusive {
		// A single cycle may genuinely fit the budget; accept either, but
		// when inconclusive the verdict must be conservative.
		return
	}
	if !v.MayDeadlock {
		t.Fatal("inconclusive enumeration must not certify")
	}
}

func TestEnumerateRings(t *testing.T) {
	for n := 2; n <= 5; n++ {
		a := NewAnalyzer(sg.MustFromProgram(workload.Ring(n)))
		v := a.Enumerate(0)
		if !v.Conclusive || !v.MayDeadlock {
			t.Fatalf("ring(%d): %+v", n, v)
		}
		ab := NewAnalyzer(sg.MustFromProgram(workload.RingBroken(n)))
		vb := ab.Enumerate(0)
		if !vb.Conclusive {
			t.Fatalf("ring-broken(%d) truncated", n)
		}
		if vb.MayDeadlock {
			t.Fatalf("ring-broken(%d) flagged: %+v", n, vb.Witnesses)
		}
	}
}

// Safety: the enumeration detector never certifies a deadlocking program.
func TestQuickEnumerateSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		cfg.BranchProb = 0.3
		p := workload.Random(rng, cfg)
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || exact.Truncated || !exact.Deadlock {
			return true
		}
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		a := NewAnalyzer(g)
		v := a.Enumerate(1 << 16)
		if !v.MayDeadlock {
			t.Logf("UNSOUND: enumeration missed deadlock in\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Precision: enumeration is at least as precise as every masked-SCC
// detector — it certifies whenever any of them does (its filters are a
// superset of the necessary conditions they approximate).
func TestQuickEnumerateDominatesSpectrum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		a := NewAnalyzer(g)
		v := a.Enumerate(1 << 16)
		if !v.Conclusive {
			return true
		}
		if !v.MayDeadlock {
			return true // certifying is never wrong to check here
		}
		// If enumeration alarms, at least naive must alarm (a cycle
		// exists).
		return a.Naive().MayDeadlock
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
