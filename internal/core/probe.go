package core

import (
	"sort"

	"repro/internal/obs"
)

// probe is the per-worker mutable state of the hypothesis engine: the
// epoch-stamped CLG markings for the hypothesis under test, the Tarjan
// scratch of the masked strong-component search, and the witness
// deduplication buffer. Factoring it out of Analyzer is what makes the
// Analyzer itself read-only after construction — a parallel sweep hands
// each worker its own probe and the workers share nothing but the
// analyzer's immutable tables.
//
// A probe is single-goroutine state; obtain one per worker via
// Analyzer.newProbe and return it with Analyzer.putProbe when done.
type probe struct {
	a *Analyzer

	// Hypothesis markings (valid while == epoch).
	epoch       int
	blocked     []int // DO-NOT-ENTER
	noSyncInto  []int
	noSyncOutOf []int

	// Masked-SCC scratch.
	sccEpoch int
	visited  []int // Tarjan visitation stamp
	index    []int
	low      []int
	onStack  []bool
	compOf   []int
	stack    []int
	frames   []sccFrame
	compBuf  []int // component members of the last search (reused)

	// Witness mapping scratch (sync-graph node ids).
	witEpoch int
	witSeen  []int

	// Marking-rule work counters, accumulated locally and folded into the
	// coordinator's trace span after a sweep (sums are order-independent,
	// so parallel runs report the same totals as serial ones).
	prunedSeq     int64
	prunedCoacc   int64
	prunedNcx     int64
	hypothesesRun int64
}

type sccFrame struct {
	v  int
	ei int
}

// newProbe returns a probe sized for the analyzer's CLG, drawing from the
// analyzer's pool so repeated sweeps reuse scratch memory.
func (a *Analyzer) newProbe() *probe {
	if p, ok := a.probes.Get().(*probe); ok && p != nil {
		p.prunedSeq, p.prunedCoacc, p.prunedNcx, p.hypothesesRun = 0, 0, 0, 0
		return p
	}
	n := a.CLG.N()
	return &probe{
		a:           a,
		blocked:     make([]int, n),
		noSyncInto:  make([]int, n),
		noSyncOutOf: make([]int, n),
		visited:     make([]int, n),
		index:       make([]int, n),
		low:         make([]int, n),
		onStack:     make([]bool, n),
		compOf:      make([]int, n),
		witSeen:     make([]int, a.SG.N()),
	}
}

// putProbe returns a probe to the analyzer's pool.
func (a *Analyzer) putProbe(p *probe) { a.probes.Put(p) }

// flushTrace folds the probe's accumulated marking counters into span.
// Only the sweep coordinator may call it (obs.Span is not concurrent-safe).
func (p *probe) flushTrace(span *obs.Span) {
	if span == nil {
		return
	}
	span.Add("pruned_sequenceable", p.prunedSeq)
	span.Add("pruned_coaccept", p.prunedCoacc)
	span.Add("pruned_notcoexec", p.prunedNcx)
}

// begin opens a fresh hypothesis: all previous markings expire.
func (p *probe) begin() { p.epoch++ }

func (p *probe) block(v int)          { p.blocked[v] = p.epoch }
func (p *probe) blockSyncInto(v int)  { p.noSyncInto[v] = p.epoch }
func (p *probe) blockSyncOutOf(v int) { p.noSyncOutOf[v] = p.epoch }
func (p *probe) isBlocked(v int) bool { return p.blocked[v] == p.epoch }
func (p *probe) noSyncIn(v int) bool  { return p.noSyncInto[v] == p.epoch }
func (p *probe) noSyncOut(v int) bool { return p.noSyncOutOf[v] == p.epoch }

// markHead applies the single-head markings for hypothesized head h:
//   - SEQUENCEABLE[h]: cannot be heads of the same cycle (constraint 3a),
//     so sync edges into k_i are blocked. Blocking k's outgoing sync edge
//     too, as the paper's main-loop text literally reads, would also
//     forbid k as a *tail* and is demonstrably unsound (see DESIGN.md);
//     the paper's own head-tail extension marks only r_i, which we follow.
//   - COACCEPT[h]: same-type accepts cannot carry the cycle out of h's
//     task without forcing a constraint-2 violation (Lemma 2), so both
//     halves lose sync traversal.
//   - NOT-COEXEC[h]: cannot appear in any run with h (constraint 3b), so
//     the nodes are removed outright.
func (p *probe) markHead(h int) {
	a := p.a
	c := a.CLG
	seq := a.seqSets[h]
	for _, k := range seq {
		p.blockSyncInto(c.In[k])
	}
	coacc := a.Ord.CoAccept[h]
	for _, k := range coacc {
		p.blockSyncInto(c.In[k])
		p.blockSyncOutOf(c.Out[k])
	}
	ncx := a.ncxSets[h]
	for _, k := range ncx {
		p.block(c.In[k])
		p.block(c.Out[k])
	}
	p.prunedSeq += int64(len(seq))
	p.prunedCoacc += int64(len(coacc))
	p.prunedNcx += int64(len(ncx))
}

// markHeadTail applies the head-tail variant markings for (h, t):
// NOT-COEXEC of either hypothesis is removed; SEQUENCEABLE[h] lose head
// status; COACCEPT needs no marking because the tail is fixed.
func (p *probe) markHeadTail(h, t int) {
	a := p.a
	c := a.CLG
	seq := a.seqSets[h]
	for _, k := range seq {
		p.blockSyncInto(c.In[k])
	}
	ncxH := a.ncxSets[h]
	for _, k := range ncxH {
		p.block(c.In[k])
		p.block(c.Out[k])
	}
	ncxT := a.ncxSets[t]
	for _, k := range ncxT {
		p.block(c.In[k])
		p.block(c.Out[k])
	}
	p.prunedSeq += int64(len(seq))
	p.prunedNcx += int64(len(ncxH) + len(ncxT))
}

// sccThrough runs a masked strong-component search and returns the set of
// CLG nodes in the component containing start, when that component is
// nontrivial (contains a cycle). Nil means start lies on no cycle under
// the current markings. The returned slice is probe-owned scratch, valid
// only until the probe's next search.
func (p *probe) sccThrough(start int) []int {
	comp, ok := p.maskedSCC(start)
	if !ok {
		return nil
	}
	return comp
}

// maskedSCC computes the strongly-connected component of start in the CLG
// under the probe's markings, restricted to nodes reachable from start,
// reusing the probe's epoch-stamped scratch. Returns the component members
// (ascending CLG ids) and whether the component is nontrivial.
func (p *probe) maskedSCC(start int) ([]int, bool) {
	if p.isBlocked(start) {
		return nil, false
	}
	c := p.a.CLG
	g := c.G
	n := g.N()
	p.sccEpoch++
	epoch := p.sccEpoch
	seen := func(v int) bool { return p.visited[v] == epoch }
	visit := func(v, idx int) {
		p.visited[v] = epoch
		p.index[v], p.low[v] = idx, idx
		p.onStack[v] = true
		p.stack = append(p.stack, v)
	}
	stackBase := len(p.stack)
	idx := 0
	ncomp := 0

	allowed := func(u, v int) bool {
		if p.isBlocked(v) {
			return false
		}
		if c.IsSyncEdge(u, v) && (p.noSyncOut(u) || p.noSyncIn(v)) {
			return false
		}
		return true
	}

	p.frames = append(p.frames[:0], sccFrame{start, 0})
	visit(start, 0)
	idx = 1
	for len(p.frames) > 0 {
		f := &p.frames[len(p.frames)-1]
		v := f.v
		if f.ei < len(g.Succ(v)) {
			w := g.Succ(v)[f.ei]
			f.ei++
			if !allowed(v, w) {
				continue
			}
			if !seen(w) {
				visit(w, idx)
				idx++
				p.frames = append(p.frames, sccFrame{w, 0})
			} else if p.onStack[w] && p.index[w] < p.low[v] {
				p.low[v] = p.index[w]
			}
			continue
		}
		if p.low[v] == p.index[v] {
			for {
				w := p.stack[len(p.stack)-1]
				p.stack = p.stack[:len(p.stack)-1]
				p.onStack[w] = false
				p.compOf[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
		p.frames = p.frames[:len(p.frames)-1]
		if len(p.frames) > 0 {
			pv := p.frames[len(p.frames)-1].v
			if p.low[v] < p.low[pv] {
				p.low[pv] = p.low[v]
			}
		}
	}
	p.stack = p.stack[:stackBase]
	startComp := p.compOf[start]

	members := p.compBuf[:0]
	for v := 0; v < n; v++ {
		if p.visited[v] == epoch && p.compOf[v] == startComp {
			members = append(members, v)
		}
	}
	p.compBuf = members
	if len(members) > 1 {
		return members, true
	}
	// Single-node component: nontrivial only with an allowed self-loop
	// (the CLG construction never creates one, but stay defensive).
	for _, w := range g.Succ(start) {
		if w == start && allowed(start, start) {
			return members, true
		}
	}
	return nil, false
}

// witnessNodes maps CLG component members back to deduplicated, sorted
// sync-graph node ids for reporting. The dedup pass runs over an
// epoch-stamped seen buffer instead of a fresh map — witness extraction
// sits on the per-hypothesis hot path.
func (p *probe) witnessNodes(comp []int) []int {
	p.witEpoch++
	out := make([]int, 0, len(comp))
	for _, v := range comp {
		o := p.a.CLG.Orig[v]
		if p.witSeen[o] != p.witEpoch {
			p.witSeen[o] = p.witEpoch
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}
