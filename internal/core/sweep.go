package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel hypothesis engine. Every masked-SCC detector
// in the spectrum factors into the same shape: enumerate a stream of
// independent hypotheses (heads, head pairs, head–tail pairs, k-sets of
// head–tail pairs), test each one with private markings + one masked
// strong-component search, and merge the verdicts. Hypotheses never
// interact — each test reads only the analyzer's immutable tables — so
// the stream shards freely across workers without weakening the paper's
// conservatism argument (see DESIGN.md).
//
// Determinism: hypotheses are enumerated up front in the exact order the
// historical serial loops visited them; workers claim indices from an
// atomic counter and write results into a per-index slot; the coordinator
// merges slots in index order. Verdicts (flag, witness list, counters)
// are therefore byte-identical to a serial run regardless of worker count
// or scheduling — TestParallelMatchesSerial pins this on ~200 random
// programs.

// ht is one head–tail hypothesis; t < 0 means a head-only hypothesis.
type ht struct{ h, t int }

// hypothesis is one unit of the sweep stream: one or more head(–tail)
// pairs that must jointly survive in a single strong component.
type hypothesis struct {
	pairs []ht
}

// workers returns the effective worker count for a stream of n
// hypotheses: Parallelism when set, else GOMAXPROCS, never more than n.
func (a *Analyzer) workers(n int) int {
	w := a.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// test runs one hypothesis on the probe and returns its witness (nil when
// the hypothesis dies): mark every pair, search through the first head's
// in-half, and require every hypothesized half-node in the component.
func (p *probe) test(h *hypothesis) []int {
	p.begin()
	p.hypothesesRun++
	for _, pr := range h.pairs {
		if pr.t < 0 {
			p.markHead(pr.h)
		} else {
			p.markHeadTail(pr.h, pr.t)
		}
	}
	c := p.a.CLG
	comp := p.sccThrough(c.In[h.pairs[0].h])
	if comp == nil {
		return nil
	}
	for i, pr := range h.pairs {
		if i > 0 && !contains(comp, c.In[pr.h]) {
			return nil
		}
		if pr.t >= 0 && !contains(comp, c.Out[pr.t]) {
			return nil
		}
	}
	return p.witnessNodes(comp)
}

// sweep tests every hypothesis and merges the results deterministically.
// Hypotheses and SCCRuns count the full stream (each hypothesis costs
// exactly one masked search, counted even when the start node is blocked,
// matching the historical serial loops).
func (a *Analyzer) sweep(algo Algorithm, hyps []hypothesis) Verdict {
	v := Verdict{Algorithm: algo}
	v.Hypotheses = len(hyps)
	v.SCCRuns = len(hyps)
	if len(hyps) == 0 {
		return v
	}

	nw := a.workers(len(hyps))
	ws := witnessSet{}
	if nw == 1 {
		p := a.newProbe()
		for i := range hyps {
			if w := p.test(&hyps[i]); w != nil {
				v.MayDeadlock = true
				ws.add(w)
			}
		}
		p.flushTrace(a.Trace)
		a.recordWorkers(1, int64(len(hyps)))
		a.putProbe(p)
		v.Witnesses = ws.list
		return v
	}

	results := make([][]int, len(hyps))
	probes := make([]*probe, nw)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p := a.newProbe()
			probes[slot] = p
			for {
				i := int(next.Add(1)) - 1
				if i >= len(hyps) {
					return
				}
				results[i] = p.test(&hyps[i])
			}
		}(w)
	}
	wg.Wait()
	var maxPerWorker int64
	for _, p := range probes {
		p.flushTrace(a.Trace)
		if p.hypothesesRun > maxPerWorker {
			maxPerWorker = p.hypothesesRun
		}
		a.putProbe(p)
	}
	a.recordWorkers(nw, maxPerWorker)
	for _, w := range results {
		if w != nil {
			v.MayDeadlock = true
			ws.add(w)
		}
	}
	v.Witnesses = ws.list
	return v
}

// sweepAny is the early-cancelling variant for boolean-only callers: it
// reports whether any hypothesis survives, stopping all workers as soon
// as one does. Work counters and witness identity are intentionally not
// tracked (they would be scheduling-dependent); nothing is traced.
func (a *Analyzer) sweepAny(hyps []hypothesis) bool {
	if len(hyps) == 0 {
		return false
	}
	nw := a.workers(len(hyps))
	if nw == 1 {
		p := a.newProbe()
		defer a.putProbe(p)
		for i := range hyps {
			if p.test(&hyps[i]) != nil {
				return true
			}
		}
		return false
	}
	var next atomic.Int64
	var found atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := a.newProbe()
			defer a.putProbe(p)
			for !found.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(hyps) {
					return
				}
				if p.test(&hyps[i]) != nil {
					found.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return found.Load()
}

// recordWorkers notes the sweep shape in the active trace span: how many
// workers ran and the largest number of hypotheses any one of them
// claimed (a load-balance indicator; equals the stream length when
// serial).
func (a *Analyzer) recordWorkers(n int, maxPerWorker int64) {
	if t := a.Trace; t != nil {
		t.Add("workers", int64(n))
		t.Add("hypotheses_per_worker", maxPerWorker)
	}
}

// refinedHyps enumerates the single-head stream (the paper's main loop).
func (a *Analyzer) refinedHyps() []hypothesis {
	heads := a.PossibleHeads()
	hyps := make([]hypothesis, len(heads))
	for i, h := range heads {
		hyps[i] = hypothesis{pairs: []ht{{h, -1}}}
	}
	return hyps
}

// refinedPairHyps enumerates compatible head pairs in distinct tasks.
func (a *Analyzer) refinedPairHyps() []hypothesis {
	heads := a.PossibleHeads()
	var hyps []hypothesis
	for i, h1 := range heads {
		for _, h2 := range heads[i+1:] {
			if !a.compatibleHeads(h1, h2) {
				continue
			}
			hyps = append(hyps, hypothesis{pairs: []ht{{h1, -1}, {h2, -1}}})
		}
	}
	return hyps
}

// headTailHyps enumerates (head, tail) pairs within one task.
func (a *Analyzer) headTailHyps() []hypothesis {
	var hyps []hypothesis
	for _, h := range a.PossibleHeads() {
		for _, t := range a.tailCandidates(h) {
			hyps = append(hyps, hypothesis{pairs: []ht{{h, t}}})
		}
	}
	return hyps
}

// headTailPairHyps enumerates pairs of head–tail hypotheses whose heads
// are compatible (distinct tasks, co-executable, unordered, no sync edge).
func (a *Analyzer) headTailPairHyps() []hypothesis {
	var singles []ht
	for _, h := range a.PossibleHeads() {
		for _, t := range a.tailCandidates(h) {
			singles = append(singles, ht{h, t})
		}
	}
	var hyps []hypothesis
	for i, p1 := range singles {
		for _, p2 := range singles[i+1:] {
			if !a.compatibleHeads(p1.h, p2.h) {
				continue
			}
			hyps = append(hyps, hypothesis{pairs: []ht{p1, p2}})
		}
	}
	return hyps
}

// kPairHyps enumerates sets of k pairwise-compatible head–tail hypotheses
// from distinct tasks, in the order the historical recursive sweep tested
// them, stopping after limit sets. The boolean reports overflow: one more
// set existed beyond the limit, so the caller must not treat the stream
// as exhaustive.
func (a *Analyzer) kPairHyps(k, limit int) ([]hypothesis, bool) {
	var singles []ht
	for _, h := range a.PossibleHeads() {
		for _, t := range a.tailCandidates(h) {
			singles = append(singles, ht{h, t})
		}
	}
	var hyps []hypothesis
	overflow := false
	chosen := make([]ht, 0, k)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(chosen) == k {
			if len(hyps) >= limit {
				overflow = true
				return false
			}
			hyps = append(hyps, hypothesis{pairs: append([]ht(nil), chosen...)})
			return true
		}
		for i := start; i < len(singles); i++ {
			ok := true
			for _, p := range chosen {
				if !a.compatibleHeads(p.h, singles[i].h) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, singles[i])
			cont := rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
	return hyps, overflow
}

// Certify reports whether algo certifies the program free of infinite
// wait anomalies (the negation of Verdict.MayDeadlock). For the
// hypothesis detectors it early-cancels: workers stop as soon as any
// hypothesis survives, so callers that only need the boolean skip the
// tail of the stream. Work counters are not traced on this path.
func (a *Analyzer) Certify(algo Algorithm) bool {
	switch algo {
	case AlgoRefined:
		return !a.sweepAny(a.refinedHyps())
	case AlgoRefinedPairs:
		return !a.sweepAny(a.refinedPairHyps())
	case AlgoRefinedHeadTail:
		return !a.sweepAny(a.headTailHyps())
	case AlgoRefinedHeadTailPairs:
		return !a.sweepAny(a.headTailPairHyps())
	default:
		return !a.Run(algo).MayDeadlock
	}
}
