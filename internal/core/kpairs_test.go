package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sg"
	"repro/internal/waves"
	"repro/internal/workload"
)

// A two-task deadlock joins fewer than three tasks: with k = 3 it must be
// caught by the exhaustive small-cycle phase, not the hypothesis phase.
func TestKPairsSmallCyclePhaseCatchesTwoTaskDeadlock(t *testing.T) {
	a := analyzer(t, reversedHandshake)
	v := a.RefinedKPairs(3, KPairsBudget{})
	if !v.MayDeadlock {
		t.Fatal("k=3 missed a two-task deadlock; small-cycle phase broken")
	}
	// The small-cycle phase needs no SCC hypothesis to fire here, but
	// either way the alarm must carry a witness.
	if len(v.Witnesses) == 0 {
		t.Fatal("no witness")
	}
}

func TestKPairsDetectsLargeRings(t *testing.T) {
	for n := 3; n <= 5; n++ {
		a := NewAnalyzer(sg.MustFromProgram(workload.Ring(n)))
		for k := 2; k <= 3; k++ {
			if v := a.RefinedKPairs(k, KPairsBudget{}); !v.MayDeadlock {
				t.Fatalf("ring(%d) missed at k=%d", n, k)
			}
		}
	}
}

func TestKPairsCertifiesFigure1Class(t *testing.T) {
	a := analyzer(t, figure1Class)
	for k := 2; k <= 3; k++ {
		if v := a.RefinedKPairs(k, KPairsBudget{}); v.MayDeadlock {
			t.Fatalf("k=%d failed to certify the figure-1 class: %+v", k, v.Witnesses)
		}
	}
}

func TestKPairsMatchesHeadTailPairsOnPipeline(t *testing.T) {
	// Pipeline(4,3) is the program where head *pairs* certify via
	// constraint 2 but head-tail pairs do not (tail hypotheses cannot use
	// the sync edge between heads of adjacent stages). k-pairs shares the
	// head-tail hypothesis space, so it alarms here too — the ladder is a
	// partial order (see EXPERIMENTS.md T6).
	a := NewAnalyzer(sg.MustFromProgram(workload.Pipeline(4, 3)))
	htp := a.RefinedHeadTailPairs().MayDeadlock
	kp := a.RefinedKPairs(2, KPairsBudget{}).MayDeadlock
	if kp != htp {
		t.Fatalf("k=2 (%v) disagrees with head-tail-pairs (%v)", kp, htp)
	}
	if !kp {
		t.Fatal("expected the documented alarm on Pipeline(4,3)")
	}
}

func TestKPairsBudgetFallback(t *testing.T) {
	// Absurdly small hypothesis budget forces the k=3 -> k=2 fallback;
	// the verdict must stay safe (alarm) on a real deadlock.
	a := NewAnalyzer(sg.MustFromProgram(workload.Ring(4)))
	v := a.RefinedKPairs(3, KPairsBudget{MaxHypothesisSets: 1})
	if !v.MayDeadlock {
		t.Fatal("budget fallback lost the deadlock")
	}
	// Tiny small-cycle budget: certification must be declined outright.
	a2 := analyzer(t, figure1Class)
	v2 := a2.RefinedKPairs(3, KPairsBudget{MaxSmallCycles: 1})
	if len(v2.Witnesses) != 0 && !v2.MayDeadlock {
		t.Fatal("inconsistent verdict")
	}
}

// Safety: k-pairs never certifies a program the exact explorer deadlocks,
// for k in {2, 3}.
func TestQuickKPairsSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		p := workload.Random(rng, cfg)
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || exact.Truncated || !exact.Deadlock {
			return true
		}
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		a := NewAnalyzer(g)
		for k := 2; k <= 3; k++ {
			if !a.RefinedKPairs(k, KPairsBudget{}).MayDeadlock {
				t.Logf("UNSOUND: k=%d missed deadlock in\n%s", k, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Precision: k-pairs at k=2 is at least as precise as head-tail-pairs on
// random programs (it adds the Lemma-2 and co-executability cycle filters
// to the same hypothesis space)... it may only certify MORE, never less.
func TestQuickKPairsAtLeastHeadTailPairsPrecision(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		a := NewAnalyzer(g)
		htp := a.RefinedHeadTailPairs().MayDeadlock
		kp := a.RefinedKPairs(2, KPairsBudget{}).MayDeadlock
		// kp alarms only if htp does OR a plausible small cycle exists;
		// a plausible small (1-task) cycle cannot exist in loop-free
		// graphs, so kp => htp.
		if kp && !htp {
			t.Logf("k-pairs alarmed where head-tail-pairs certified:\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallCycleEnumeration(t *testing.T) {
	a := analyzer(t, reversedHandshake)
	cycles, complete := a.enumerateSmallCycles(2, 0)
	if !complete {
		t.Fatal("truncated")
	}
	if len(cycles) != 1 {
		t.Fatalf("cycles=%d, want 1", len(cycles))
	}
	if !a.plausibleDeadlockCycle(cycles[0]) {
		t.Fatal("the real deadlock cycle must be plausible")
	}
	// maxTasks=1: no single-task cycles exist in loop-free graphs.
	none, complete := a.enumerateSmallCycles(1, 0)
	if !complete || len(none) != 0 {
		t.Fatalf("single-task cycles: %v", none)
	}
}
