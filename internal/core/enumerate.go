package core

import (
	"repro/internal/graph"
)

// AlgoEnumerate labels verdicts of the cycle-enumeration detector.
const AlgoEnumerate Algorithm = 101

// EnumerationVerdict is the outcome of the enumeration detector. Unlike
// the hypothesis detectors it can be inconclusive: when the cycle budget
// trips, MayDeadlock is reported conservatively and Conclusive is false.
type EnumerationVerdict struct {
	Verdict
	Conclusive bool
	// CyclesSeen / CyclesPlausible count enumerated simple cycles and the
	// survivors of the feasibility filters.
	CyclesSeen      int
	CyclesPlausible int
}

// Enumerate runs the most precise detector in the suite: it enumerates
// every simple CLG cycle (up to limit; 0 = 4096) and keeps only cycles
// that could derive from a stuck execution wave:
//
//   - the cycle enters each task at most once (constraint 1c — a wave
//     holds one node per task, so a wave-derived cycle's pass through a
//     task is a single head-to-tail path; the masked strong-component
//     detectors cannot express this),
//   - head nodes are pairwise compatible: distinct tasks, no sync edge
//     (constraint 2), not sequenceable (constraint 3a),
//   - no task is entered and exited through same-type accepts (Lemma 2),
//   - no two nodes of the cycle are intra-task NOT-COEXEC (the cycle's
//     task segment is one control path; constraint 3b's sound core).
//
// Every real deadlock produces a wave-derived cycle that passes all four
// filters, so an empty survivor set is a deadlock-freedom certificate.
// Worst-case cost is exponential in the number of simple cycles; the
// budget keeps it usable and the verdict degrades safely.
func (a *Analyzer) Enumerate(limit int) EnumerationVerdict {
	v := EnumerationVerdict{Verdict: Verdict{Algorithm: AlgoEnumerate}}
	cycles, complete := a.EnumerateCycles(limit)
	v.Conclusive = complete
	v.CyclesSeen = len(cycles)
	if !complete {
		v.MayDeadlock = true
		if t := a.Trace; t != nil {
			t.Add("cycles_seen", int64(v.CyclesSeen))
			t.Add("budget_exceeded", 1)
		}
		return v
	}
	ws := witnessSet{}
	for _, ci := range cycles {
		v.Hypotheses++
		if !a.singleEntryPerTask(ci) || !a.plausibleDeadlockCycle(ci) {
			continue
		}
		v.CyclesPlausible++
		v.MayDeadlock = true
		ws.add(graph.Sorted(ci.Nodes))
	}
	v.Witnesses = ws.list
	if t := a.Trace; t != nil {
		t.Add("cycles_seen", int64(v.CyclesSeen))
		t.Add("cycles_plausible", int64(v.CyclesPlausible))
	}
	return v
}

// singleEntryPerTask reports whether the cycle enters every task at most
// once, i.e. has exactly one head node per participating task.
func (a *Analyzer) singleEntryPerTask(ci CycleInfo) bool {
	seen := map[int]bool{}
	for _, h := range ci.Heads {
		ti := a.SG.TaskOf[h]
		if seen[ti] {
			return false
		}
		seen[ti] = true
	}
	return true
}
