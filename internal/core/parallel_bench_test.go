package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/sg"
	"repro/internal/workload"
)

// Parallel hypothesis-engine benchmarks. The headline comparison is
// BenchmarkParallelSweep: RefinedPairs on workload.CrossRing(32, 2) —
// thousands of head-pair hypotheses, each an independent masked SCC
// search — swept serially and with the worker pool. On a 4-core machine
// the parallel sweep is expected to finish the same stream at >= 2x the
// serial rate (hypothesis tests dominate and share nothing); on a
// single-core machine the two converge, since the engine never trades
// verdict fidelity for speed. Every benchmark asserts the parallel
// verdict is deep-equal to the serial one before timing.
//
// Run: go test -bench=ParallelSweep -benchmem ./internal/core
// (or `make bench-json` at the repo root for the committed baseline).

func crossRingAnalyzer(b *testing.B, parallelism int) *Analyzer {
	b.Helper()
	g := sg.MustFromProgram(workload.CrossRing(32, 2))
	a := NewAnalyzer(g)
	a.Parallelism = parallelism
	return a
}

func BenchmarkParallelSweep(b *testing.B) {
	type run struct {
		name string
		do   func(a *Analyzer) Verdict
	}
	runs := []run{
		{"Refined", func(a *Analyzer) Verdict { return a.Refined() }},
		{"RefinedPairs", func(a *Analyzer) Verdict { return a.RefinedPairs() }},
		{"RefinedHeadTailPairs", func(a *Analyzer) Verdict { return a.RefinedHeadTailPairs() }},
	}
	for _, r := range runs {
		serial := crossRingAnalyzer(b, 1)
		parallel := crossRingAnalyzer(b, 0) // GOMAXPROCS workers
		want := r.do(serial)
		if got := r.do(parallel); !reflect.DeepEqual(want, got) {
			b.Fatalf("%s: parallel verdict differs from serial", r.name)
		}
		b.Run(r.name+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := r.do(serial); v.MayDeadlock != want.MayDeadlock {
					b.Fatal("verdict changed")
				}
			}
		})
		b.Run(fmt.Sprintf("%s/parallel-%d", r.name, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := r.do(parallel); v.MayDeadlock != want.MayDeadlock {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

// BenchmarkParallelSweepScaling sweeps the worker count on the pair
// stream, for plotting speedup curves from the committed BENCH json.
func BenchmarkParallelSweepScaling(b *testing.B) {
	serial := crossRingAnalyzer(b, 1)
	want := serial.RefinedPairs()
	for _, workers := range []int{1, 2, 4, 8} {
		a := crossRingAnalyzer(b, workers)
		if got := a.RefinedPairs(); !reflect.DeepEqual(want, got) {
			b.Fatalf("workers=%d: verdict differs from serial", workers)
		}
		b.Run(fmt.Sprintf("RefinedPairs/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := a.RefinedPairs(); v.MayDeadlock != want.MayDeadlock {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

// BenchmarkAnalyzerConstruction prices the read-only table
// materialization (heads, sequenceable/not-coexec sets, tail caches,
// bitset closure) that NewAnalyzer now performs up front.
func BenchmarkAnalyzerConstruction(b *testing.B) {
	g := sg.MustFromProgram(workload.CrossRing(32, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a := NewAnalyzer(g); len(a.PossibleHeads()) == 0 {
			b.Fatal("no heads")
		}
	}
}
