package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/sg"
	"repro/internal/workload"
)

// sweepAlgorithms is every detector that runs on the hypothesis engine
// (Naive and Enumerate have no hypothesis stream to shard).
var sweepAlgorithms = []Algorithm{
	AlgoRefined, AlgoRefinedPairs, AlgoRefinedHeadTail,
	AlgoRefinedHeadTailPairs, AlgoRefinedKPairs,
}

// TestParallelMatchesSerial is the determinism pin for the parallel
// hypothesis engine: on ~200 random programs, every sweep detector must
// produce byte-identical verdicts — flag, witness lists (content and
// order), hypothesis and SCC counts — at parallelism 1, 3 and 8. The
// worker counts deliberately exceed GOMAXPROCS on small machines; the
// engine honors explicit oversubscription exactly so this path stays
// testable everywhere.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tested := 0
	for i := 0; i < 200; i++ {
		c := workload.DefaultConfig()
		c.Tasks = 2 + rng.Intn(3)
		c.StmtsPerTask = 2 + rng.Intn(3)
		c.BranchProb = 0.3
		p := workload.Random(rng, c)
		if cfg.HasLoops(p) {
			p = cfg.Unroll(p)
		}
		g, err := sg.FromProgram(p)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		serial := NewAnalyzer(g)
		serial.Parallelism = 1
		for _, par := range []int{3, 8} {
			parallel := NewAnalyzer(g)
			parallel.Parallelism = par
			for _, algo := range sweepAlgorithms {
				want := serial.Run(algo)
				got := parallel.Run(algo)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("program %d, %v, parallelism %d: verdicts diverge\nserial:   %+v\nparallel: %+v\nprogram:\n%s",
						i, algo, par, want, got, p)
				}
				tested++
			}
		}
		// Certify must agree with the full verdict even though it
		// early-cancels.
		for _, algo := range sweepAlgorithms {
			parallel := NewAnalyzer(g)
			parallel.Parallelism = 4
			if got, want := parallel.Certify(algo), !serial.Run(algo).MayDeadlock; got != want {
				t.Fatalf("program %d, %v: Certify=%v, serial verdict says %v\nprogram:\n%s",
					i, algo, got, want, p)
			}
		}
	}
	t.Logf("%d verdict pairs compared", tested)
}

// TestParallelMatchesSerialDeterministicFamilies covers the structured
// workloads (where witnesses are plentiful) at several worker counts.
func TestParallelMatchesSerialDeterministicFamilies(t *testing.T) {
	programs := map[string]*sg.Graph{
		"ring5":      sg.MustFromProgram(workload.Ring(5)),
		"ringB6":     sg.MustFromProgram(workload.RingBroken(6)),
		"pipeline":   sg.MustFromProgram(workload.Pipeline(4, 3)),
		"crossring":  sg.MustFromProgram(workload.CrossRing(8, 2)),
		"clientserv": sg.MustFromProgram(workload.ClientServer(3)),
	}
	for name, g := range programs {
		serial := NewAnalyzer(g)
		serial.Parallelism = 1
		for _, par := range []int{2, 5, 16} {
			parallel := NewAnalyzer(g)
			parallel.Parallelism = par
			for _, algo := range sweepAlgorithms {
				t.Run(fmt.Sprintf("%s/%v/p%d", name, algo, par), func(t *testing.T) {
					want := serial.Run(algo)
					got := parallel.Run(algo)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("verdicts diverge\nserial:   %+v\nparallel: %+v", want, got)
					}
				})
			}
		}
	}
}
