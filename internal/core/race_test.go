package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/sg"
	"repro/internal/workload"
)

// TestAnalyzerConcurrentUse pins the Analyzer's read-only contract: one
// shared Analyzer must serve concurrent Run/Certify calls from many
// goroutines, each itself running a parallel sweep, with every caller
// seeing the canonical verdict. Run under -race (the CI test job does)
// this also proves the probe pool and the immutable hypothesis tables
// are free of data races.
func TestAnalyzerConcurrentUse(t *testing.T) {
	g := sg.MustFromProgram(workload.CrossRing(8, 2))
	a := NewAnalyzer(g)
	a.Parallelism = 4

	want := map[Algorithm]Verdict{}
	ref := NewAnalyzer(g)
	ref.Parallelism = 1
	for _, algo := range sweepAlgorithms {
		want[algo] = ref.Run(algo)
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				algo := sweepAlgorithms[(seed+r)%len(sweepAlgorithms)]
				if seed%2 == 0 {
					if got := a.Run(algo); !reflect.DeepEqual(got, want[algo]) {
						errs <- algo.String() + ": concurrent verdict diverged"
						return
					}
				} else if got := a.Certify(algo); got == want[algo].MayDeadlock {
					errs <- algo.String() + ": concurrent Certify diverged"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
