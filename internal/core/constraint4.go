package core

import (
	"repro/internal/graph"
)

// This file implements the paper's fourth (global) deadlock condition for
// the simple pattern of Figure 3: a candidate cycle is spurious when some
// task outside the cycle is always ready to rendezvous with one of the
// cycle's head nodes and thereby break the deadlock.
//
// We certify a breaker w for head t of a cycle when:
//
//   - w's task is disjoint from every task on the cycle;
//   - w has a sync edge to t;
//   - w is the unconditional first rendezvous of its task (its only control
//     predecessor is b) and lies on every control path of its task (no
//     b-to-e path in the task avoids w);
//   - every sync partner of w is either t itself or a node that must
//     execute after t (Precede[t][partner]).
//
// Under those conditions any wave containing the cycle's heads must have
// w's task positioned exactly at w — it cannot be past w, because passing w
// requires a rendezvous with t (stuck) or with a node that executes only
// after t — and w can then rendezvous with t, so the wave is not anomalous.

// CycleInfo is one simple CLG cycle mapped back to sync-graph terms.
type CycleInfo struct {
	// Nodes are the sync-graph node ids on the cycle, in cycle order.
	Nodes []int
	// Heads are the nodes entered through a sync edge (the wave members a
	// deadlock would strand); Tails are the nodes whose sync edge carries
	// the cycle out of their task.
	Heads []int
	Tails []int
}

// EnumerateCycles lists the simple cycles of the CLG, mapped to sync-graph
// node ids, up to limit cycles (0 means 4096). The boolean result reports
// whether enumeration was exhaustive; when false, certification by
// constraint 4 must be declined.
func (a *Analyzer) EnumerateCycles(limit int) ([]CycleInfo, bool) {
	return a.EnumerateCyclesRestricted(limit, nil)
}

// EnumerateCyclesRestricted is EnumerateCycles over the subgraph induced
// by the sync-graph nodes for which allowed returns true (nil allows
// everything). The Theorem 2 checker uses it to confine the search to
// literal tasks, mirroring the paper's argument that valid deadlock cycles
// in the gadget involve only the sync edges between literal tasks.
func (a *Analyzer) EnumerateCyclesRestricted(limit int, allowed func(sgNode int) bool) ([]CycleInfo, bool) {
	if limit <= 0 {
		limit = 4096
	}
	c := a.CLG
	g := c.G
	if allowed != nil {
		sub := graph.New(g.N())
		for u := 0; u < g.N(); u++ {
			if !allowed(c.Orig[u]) {
				continue
			}
			for _, v := range g.Succ(u) {
				if allowed(c.Orig[v]) {
					sub.AddEdge(u, v)
				}
			}
		}
		g = sub
	}
	comp, _ := g.SCC()

	var cycles []CycleInfo
	complete := true
	path := []int{}
	onPath := make([]bool, g.N())

	var dfs func(start, v int) bool
	dfs = func(start, v int) bool {
		path = append(path, v)
		onPath[v] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[v] = false
		}()
		for _, w := range g.Succ(v) {
			if comp[w] != comp[start] || w < start {
				continue // stay in SCC; dedupe by smallest start node
			}
			if w == start {
				cycles = append(cycles, a.cycleInfo(path))
				if len(cycles) >= limit {
					return false
				}
				continue
			}
			if !onPath[w] {
				if !dfs(start, w) {
					return false
				}
			}
		}
		return true
	}

	sizes := graph.SCCSizes(comp, g.N()+1)
	for v := 0; v < g.N(); v++ {
		if sizes[comp[v]] < 2 {
			continue
		}
		if !dfs(v, v) {
			complete = false
			break
		}
	}
	return cycles, complete
}

// cycleInfo converts a CLG node path (a cycle, first node implicit
// successor of the last) into sync-graph nodes with head/tail roles.
func (a *Analyzer) cycleInfo(path []int) CycleInfo {
	c := a.CLG
	var ci CycleInfo
	seen := map[int]bool{}
	for i, u := range path {
		o := c.Orig[u]
		if !seen[o] {
			seen[o] = true
			ci.Nodes = append(ci.Nodes, o)
		}
		v := path[(i+1)%len(path)]
		if c.IsSyncEdge(u, v) {
			ci.Tails = append(ci.Tails, c.Orig[u])
			ci.Heads = append(ci.Heads, c.Orig[v])
		}
	}
	return ci
}

// BreakableByOutsider reports whether the cycle is always broken by a task
// outside it, per the Figure 3 pattern, returning the breaking node id
// (-1 when none qualifies).
func (a *Analyzer) BreakableByOutsider(ci CycleInfo) (int, bool) {
	g := a.SG
	cycleTasks := map[int]bool{}
	for _, n := range ci.Nodes {
		cycleTasks[g.TaskOf[n]] = true
	}
	for _, t := range ci.Heads {
		for _, w := range g.Sync[t] {
			if cycleTasks[g.TaskOf[w]] {
				continue
			}
			if !a.unconditionalFirst(w) {
				continue
			}
			ok := true
			for _, p := range g.Sync[w] {
				if p == t || a.Ord.Precede.Get(t, p) {
					continue
				}
				ok = false
				break
			}
			if ok {
				return w, true
			}
		}
	}
	return -1, false
}

// unconditionalFirst reports whether w is the mandatory first rendezvous
// of its task: its only control predecessor is b, and no control path of
// its task runs from b to e avoiding w.
func (a *Analyzer) unconditionalFirst(w int) bool {
	g := a.SG
	for _, p := range g.Control.Pred(w) {
		if p != g.B {
			return false
		}
	}
	if len(g.Control.Pred(w)) == 0 {
		return false
	}
	// DFS from b through w's task avoiding w; reaching e means a path
	// around w exists.
	ti := g.TaskOf[w]
	stack := []int{}
	seen := map[int]bool{w: true}
	for _, s := range g.Control.Succ(g.B) {
		if s != g.E && g.TaskOf[s] == ti && s != w {
			stack = append(stack, s)
			seen[s] = true
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Control.Succ(v) {
			if s == g.E {
				return false
			}
			if g.TaskOf[s] == ti && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	// Also require that the task cannot skip straight to e from b.
	for _, first := range g.InitialNodes(ti) {
		if first == g.E {
			return false
		}
	}
	return true
}

// Constraint4Certify enumerates all simple CLG cycles and reports
// (deadlockFree, conclusive): deadlockFree is true when every cycle is
// breakable by an outside task; conclusive is false when enumeration hit
// its cap, in which case no certification is made.
func (a *Analyzer) Constraint4Certify(limit int) (deadlockFree, conclusive bool) {
	cycles, complete := a.EnumerateCycles(limit)
	if t := a.Trace; t != nil {
		t.Add("cycles_enumerated", int64(len(cycles)))
	}
	if !complete {
		return false, false
	}
	broken := 0
	defer func() {
		if t := a.Trace; t != nil {
			t.Add("cycles_broken_by_outsider", int64(broken))
		}
	}()
	for _, ci := range cycles {
		if _, ok := a.BreakableByOutsider(ci); !ok {
			return false, true
		}
		broken++
	}
	return true, true
}
