package core

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/waves"
)

// Figure 3 reconstruction: the cycle r,s,t,u is valid under constraints
// 1-3, but task W's single node w can only rendezvous with t or with v
// (which must execute after t), so whenever the cycle's heads are stuck,
// w is ready and breaks the deadlock.
//
//	T1: r: accept mr; s: T2.mt
//	T2: t: accept mt; u: T1.mr; v: accept mt
//	W : w: T2.mt
const figure3 = `
task T1 is
begin
  r: accept mr;
  s: T2.mt;
end;
task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;
task W is
begin
  w: T2.mt;
end;
`

func TestFigure3CycleSurvivesLocalConstraints(t *testing.T) {
	a := analyzer(t, figure3)
	// Constraints 1-3 leave the cycle alive across the local spectrum.
	for _, algo := range []Algorithm{AlgoNaive, AlgoRefined, AlgoRefinedPairs} {
		if v := a.Run(algo); !v.MayDeadlock {
			t.Fatalf("%v unexpectedly certified figure 3 (cycle is valid under local constraints)", algo)
		}
	}
}

func TestFigure3BrokenByConstraint4(t *testing.T) {
	a := analyzer(t, figure3)
	cycles, complete := a.EnumerateCycles(0)
	if !complete {
		t.Fatal("enumeration truncated on a tiny graph")
	}
	if len(cycles) == 0 {
		t.Fatal("no cycles found")
	}
	// The r,s,t,u cycle must be among them with heads {r, t}.
	r, tt := a.SG.NodeByLabel("r"), a.SG.NodeByLabel("t")
	found := false
	for _, ci := range cycles {
		heads := map[int]bool{}
		for _, h := range ci.Heads {
			heads[h] = true
		}
		if heads[r] && heads[tt] && len(ci.Nodes) == 4 {
			found = true
			breaker, ok := a.BreakableByOutsider(ci)
			if !ok {
				t.Fatal("figure 3 cycle not recognized as breakable")
			}
			if breaker != a.SG.NodeByLabel("w") {
				t.Fatalf("breaker=%v, want w", a.SG.Nodes[breaker])
			}
		}
	}
	if !found {
		t.Fatalf("r,s,t,u cycle missing from %d enumerated cycles", len(cycles))
	}
	free, conclusive := a.Constraint4Certify(0)
	if !conclusive || !free {
		t.Fatalf("constraint 4 certification failed: free=%v conclusive=%v", free, conclusive)
	}
	// Ground truth agrees.
	res, err := waves.ExploreProgram(lang.MustParse(figure3), waves.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("figure 3 program must be deadlock-free")
	}
}

func TestConstraint4DoesNotBreakRealDeadlock(t *testing.T) {
	a := analyzer(t, reversedHandshake)
	free, conclusive := a.Constraint4Certify(0)
	if !conclusive {
		t.Fatal("enumeration should complete")
	}
	if free {
		t.Fatal("constraint 4 wrongly certified a real deadlock")
	}
}

func TestConstraint4RequiresOutsideTask(t *testing.T) {
	// Like figure 3 but the extra sender w lives inside T1, i.e. inside a
	// cycle task, so it does not qualify as a breaker... and indeed the
	// modified program can deadlock (T1 may take the w-path first? no —
	// straight-line: r;s;w2). Place the extra same-type send after s in
	// T1: whenever the wave is (r, t), w2 is unreached, so the deadlock
	// is real.
	a := analyzer(t, `
task T1 is
begin
  r: accept mr;
  s: T2.mt;
  w2: T2.mt;
end;
task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;
`)
	free, conclusive := a.Constraint4Certify(0)
	if conclusive && free {
		t.Fatal("certified without a valid outside breaker")
	}
	res, err := waves.ExploreProgram(lang.MustParse(`
task T1 is
begin
  r: accept mr;
  s: T2.mt;
  w2: T2.mt;
end;
task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;
`), waves.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock {
		t.Fatal("expected a real deadlock once the breaker moved inside the cycle")
	}
}

func TestConstraint4BreakerMustBeUnconditionalFirst(t *testing.T) {
	// The breaker sits behind another rendezvous in its task: it is not
	// guaranteed ready, so certification must be declined. (Here W first
	// waits for a signal that only T1 can send after r — the deadlock
	// wave (r, t, pre) is real.)
	a := analyzer(t, `
task T1 is
begin
  r: accept mr;
  s: T2.mt;
end;
task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;
task W is
begin
  pre: accept unlock;
  w: T2.mt;
end;
`)
	free, conclusive := a.Constraint4Certify(0)
	if conclusive && free {
		t.Fatal("guarded breaker accepted")
	}
}

func TestEnumerateCyclesLimit(t *testing.T) {
	a := analyzer(t, figure1Class)
	_, complete := a.EnumerateCycles(1)
	// With limit 1 on a graph whose SCC holds >= 1 cycle, enumeration may
	// stop early; it must then report incompleteness... the single cycle
	// case returns complete. Force a tiny limit sanity check only.
	_ = complete
	cycles, _ := a.EnumerateCycles(0)
	if len(cycles) == 0 {
		t.Fatal("no cycles on figure-1 class graph")
	}
	for _, ci := range cycles {
		if len(ci.Heads) != len(ci.Tails) {
			t.Fatalf("head/tail mismatch: %+v", ci)
		}
		if len(ci.Heads) < 2 {
			t.Fatalf("cycle with < 2 heads: %+v", ci)
		}
	}
}
