package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/sg"
	"repro/internal/waves"
	"repro/internal/workload"
)

func analyzer(t *testing.T, src string) *Analyzer {
	t.Helper()
	return NewAnalyzer(sg.MustFromProgram(lang.MustParse(src)))
}

// Figure 2(b): the reversed handshake deadlocks in every execution. Every
// detector in the spectrum must keep reporting it (safety pin — this is
// also the program on which the paper's literal main-loop marking would
// wrongly certify deadlock freedom; see DESIGN.md).
const reversedHandshake = `
task A is
begin
  a1: accept x;
  a2: B.y;
end;
task B is
begin
  b1: accept y;
  b2: A.x;
end;
`

func TestRealDeadlockReportedByAllAlgorithms(t *testing.T) {
	a := analyzer(t, reversedHandshake)
	for _, algo := range []Algorithm{
		AlgoNaive, AlgoRefined, AlgoRefinedPairs,
		AlgoRefinedHeadTail, AlgoRefinedHeadTailPairs,
	} {
		v := a.Run(algo)
		if !v.MayDeadlock {
			t.Fatalf("%v certified an always-deadlocking program", algo)
		}
		if len(v.Witnesses) == 0 {
			t.Fatalf("%v reported no witness", algo)
		}
	}
}

// The correct handshake is certified by everything, starting with naive.
func TestCorrectHandshakeCertified(t *testing.T) {
	a := analyzer(t, `
task t1 is
begin
  t2.sig1;
  accept sig2;
end;
task t2 is
begin
  accept sig1;
  t1.sig2;
end;
`)
	for _, algo := range []Algorithm{
		AlgoNaive, AlgoRefined, AlgoRefinedPairs,
		AlgoRefinedHeadTail, AlgoRefinedHeadTailPairs,
	} {
		if v := a.Run(algo); v.MayDeadlock {
			t.Fatalf("%v flagged the correct handshake", algo)
		}
	}
}

// Figure 1 class (reconstruction): two sends and two accepts of one signal
// type. Deadlock-free, but the CLG has a cycle whose heads can rendezvous
// with each other (constraint 2 violation). The naive detector and — with
// the soundness-corrected head-only marking — the single-head refined
// detector both flag it; the pair extensions certify it (the send-side
// head hypothesis alone cannot see the accept-side COACCEPT argument).
const figure1Class = `
task t1 is
begin
  r: t2.sig1;
  s: t2.sig1;
end;
task t2 is
begin
  u: accept sig1;
  v: accept sig1;
end;
`

func TestFigure1Spectrum(t *testing.T) {
	a := analyzer(t, figure1Class)
	if v := a.Naive(); !v.MayDeadlock {
		t.Fatal("naive should flag the figure-1 class program")
	}
	if v := a.Refined(); !v.MayDeadlock {
		t.Fatal("single-head refined with sound marking still flags it (send-side hypothesis)")
	}
	if v := a.RefinedPairs(); v.MayDeadlock {
		t.Fatal("head pairs must certify: the only candidate pair can rendezvous")
	}
	if v := a.RefinedHeadTailPairs(); v.MayDeadlock {
		t.Fatal("head-tail pairs must certify")
	}
	// Ground truth agreement.
	res, err := waves.ExploreProgram(lang.MustParse(figure1Class), waves.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("figure-1 class program is supposed to be deadlock-free")
	}
}

// COACCEPT marking (Lemma 2): hypothesizing the accept-side head must kill
// the same-type in/out cycle even when other hypotheses cannot.
func TestCoAcceptMarkingKillsAcceptSideHypothesis(t *testing.T) {
	a := analyzer(t, figure1Class)
	u := a.SG.NodeByLabel("u")
	p := a.newProbe()
	p.begin()
	p.markHead(u)
	if comp := p.sccThrough(a.CLG.In[u]); comp != nil {
		t.Fatalf("accept-side hypothesis survived: %v", comp)
	}
	// Without COACCEPT the cycle is there.
	r := a.SG.NodeByLabel("r")
	p.begin()
	p.markHead(r)
	if comp := p.sccThrough(a.CLG.In[r]); comp == nil {
		t.Fatal("send-side hypothesis should survive (motivates the pair extension)")
	}
}

// SEQUENCEABLE marking: heads ordered by rule 2 kill the spurious cycle.
func TestSequenceableMarkingKillsOrderedHeads(t *testing.T) {
	// t1 = [r: accept m1; s: accept m2], t2 = [u: t1.m1; v: t1.m2].
	// Deadlock-free (u can always meet r). The CLG has the cycle
	// r,s(via sync to v)... heads r and v with r < v derived by rule 2,
	// and u < s symmetrically, so every head hypothesis dies.
	a := analyzer(t, `
task t1 is
begin
  r: accept m1;
  s: accept m2;
end;
task t2 is
begin
  u: t1.m1;
  v: t1.m2;
end;
`)
	if v := a.Naive(); !v.MayDeadlock {
		t.Skip("no CLG cycle; nothing to eliminate")
	}
	if v := a.Refined(); v.MayDeadlock {
		t.Fatalf("refined failed to kill ordered-head cycle: %+v", v.Witnesses)
	}
}

func TestPossibleHeads(t *testing.T) {
	a := analyzer(t, figure1Class)
	heads := a.PossibleHeads()
	want := map[int]bool{
		a.SG.NodeByLabel("r"): true,
		a.SG.NodeByLabel("u"): true,
	}
	if len(heads) != 2 {
		t.Fatalf("heads=%v", heads)
	}
	for _, h := range heads {
		if !want[h] {
			t.Fatalf("unexpected head %d (%v)", h, a.SG.Nodes[h])
		}
	}
}

func TestPossibleHeadsNeedsSyncEdge(t *testing.T) {
	// A node with no sync partner can never head a deadlock.
	a := analyzer(t, `
task t1 is
begin
  lonely: accept nobody;
  t2.m;
end;
task t2 is
begin
  accept m;
  t1.x;
end;
task t3 is
begin
  t1.x;
end;
`)
	lonely := a.SG.NodeByLabel("lonely")
	for _, h := range a.PossibleHeads() {
		if h == lonely {
			t.Fatal("partner-less node in POSS-HEADS")
		}
	}
}

// Figure 4(c): a spurious cycle that needs both exclusive branches of one
// task. Intra-task NOT-COEXEC kills hypotheses inside that task; full
// certification additionally needs cross-task co-execution facts, which
// the paper assumes come from a separate analysis — injected here.
const figure4c = `
task X is
begin
  if c then
    a: accept m1;
    bb: Y.m2;
  else
    cc: accept m3;
    d: Z.m4;
  end if;
end;
task Y is
begin
  e1: accept m2;
  f1: X.m3;
end;
task Z is
begin
  g: accept m4;
  h: X.m1;
end;
`

func TestFigure4cNotCoexec(t *testing.T) {
	a := analyzer(t, figure4c)
	if v := a.Naive(); !v.MayDeadlock {
		t.Fatal("naive should find the branch-straddling cycle")
	}
	// Hypotheses inside X die from intra-task NOT-COEXEC.
	x1 := a.SG.NodeByLabel("a")
	p := a.newProbe()
	p.begin()
	p.markHead(x1)
	if comp := p.sccThrough(a.CLG.In[x1]); comp != nil {
		t.Fatal("intra-task NOT-COEXEC did not kill the X-side hypothesis")
	}
	// The Y/Z-side hypotheses keep it alive: the masked-SCC detectors
	// cannot express constraint 1c, and sound cross-task NOT-COEXEC facts
	// are not derivable here (completion-based facts exist but are
	// unsound as markings; see internal/coexec). The enumeration detector
	// enforces 1c exactly and certifies.
	if v := a.Refined(); !v.MayDeadlock {
		t.Fatal("expected a residual alarm from the masked-SCC detectors")
	}
	ev := a.Enumerate(0)
	if !ev.Conclusive {
		t.Fatal("enumeration truncated on a tiny program")
	}
	if ev.MayDeadlock {
		t.Fatalf("enumeration detector should certify figure 4(c): %+v", ev.Witnesses)
	}
	// Ground truth: the program stalls but never deadlocks.
	res, err := waves.ExploreProgram(lang.MustParse(figure4c), waves.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("figure 4(c) program must not deadlock")
	}
	if !res.Stall {
		t.Fatal("figure 4(c) program should stall")
	}
}

func TestRingDeadlockDetected(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := sg.MustFromProgram(workload.Ring(n))
		a := NewAnalyzer(g)
		for _, algo := range []Algorithm{AlgoNaive, AlgoRefined, AlgoRefinedPairs, AlgoRefinedHeadTail, AlgoRefinedHeadTailPairs} {
			if v := a.Run(algo); !v.MayDeadlock {
				t.Fatalf("ring(%d): %v missed the deadlock", n, algo)
			}
		}
	}
}

func TestBrokenRingCertified(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := sg.MustFromProgram(workload.RingBroken(n))
		a := NewAnalyzer(g)
		// The broken ring is deadlock-free; check ground truth first.
		res := waves.Explore(g, waves.Options{})
		if res.Deadlock {
			t.Fatalf("ring-broken(%d) unexpectedly deadlocks", n)
		}
		// At least the strongest detector should certify small rings.
		v := a.RefinedPairs()
		if n == 2 && v.MayDeadlock {
			t.Fatalf("ring-broken(2) not certified by pairs: %+v", v.Witnesses)
		}
	}
}

func TestPipelineSpectrum(t *testing.T) {
	// Depth 1: one message per adjacent pair; the CLG is acyclic and even
	// naive certifies.
	a1 := NewAnalyzer(sg.MustFromProgram(workload.Pipeline(4, 1)))
	if v := a1.Naive(); v.MayDeadlock {
		t.Fatalf("pipeline depth 1 flagged by naive: %+v", v.Witnesses)
	}
	// Depth 3: repeated same-type messages create spurious out-of-order
	// pairings (send #3 with accept #1), so naive and single-head refined
	// alarm; the head-pair extension certifies because adjacent-stage
	// head pairs always share a sync edge (constraint 2).
	a3 := NewAnalyzer(sg.MustFromProgram(workload.Pipeline(4, 3)))
	if v := a3.Naive(); !v.MayDeadlock {
		t.Fatal("expected spurious CLG cycles at depth 3")
	}
	if v := a3.RefinedPairs(); v.MayDeadlock {
		t.Fatalf("pairs should certify the pipeline: %d witnesses", len(v.Witnesses))
	}
	// Ground truth.
	res, err := waves.ExploreProgram(workload.Pipeline(4, 3), waves.Options{})
	if err != nil || res.Deadlock {
		t.Fatalf("pipeline ground truth wrong: err=%v res=%+v", err, res)
	}
}

func TestVerdictCounters(t *testing.T) {
	a := analyzer(t, figure1Class)
	v := a.Refined()
	if v.Hypotheses != len(a.PossibleHeads()) || v.SCCRuns != v.Hypotheses {
		t.Fatalf("counters wrong: %+v", v)
	}
	n := a.Naive()
	if n.Hypotheses != 1 || n.SCCRuns != 1 {
		t.Fatalf("naive counters: %+v", n)
	}
}

// Precision ladder monotonicity where it is guaranteed by construction:
// refined never alarms when naive certifies; pairs never alarms when
// refined certifies; head-tail-pairs never alarms when head-tail
// certifies.
func TestQuickPrecisionLadder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(3)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		a := NewAnalyzer(g)
		naive := a.Naive().MayDeadlock
		refined := a.Refined().MayDeadlock
		pairs := a.RefinedPairs().MayDeadlock
		ht := a.RefinedHeadTail().MayDeadlock
		htp := a.RefinedHeadTailPairs().MayDeadlock
		if refined && !naive {
			return false
		}
		if pairs && !refined {
			return false
		}
		if htp && !ht {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// THE safety property: no detector may certify a program the exact
// explorer proves can deadlock. This is the paper's core claim ("safe in
// that if an anomaly is possible, they will report this possibility").
func TestQuickSafetyAgainstExactExplorer(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		cfg.BranchProb = 0.3
		p := workload.Random(rng, cfg)
		res, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || res.Truncated {
			return true // skip: no ground truth
		}
		if !res.Deadlock {
			return true // nothing to miss
		}
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		a := NewAnalyzer(g)
		for _, algo := range []Algorithm{
			AlgoNaive, AlgoRefined, AlgoRefinedPairs,
			AlgoRefinedHeadTail, AlgoRefinedHeadTailPairs,
		} {
			if !a.Run(algo).MayDeadlock {
				t.Logf("UNSOUND: %v missed deadlock in:\n%s", algo, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Same safety property for loopy programs through the Lemma 1 unroll
// pipeline is covered in the root package's property tests.
