package core

import (
	"repro/internal/graph"
)

// This file implements the last extension of §4.2: "For some specific
// number of tasks k, hypothesize k head-tail node pairs. If there is a
// deadlock, then either the deadlock cycle must join fewer than k tasks,
// or some set of k hypothesized pairs must be contained in a strong
// component. Cycles involving fewer than k tasks may be eliminated by
// searching the graph for them exhaustively."
//
// RefinedKPairs therefore has two phases:
//
//  1. Small cycles: every simple CLG cycle touching fewer than k tasks is
//     enumerated outright and kept only if it could be a real deadlock
//     cycle — its head nodes must be pairwise non-sequenceable (3a), not
//     joined by sync edges (2), pairwise co-executable (3b), and no task
//     may be entered and left through same-type accepts (Lemma 2).
//  2. Large cycles: every compatible set of k head-tail hypotheses from k
//     distinct tasks is tested with the usual masked strong-component
//     search, requiring the component to contain all 2k hypothesized
//     nodes.
//
// Both phases are budgeted; when a budget trips, the verdict degrades
// safely (phase 1 reports a possible deadlock, phase 2 falls back to a
// smaller k), so the detector never certifies more than it has checked.

// AlgoRefinedKPairs labels verdicts from RefinedKPairs.
const AlgoRefinedKPairs Algorithm = 100

// KPairsBudget bounds the two phases of RefinedKPairs.
type KPairsBudget struct {
	// MaxSmallCycles caps phase 1 enumeration (0 = 1<<17).
	MaxSmallCycles int
	// MaxHypothesisSets caps phase 2 subset tests (0 = 1<<17). On
	// overflow, k is reduced by one (sound; k=2 always fits its own
	// budget or recurses to the plain head-tail-pairs behaviour).
	MaxHypothesisSets int
}

func (b *KPairsBudget) fill() {
	if b.MaxSmallCycles == 0 {
		b.MaxSmallCycles = 1 << 17
	}
	if b.MaxHypothesisSets == 0 {
		b.MaxHypothesisSets = 1 << 17
	}
}

// RefinedKPairs runs the k head-tail pair detector. k must be >= 2; k == 2
// behaves like RefinedHeadTailPairs plus the (then-vacuous) small-cycle
// phase, since every deadlock cycle joins at least two tasks.
func (a *Analyzer) RefinedKPairs(k int, budget KPairsBudget) Verdict {
	if k < 2 {
		k = 2
	}
	budget.fill()
	v := Verdict{Algorithm: AlgoRefinedKPairs}

	// Phase 1: exhaustive small-cycle search (< k tasks).
	cycles, complete := a.enumerateSmallCycles(k-1, budget.MaxSmallCycles)
	if !complete {
		// Cannot certify what was not enumerated.
		v.MayDeadlock = true
		return v
	}
	ws := witnessSet{}
	for _, ci := range cycles {
		if a.plausibleDeadlockCycle(ci) {
			v.MayDeadlock = true
			ws.add(graph.Sorted(ci.Nodes))
		}
	}

	// Phase 2: k compatible head-tail hypotheses in distinct tasks, run on
	// the parallel sweep engine. Enumeration stops at the budget, so on
	// overflow exactly MaxHypothesisSets sets are tested (as the historical
	// serial recursion did) before the fallback engages.
	hyps, overflow := a.kPairHyps(k, budget.MaxHypothesisSets)
	sv := a.sweep(AlgoRefinedKPairs, hyps)
	v.Hypotheses += sv.Hypotheses
	v.SCCRuns += sv.SCCRuns
	if sv.MayDeadlock {
		v.MayDeadlock = true
		for _, w := range sv.Witnesses {
			ws.add(w)
		}
	}
	v.Witnesses = ws.list
	if overflow {
		// Budget exceeded: retry with a smaller k (sound — a deadlock
		// joining >= k tasks also joins >= k-1).
		if k > 2 {
			sub := a.RefinedKPairs(k-1, budget)
			sub.Hypotheses += v.Hypotheses
			sub.SCCRuns += v.SCCRuns
			if v.MayDeadlock {
				sub.MayDeadlock = true
				sub.Witnesses = append(sub.Witnesses, v.Witnesses...)
			}
			sub.Algorithm = AlgoRefinedKPairs
			return sub
		}
		v.MayDeadlock = true
	}
	return v
}

// compatibleHeads reports whether two nodes may jointly head a deadlock
// cycle: distinct tasks, not sequenceable, no sync edge, co-executable.
func (a *Analyzer) compatibleHeads(h1, h2 int) bool {
	g := a.SG
	return g.TaskOf[h1] != g.TaskOf[h2] &&
		!a.Ord.Sequenceable(h1, h2) &&
		!g.HasSyncEdge(h1, h2) &&
		!a.Ord.NotCoexec.Get(h1, h2)
}

// plausibleDeadlockCycle applies the necessary conditions a real deadlock
// cycle must satisfy to one enumerated cycle; cycles failing any check are
// provably spurious.
func (a *Analyzer) plausibleDeadlockCycle(ci CycleInfo) bool {
	for i, h1 := range ci.Heads {
		for _, h2 := range ci.Heads[i+1:] {
			if h1 != h2 && !a.compatibleHeads(h1, h2) {
				return false
			}
		}
	}
	// Lemma 2: a task entered and exited through same-type accepts forces
	// a constraint-2 violation.
	for i, h := range ci.Heads {
		t := ci.Tails[i]
		if h == t {
			continue
		}
		for _, co := range a.Ord.CoAccept[h] {
			if co == t {
				return false
			}
		}
	}
	// Heads must be co-executable with every node on the cycle (the tails
	// and intermediates are future work of their tasks in the same run).
	for _, h := range ci.Heads {
		for _, n := range ci.Nodes {
			if n != h && a.Ord.NotCoexec.Get(h, n) {
				return false
			}
		}
	}
	return true
}

// enumerateSmallCycles lists simple CLG cycles visiting at most maxTasks
// distinct tasks, up to limit; the boolean reports exhaustiveness.
func (a *Analyzer) enumerateSmallCycles(maxTasks, limit int) ([]CycleInfo, bool) {
	if limit <= 0 {
		limit = 1 << 17
	}
	c := a.CLG
	g := c.G
	comp, _ := g.SCC()
	sizes := graph.SCCSizes(comp, g.N()+1)

	taskOf := func(v int) int { return a.SG.TaskOf[c.Orig[v]] }

	var cycles []CycleInfo
	complete := true
	path := []int{}
	onPath := make([]bool, g.N())
	taskCount := map[int]int{}

	var dfs func(start, v int) bool
	dfs = func(start, v int) bool {
		path = append(path, v)
		onPath[v] = true
		ti := taskOf(v)
		taskCount[ti]++
		defer func() {
			path = path[:len(path)-1]
			onPath[v] = false
			taskCount[ti]--
			if taskCount[ti] == 0 {
				delete(taskCount, ti)
			}
		}()
		if len(taskCount) > maxTasks {
			return true // prune: too many tasks on this path already
		}
		for _, w := range g.Succ(v) {
			if comp[w] != comp[start] || w < start {
				continue
			}
			if w == start {
				cycles = append(cycles, a.cycleInfo(path))
				if len(cycles) >= limit {
					return false
				}
				continue
			}
			if !onPath[w] {
				if !dfs(start, w) {
					return false
				}
			}
		}
		return true
	}

	for v := 0; v < g.N(); v++ {
		if sizes[comp[v]] < 2 {
			continue
		}
		if !dfs(v, v) {
			complete = false
			break
		}
	}
	// Filter: the prune above allows paths with exactly maxTasks tasks;
	// a recorded cycle may legitimately use maxTasks, which is "fewer
	// than k" as required. Drop any that slipped past with more.
	var out []CycleInfo
	for _, ci := range cycles {
		tasks := map[int]bool{}
		for _, n := range ci.Nodes {
			tasks[a.SG.TaskOf[n]] = true
		}
		if len(tasks) <= maxTasks {
			out = append(out, ci)
		}
	}
	return out, complete
}
