package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/sg"
	"repro/internal/waves"
	"repro/internal/workload"
)

func TestFIFOPipelinePairs(t *testing.T) {
	// Two ordered sends, two ordered accepts: only the diagonal pairing
	// is feasible; both off-diagonal edges are reported.
	g := sg.MustFromProgram(lang.MustParse(`
task a is
begin
  s1: b.m;
  s2: b.m;
end;
task b is
begin
  a1: accept m;
  a2: accept m;
end;
`))
	info := Compute(g)
	pairs := info.InfeasibleSyncPairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs=%v", pairs)
	}
	want := map[[2]int]bool{}
	s1, s2 := g.NodeByLabel("s1"), g.NodeByLabel("s2")
	a1, a2 := g.NodeByLabel("a1"), g.NodeByLabel("a2")
	want[[2]int{s1, a2}] = true
	want[[2]int{s2, a1}] = true
	for _, p := range pairs {
		k := [2]int{p[0], p[1]}
		k2 := [2]int{p[1], p[0]}
		if !want[k] && !want[k2] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
	// Removing them leaves the diagonal only.
	if n := g.RemoveSyncEdges(pairs); n != 2 {
		t.Fatalf("removed=%d", n)
	}
	if !g.HasSyncEdge(s1, a1) || !g.HasSyncEdge(s2, a2) {
		t.Fatal("diagonal edges lost")
	}
	if g.HasSyncEdge(s1, a2) || g.HasSyncEdge(s2, a1) {
		t.Fatal("off-diagonal edges survive")
	}
}

func TestFIFORequiresChains(t *testing.T) {
	// Sends in different tasks are unordered: no refinement.
	g := sg.MustFromProgram(lang.MustParse(`
task a is
begin
  srv.m;
end;
task b is
begin
  srv.m;
end;
task srv is
begin
  accept m;
  accept m;
end;
`))
	info := Compute(g)
	if pairs := info.InfeasibleSyncPairs(); len(pairs) != 0 {
		t.Fatalf("unordered sends refined: %v", pairs)
	}
	// Branch-exclusive accepts are unordered too.
	g2 := sg.MustFromProgram(lang.MustParse(`
task a is
begin
  b.m;
  b.m;
end;
task b is
begin
  if c then
    accept m;
  else
    accept m;
  end if;
  accept m;
end;
`))
	info2 := Compute(g2)
	if pairs := info2.InfeasibleSyncPairs(); len(pairs) != 0 {
		t.Fatalf("branch-exclusive accepts refined: %v", pairs)
	}
}

func TestFIFOLoopyGraphNoOp(t *testing.T) {
	g := sg.MustFromProgram(lang.MustParse(`
task a is
begin
  while w loop
    b.m;
  end loop;
end;
task b is
begin
  accept m;
  accept m;
end;
`))
	info := Compute(g)
	if pairs := info.InfeasibleSyncPairs(); pairs != nil {
		t.Fatalf("refinement on cyclic graph: %v", pairs)
	}
}

// Behaviour preservation: deleting the infeasible edges changes nothing
// the exact explorer can observe except stall classification becoming
// more precise — states, transitions, completion and deadlock must match.
func TestQuickFIFOPreservesExactBehaviour(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		cfg.BranchProb = 0.2
		p := workload.Random(rng, cfg)
		g1, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		before := waves.Explore(g1, waves.Options{MaxStates: 150000})
		if before.Truncated {
			return true
		}
		g2, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		info := Compute(g2)
		removed := g2.RemoveSyncEdges(info.InfeasibleSyncPairs())
		after := waves.Explore(g2, waves.Options{MaxStates: 150000})
		if after.Truncated {
			return true
		}
		if before.States != after.States || before.Transitions != after.Transitions ||
			before.Completed != after.Completed || before.Deadlock != after.Deadlock {
			t.Logf("behaviour changed (removed %d edges) on\n%s", removed, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
