package order

import (
	"sort"

	"repro/internal/cfg"
)

// FIFO sync-edge refinement (extension; not in the paper, but in the
// family of execution-wave feasibility arguments §4 opens with).
//
// For a signal type whose send nodes form one strong Precede chain
// s1 < s2 < ... < sm and whose accept nodes form one chain
// a1 < ... < an, the i-th accept can only ever rendezvous with the i-th
// send. Induction on j: when sj is reached, s1..s(j-1) have finished with
// j-1 *distinct* accepts, and none of those can have an index above the
// pairing accept ai (a finished later-chain accept would force ai
// finished too); with j > i that leaves j-1 >= i distinct accepts below
// index i — impossible. Symmetrically for i > j. Off-diagonal sync edges
// are therefore infeasible in every execution and may be deleted from the
// sync graph before any detector runs, which shrinks the CLG and lets
// even the naive detector certify repeated-message patterns (pipelines).
//
// Soundness is property-tested two ways: exact exploration of the refined
// graph matches the original on states, transitions, completion and
// deadlock (the deleted edges never fire), and the detector safety suites
// run with the refinement enabled.

// InfeasibleSyncPairs returns the sync edges (as node-id pairs) proven
// infeasible by the FIFO argument. Only meaningful on loop-free graphs;
// returns nil otherwise.
func (i *Info) InfeasibleSyncPairs() [][2]int {
	if !i.LoopFree {
		return nil
	}
	g := i.G
	type ends struct{ sends, accepts []int }
	bySig := map[string]*ends{}
	for _, n := range g.Nodes {
		if !n.IsRendezvous() {
			continue
		}
		k := n.Sig.Task + "\x00" + n.Sig.Msg
		e := bySig[k]
		if e == nil {
			e = &ends{}
			bySig[k] = e
		}
		if n.Kind == cfg.KindSend {
			e.sends = append(e.sends, n.ID)
		} else {
			e.accepts = append(e.accepts, n.ID)
		}
	}
	var out [][2]int
	for _, e := range bySig {
		if len(e.sends) < 2 && len(e.accepts) < 2 {
			continue // single pairing possible anyway
		}
		sends, ok1 := i.chain(e.sends)
		accepts, ok2 := i.chain(e.accepts)
		if !ok1 || !ok2 {
			continue
		}
		for si, s := range sends {
			for ai, a := range accepts {
				if si != ai {
					out = append(out, [2]int{s, a})
				}
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x][0] != out[y][0] {
			return out[x][0] < out[y][0]
		}
		return out[x][1] < out[y][1]
	})
	return out
}

// chain orders nodes into a single strong Precede chain, reporting
// failure when some pair is unordered. Selection is explicit (repeatedly
// pick an element preceding every remaining one) because Precede is a
// partial order and sort comparators require totality.
func (i *Info) chain(nodes []int) ([]int, bool) {
	remaining := append([]int(nil), nodes...)
	out := make([]int, 0, len(remaining))
	for len(remaining) > 0 {
		pick := -1
		for xi, x := range remaining {
			ok := true
			for yi, y := range remaining {
				if xi != yi && !i.Precede.Get(x, y) {
					ok = false
					break
				}
			}
			if ok {
				pick = xi
				break
			}
		}
		if pick == -1 {
			return nil, false
		}
		out = append(out, remaining[pick])
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return out, true
}
