package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sg"
	"repro/internal/waves"
	"repro/internal/workload"
)

// The strong relation's defining property: Precede(x, y) means no
// execution reaches y while x has not yet finished. Verified against
// exhaustive enumeration of all executions (every rendezvous interleaving
// and branch choice) on random loop-free programs.
func TestQuickPrecedeSoundAgainstAllExecutions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		cfg.BranchProb = 0.3
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		info := Compute(g)
		violations := findPrecedeViolations(g, info)
		if len(violations) > 0 {
			v := violations[0]
			t.Logf("UNSOUND: Precede(%s, %s) but %s reached before %s finished in\n%s",
				g.Nodes[v[0]], g.Nodes[v[1]], g.Nodes[v[1]], g.Nodes[v[0]], p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// findPrecedeViolations walks every execution path; at each state, every
// live wave node y must have all its Precede-predecessors already
// executed.
func findPrecedeViolations(g *sg.Graph, info *Info) [][2]int {
	var violations [][2]int
	seenViolation := map[[2]int]bool{}
	nt := len(g.Tasks)

	executed := map[int]bool{}
	wave := make([]int, nt)

	check := func() {
		for _, y := range wave {
			if y == g.E {
				continue
			}
			for x := 0; x < g.N(); x++ {
				if info.Precede.Get(x, y) && !executed[x] {
					k := [2]int{x, y}
					if !seenViolation[k] {
						seenViolation[k] = true
						violations = append(violations, k)
					}
				}
			}
		}
	}

	var step func()
	step = func() {
		check()
		for u := 0; u < nt; u++ {
			if wave[u] == g.E {
				continue
			}
			for v := u + 1; v < nt; v++ {
				if wave[v] == g.E || !g.HasSyncEdge(wave[u], wave[v]) {
					continue
				}
				ru, rv := wave[u], wave[v]
				executed[ru], executed[rv] = true, true
				for _, nu := range g.Control.Succ(ru) {
					for _, nv := range g.Control.Succ(rv) {
						wave[u], wave[v] = nu, nv
						step()
					}
				}
				wave[u], wave[v] = ru, rv
				delete(executed, ru)
				delete(executed, rv)
			}
		}
	}

	var gen func(ti int)
	gen = func(ti int) {
		if ti == nt {
			step()
			return
		}
		for _, v := range g.InitialNodes(ti) {
			wave[ti] = v
			gen(ti + 1)
		}
	}
	gen(0)
	return violations
}

// Precede must be irreflexive and transitive (a strict pre-order; note it
// is NOT antisymmetric in general, because orderings between two nodes
// that never both run are vacuously derivable in both directions).
func TestQuickPrecedeStrictPreorder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(3)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		info := Compute(g)
		n := g.N()
		for a := 0; a < n; a++ {
			if info.Precede.Get(a, a) {
				return false
			}
			for b := 0; b < n; b++ {
				if !info.Precede.Get(a, b) {
					continue
				}
				for c := 0; c < n; c++ {
					if info.Precede.Get(b, c) && a != c && !info.Precede.Get(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// NoCohead's defining property: two nodes marked NoCohead never wait on
// the same wave while both are deadlock-head candidates. We verify the
// stronger observable: they are never both live wave members with neither
// stalled... conservatively, check the exact claim used by the detectors:
// on every reachable stuck wave whose coupling digraph has a cycle, no
// two cycle members are NoCohead.
func TestQuickNoCoheadSoundOnDeadlockWaves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 2 + rng.Intn(3)
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		info := Compute(g)
		res := exploreDeadlockSets(g)
		for _, set := range res {
			for i, x := range set {
				for _, y := range set[i+1:] {
					if info.NoCohead.Get(x, y) {
						t.Logf("UNSOUND: NoCohead(%s, %s) on a real deadlock wave in\n%s",
							g.Nodes[x], g.Nodes[y], p)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// exploreDeadlockSets reuses the waves explorer to fetch the deadlock
// sets of every anomalous wave.
func exploreDeadlockSets(g *sg.Graph) [][]int {
	// Local import cycle avoidance: the waves package imports nothing
	// from order, so we can use it directly.
	res := exploreWaves(g)
	return res
}

func exploreWaves(g *sg.Graph) [][]int {
	res := waves.Explore(g, waves.Options{MaxAnomalies: 256})
	var sets [][]int
	for _, a := range res.Anomalies {
		if len(a.DeadlockSet) > 1 {
			sets = append(sets, a.DeadlockSet)
		}
	}
	return sets
}
