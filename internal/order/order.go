// Package order computes the node-ordering facts the refined deadlock
// detector consumes (paper §4.1/§4.2).
//
// The paper's two derivation rules are:
//
//	(1) if r dominates s in the control flow graph of their task, then r
//	    must precede s;
//	(2) if, for all sync edges {r, s}, s precedes some node t, then r
//	    must precede t.
//
// Reproduction note (soundness refinement). Read as one transitive
// relation, the rules over-derive: rule 2's conclusion only says "if r
// ever finishes, it finishes together with some partner, hence before t" —
// a conditional fact that is NOT transitive with rule-1 facts. Chaining
// them manufactures orderings between nodes that can in fact wait on the
// same execution wave (observable in the Theorem 2 gadget, where the
// literal reading orders unrelated literal tasks and breaks the
// reduction). We therefore compute two relations:
//
//   - Precede — the strong relation "t reached implies r already
//     finished", closed under (a) rule 1 dominance, (b) transitivity
//     (sound for the strong relation), and (c) rule 2 restricted to
//     mutually-unique partners: if r and s can only rendezvous with each
//     other they finish simultaneously, so Precede(r, b) transfers to
//     Precede(s, b).
//   - NoCohead — the general rule 2 conclusion kept at its actual
//     strength: if every sync partner of r strongly precedes t, then r
//     and t cannot both be head nodes of one deadlocked wave (t being
//     reached would mean all of r's potential partners are already past,
//     leaving r a stall node rather than a deadlock head). These facts
//     are sound for blocking co-head hypotheses but are not transitive
//     and never feed back into Precede.
//
// Sequenceable(r, s) — what the detector's SEQUENCEABLE vector holds — is
// the union of both, in either direction.
//
// The package also provides NOT-COEXEC (exact within one sequential task
// on loop-free CFGs: two nodes co-execute iff one control-reaches the
// other; cross-task facts are injectable, mirroring the paper's assumption
// that they come from a separate analysis) and COACCEPT (same-type accept
// nodes).
//
// All ordering facts require a loop-free sync graph (run cfg.Unroll
// first); with control cycles they degrade to empty, which only removes
// detector markings and keeps everything conservative.
package order

import (
	"repro/internal/cfg"
	"repro/internal/graph"
	"repro/internal/sg"
)

// Info holds ordering facts for one sync graph.
type Info struct {
	G *sg.Graph
	// Precede[r][s] reports that s cannot be reached before r finished.
	Precede [][]bool
	// NoCohead[r][s] reports that r and s cannot both be deadlock heads
	// on one anomalous wave (general rule 2; not transitive).
	NoCohead [][]bool
	// NotCoexec[r][s] reports r and s never execute in the same run.
	NotCoexec [][]bool
	// CoAccept[r] lists same-type accept nodes for accept r (empty for
	// sends, per the paper's COACCEPT vector).
	CoAccept [][]int
	// LoopFree reports whether the control subgraph was acyclic; when
	// false, Precede, NoCohead and NotCoexec are empty (conservative).
	LoopFree bool
}

// Compute derives all ordering facts for g.
func Compute(g *sg.Graph) *Info {
	n := g.N()
	info := &Info{G: g}
	info.Precede = newBoolMatrix(n)
	info.NoCohead = newBoolMatrix(n)
	info.NotCoexec = newBoolMatrix(n)
	info.CoAccept = make([][]int, n)

	// COACCEPT is loop-independent.
	for _, r := range g.Nodes {
		if r.Kind != cfg.KindAccept {
			continue
		}
		for _, s := range g.Nodes {
			if s.ID != r.ID && s.Kind == cfg.KindAccept && s.Sig == r.Sig {
				info.CoAccept[r.ID] = append(info.CoAccept[r.ID], s.ID)
			}
		}
	}

	if cyc, _ := g.Control.HasCycle(); cyc {
		return info // LoopFree=false: no ordering facts
	}
	info.LoopFree = true

	reach := g.Control.TransitiveClosure()
	idom := g.Control.Dominators(g.B)

	rendezvous := make([]int, 0, n)
	for _, nd := range g.Nodes {
		if nd.IsRendezvous() {
			rendezvous = append(rendezvous, nd.ID)
		}
	}

	// Rule 1: dominance within a task.
	for _, r := range rendezvous {
		for _, s := range rendezvous {
			if r == s || g.TaskOf[r] != g.TaskOf[s] {
				continue
			}
			if graph.Dominates(idom, g.B, r, s) {
				info.Precede[r][s] = true
			}
		}
	}

	// NOT-COEXEC within a task: no control path either way.
	for ti := range g.Tasks {
		nodes := g.TaskNodes(ti)
		for i, r := range nodes {
			for _, s := range nodes[i+1:] {
				if !reach[r][s] && !reach[s][r] {
					info.NotCoexec[r][s] = true
					info.NotCoexec[s][r] = true
				}
			}
		}
	}

	// Mutually-unique partner pairs: r and s finish simultaneously.
	mu := map[int]int{} // node -> its mutually unique partner, if any
	for _, r := range rendezvous {
		if len(g.Sync[r]) != 1 {
			continue
		}
		s := g.Sync[r][0]
		if len(g.Sync[s]) == 1 && g.Sync[s][0] == r {
			mu[r] = s
		}
	}

	// Strong-relation fixed point: transitivity + MU transfer.
	changed := true
	for changed {
		changed = false
		// MU transfer: Precede(r, b) => Precede(s, b) for MU pair (r, s),
		// unless b is s itself or s's partner (simultaneous finishers
		// cannot precede each other or their own completion).
		for r, s := range mu {
			for _, b := range rendezvous {
				if b == r || b == s {
					continue
				}
				if info.Precede[r][b] && !info.Precede[s][b] {
					info.Precede[s][b] = true
					changed = true
				}
			}
		}
		// Transitivity.
		for _, a := range rendezvous {
			for _, b := range rendezvous {
				if !info.Precede[a][b] {
					continue
				}
				for _, c := range rendezvous {
					if info.Precede[b][c] && !info.Precede[a][c] && a != c {
						info.Precede[a][c] = true
						changed = true
					}
				}
			}
		}
	}

	// General rule 2 at its true strength: all partners of r strongly
	// precede t => r and t cannot co-head a deadlock. One pass over the
	// finished Precede relation; conclusions never feed back.
	for _, r := range rendezvous {
		partners := g.Sync[r]
		if len(partners) == 0 {
			continue
		}
		for _, t := range rendezvous {
			if t == r || info.NoCohead[r][t] {
				continue
			}
			all := true
			for _, s := range partners {
				if s == t || !info.Precede[s][t] {
					all = false
					break
				}
			}
			if all {
				info.NoCohead[r][t] = true
				info.NoCohead[t][r] = true
			}
		}
	}
	return info
}

// Sequenceable reports whether r and s are ordered (strongly, in either
// direction) or cannot co-head a deadlocked wave — exactly the pairs the
// detector may not hypothesize as joint heads.
func (i *Info) Sequenceable(r, s int) bool {
	return i.Precede[r][s] || i.Precede[s][r] || i.NoCohead[r][s]
}

// SequenceableSet returns all nodes sequenceable with r (the paper's
// SEQUENCEABLE[r] vector entry).
func (i *Info) SequenceableSet(r int) []int {
	var out []int
	for s := range i.Precede {
		if s != r && i.G.Nodes[s].IsRendezvous() && i.Sequenceable(r, s) {
			out = append(out, s)
		}
	}
	return out
}

// NotCoexecSet returns all nodes known never to co-execute with r.
func (i *Info) NotCoexecSet(r int) []int {
	var out []int
	for s, bad := range i.NotCoexec[r] {
		if bad {
			out = append(out, s)
		}
	}
	return out
}

// AddNotCoexec injects an external co-executability fact (symmetric),
// mirroring the paper's assumption that such facts may come from a
// separate static analysis.
func (i *Info) AddNotCoexec(r, s int) {
	i.NotCoexec[r][s] = true
	i.NotCoexec[s][r] = true
}

func newBoolMatrix(n int) [][]bool {
	m := make([][]bool, n)
	buf := make([]bool, n*n)
	for i := range m {
		m[i], buf = buf[:n], buf[n:]
	}
	return m
}
