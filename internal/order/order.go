// Package order computes the node-ordering facts the refined deadlock
// detector consumes (paper §4.1/§4.2).
//
// The paper's two derivation rules are:
//
//	(1) if r dominates s in the control flow graph of their task, then r
//	    must precede s;
//	(2) if, for all sync edges {r, s}, s precedes some node t, then r
//	    must precede t.
//
// Reproduction note (soundness refinement). Read as one transitive
// relation, the rules over-derive: rule 2's conclusion only says "if r
// ever finishes, it finishes together with some partner, hence before t" —
// a conditional fact that is NOT transitive with rule-1 facts. Chaining
// them manufactures orderings between nodes that can in fact wait on the
// same execution wave (observable in the Theorem 2 gadget, where the
// literal reading orders unrelated literal tasks and breaks the
// reduction). We therefore compute two relations:
//
//   - Precede — the strong relation "t reached implies r already
//     finished", closed under (a) rule 1 dominance, (b) transitivity
//     (sound for the strong relation), and (c) rule 2 restricted to
//     mutually-unique partners: if r and s can only rendezvous with each
//     other they finish simultaneously, so Precede(r, b) transfers to
//     Precede(s, b).
//   - NoCohead — the general rule 2 conclusion kept at its actual
//     strength: if every sync partner of r strongly precedes t, then r
//     and t cannot both be head nodes of one deadlocked wave (t being
//     reached would mean all of r's potential partners are already past,
//     leaving r a stall node rather than a deadlock head). These facts
//     are sound for blocking co-head hypotheses but are not transitive
//     and never feed back into Precede.
//
// Sequenceable(r, s) — what the detector's SEQUENCEABLE vector holds — is
// the union of both, in either direction.
//
// The package also provides NOT-COEXEC (exact within one sequential task
// on loop-free CFGs: two nodes co-execute iff one control-reaches the
// other; cross-task facts are injectable, mirroring the paper's assumption
// that they come from a separate analysis) and COACCEPT (same-type accept
// nodes).
//
// Data plane: every relation is a bitset.Matrix — one uint64-packed row
// per node — so membership tests are one mask and the strong-relation
// fixed point closes Warshall-style by word-wide OR (bitset.OrExcept)
// instead of per-element scans. TestBitsetMatchesReference pins the bit
// matrices against the historical [][]bool construction.
//
// All ordering facts require a loop-free sync graph (run cfg.Unroll
// first); with control cycles they degrade to empty, which only removes
// detector markings and keeps everything conservative.
package order

import (
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/graph"
	"repro/internal/sg"
)

// Info holds ordering facts for one sync graph.
type Info struct {
	G *sg.Graph
	// Precede.Get(r, s) reports that s cannot be reached before r finished.
	Precede bitset.Matrix
	// NoCohead.Get(r, s) reports that r and s cannot both be deadlock heads
	// on one anomalous wave (general rule 2; not transitive).
	NoCohead bitset.Matrix
	// NotCoexec.Get(r, s) reports r and s never execute in the same run.
	NotCoexec bitset.Matrix
	// CoAccept[r] lists same-type accept nodes for accept r (empty for
	// sends, per the paper's COACCEPT vector).
	CoAccept [][]int
	// LoopFree reports whether the control subgraph was acyclic; when
	// false, Precede, NoCohead and NotCoexec are all-false (conservative).
	LoopFree bool
}

// Compute derives all ordering facts for g.
func Compute(g *sg.Graph) *Info {
	n := g.N()
	info := &Info{G: g}
	info.Precede = bitset.NewMatrix(n)
	info.NoCohead = bitset.NewMatrix(n)
	info.NotCoexec = bitset.NewMatrix(n)
	info.CoAccept = make([][]int, n)

	// COACCEPT is loop-independent.
	for _, r := range g.Nodes {
		if r.Kind != cfg.KindAccept {
			continue
		}
		for _, s := range g.Nodes {
			if s.ID != r.ID && s.Kind == cfg.KindAccept && s.Sig == r.Sig {
				info.CoAccept[r.ID] = append(info.CoAccept[r.ID], s.ID)
			}
		}
	}

	if cyc, _ := g.Control.HasCycle(); cyc {
		return info // LoopFree=false: no ordering facts
	}
	info.LoopFree = true

	reach := g.Control.TransitiveClosure()
	idom := g.Control.Dominators(g.B)

	rendezvous := make([]int, 0, n)
	for _, nd := range g.Nodes {
		if nd.IsRendezvous() {
			rendezvous = append(rendezvous, nd.ID)
		}
	}

	// Rule 1: dominance within a task.
	for _, r := range rendezvous {
		for _, s := range rendezvous {
			if r == s || g.TaskOf[r] != g.TaskOf[s] {
				continue
			}
			if graph.Dominates(idom, g.B, r, s) {
				info.Precede.Set(r, s)
			}
		}
	}

	// NOT-COEXEC within a task: no control path either way.
	for ti := range g.Tasks {
		nodes := g.TaskNodes(ti)
		for i, r := range nodes {
			for _, s := range nodes[i+1:] {
				if !reach[r][s] && !reach[s][r] {
					info.NotCoexec.Set(r, s)
					info.NotCoexec.Set(s, r)
				}
			}
		}
	}

	// Mutually-unique partner pairs: r and s finish simultaneously.
	type muPair struct{ r, s int }
	var mu []muPair
	for _, r := range rendezvous {
		if len(g.Sync[r]) != 1 {
			continue
		}
		s := g.Sync[r][0]
		if len(g.Sync[s]) == 1 && g.Sync[s][0] == r {
			mu = append(mu, muPair{r, s})
		}
	}

	// Strong-relation fixed point, word-wide: MU transfer folds row r into
	// row s masking the pair's own bits (simultaneous finishers cannot
	// precede each other or their own completion); transitivity folds row b
	// into row a for every established Precede(a, b), masking a's own bit
	// (nothing precedes itself). Both are monotone, so the fixed point is
	// the same relation the historical element-by-element loops reached.
	for changed := true; changed; {
		changed = false
		for _, p := range mu {
			if bitset.OrExcept(info.Precede.Row(p.s), info.Precede.Row(p.r), p.r, p.s) {
				changed = true
			}
		}
		for _, a := range rendezvous {
			ra := info.Precede.Row(a)
			for _, b := range rendezvous {
				if a != b && ra.Get(b) {
					if bitset.OrExcept(ra, info.Precede.Row(b), a, -1) {
						changed = true
					}
				}
			}
		}
	}

	// General rule 2 at its true strength: all partners of r strongly
	// precede t => r and t cannot co-head a deadlock. One pass over the
	// finished Precede relation; conclusions never feed back.
	for _, r := range rendezvous {
		partners := g.Sync[r]
		if len(partners) == 0 {
			continue
		}
		for _, t := range rendezvous {
			if t == r || info.NoCohead.Get(r, t) {
				continue
			}
			all := true
			for _, s := range partners {
				if s == t || !info.Precede.Get(s, t) {
					all = false
					break
				}
			}
			if all {
				info.NoCohead.Set(r, t)
				info.NoCohead.Set(t, r)
			}
		}
	}
	return info
}

// SizeBytes approximates the Info's resident footprint: the three bit
// matrices dominate, plus the CoAccept adjacency. Used by byte-budgeted
// caches that retain ordering facts across requests.
func (i *Info) SizeBytes() int64 {
	sz := i.Precede.SizeBytes() + i.NoCohead.SizeBytes() + i.NotCoexec.SizeBytes()
	sz += int64(len(i.CoAccept)) * 24 // slice headers
	for _, row := range i.CoAccept {
		sz += int64(len(row)) * 8
	}
	return sz
}

// Sequenceable reports whether r and s are ordered (strongly, in either
// direction) or cannot co-head a deadlocked wave — exactly the pairs the
// detector may not hypothesize as joint heads.
func (i *Info) Sequenceable(r, s int) bool {
	return i.Precede.Get(r, s) || i.Precede.Get(s, r) || i.NoCohead.Get(r, s)
}

// SequenceableSet returns all nodes sequenceable with r (the paper's
// SEQUENCEABLE[r] vector entry).
func (i *Info) SequenceableSet(r int) []int {
	var out []int
	for s := 0; s < i.Precede.N(); s++ {
		if s != r && i.G.Nodes[s].IsRendezvous() && i.Sequenceable(r, s) {
			out = append(out, s)
		}
	}
	return out
}

// NotCoexecSet returns all nodes known never to co-execute with r.
func (i *Info) NotCoexecSet(r int) []int {
	return i.NotCoexec.Row(r).Members(nil)
}

// AddNotCoexec injects an external co-executability fact (symmetric),
// mirroring the paper's assumption that such facts may come from a
// separate static analysis. Callers must inject facts before the Info is
// shared with a core.Analyzer: the analyzer snapshots the relation's
// per-node sets at construction time.
func (i *Info) AddNotCoexec(r, s int) {
	i.NotCoexec.Set(r, s)
	i.NotCoexec.Set(s, r)
}
