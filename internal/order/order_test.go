package order

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/sg"
)

func compute(t *testing.T, src string) (*sg.Graph, *Info) {
	t.Helper()
	g := sg.MustFromProgram(lang.MustParse(src))
	return g, Compute(g)
}

func TestRule1Dominance(t *testing.T) {
	g, info := compute(t, `
task t1 is
begin
  a: t2.m;
  b: t2.m;
end;
task t2 is
begin
  c: accept m;
  d: accept m;
end;
`)
	a, b := g.NodeByLabel("a"), g.NodeByLabel("b")
	c, d := g.NodeByLabel("c"), g.NodeByLabel("d")
	if !info.Precede.Get(a, b) || info.Precede.Get(b, a) {
		t.Fatal("straight-line dominance ordering wrong")
	}
	if !info.Precede.Get(c, d) {
		t.Fatal("accept ordering missing")
	}
	if !info.Sequenceable(a, b) || !info.Sequenceable(b, a) {
		t.Fatal("Sequenceable not symmetric")
	}
}

func TestBranchesNotDominated(t *testing.T) {
	g, info := compute(t, `
task t1 is
begin
  if c then
    a: t2.m;
  else
    b: t2.m;
  end if;
end;
task t2 is
begin
  accept m;
end;
`)
	a, b := g.NodeByLabel("a"), g.NodeByLabel("b")
	if info.Precede.Get(a, b) || info.Precede.Get(b, a) {
		t.Fatal("exclusive branches must not be ordered")
	}
	if !info.NotCoexec.Get(a, b) {
		t.Fatal("exclusive branches must be NOT-COEXEC")
	}
}

func TestRule2SyncPropagation(t *testing.T) {
	// Figure 1 narrative: s can rendezvous only with v, s follows r, so v
	// executes after r. Here: t1=[r; s], t2=[u; v] with s<->v unique
	// partners and r before s.
	g, info := compute(t, `
task t1 is
begin
  r: accept m1;
  s: accept m2;
end;
task t2 is
begin
  u: t1.m1;
  v: t1.m2;
end;
`)
	r, v := g.NodeByLabel("r"), g.NodeByLabel("v")
	s, u := g.NodeByLabel("s"), g.NodeByLabel("u")
	// v's unique partner is s and r precedes s => v cannot finish before
	// r... the rule derives r < v through: partners(v)={s}? No — rule 2
	// derives X < t when all partners of X precede t. partners(r)={u},
	// u < v by rule 1 => r < v.
	if !info.Precede.Get(r, v) {
		t.Fatal("rule 2 failed to derive r < v")
	}
	if !info.Precede.Get(u, s) {
		t.Fatal("rule 2 failed to derive u < s (symmetric)")
	}
	if info.Precede.Get(v, r) {
		t.Fatal("impossible ordering derived")
	}
}

func TestTransitivity(t *testing.T) {
	g, info := compute(t, `
task t1 is
begin
  a: accept m1;
  b: accept m2;
  c: accept m3;
end;
task t2 is
begin
  x: t1.m1;
  y: t1.m2;
  z: t1.m3;
end;
`)
	a, z := g.NodeByLabel("a"), g.NodeByLabel("z")
	// a < b < c within t1 and rule 2 chains through partners; a < z must
	// come out via transitivity: partners(a)={x}, x<y<z => a<z.
	if !info.Precede.Get(a, z) {
		t.Fatal("transitive chain a < z missing")
	}
}

func TestPartnersNeverOrdered(t *testing.T) {
	g, info := compute(t, `
task t1 is
begin
  a: accept m;
end;
task t2 is
begin
  x: t1.m;
end;
`)
	a, x := g.NodeByLabel("a"), g.NodeByLabel("x")
	if info.Sequenceable(a, x) {
		t.Fatal("rendezvous partners must not be sequenceable")
	}
}

func TestCoAccept(t *testing.T) {
	g, info := compute(t, `
task t1 is
begin
  a: accept m;
  b: accept m;
  c: accept other;
end;
task t2 is
begin
  t1.m;
  t1.m;
  t1.other;
end;
`)
	a, b, c := g.NodeByLabel("a"), g.NodeByLabel("b"), g.NodeByLabel("c")
	if len(info.CoAccept[a]) != 1 || info.CoAccept[a][0] != b {
		t.Fatalf("CoAccept[a]=%v", info.CoAccept[a])
	}
	if len(info.CoAccept[c]) != 0 {
		t.Fatal("different signal type in CoAccept")
	}
	// Sends have empty CoAccept.
	for _, id := range g.TaskNodes(g.TaskIndex("t2")) {
		if len(info.CoAccept[id]) != 0 {
			t.Fatal("send has CoAccept entries")
		}
	}
}

func TestLoopyGraphDegradesSafely(t *testing.T) {
	g, info := compute(t, `
task t1 is
begin
  while w loop
    a: t2.m;
  end loop;
end;
task t2 is
begin
  while w loop
    accept m;
  end loop;
end;
`)
	if info.LoopFree {
		t.Fatal("cyclic control not detected")
	}
	for r := 0; r < g.N(); r++ {
		if len(info.SequenceableSet(r)) != 0 || len(info.NotCoexecSet(r)) != 0 {
			t.Fatal("ordering facts derived on cyclic graph")
		}
	}
	// CoAccept still available.
	_ = info.CoAccept
}

func TestInjectedNotCoexec(t *testing.T) {
	g, info := compute(t, `
task t1 is
begin
  a: t2.m;
end;
task t2 is
begin
  b: accept m;
end;
`)
	a, b := g.NodeByLabel("a"), g.NodeByLabel("b")
	if info.NotCoexec.Get(a, b) {
		t.Fatal("unexpected initial fact")
	}
	info.AddNotCoexec(a, b)
	if !info.NotCoexec.Get(a, b) || !info.NotCoexec.Get(b, a) {
		t.Fatal("injection not symmetric")
	}
}

func TestTwoTaskDeadlockOrdering(t *testing.T) {
	// The soundness regression from DESIGN.md: in the reversed handshake
	// rule 1 gives a1 < a2 and b1 < b2; rule 2 gives the vacuous a2 < b2
	// and b2 < a2. The heads a1, b1 must stay unordered.
	g, info := compute(t, `
task A is
begin
  a1: accept x;
  a2: B.y;
end;
task B is
begin
  b1: accept y;
  b2: A.x;
end;
`)
	a1, b1 := g.NodeByLabel("a1"), g.NodeByLabel("b1")
	a2, b2 := g.NodeByLabel("a2"), g.NodeByLabel("b2")
	if info.Sequenceable(a1, b1) {
		t.Fatal("deadlock heads must not be sequenceable")
	}
	if !info.Precede.Get(a1, a2) || !info.Precede.Get(b1, b2) {
		t.Fatal("rule 1 facts missing")
	}
}
