package order

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/sg"
	"repro/internal/workload"
)

// refInfo is the historical [][]bool representation of the ordering
// relations, kept test-only as the reference the bitset data plane is
// pinned against.
type refInfo struct {
	Precede   [][]bool
	NoCohead  [][]bool
	NotCoexec [][]bool
	CoAccept  [][]int
	LoopFree  bool
}

// computeReference is the pre-bitset Compute, element-by-element loops
// and all. Any change to Compute's derivation rules must be mirrored
// here, or TestBitsetMatchesReference will fail.
func computeReference(g *sg.Graph) *refInfo {
	n := g.N()
	newBoolMatrix := func(n int) [][]bool {
		m := make([][]bool, n)
		buf := make([]bool, n*n)
		for i := range m {
			m[i], buf = buf[:n], buf[n:]
		}
		return m
	}
	info := &refInfo{
		Precede:   newBoolMatrix(n),
		NoCohead:  newBoolMatrix(n),
		NotCoexec: newBoolMatrix(n),
		CoAccept:  make([][]int, n),
	}

	for _, r := range g.Nodes {
		if r.Kind != cfg.KindAccept {
			continue
		}
		for _, s := range g.Nodes {
			if s.ID != r.ID && s.Kind == cfg.KindAccept && s.Sig == r.Sig {
				info.CoAccept[r.ID] = append(info.CoAccept[r.ID], s.ID)
			}
		}
	}

	if cyc, _ := g.Control.HasCycle(); cyc {
		return info
	}
	info.LoopFree = true

	reach := g.Control.TransitiveClosure()
	idom := g.Control.Dominators(g.B)

	rendezvous := make([]int, 0, n)
	for _, nd := range g.Nodes {
		if nd.IsRendezvous() {
			rendezvous = append(rendezvous, nd.ID)
		}
	}

	for _, r := range rendezvous {
		for _, s := range rendezvous {
			if r == s || g.TaskOf[r] != g.TaskOf[s] {
				continue
			}
			if graph.Dominates(idom, g.B, r, s) {
				info.Precede[r][s] = true
			}
		}
	}

	for ti := range g.Tasks {
		nodes := g.TaskNodes(ti)
		for i, r := range nodes {
			for _, s := range nodes[i+1:] {
				if !reach[r][s] && !reach[s][r] {
					info.NotCoexec[r][s] = true
					info.NotCoexec[s][r] = true
				}
			}
		}
	}

	mu := map[int]int{}
	for _, r := range rendezvous {
		if len(g.Sync[r]) != 1 {
			continue
		}
		s := g.Sync[r][0]
		if len(g.Sync[s]) == 1 && g.Sync[s][0] == r {
			mu[r] = s
		}
	}

	changed := true
	for changed {
		changed = false
		for r, s := range mu {
			for _, b := range rendezvous {
				if b == r || b == s {
					continue
				}
				if info.Precede[r][b] && !info.Precede[s][b] {
					info.Precede[s][b] = true
					changed = true
				}
			}
		}
		for _, a := range rendezvous {
			for _, b := range rendezvous {
				if !info.Precede[a][b] {
					continue
				}
				for _, c := range rendezvous {
					if info.Precede[b][c] && !info.Precede[a][c] && a != c {
						info.Precede[a][c] = true
						changed = true
					}
				}
			}
		}
	}

	for _, r := range rendezvous {
		partners := g.Sync[r]
		if len(partners) == 0 {
			continue
		}
		for _, t := range rendezvous {
			if t == r || info.NoCohead[r][t] {
				continue
			}
			all := true
			for _, s := range partners {
				if s == t || !info.Precede[s][t] {
					all = false
					break
				}
			}
			if all {
				info.NoCohead[r][t] = true
				info.NoCohead[t][r] = true
			}
		}
	}
	return info
}

func diffRelation(t *testing.T, name string, got interface{ Get(r, c int) bool }, want [][]bool, n int) {
	t.Helper()
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if got.Get(r, c) != want[r][c] {
				t.Fatalf("%s(%d, %d) = %v, reference says %v", name, r, c, got.Get(r, c), want[r][c])
			}
		}
	}
}

func checkAgainstReference(t *testing.T, g *sg.Graph) {
	t.Helper()
	info := Compute(g)
	ref := computeReference(g)
	if info.LoopFree != ref.LoopFree {
		t.Fatalf("LoopFree=%v reference %v", info.LoopFree, ref.LoopFree)
	}
	n := g.N()
	diffRelation(t, "Precede", info.Precede, ref.Precede, n)
	diffRelation(t, "NoCohead", info.NoCohead, ref.NoCohead, n)
	diffRelation(t, "NotCoexec", info.NotCoexec, ref.NotCoexec, n)
	for r := 0; r < n; r++ {
		if len(info.CoAccept[r]) != len(ref.CoAccept[r]) {
			t.Fatalf("CoAccept[%d] = %v, reference %v", r, info.CoAccept[r], ref.CoAccept[r])
		}
		for i := range ref.CoAccept[r] {
			if info.CoAccept[r][i] != ref.CoAccept[r][i] {
				t.Fatalf("CoAccept[%d] = %v, reference %v", r, info.CoAccept[r], ref.CoAccept[r])
			}
		}
	}
}

// TestBitsetMatchesReference pins the word-wide bitset construction
// against the historical element-by-element one, entry for entry, on ~200
// random programs plus deterministic families.
func TestBitsetMatchesReference(t *testing.T) {
	for _, p := range []*lang.Program{
		workload.Ring(4), workload.RingBroken(5), workload.Pipeline(4, 3),
		workload.ClientServer(3), workload.Barrier(2, 2), workload.CrossRing(6, 2),
	} {
		checkAgainstReference(t, sg.MustFromProgram(p))
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		c := workload.DefaultConfig()
		c.Tasks = 2 + rng.Intn(3)
		c.StmtsPerTask = 1 + rng.Intn(4)
		c.BranchProb = 0.3
		if i%4 == 0 {
			// Loopy programs pin the LoopFree degradation path; the rest
			// go through the Lemma 1 unroll like the real pipeline does.
			c.LoopProb = 0.2
		}
		p := workload.Random(rng, c)
		if i%4 != 0 && cfg.HasLoops(p) {
			p = cfg.Unroll(p)
		}
		g, err := sg.FromProgram(p)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		checkAgainstReference(t, g)
	}
}
