// Package memo is the replica-level stage cache: a content-addressed,
// byte-budgeted LRU over expensive pipeline artifacts, with a built-in
// compute single-flight so N concurrent misses on one key build the
// artifact exactly once.
//
// The paper's pipeline is strictly staged — parse → Lemma-1 unroll →
// sync graph → CLG + ordering tables → detector sweep — and everything
// up to the detector sweep depends only on the program source, not on
// the requested algorithm. The facade (siwa.AnalyzeSourceContext) keys
// those shared-prefix artifacts on SHA-256(source) here, so asking for a
// second algorithm on a warm source pays only the per-algorithm suffix.
//
// Contract: cached entries are immutable after construction. The cache
// never copies values — a Get hands out the same pointer to any number
// of concurrent readers — so an entry must be safe for concurrent
// read-only use (core.Analyzer is, by PR 4's read-only-after-build
// guarantee). Eviction only drops the cache's reference: analyses that
// already hold an entry keep using it safely while the GC keeps it
// alive, so a tiny budget can never corrupt a live analysis.
package memo

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"
)

// Digest is the SHA-256 content address of one program source.
type Digest [sha256.Size]byte

// SourceDigest hashes a program source.
func SourceDigest(src string) Digest { return sha256.Sum256([]byte(src)) }

// String renders the short (8-byte) hex form used in logs and span attrs.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:8]) }

// Key returns the full-strength digest as a raw byte string for cache
// keys, where the short display form's 64-bit prefix would be too little
// margin against collisions on a long-lived cache.
func (d Digest) Key() string { return string(d[:]) }

// Entry is one cached artifact. SizeBytes is the artifact's approximate
// resident footprint; the cache charges it against the byte budget at
// admission, so costs are counted in memory actually held, not entry
// counts. Estimates only steer eviction — they need to be proportional,
// not exact.
type Entry interface {
	SizeBytes() int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries   int
	Bytes     int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Builds counts build functions actually executed: with single-flight
	// collapsing duplicate misses, Builds never exceeds the number of
	// distinct keys built (while their entries stay resident).
	Builds uint64
}

// Cache is the byte-budgeted LRU with per-key compute single-flight.
// All methods are safe for concurrent use; a nil *Cache never hits and
// builds every request fresh, so a disabled cache needs no call-site
// branching.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	// flights dedups concurrent builds per key. A flight is removed when
	// its build completes (success or failure), so a failed build is
	// retried by the next caller instead of being cached.
	flights map[string]*flight

	hits      uint64
	misses    uint64
	evictions uint64
	builds    uint64
}

type flight struct {
	done chan struct{}
	val  Entry
	err  error
}

type entryNode struct {
	key  string
	val  Entry
	size int64
}

// New returns a cache admitting at most maxBytes of artifact footprint
// (minimum 1; practical budgets are tens of MiB).
func New(maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// Get returns the cached entry for key, recording a hit or miss.
func (c *Cache) Get(key string) (Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entryNode).val, true
}

// Do returns the entry for key, building it at most once across
// concurrent callers: the first caller on a cold key runs build while
// followers block on the same flight and share the result (or error).
// Successful builds are admitted into the LRU; failures are not cached,
// so the next request retries. built reports whether this call ran the
// build function itself — the leader's stages execute for real (and
// trace for real), followers and warm hits reuse.
func (c *Cache) Do(key string, build func() (Entry, error)) (val Entry, built bool, err error) {
	if c == nil {
		e, err := build()
		return e, true, err
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*entryNode).val
		c.mu.Unlock()
		return v, false, nil
	}
	c.misses++
	if f, ok := c.flights[key]; ok {
		// A build for this key is in flight: wait for it instead of
		// duplicating the work.
		c.mu.Unlock()
		<-f.done
		return f.val, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.builds++
	c.mu.Unlock()

	defer func() {
		// A panicking build must not strand followers on the flight
		// forever: publish a nil result and re-panic.
		if r := recover(); r != nil {
			f.err = fmt.Errorf("memo: build for %q panicked", key)
			c.finish(key, f, nil)
			panic(r)
		}
	}()
	f.val, f.err = build()
	var admit Entry
	if f.err == nil {
		admit = f.val
	}
	c.finish(key, f, admit)
	return f.val, true, f.err
}

// finish closes out a flight: admits the built entry (when non-nil),
// removes the flight so later misses start fresh, and wakes followers.
func (c *Cache) finish(key string, f *flight, admit Entry) {
	c.mu.Lock()
	delete(c.flights, key)
	if admit != nil {
		c.put(key, admit)
	}
	c.mu.Unlock()
	close(f.done)
}

// Put stores an entry under key (admission only; misuse-tolerant).
func (c *Cache) Put(key string, val Entry) {
	if c == nil || val == nil {
		return
	}
	c.mu.Lock()
	c.put(key, val)
	c.mu.Unlock()
}

// put admits val under the byte budget. Caller holds c.mu. An entry
// larger than the whole budget is not admitted at all — callers still
// get the value they built, it just is not retained — so one huge
// program cannot wipe the working set of everyone else.
func (c *Cache) put(key string, val Entry) {
	size := val.SizeBytes()
	if size < 1 {
		size = 1
	}
	if el, ok := c.items[key]; ok {
		n := el.Value.(*entryNode)
		c.bytes += size - n.size
		n.val, n.size = val, size
		c.ll.MoveToFront(el)
		c.evictOver()
		return
	}
	if size > c.maxBytes {
		return
	}
	c.items[key] = c.ll.PushFront(&entryNode{key: key, val: val, size: size})
	c.bytes += size
	c.evictOver()
}

// evictOver drops least-recently-used entries until the budget holds.
// Caller holds c.mu.
func (c *Cache) evictOver() {
	for c.bytes > c.maxBytes && c.ll.Len() > 0 {
		oldest := c.ll.Back()
		n := oldest.Value.(*entryNode)
		c.ll.Remove(oldest)
		delete(c.items, n.key)
		c.bytes -= n.size
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Builds:    c.builds,
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
