package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeEntry is a test artifact with a declared footprint.
type fakeEntry struct {
	id   int
	size int64
}

func (f *fakeEntry) SizeBytes() int64 { return f.size }

func TestSourceDigestStable(t *testing.T) {
	a, b := SourceDigest("task t is begin end"), SourceDigest("task t is begin end")
	if a != b {
		t.Fatal("same source hashed to different digests")
	}
	if a == SourceDigest("task u is begin end") {
		t.Fatal("different sources collided")
	}
	if len(a.String()) != 16 {
		t.Fatalf("short hex form = %q, want 16 hex chars", a.String())
	}
}

func TestNilCacheNeverHits(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	built := 0
	v, wasBuilt, err := c.Do("k", func() (Entry, error) {
		built++
		return &fakeEntry{1, 8}, nil
	})
	if err != nil || !wasBuilt || built != 1 || v.(*fakeEntry).id != 1 {
		t.Fatalf("nil cache Do: v=%v built=%v err=%v", v, wasBuilt, err)
	}
	c.Put("k", &fakeEntry{2, 8})
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache stored something")
	}
}

func TestByteBudgetEviction(t *testing.T) {
	c := New(100)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), &fakeEntry{i, 40}) // 4*40 = 160 > 100
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("bytes %d exceed budget", st.Bytes)
	}
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("entries=%d evictions=%d, want 2/2", st.Entries, st.Evictions)
	}
	// LRU order: k0 and k1 evicted, k2 and k3 resident.
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 survived")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("k3 evicted")
	}
	// Touch k2, then overflow: k3 (now LRU) goes first.
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("k2 evicted")
	}
	c.Put("k4", &fakeEntry{4, 40})
	if _, ok := c.Get("k3"); ok {
		t.Fatal("k3 survived over more recently used k2")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("recently-touched k2 was evicted")
	}
}

func TestOversizedEntryNotAdmitted(t *testing.T) {
	c := New(64)
	c.Put("small", &fakeEntry{0, 10})
	v, built, err := c.Do("huge", func() (Entry, error) { return &fakeEntry{1, 1000}, nil })
	if err != nil || !built || v.(*fakeEntry).id != 1 {
		t.Fatalf("oversized build not returned: %v %v %v", v, built, err)
	}
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry was admitted")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized entry evicted the working set it never joined")
	}
}

func TestPutRefreshAdjustsBytes(t *testing.T) {
	c := New(100)
	c.Put("k", &fakeEntry{0, 30})
	c.Put("k", &fakeEntry{1, 70})
	st := c.Stats()
	if st.Bytes != 70 || st.Entries != 1 {
		t.Fatalf("bytes=%d entries=%d after refresh, want 70/1", st.Bytes, st.Entries)
	}
	if v, _ := c.Get("k"); v.(*fakeEntry).id != 1 {
		t.Fatal("refresh kept the old value")
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New(1 << 20)
	var builds atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	vals := make([]Entry, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("shared", func() (Entry, error) {
				builds.Add(1)
				<-gate // hold every concurrent caller in the miss window
				return &fakeEntry{42, 64}, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds for one key, want 1", n)
	}
	for i, v := range vals {
		if v != vals[0] {
			t.Fatalf("caller %d got a different entry pointer", i)
		}
	}
	if st := c.Stats(); st.Builds != 1 || st.Hits+st.Misses != waiters {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoErrorNotCachedAndRetried(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", func() (Entry, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	v, built, err := c.Do("k", func() (Entry, error) { calls++; return &fakeEntry{1, 8}, nil })
	if err != nil || !built || calls != 2 {
		t.Fatalf("retry: v=%v built=%v err=%v calls=%d", v, built, err, calls)
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("successful retry not cached")
	}
}

func TestDoPanicReleasesFollowers(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	var followerErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		c.Do("k", func() (Entry, error) {
			close(started)
			<-release
			panic("build bug")
		})
	}()
	go func() {
		defer wg.Done()
		<-started
		close(release)
		_, _, followerErr = c.Do("k", func() (Entry, error) { return &fakeEntry{9, 8}, nil })
	}()
	wg.Wait()
	// The follower either joined the doomed flight (gets the panic error)
	// or arrived after it was torn down (builds fresh, no error) — it must
	// never hang, and a later call must be able to build.
	if followerErr != nil && followerErr.Error() != `memo: build for "k" panicked` {
		t.Fatalf("follower err=%v", followerErr)
	}
	v, _, err := c.Do("k", func() (Entry, error) { return &fakeEntry{7, 8}, nil })
	if err != nil || v == nil {
		t.Fatalf("cache unusable after build panic: %v %v", v, err)
	}
}

func TestConcurrentChurnUnderTinyBudget(t *testing.T) {
	// Eviction pressure with concurrent readers: entries handed out stay
	// valid (immutable) even when the cache dropped them. Run with -race.
	c := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				v, _, err := c.Do(key, func() (Entry, error) {
					return &fakeEntry{i, 48}, nil
				})
				if err != nil || v == nil {
					t.Errorf("worker %d: %v %v", w, v, err)
					return
				}
				_ = v.SizeBytes() // read after possible eviction
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 256 {
		t.Fatalf("budget violated: %+v", st)
	}
}
