package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestRunFiguresShape(t *testing.T) {
	rows, err := RunFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fixtures()) {
		t.Fatalf("rows=%d fixtures=%d", len(rows), len(Fixtures()))
	}
	for _, r := range rows {
		if r.ExactVerdict == "" || len(r.Alarms) != len(Algorithms) {
			t.Fatalf("incomplete row: %+v", r)
		}
		if !r.EnumComplete {
			t.Fatalf("%s: enumeration truncated on a fixture", r.ID)
		}
	}
	var buf bytes.Buffer
	PrintFigures(&buf, rows)
	if !strings.Contains(buf.String(), "F2b") || !strings.Contains(buf.String(), "enumerate") {
		t.Fatalf("table:\n%s", buf.String())
	}
}

func TestFixturesParse(t *testing.T) {
	for _, fx := range Fixtures() {
		p := MustProgram(fx.Source)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", fx.ID, err)
		}
	}
}

func TestRunPrecisionSmall(t *testing.T) {
	rows, skipped, err := RunPrecision(1, 10, workload.Config{
		Tasks: 2, StmtsPerTask: 2, Msgs: 2, BranchProb: 0.2, MaxDepth: 1, AcceptRatio: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Misses != 0 {
			t.Fatalf("%v missed deadlocks", r.Algorithm)
		}
		if r.CleanTotal+r.DeadTotal+skipped != 10 {
			t.Fatalf("sample accounting wrong: %+v skipped=%d", r, skipped)
		}
	}
	var buf bytes.Buffer
	PrintPrecision(&buf, rows, skipped)
	if !strings.Contains(buf.String(), "false-alarm-rate") {
		t.Fatal("table header missing")
	}
}

func TestRunScalingMonotoneSizes(t *testing.T) {
	rows, err := RunScaling([][2]int{{4, 2}, {8, 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Nodes != 2*rows[0].Nodes {
		t.Fatalf("node counts: %+v", rows)
	}
	if rows[0].CLGNodes != 2*rows[0].Nodes+2 {
		t.Fatalf("CLG node formula broken: %+v", rows[0])
	}
	var buf bytes.Buffer
	PrintScaling(&buf, rows)
	if !strings.Contains(buf.String(), "clg-edges") {
		t.Fatal("scaling table header missing")
	}
}

func TestRunExactVsStaticStates(t *testing.T) {
	rows, err := RunExactVsStatic([]int{1, 2}, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ExactStates != 3 || rows[1].ExactStates != 9 {
		t.Fatalf("state counts: %+v", rows)
	}
}

func TestRunUnrollGrowthFormula(t *testing.T) {
	rows := RunUnrollGrowth([]int{1, 3}, 2)
	for _, r := range rows {
		if r.After != r.Expected {
			t.Fatalf("depth %d: %+v", r.Depth, r)
		}
	}
}

func TestRunLadder(t *testing.T) {
	rows, err := RunLadder(workload.Pipeline(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Algorithms)+2 { // + k-pairs + enumeration
		t.Fatalf("rows=%d", len(rows))
	}
	var buf bytes.Buffer
	PrintLadder(&buf, rows)
	if !strings.Contains(buf.String(), "scc-runs") {
		t.Fatal("ladder header missing")
	}
}

func TestCanonicalUnsatRuns(t *testing.T) {
	c2, c3, err := RunCanonicalUnsat()
	if err != nil {
		t.Fatal(err)
	}
	if c2 || c3 {
		t.Fatalf("canonical UNSAT produced cycles: t2=%v t3=%v", c2, c3)
	}
}

func TestTheoremAgreementRunners(t *testing.T) {
	t2, err := RunTheorem2Agreement(3, 5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Agreements != t2.Samples {
		t.Fatalf("t2: %+v", t2)
	}
	t3, err := RunTheorem3Agreement(3, 5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Agreements != t3.Samples {
		t.Fatalf("t3: %+v", t3)
	}
	var buf bytes.Buffer
	PrintTheoremAgreement(&buf, "x", t2)
	if !strings.Contains(buf.String(), "agree with DPLL") {
		t.Fatal("agreement line missing")
	}
}

func TestRunFamiliesMatrix(t *testing.T) {
	rows, err := RunFamilies()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]FigureRow{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	// Safety: the real deadlock is flagged by every column.
	ring := byID["ring(3)"]
	if ring.ExactVerdict != "deadlock" {
		t.Fatalf("ring exact=%s", ring.ExactVerdict)
	}
	for a, alarm := range ring.Alarms {
		if !alarm {
			t.Fatalf("ring(3): %v missed the deadlock", a)
		}
	}
	if !ring.Enumerated {
		t.Fatal("ring(3): enumeration missed the deadlock")
	}
	// Precision landmarks.
	if byID["pipeline(4,3)"].Alarms[core.AlgoRefinedPairs] {
		t.Fatal("pipeline: head pairs should certify")
	}
	if byID["pipeline(4,3)"].Enumerated {
		t.Fatal("pipeline: enumeration should certify")
	}
	if byID["ring-broken(3)"].Alarms[core.AlgoNaive] {
		t.Fatal("ring-broken: naive should certify")
	}
	if !byID["client-server(3)"].C4Certified {
		t.Fatal("client-server: constraint 4 should certify")
	}
	var buf bytes.Buffer
	PrintFamilies(&buf, rows)
	if !strings.Contains(buf.String(), "+k-pairs") {
		t.Fatal("family table header missing")
	}
}

func TestRunBaselinesAgree(t *testing.T) {
	rows, err := RunBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if !r.Agree {
			t.Fatalf("baselines disagree on %s", r.Name)
		}
		if r.NetMarkings < r.WaveStates {
			t.Fatalf("%s: net markings (%d) below wave states (%d); the net interleaves more, never less",
				r.Name, r.NetMarkings, r.WaveStates)
		}
	}
	var buf bytes.Buffer
	PrintBaselines(&buf, rows)
	if !strings.Contains(buf.String(), "verdicts-agree") {
		t.Fatal("baseline table header missing")
	}
}

func TestRunStallScaling(t *testing.T) {
	rows := RunStallScaling([]int{5, 10})
	if len(rows) != 2 || rows[0].Nodes >= rows[1].Nodes {
		t.Fatalf("%+v", rows)
	}
}
