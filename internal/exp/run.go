package exp

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/cfg"
	"repro/internal/clg"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/petri"
	"repro/internal/sat3"
	"repro/internal/sg"
	"repro/internal/stall"
	"repro/internal/waves"
	"repro/internal/workload"
)

// Algorithms is the detector spectrum in increasing precision order.
var Algorithms = []core.Algorithm{
	core.AlgoNaive,
	core.AlgoRefined,
	core.AlgoRefinedPairs,
	core.AlgoRefinedHeadTail,
	core.AlgoRefinedHeadTailPairs,
}

func analyzerFor(p *lang.Program) (*core.Analyzer, error) {
	if cfg.HasLoops(p) {
		p = cfg.Unroll(p)
	}
	g, err := sg.FromProgram(p)
	if err != nil {
		return nil, err
	}
	return core.NewAnalyzer(g), nil
}

// FigureRow is the outcome of one figure fixture across the spectrum.
type FigureRow struct {
	ID           string
	Title        string
	ExactVerdict string // "deadlock", "stall", "clean", ...
	Alarms       map[core.Algorithm]bool
	// Enumerated is the verdict of the cycle-enumeration detector, which
	// enforces constraint 1c (one entry per task) exactly.
	Enumerated bool
	// EnumComplete reports whether enumeration finished within budget.
	EnumComplete bool
	C4Certified  bool
	StallFlagged bool
}

// RunFigures analyzes every fixture with the whole spectrum, the exact
// explorer, the stall balance check and the constraint-4 certifier.
func RunFigures() ([]FigureRow, error) {
	var rows []FigureRow
	for _, fx := range Fixtures() {
		p := MustProgram(fx.Source)
		an, err := analyzerFor(p)
		if err != nil {
			return nil, err
		}
		row := FigureRow{ID: fx.ID, Title: fx.Title, Alarms: map[core.Algorithm]bool{}}
		for _, a := range Algorithms {
			row.Alarms[a] = an.Run(a).MayDeadlock
		}
		ev := an.Enumerate(0)
		row.Enumerated = ev.MayDeadlock
		row.EnumComplete = ev.Conclusive
		free, conclusive := an.Constraint4Certify(0)
		row.C4Certified = free && conclusive
		row.StallFlagged = !stall.CheckAllLinearizations(p).StallFree()
		exact, err := waves.ExploreProgram(p, waves.Options{})
		if err != nil {
			return nil, err
		}
		switch {
		case exact.Deadlock && exact.Stall:
			row.ExactVerdict = "deadlock+stall"
		case exact.Deadlock:
			row.ExactVerdict = "deadlock"
		case exact.Stall:
			row.ExactVerdict = "stall"
		default:
			row.ExactVerdict = "clean"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigures writes the figure table.
func PrintFigures(w io.Writer, rows []FigureRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "id\texact\tnaive\trefined\t+pairs\t+head-tail\t+ht-pairs\tenumerate\tc4-certified\tstall-flagged")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%v\t%v\t%v\t%v\t%v\t%v\t%v\n",
			r.ID, r.ExactVerdict,
			r.Alarms[core.AlgoNaive], r.Alarms[core.AlgoRefined],
			r.Alarms[core.AlgoRefinedPairs], r.Alarms[core.AlgoRefinedHeadTail],
			r.Alarms[core.AlgoRefinedHeadTailPairs], r.Enumerated,
			r.C4Certified, r.StallFlagged)
	}
	tw.Flush()
}

// FamilyAlgorithms is the full detector list scored in the family matrix,
// including the two extensions beyond the paper's spectrum.
var FamilyAlgorithms = append(append([]core.Algorithm{}, Algorithms...),
	core.AlgoRefinedKPairs, core.AlgoEnumerate)

// RunFamilies scores every detector on the structured workload families —
// a qualitative "who certifies what" matrix complementing the random
// precision sweep (experiment T2b).
func RunFamilies() ([]FigureRow, error) {
	families := []struct {
		name string
		p    *lang.Program
	}{
		{"ring(3)", workload.Ring(3)},
		{"ring-broken(3)", workload.RingBroken(3)},
		{"pipeline(4,3)", workload.Pipeline(4, 3)},
		{"client-server(3)", workload.ClientServer(3)},
		{"barrier(2,2)", workload.Barrier(2, 2)},
		{"forkfan(3,2)", workload.ForkFan(3, 2)},
	}
	var rows []FigureRow
	for _, fam := range families {
		an, err := analyzerFor(fam.p)
		if err != nil {
			return nil, err
		}
		row := FigureRow{ID: fam.name, Title: fam.name, Alarms: map[core.Algorithm]bool{}}
		for _, a := range Algorithms {
			row.Alarms[a] = an.Run(a).MayDeadlock
		}
		kv := an.RefinedKPairs(3, core.KPairsBudget{})
		row.Alarms[core.AlgoRefinedKPairs] = kv.MayDeadlock
		ev := an.Enumerate(1 << 16)
		row.Enumerated = ev.MayDeadlock
		row.EnumComplete = ev.Conclusive
		free, conclusive := an.Constraint4Certify(1 << 15)
		row.C4Certified = free && conclusive
		row.StallFlagged = !stall.CheckAllLinearizations(fam.p).StallFree()
		exact, err := waves.ExploreProgram(fam.p, waves.Options{})
		if err != nil {
			return nil, err
		}
		switch {
		case exact.Deadlock && exact.Stall:
			row.ExactVerdict = "deadlock+stall"
		case exact.Deadlock:
			row.ExactVerdict = "deadlock"
		case exact.Stall:
			row.ExactVerdict = "stall"
		default:
			row.ExactVerdict = "clean"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFamilies writes the family matrix (same layout as the figure
// table, plus the k-pairs column).
func PrintFamilies(w io.Writer, rows []FigureRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "family\texact\tnaive\trefined\t+pairs\t+head-tail\t+ht-pairs\t+k-pairs\tenumerate\tc4-certified")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%v\t%v\t%v\t%v\t%v\t%v\t%v\n",
			r.ID, r.ExactVerdict,
			r.Alarms[core.AlgoNaive], r.Alarms[core.AlgoRefined],
			r.Alarms[core.AlgoRefinedPairs], r.Alarms[core.AlgoRefinedHeadTail],
			r.Alarms[core.AlgoRefinedHeadTailPairs], r.Alarms[core.AlgoRefinedKPairs],
			r.Enumerated, r.C4Certified)
	}
	tw.Flush()
}

// PrecisionRow aggregates detector accuracy against exact ground truth on
// random programs (experiment T2).
type PrecisionRow struct {
	Algorithm   core.Algorithm
	FalseAlarms int // alarms on exactly-deadlock-free programs
	Misses      int // certifications of exactly-deadlocking programs (must be 0)
	CleanTotal  int
	DeadTotal   int
}

// RunPrecision samples `samples` random programs with the given workload
// shape and seed, classifies them with the exact explorer and scores every
// detector. Programs whose exploration truncates are skipped.
func RunPrecision(seed int64, samples int, wcfg workload.Config) ([]PrecisionRow, int, error) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]PrecisionRow, len(Algorithms))
	for i, a := range Algorithms {
		rows[i].Algorithm = a
	}
	skipped := 0
	for s := 0; s < samples; s++ {
		p := workload.Random(rng, wcfg)
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: 300000})
		if err != nil {
			return nil, 0, err
		}
		if exact.Truncated {
			skipped++
			continue
		}
		an, err := analyzerFor(p)
		if err != nil {
			return nil, 0, err
		}
		for i, a := range Algorithms {
			alarm := an.Run(a).MayDeadlock
			if exact.Deadlock {
				rows[i].DeadTotal++
				if !alarm {
					rows[i].Misses++
				}
			} else {
				rows[i].CleanTotal++
				if alarm {
					rows[i].FalseAlarms++
				}
			}
		}
	}
	return rows, skipped, nil
}

// PrintPrecision writes the precision table.
func PrintPrecision(w io.Writer, rows []PrecisionRow, skipped int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tfalse-alarm-rate\tfalse-alarms\tclean\tmisses\tdeadlocking")
	for _, r := range rows {
		rate := 0.0
		if r.CleanTotal > 0 {
			rate = float64(r.FalseAlarms) / float64(r.CleanTotal)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%d\t%d\t%d\t%d\n",
			r.Algorithm, 100*rate, r.FalseAlarms, r.CleanTotal, r.Misses, r.DeadTotal)
	}
	tw.Flush()
	fmt.Fprintf(w, "(skipped %d samples whose exact exploration truncated)\n", skipped)
}

// ExactVsStaticRow compares the exponential exact baseline with the
// polynomial detectors on the ForkFan family (experiment T3).
type ExactVsStaticRow struct {
	Pairs       int
	Tasks       int
	Nodes       int
	ExactStates int
	ExactTime   time.Duration
	RefinedTime time.Duration
	Truncated   bool
}

// RunExactVsStatic measures both analyses on ForkFan(n, depth) for each n.
func RunExactVsStatic(pairCounts []int, depth int, maxStates int) ([]ExactVsStaticRow, error) {
	var rows []ExactVsStaticRow
	for _, n := range pairCounts {
		p := workload.ForkFan(n, depth)
		row := ExactVsStaticRow{Pairs: n, Tasks: 2 * n, Nodes: p.CountRendezvous()}
		t0 := time.Now()
		exact, err := waves.ExploreProgram(p, waves.Options{MaxStates: maxStates})
		if err != nil {
			return nil, err
		}
		row.ExactTime = time.Since(t0)
		row.ExactStates = exact.States
		row.Truncated = exact.Truncated
		an, err := analyzerFor(p)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		an.Refined()
		row.RefinedTime = time.Since(t0)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintExactVsStatic writes the tractability table.
func PrintExactVsStatic(w io.Writer, rows []ExactVsStaticRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pairs\ttasks\tnodes\texact-states\texact-time\trefined-time\ttruncated")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%v\t%v\n",
			r.Pairs, r.Tasks, r.Nodes, r.ExactStates, r.ExactTime.Round(time.Microsecond),
			r.RefinedTime.Round(time.Microsecond), r.Truncated)
	}
	tw.Flush()
}

// ScalingRow measures detector runtime against program size (experiment
// T1): the paper claims O(|N_CLG| * (|N_CLG| + |E_CLG|)).
type ScalingRow struct {
	Tasks    int
	Width    int
	Nodes    int
	CLGNodes int
	CLGEdges int
	Naive    time.Duration
	Refined  time.Duration
	Pairs    time.Duration
}

// RunScaling measures the CrossRing family.
func RunScaling(sizes [][2]int, withPairs bool) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, sz := range sizes {
		p := workload.CrossRing(sz[0], sz[1])
		g, err := sg.FromProgram(p)
		if err != nil {
			return nil, err
		}
		an := core.NewAnalyzer(g)
		c := clg.Build(g)
		row := ScalingRow{Tasks: sz[0], Width: sz[1], Nodes: g.N() - 2, CLGNodes: c.N(), CLGEdges: c.M()}
		t0 := time.Now()
		an.Naive()
		row.Naive = time.Since(t0)
		t0 = time.Now()
		an.Refined()
		row.Refined = time.Since(t0)
		if withPairs {
			t0 = time.Now()
			an.RefinedPairs()
			row.Pairs = time.Since(t0)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintScaling writes the runtime table.
func PrintScaling(w io.Writer, rows []ScalingRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tasks\twidth\tnodes\tclg-nodes\tclg-edges\tnaive\trefined\t+pairs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\n",
			r.Tasks, r.Width, r.Nodes, r.CLGNodes, r.CLGEdges,
			r.Naive.Round(time.Microsecond), r.Refined.Round(time.Microsecond),
			r.Pairs.Round(time.Microsecond))
	}
	tw.Flush()
}

// UnrollRow measures the Lemma 1 transform's growth (experiment T4).
type UnrollRow struct {
	Depth    int
	Before   int
	After    int
	Expected int // before * 2^depth for the loop-resident kernel
}

// RunUnrollGrowth unrolls NestedLoops kernels of increasing depth.
func RunUnrollGrowth(depths []int, kernel int) []UnrollRow {
	var rows []UnrollRow
	for _, d := range depths {
		p := workload.NestedLoops(d, kernel)
		u := cfg.Unroll(p)
		// Only the src task's kernel sits inside the nest; the sink task
		// contributes 2 rendezvous in a single loop (doubling once).
		expected := kernel*pow2(d) + 2*2
		rows = append(rows, UnrollRow{
			Depth:    d,
			Before:   p.CountRendezvous(),
			After:    u.CountRendezvous(),
			Expected: expected,
		})
	}
	return rows
}

func pow2(d int) int { return 1 << uint(d) }

// PrintUnrollGrowth writes the growth table.
func PrintUnrollGrowth(w io.Writer, rows []UnrollRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "nest-depth\trendezvous-before\trendezvous-after\texpected(stmts*2^d)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\n", r.Depth, r.Before, r.After, r.Expected)
	}
	tw.Flush()
}

// StallRow measures Lemma 3 counting time (experiment T5).
type StallRow struct {
	Nodes int
	Time  time.Duration
}

// RunStallScaling times CountNodes on straight-line pipelines of
// increasing size.
func RunStallScaling(sizes []int) []StallRow {
	var rows []StallRow
	for _, n := range sizes {
		p := workload.Pipeline(4, n)
		nodes := p.CountRendezvous()
		t0 := time.Now()
		const reps = 100
		for i := 0; i < reps; i++ {
			stall.CountNodes(p)
		}
		rows = append(rows, StallRow{Nodes: nodes, Time: time.Since(t0) / reps})
	}
	return rows
}

// PrintStallScaling writes the stall timing table.
func PrintStallScaling(w io.Writer, rows []StallRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rendezvous-nodes\tcount-time")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%v\n", r.Nodes, r.Time.Round(time.Nanosecond))
	}
	tw.Flush()
}

// LadderRow shows the precision/cost spectrum on one program (T6).
type LadderRow struct {
	Algorithm  core.Algorithm
	Alarm      bool
	Hypotheses int
	SCCRuns    int
	Time       time.Duration
}

// RunLadder measures the full spectrum on one program, including the
// k-pairs (k = 3) and enumeration extensions.
func RunLadder(p *lang.Program) ([]LadderRow, error) {
	an, err := analyzerFor(p)
	if err != nil {
		return nil, err
	}
	var rows []LadderRow
	for _, a := range Algorithms {
		t0 := time.Now()
		v := an.Run(a)
		rows = append(rows, LadderRow{
			Algorithm:  a,
			Alarm:      v.MayDeadlock,
			Hypotheses: v.Hypotheses,
			SCCRuns:    v.SCCRuns,
			Time:       time.Since(t0),
		})
	}
	t0 := time.Now()
	kv := an.RefinedKPairs(3, core.KPairsBudget{})
	rows = append(rows, LadderRow{
		Algorithm:  core.AlgoRefinedKPairs,
		Alarm:      kv.MayDeadlock,
		Hypotheses: kv.Hypotheses,
		SCCRuns:    kv.SCCRuns,
		Time:       time.Since(t0),
	})
	t0 = time.Now()
	ev := an.Enumerate(1 << 16)
	rows = append(rows, LadderRow{
		Algorithm:  core.AlgoEnumerate,
		Alarm:      ev.MayDeadlock,
		Hypotheses: ev.Hypotheses,
		SCCRuns:    0,
		Time:       time.Since(t0),
	})
	return rows, nil
}

// PrintLadder writes the extension-ladder table.
func PrintLadder(w io.Writer, rows []LadderRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmay-deadlock\thypotheses\tscc-runs\ttime")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%v\n",
			r.Algorithm, r.Alarm, r.Hypotheses, r.SCCRuns, r.Time.Round(time.Microsecond))
	}
	tw.Flush()
}

// BaselineRow compares the two exact baselines — the wave explorer
// (Taylor-style concurrency states) and the Petri-net reachability graph
// (Murata-style) — on one program (experiment T7).
type BaselineRow struct {
	Name        string
	WaveStates  int
	WaveTime    time.Duration
	NetMarkings int
	NetTime     time.Duration
	Agree       bool
}

// RunBaselines cross-checks the baselines over the deterministic
// workload families.
func RunBaselines() ([]BaselineRow, error) {
	progs := []struct {
		name string
		p    *lang.Program
	}{
		{"handshake", MustProgram(`
task t1 is begin t2.a; accept b; end;
task t2 is begin accept a; t1.b; end;
`)},
		{"ring(4)", workload.Ring(4)},
		{"pipeline(4,2)", workload.Pipeline(4, 2)},
		{"client-server(3)", workload.ClientServer(3)},
		{"forkfan(4,2)", workload.ForkFan(4, 2)},
		{"loop-pipeline", MustProgram(`
task p is begin loop 3 times c.m; end loop; end;
task c is begin loop 3 times accept m; end loop; end;
`)},
	}
	var rows []BaselineRow
	for _, pr := range progs {
		row := BaselineRow{Name: pr.name}
		t0 := time.Now()
		wres, err := waves.ExploreProgram(pr.p, waves.Options{})
		if err != nil {
			return nil, err
		}
		row.WaveTime = time.Since(t0)
		row.WaveStates = wres.States
		b, err := petri.FromProgram(pr.p, 0)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		nres := b.Reach(petri.ReachOptions{})
		row.NetTime = time.Since(t0)
		row.NetMarkings = nres.Markings
		row.Agree = wres.Completed == nres.Completed &&
			wres.HasAnomaly() == nres.HasInfiniteWait()
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintBaselines writes the baseline comparison table.
func PrintBaselines(w io.Writer, rows []BaselineRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\twave-states\twave-time\tnet-markings\tnet-time\tverdicts-agree")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%d\t%v\t%v\n",
			r.Name, r.WaveStates, r.WaveTime.Round(time.Microsecond),
			r.NetMarkings, r.NetTime.Round(time.Microsecond), r.Agree)
	}
	tw.Flush()
}

// Theorem2Row reports reduction validation counts (experiments F6-F9).
type Theorem2Row struct {
	Samples    int
	Sat        int
	Agreements int
	Skipped    int
}

// RunTheorem2Agreement cross-checks the Theorem 2 gadget against DPLL on
// random formulas.
func RunTheorem2Agreement(seed int64, samples, numVars, numClauses int) (Theorem2Row, error) {
	rng := rand.New(rand.NewSource(seed))
	row := Theorem2Row{}
	for i := 0; i < samples; i++ {
		f := sat3.Random(rng, numVars, numClauses)
		p, err := sat3.BuildTheorem2(f)
		if err != nil {
			return row, err
		}
		g, err := sg.FromProgram(p)
		if err != nil {
			return row, err
		}
		an := core.NewAnalyzer(g)
		has, complete := sat3.Theorem2HasValidCycle(an, 60000)
		if !complete {
			row.Skipped++
			continue
		}
		row.Samples++
		sat, _ := sat3.Solve(f)
		if sat {
			row.Sat++
		}
		if sat == has {
			row.Agreements++
		}
	}
	return row, nil
}

// RunTheorem3Agreement cross-checks the Theorem 3 gadget against DPLL.
func RunTheorem3Agreement(seed int64, samples, numVars, numClauses int) (Theorem2Row, error) {
	rng := rand.New(rand.NewSource(seed))
	row := Theorem2Row{}
	for i := 0; i < samples; i++ {
		f := sat3.Random(rng, numVars, numClauses)
		g, err := sat3.BuildTheorem3(f)
		if err != nil {
			return row, err
		}
		an := core.NewAnalyzer(g)
		has, complete := sat3.Theorem3HasValidCycle(an, 60000)
		if !complete {
			row.Skipped++
			continue
		}
		row.Samples++
		sat, _ := sat3.Solve(f)
		if sat {
			row.Sat++
		}
		if sat == has {
			row.Agreements++
		}
	}
	return row, nil
}

// PrintTheoremAgreement writes a reduction validation line.
func PrintTheoremAgreement(w io.Writer, name string, row Theorem2Row) {
	fmt.Fprintf(w, "%s: %d/%d agree with DPLL (%d satisfiable, %d skipped)\n",
		name, row.Agreements, row.Samples, row.Sat, row.Skipped)
}

// CanonicalUnsat is the 8-clause enumeration of all sign patterns over
// three variables — the smallest natural unsatisfiable 3-CNF fixture.
func CanonicalUnsat() *sat3.Formula {
	return &sat3.Formula{NumVars: 3, Clauses: []sat3.Clause{
		{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
		{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
	}}
}

// RunCanonicalUnsat validates both reductions on the canonical
// unsatisfiable formula, returning (theorem2Cycle, theorem3Cycle) — both
// must be false.
func RunCanonicalUnsat() (bool, bool, error) {
	f := CanonicalUnsat()
	p, err := sat3.BuildTheorem2(f)
	if err != nil {
		return false, false, err
	}
	g, err := sg.FromProgram(p)
	if err != nil {
		return false, false, err
	}
	c2, complete := sat3.Theorem2HasValidCycle(core.NewAnalyzer(g), 0)
	if !complete {
		return false, false, fmt.Errorf("theorem 2 enumeration truncated")
	}
	g3, err := sat3.BuildTheorem3(f)
	if err != nil {
		return false, false, err
	}
	c3, complete := sat3.Theorem3HasValidCycle(core.NewAnalyzer(g3), 0)
	if !complete {
		return false, false, fmt.Errorf("theorem 3 enumeration truncated")
	}
	return c2, c3, nil
}
