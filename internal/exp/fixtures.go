// Package exp defines the reproduction experiments: one fixture per paper
// figure and one runner per measured claim (see DESIGN.md §3 and
// EXPERIMENTS.md). The cmd/siwad-exp binary prints every experiment; the
// root-package tests pin each expected outcome; bench_test.go measures the
// quantitative rows.
package exp

import "repro/internal/lang"

// Figure1Class reconstructs the class of program Figure 1 illustrates: a
// deadlock-free two-task program whose CLG contains cycles that only the
// feasibility constraints (2, 3a) can rule out. Two same-signal messages
// create the spurious out-of-order pairing.
const Figure1Class = `
-- Figure 1 (reconstruction): deadlock-free, but the CLG has a cycle
-- r -> s ~ u -> v ~ r whose heads can rendezvous with each other.
task t1 is
begin
  r: t2.sig1;
  s: t2.sig1;
end;
task t2 is
begin
  u: accept sig1;
  v: accept sig1;
end;
`

// Figure2a is the stall anomaly: after the go rendezvous, t2 waits on an
// accept that no task can ever signal (z is the stall node).
const Figure2a = `
-- Figure 2(a): stall anomaly; z is the stall node.
task t1 is
begin
  accept go;
end;
task t2 is
begin
  t1.go;
  z: accept done;
end;
`

// Figure2b is the deadlock anomaly: both tasks accept first, each waiting
// on a signal the other can only send later.
const Figure2b = `
-- Figure 2(b): deadlock anomaly.
task t1 is
begin
  r: accept sig1;
  s: t2.sig2;
end;
task t2 is
begin
  u: accept sig2;
  v: t1.sig1;
end;
`

// Figure3 carries a cycle r,s,t,u valid under the three local constraints
// but always broken by outside task W (the global constraint 4): w can
// only rendezvous with t or with v, which must execute after t.
const Figure3 = `
-- Figure 3: constraint-4 example; W always breaks the r,s,t,u cycle.
task T1 is
begin
  r: accept mr;
  s: T2.mt;
end;
task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;
task W is
begin
  w: T2.mt;
end;
`

// Figure4a has a cycle running purely through sync edges (r ~ s ~ t ~ u):
// a naive traversal of the sync graph finds it; the CLG of the same
// program is acyclic (Figure 4(b)).
const Figure4a = `
-- Figure 4(a): spurious sync-edge-only cycle; the CLG (b) is acyclic.
task A is
begin
  s: accept m;
  u: accept m;
end;
task B is
begin
  r: A.m;
end;
task C is
begin
  t: A.m;
end;
`

// Figure4c has a spurious cycle that needs both exclusive branches of
// task X simultaneously — a constraint 3b (co-executability) violation.
const Figure4c = `
-- Figure 4(c): cycle straddling both branches of X; killed by NOT-COEXEC.
task X is
begin
  if c then
    a: accept m1;
    bb: Y.m2;
  else
    cc: accept m3;
    d: Z.m4;
  end if;
end;
task Y is
begin
  e1: accept m2;
  f1: X.m3;
end;
task Z is
begin
  g: accept m4;
  h: X.m1;
end;
`

// Figure5bc has a rendezvous repeated on both sides of a branch; the
// MergeBranches transform (Figure 5(b) to 5(c)) hoists it out, making the
// straight-line Lemma 3 count applicable.
const Figure5bc = `
-- Figure 5(b): same rendezvous on both branch arms.
task a is
begin
  if c then
    b.m;
    accept r;
  else
    b.m;
    accept r;
  end if;
end;
task b is
begin
  accept m;
  a.r;
end;
`

// Figure5d passes a condition value between tasks; the conditionals are
// co-dependent, which a programmer certification lets HoistCertified
// exploit.
const Figure5d = `
-- Figure 5(d): co-dependent conditionals across tasks.
task T is
begin
  Tp.val;
  if vT then
    accept m;
  end if;
end;
task Tp is
begin
  accept val;
  if vTp then
    T.m;
  end if;
end;
`

// Fixture couples a figure id with its program source.
type Fixture struct {
	ID     string
	Title  string
	Source string
}

// Fixtures lists every figure reproduction in paper order.
func Fixtures() []Fixture {
	return []Fixture{
		{"F1", "Figure 1: spurious CLG cycles on a deadlock-free program", Figure1Class},
		{"F2a", "Figure 2(a): stall anomaly", Figure2a},
		{"F2b", "Figure 2(b): deadlock anomaly", Figure2b},
		{"F3", "Figure 3: cycle broken by an outside task (constraint 4)", Figure3},
		{"F4ab", "Figure 4(a,b): sync-edge-only cycle killed by the CLG", Figure4a},
		{"F4c", "Figure 4(c): branch-straddling cycle (constraint 3b)", Figure4c},
		{"F5bc", "Figure 5(b,c): branch-merge stall transform", Figure5bc},
		{"F5d", "Figure 5(d): co-dependent factoring transform", Figure5d},
	}
}

// MustProgram parses a fixture source.
func MustProgram(src string) *lang.Program { return lang.MustParse(src) }
