// Package cfg builds per-task control-flow graphs over rendezvous points,
// the representation the sync graph's E_C edge set is defined on: a directed
// edge (r, s) exists iff some control-flow path runs from r to s passing no
// other rendezvous point (paper §2).
//
// Construction is two-phase: a statement-level CFG including virtual nodes
// for branch joins and loop heads is built first, then contracted so that
// only rendezvous points and the distinguished entry/exit remain.
//
// The package also implements the paper's §3.1.4 loop handling: the
// anomaly-preserving twice-unroll transform of Lemma 1 (Unroll) and exact
// expansion of statically bounded loops (ExpandBounded) used by the exact
// wave explorer.
package cfg

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lang"
)

// NodeKind classifies CFG nodes after contraction.
type NodeKind int

const (
	// KindEntry is the task's begin point (maps to the sync graph's b).
	KindEntry NodeKind = iota
	// KindExit is the task's end point (maps to the sync graph's e).
	KindExit
	// KindSend is a signaling rendezvous point (t, m, +).
	KindSend
	// KindAccept is an accepting rendezvous point (t, m, -).
	KindAccept
)

func (k NodeKind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindSend:
		return "send"
	case KindAccept:
		return "accept"
	}
	return "?"
}

// Node is one contracted CFG node.
type Node struct {
	ID    int // index within the task CFG
	Kind  NodeKind
	Sig   lang.Signal // receiving task + message, for send/accept nodes
	Label string      // statement label, for send/accept nodes
	Pos   lang.Pos
}

// Sign returns "+" for sends, "-" for accepts, "" otherwise (paper's s).
func (n *Node) Sign() string {
	switch n.Kind {
	case KindSend:
		return "+"
	case KindAccept:
		return "-"
	}
	return ""
}

func (n *Node) String() string {
	switch n.Kind {
	case KindEntry:
		return "b"
	case KindExit:
		return "e"
	}
	return fmt.Sprintf("%s(%s,%s,%s)", n.Label, n.Sig.Task, n.Sig.Msg, n.Sign())
}

// TaskCFG is the contracted control-flow graph of a single task.
// Nodes[Entry] and Nodes[Exit] are the distinguished begin/end points.
type TaskCFG struct {
	Task  string
	Nodes []*Node
	G     *graph.Digraph // edges over Node.ID
	Entry int
	Exit  int
}

// Rendezvous returns the non-entry/exit nodes in program order.
func (t *TaskCFG) Rendezvous() []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.Kind == KindSend || n.Kind == KindAccept {
			out = append(out, n)
		}
	}
	return out
}

// HasLoops reports whether the contracted CFG contains a directed cycle.
func (t *TaskCFG) HasLoops() bool {
	ok, _ := t.G.HasCycle()
	return ok
}

// ProgramCFG bundles the per-task CFGs of a program.
type ProgramCFG struct {
	Prog   *lang.Program
	Tasks  []*TaskCFG
	byName map[string]*TaskCFG
}

// Task returns the CFG of the named task, or nil.
func (p *ProgramCFG) Task(name string) *TaskCFG { return p.byName[name] }

// NumRendezvous counts rendezvous nodes across all tasks.
func (p *ProgramCFG) NumRendezvous() int {
	n := 0
	for _, t := range p.Tasks {
		n += len(t.Nodes) - 2
	}
	return n
}

// Build constructs the contracted per-task CFGs for a validated program.
// Programs using procedures must be inlined first (lang.InlineCalls); the
// analyses are defined on the paper's intraprocedural model.
func Build(p *lang.Program) (*ProgramCFG, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Procs) > 0 || p.HasCalls() {
		return nil, fmt.Errorf("cfg: program has procedures; apply lang.InlineCalls first")
	}
	out := &ProgramCFG{Prog: p, byName: map[string]*TaskCFG{}}
	for _, t := range p.Tasks {
		tc, err := buildTask(t)
		if err != nil {
			return nil, err
		}
		out.Tasks = append(out.Tasks, tc)
		out.byName[t.Name] = tc
	}
	return out, nil
}

// MustBuild is Build that panics on error; for tests and fixed examples.
func MustBuild(p *lang.Program) *ProgramCFG {
	c, err := Build(p)
	if err != nil {
		panic(err)
	}
	return c
}

// --- statement-level construction ------------------------------------------

// rawNode is a statement-level CFG node; virtual nodes are contracted away.
type rawNode struct {
	virtual bool
	node    *Node // nil for virtual nodes
}

type rawBuilder struct {
	task  *lang.Task
	nodes []rawNode
	g     *graph.Digraph
}

func (b *rawBuilder) newVirtual() int {
	id := b.g.AddNode()
	b.nodes = append(b.nodes, rawNode{virtual: true})
	return id
}

func (b *rawBuilder) newRendezvous(kind NodeKind, sig lang.Signal, label string, pos lang.Pos) int {
	id := b.g.AddNode()
	b.nodes = append(b.nodes, rawNode{node: &Node{Kind: kind, Sig: sig, Label: label, Pos: pos}})
	return id
}

// buildStmts wires ss between from and to, returning nothing; every path
// from `from` reaches `to`.
func (b *rawBuilder) buildStmts(ss []lang.Stmt, from, to int) {
	cur := from
	for i, s := range ss {
		next := to
		if i < len(ss)-1 {
			next = b.newVirtual()
		}
		b.buildStmt(s, cur, next)
		cur = next
	}
	if len(ss) == 0 {
		b.g.AddEdgeUnique(from, to)
	}
}

func (b *rawBuilder) buildStmt(s lang.Stmt, from, to int) {
	switch v := s.(type) {
	case *lang.Null:
		b.g.AddEdgeUnique(from, to)
	case *lang.Send:
		id := b.newRendezvous(KindSend, lang.Signal{Task: v.Target, Msg: v.Msg}, v.Label(), v.Pos)
		b.g.AddEdgeUnique(from, id)
		b.g.AddEdgeUnique(id, to)
	case *lang.Accept:
		id := b.newRendezvous(KindAccept, lang.Signal{Task: b.task.Name, Msg: v.Msg}, v.Label(), v.Pos)
		b.g.AddEdgeUnique(from, id)
		b.g.AddEdgeUnique(id, to)
	case *lang.If:
		b.buildStmts(v.Then, from, to)
		b.buildStmts(v.Else, from, to)
	case *lang.Loop:
		// Loop head is a virtual node; the body returns to it and the
		// head exits the loop, giving every loop the zero-or-more shape.
		// Exact iteration counts of bounded loops only matter to the
		// wave explorer, which expands them first (ExpandBounded);
		// at-least-once loops are widened to zero-or-more, which can
		// only add control paths and is therefore safe for the
		// conservative detectors.
		head := b.newVirtual()
		b.g.AddEdgeUnique(from, head)
		b.buildStmts(v.Body, head, head)
		b.g.AddEdgeUnique(head, to)
	default:
		panic(fmt.Sprintf("cfg: unknown statement %T", s))
	}
}

func buildTask(t *lang.Task) (*TaskCFG, error) {
	b := &rawBuilder{task: t, g: graph.New(0)}
	entry := b.newVirtual()
	exit := b.newVirtual()
	b.buildStmts(t.Body, entry, exit)

	// Contract virtual nodes: the final node set is entry, exit and all
	// rendezvous nodes; an edge u->v exists iff a path of virtual nodes
	// connects them in the raw graph.
	tc := &TaskCFG{Task: t.Name}
	idMap := make([]int, len(b.nodes)) // raw id -> contracted id, -1 virtual
	for i := range idMap {
		idMap[i] = -1
	}
	addNode := func(raw int, n *Node) int {
		n.ID = len(tc.Nodes)
		tc.Nodes = append(tc.Nodes, n)
		idMap[raw] = n.ID
		return n.ID
	}
	tc.Entry = addNode(entry, &Node{Kind: KindEntry})
	tc.Exit = addNode(exit, &Node{Kind: KindExit})
	for raw, rn := range b.nodes {
		if !rn.virtual {
			addNode(raw, rn.node)
		}
	}
	tc.G = graph.New(len(tc.Nodes))

	// For each real node (and entry), DFS through virtual nodes to find the
	// set of next real nodes.
	for raw, rn := range b.nodes {
		if rn.virtual && raw != entry {
			continue
		}
		if raw == exit {
			continue
		}
		src := idMap[raw]
		seen := make([]bool, len(b.nodes))
		stack := append([]int(nil), b.g.Succ(raw)...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			if idMap[v] != -1 { // real node (or exit)
				tc.G.AddEdgeUnique(src, idMap[v])
				continue
			}
			stack = append(stack, b.g.Succ(v)...)
		}
	}
	return tc, nil
}

// IsReducible reports whether the flowgraph g rooted at entry is reducible:
// after removing back edges (u->v with v dominating u), the graph must be
// acyclic. MiniAda's structured syntax always yields reducible CFGs; the
// check exists because the paper's assumptions demand it be verifiable.
func IsReducible(g *graph.Digraph, entry int) bool {
	idom := g.Dominators(entry)
	fwd := graph.New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succ(u) {
			if graph.Dominates(idom, entry, v, u) {
				continue // back edge
			}
			fwd.AddEdge(u, v)
		}
	}
	cyc, _ := fwd.HasCycle()
	return !cyc
}
