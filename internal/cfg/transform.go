package cfg

import (
	"fmt"

	"repro/internal/lang"
)

// Unroll applies the paper's Lemma 1 anomaly-preserving transform: every
// loop is unrolled twice, recursively from innermost to outermost nest
// levels, producing a loop-free program whose sync graph contains exactly
// the deadlock cycles of the original program's linearized executions.
//
// Each unrolled copy is guarded so that paths taking zero, one or two
// iterations all exist, and the second copy is nested inside the first
// (iteration two cannot happen without iteration one), matching real loop
// execution orders. A bounded "loop 1 times" unrolls to a single mandatory
// copy; "loop n times" with n >= 2 unrolls to copy; guarded copy, since
// what Lemma 1 needs is (a) a path around the loop when zero iterations are
// possible, (b) paths within one iteration, and (c) a path crossing from
// one iteration into the next.
//
// The input is not mutated. Labels of duplicated rendezvous statements get
// "#1" / "#2" iteration suffixes so nodes stay distinguishable.
func Unroll(p *lang.Program) *lang.Program {
	q := p.Clone()
	for _, t := range q.Tasks {
		t.Body = unrollStmts(t.Body)
	}
	return q
}

func unrollStmts(ss []lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range ss {
		switch v := s.(type) {
		case *lang.If:
			v.Then = unrollStmts(v.Then)
			v.Else = unrollStmts(v.Else)
			out = append(out, v)
		case *lang.Loop:
			body := unrollStmts(v.Body) // innermost first
			first := relabel(lang.CloneStmts(body), "#1")
			second := relabel(lang.CloneStmts(body), "#2")
			switch {
			case v.Count == 1:
				out = append(out, first...)
			case v.Count >= 2 || v.AtLeastOnce:
				// At least one trip: first copy mandatory, second guarded.
				out = append(out, first...)
				out = append(out, &lang.If{Cond: condName(v, "again"), Then: second, Pos: v.Pos})
			default:
				// Zero or more trips: both copies guarded, nested.
				inner := &lang.If{Cond: condName(v, "again"), Then: second, Pos: v.Pos}
				out = append(out, &lang.If{
					Cond: condName(v, "enter"),
					Then: append(first, inner),
					Pos:  v.Pos,
				})
			}
		default:
			out = append(out, s)
		}
	}
	return out
}

func condName(l *lang.Loop, suffix string) string {
	if l.Cond != "" {
		return l.Cond + "_" + suffix
	}
	return "loop_" + suffix
}

func relabel(ss []lang.Stmt, suffix string) []lang.Stmt {
	var walk func(ss []lang.Stmt)
	walk = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Send, *lang.Accept:
				if s.Label() != "" {
					s.SetLabel(s.Label() + suffix)
				}
				_ = v
			case *lang.If:
				walk(v.Then)
				walk(v.Else)
			case *lang.Loop:
				walk(v.Body)
			}
		}
	}
	walk(ss)
	return ss
}

// ResourceError reports that a transform or analysis would exceed a
// configured resource limit. It is returned before the offending allocation
// happens, so callers can reject oversized inputs without paying for them.
// Actual may saturate at a large sentinel when the true size overflows.
type ResourceError struct {
	Resource string // what was bounded ("tasks", "unrolled rendezvous nodes", ...)
	Limit    int
	Actual   int
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("resource limit exceeded: %s %d > limit %d", e.Resource, e.Actual, e.Limit)
}

// predictCap saturates size predictions: any value past it is reported as
// predictCap, keeping the arithmetic overflow-free for arbitrarily deep
// nests (a 64-deep nest would otherwise overflow int64).
const predictCap = int64(1) << 40

// PredictUnrolledRendezvous computes, without allocating anything, exactly
// how many rendezvous statements Unroll would produce for p: each loop
// doubles its body (or keeps one copy for "loop 1 times"), recursively.
// Saturates at a large cap instead of overflowing on pathological nests.
func PredictUnrolledRendezvous(p *lang.Program) int64 {
	var count func(ss []lang.Stmt) int64
	count = func(ss []lang.Stmt) int64 {
		var n int64
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Send, *lang.Accept:
				n++
			case *lang.If:
				n += count(v.Then) + count(v.Else)
			case *lang.Loop:
				body := count(v.Body)
				if v.Count == 1 {
					n += body
				} else {
					n += 2 * body
				}
			}
			if n >= predictCap {
				return predictCap
			}
		}
		return n
	}
	var total int64
	for _, t := range p.Tasks {
		total += count(t.Body)
		if total >= predictCap {
			return predictCap
		}
	}
	return total
}

// PredictExpandedRendezvous computes, without allocating anything, how
// many rendezvous statements ExpandBounded would produce: bounded loops
// multiply their body by the iteration count (nests multiply together),
// while-loops keep one copy. Saturates at a large cap instead of
// overflowing.
func PredictExpandedRendezvous(p *lang.Program) int64 {
	var count func(ss []lang.Stmt) int64
	count = func(ss []lang.Stmt) int64 {
		var n int64
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Send, *lang.Accept:
				n++
			case *lang.If:
				n += count(v.Then) + count(v.Else)
			case *lang.Loop:
				body := count(v.Body)
				mult := int64(1)
				if v.Count > 0 {
					mult = int64(v.Count)
				}
				if body > 0 && mult > predictCap/body {
					return predictCap
				}
				n += mult * body
			}
			if n >= predictCap {
				return predictCap
			}
		}
		return n
	}
	var total int64
	for _, t := range p.Tasks {
		total += count(t.Body)
		if total >= predictCap {
			return predictCap
		}
	}
	return total
}

// UnrollBounded is Unroll guarded by a rendezvous-node budget: when the
// twice-unrolled program would contain more than maxRendezvous rendezvous
// statements, it returns a *ResourceError without performing the unroll
// (the 2^depth blowup of a nested-loop bomb is predicted, not suffered).
// maxRendezvous <= 0 means unlimited, i.e. plain Unroll.
func UnrollBounded(p *lang.Program, maxRendezvous int) (*lang.Program, error) {
	if maxRendezvous > 0 {
		if n := PredictUnrolledRendezvous(p); n > int64(maxRendezvous) {
			actual := int(n)
			if n >= predictCap {
				actual = int(predictCap)
			}
			return nil, &ResourceError{
				Resource: "unrolled rendezvous nodes",
				Limit:    maxRendezvous,
				Actual:   actual,
			}
		}
	}
	return Unroll(p), nil
}

// ExpandBounded fully expands every "loop n times" into n sequential copies
// of its body (innermost first), leaving while-loops untouched. The exact
// wave explorer uses this so that bounded iteration counts are honored
// precisely. Expansion is refused above limit total copies per loop to
// bound blowup; limit <= 0 means 64.
func ExpandBounded(p *lang.Program, limit int) (*lang.Program, error) {
	if limit <= 0 {
		limit = 64
	}
	q := p.Clone()
	for _, t := range q.Tasks {
		body, err := expandStmts(t.Body, limit)
		if err != nil {
			return nil, fmt.Errorf("cfg: task %s: %w", t.Name, err)
		}
		t.Body = body
	}
	return q, nil
}

func expandStmts(ss []lang.Stmt, limit int) ([]lang.Stmt, error) {
	var out []lang.Stmt
	for _, s := range ss {
		switch v := s.(type) {
		case *lang.If:
			var err error
			if v.Then, err = expandStmts(v.Then, limit); err != nil {
				return nil, err
			}
			if v.Else, err = expandStmts(v.Else, limit); err != nil {
				return nil, err
			}
			out = append(out, v)
		case *lang.Loop:
			body, err := expandStmts(v.Body, limit)
			if err != nil {
				return nil, err
			}
			if v.Count == 0 {
				v.Body = body
				out = append(out, v)
				continue
			}
			if v.Count > limit {
				return nil, fmt.Errorf("loop count %d exceeds expansion limit %d", v.Count, limit)
			}
			for i := 1; i <= v.Count; i++ {
				out = append(out, relabel(lang.CloneStmts(body), fmt.Sprintf("#i%d", i))...)
			}
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

// HasLoops reports whether any task of the program contains a loop
// statement.
func HasLoops(p *lang.Program) bool {
	found := false
	var walk func(ss []lang.Stmt)
	walk = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Loop:
				found = true
			case *lang.If:
				walk(v.Then)
				walk(v.Else)
				_ = v
			}
		}
	}
	for _, t := range p.Tasks {
		walk(t.Body)
	}
	return found
}

// MaxLoopDepth returns the deepest loop nesting level in the program.
func MaxLoopDepth(p *lang.Program) int {
	var depth func(ss []lang.Stmt) int
	depth = func(ss []lang.Stmt) int {
		d := 0
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Loop:
				if n := 1 + depth(v.Body); n > d {
					d = n
				}
			case *lang.If:
				if n := depth(v.Then); n > d {
					d = n
				}
				if n := depth(v.Else); n > d {
					d = n
				}
			}
		}
		return d
	}
	max := 0
	for _, t := range p.Tasks {
		if n := depth(t.Body); n > max {
			max = n
		}
	}
	return max
}
