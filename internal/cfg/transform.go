package cfg

import (
	"fmt"

	"repro/internal/lang"
)

// Unroll applies the paper's Lemma 1 anomaly-preserving transform: every
// loop is unrolled twice, recursively from innermost to outermost nest
// levels, producing a loop-free program whose sync graph contains exactly
// the deadlock cycles of the original program's linearized executions.
//
// Each unrolled copy is guarded so that paths taking zero, one or two
// iterations all exist, and the second copy is nested inside the first
// (iteration two cannot happen without iteration one), matching real loop
// execution orders. A bounded "loop 1 times" unrolls to a single mandatory
// copy; "loop n times" with n >= 2 unrolls to copy; guarded copy, since
// what Lemma 1 needs is (a) a path around the loop when zero iterations are
// possible, (b) paths within one iteration, and (c) a path crossing from
// one iteration into the next.
//
// The input is not mutated. Labels of duplicated rendezvous statements get
// "#1" / "#2" iteration suffixes so nodes stay distinguishable.
func Unroll(p *lang.Program) *lang.Program {
	q := p.Clone()
	for _, t := range q.Tasks {
		t.Body = unrollStmts(t.Body)
	}
	return q
}

func unrollStmts(ss []lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range ss {
		switch v := s.(type) {
		case *lang.If:
			v.Then = unrollStmts(v.Then)
			v.Else = unrollStmts(v.Else)
			out = append(out, v)
		case *lang.Loop:
			body := unrollStmts(v.Body) // innermost first
			first := relabel(lang.CloneStmts(body), "#1")
			second := relabel(lang.CloneStmts(body), "#2")
			switch {
			case v.Count == 1:
				out = append(out, first...)
			case v.Count >= 2 || v.AtLeastOnce:
				// At least one trip: first copy mandatory, second guarded.
				out = append(out, first...)
				out = append(out, &lang.If{Cond: condName(v, "again"), Then: second, Pos: v.Pos})
			default:
				// Zero or more trips: both copies guarded, nested.
				inner := &lang.If{Cond: condName(v, "again"), Then: second, Pos: v.Pos}
				out = append(out, &lang.If{
					Cond: condName(v, "enter"),
					Then: append(first, inner),
					Pos:  v.Pos,
				})
			}
		default:
			out = append(out, s)
		}
	}
	return out
}

func condName(l *lang.Loop, suffix string) string {
	if l.Cond != "" {
		return l.Cond + "_" + suffix
	}
	return "loop_" + suffix
}

func relabel(ss []lang.Stmt, suffix string) []lang.Stmt {
	var walk func(ss []lang.Stmt)
	walk = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Send, *lang.Accept:
				if s.Label() != "" {
					s.SetLabel(s.Label() + suffix)
				}
				_ = v
			case *lang.If:
				walk(v.Then)
				walk(v.Else)
			case *lang.Loop:
				walk(v.Body)
			}
		}
	}
	walk(ss)
	return ss
}

// ExpandBounded fully expands every "loop n times" into n sequential copies
// of its body (innermost first), leaving while-loops untouched. The exact
// wave explorer uses this so that bounded iteration counts are honored
// precisely. Expansion is refused above limit total copies per loop to
// bound blowup; limit <= 0 means 64.
func ExpandBounded(p *lang.Program, limit int) (*lang.Program, error) {
	if limit <= 0 {
		limit = 64
	}
	q := p.Clone()
	for _, t := range q.Tasks {
		body, err := expandStmts(t.Body, limit)
		if err != nil {
			return nil, fmt.Errorf("cfg: task %s: %w", t.Name, err)
		}
		t.Body = body
	}
	return q, nil
}

func expandStmts(ss []lang.Stmt, limit int) ([]lang.Stmt, error) {
	var out []lang.Stmt
	for _, s := range ss {
		switch v := s.(type) {
		case *lang.If:
			var err error
			if v.Then, err = expandStmts(v.Then, limit); err != nil {
				return nil, err
			}
			if v.Else, err = expandStmts(v.Else, limit); err != nil {
				return nil, err
			}
			out = append(out, v)
		case *lang.Loop:
			body, err := expandStmts(v.Body, limit)
			if err != nil {
				return nil, err
			}
			if v.Count == 0 {
				v.Body = body
				out = append(out, v)
				continue
			}
			if v.Count > limit {
				return nil, fmt.Errorf("loop count %d exceeds expansion limit %d", v.Count, limit)
			}
			for i := 1; i <= v.Count; i++ {
				out = append(out, relabel(lang.CloneStmts(body), fmt.Sprintf("#i%d", i))...)
			}
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

// HasLoops reports whether any task of the program contains a loop
// statement.
func HasLoops(p *lang.Program) bool {
	found := false
	var walk func(ss []lang.Stmt)
	walk = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Loop:
				found = true
			case *lang.If:
				walk(v.Then)
				walk(v.Else)
				_ = v
			}
		}
	}
	for _, t := range p.Tasks {
		walk(t.Body)
	}
	return found
}

// MaxLoopDepth returns the deepest loop nesting level in the program.
func MaxLoopDepth(p *lang.Program) int {
	var depth func(ss []lang.Stmt) int
	depth = func(ss []lang.Stmt) int {
		d := 0
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Loop:
				if n := 1 + depth(v.Body); n > d {
					d = n
				}
			case *lang.If:
				if n := depth(v.Then); n > d {
					d = n
				}
				if n := depth(v.Else); n > d {
					d = n
				}
			}
		}
		return d
	}
	max := 0
	for _, t := range p.Tasks {
		if n := depth(t.Body); n > max {
			max = n
		}
	}
	return max
}
