package cfg

import (
	"errors"
	"testing"

	"repro/internal/lang"
	"repro/internal/workload"
)

// TestPredictUnrolledMatchesUnroll checks the predictor against the real
// transform on shapes where running Unroll is affordable: the predicted
// rendezvous count must equal the actual one exactly.
func TestPredictUnrolledMatchesUnroll(t *testing.T) {
	programs := map[string]*lang.Program{
		"nested3":  workload.NestedLoops(3, 2),
		"nested6":  workload.NestedLoops(6, 3),
		"pipeline": workload.Pipeline(4, 3),
		"ring":     workload.Ring(5),
		"countOne": lang.MustParse(`
task a is
begin
  loop 1 times
    b.m;
  end loop;
end;
task b is
begin
  accept m;
end;
`),
		"bounded": lang.MustParse(`
task a is
begin
  loop 5 times
    b.m;
    if c then accept r; end if;
  end loop;
end;
task b is
begin
  accept m;
  a.r;
end;
`),
	}
	for name, p := range programs {
		predicted := PredictUnrolledRendezvous(p)
		actual := int64(countRendezvous(Unroll(p)))
		if predicted != actual {
			t.Errorf("%s: predicted %d, Unroll produced %d", name, predicted, actual)
		}
	}
}

func countRendezvous(p *lang.Program) int {
	var count func(ss []lang.Stmt) int
	count = func(ss []lang.Stmt) int {
		n := 0
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Send, *lang.Accept:
				n++
			case *lang.If:
				n += count(v.Then) + count(v.Else)
			case *lang.Loop:
				n += count(v.Body)
			}
		}
		return n
	}
	n := 0
	for _, tk := range p.Tasks {
		n += count(tk.Body)
	}
	return n
}

// TestUnrollBoundedRefusesDeepNest is the regression test for the 2^depth
// unroll bomb: a 20-deep nest predicts ~2^21 rendezvous nodes, and
// UnrollBounded must refuse it with a typed *ResourceError without
// materializing the blowup (this test runs in microseconds precisely
// because nothing is allocated).
func TestUnrollBoundedRefusesDeepNest(t *testing.T) {
	bomb := workload.NestedLoops(20, 2)
	predicted := PredictUnrolledRendezvous(bomb)
	if predicted < 1<<20 {
		t.Fatalf("predicted %d; the bomb is not a bomb", predicted)
	}
	_, err := UnrollBounded(bomb, 1<<18)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err=%v, want *ResourceError", err)
	}
	if re.Resource != "unrolled rendezvous nodes" || re.Limit != 1<<18 {
		t.Fatalf("resource error: %+v", re)
	}
	if int64(re.Actual) != predicted {
		t.Fatalf("Actual=%d, predicted=%d", re.Actual, predicted)
	}
}

// TestUnrollBoundedSaturates drives a nest deep enough to overflow naive
// int64 arithmetic (2^70 copies) and checks the predictor saturates at
// its cap instead of wrapping around into a small (admitting!) value.
func TestUnrollBoundedSaturates(t *testing.T) {
	bomb := workload.NestedLoops(70, 2)
	if got := PredictUnrolledRendezvous(bomb); got != predictCap {
		t.Fatalf("predicted %d, want saturation at %d", got, predictCap)
	}
	if _, err := UnrollBounded(bomb, 1<<18); err == nil {
		t.Fatal("saturated bomb was admitted")
	}
}

// TestUnrollBoundedUnlimited checks that a non-positive budget means
// plain Unroll.
func TestUnrollBoundedUnlimited(t *testing.T) {
	p := workload.NestedLoops(3, 2)
	u, err := UnrollBounded(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := countRendezvous(u), countRendezvous(Unroll(p)); got != want {
		t.Fatalf("unlimited UnrollBounded produced %d rendezvous, Unroll %d", got, want)
	}
}

// TestUnrollBoundedAdmitsWithinBudget checks that a program under the
// budget unrolls normally.
func TestUnrollBoundedAdmitsWithinBudget(t *testing.T) {
	p := workload.NestedLoops(4, 2)
	u, err := UnrollBounded(p, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if HasLoops(u) {
		t.Fatal("bounded unroll left loops behind")
	}
}

// TestPredictExpandedRendezvous checks the exact-path predictor: bounded
// loops multiply, while-loops count once, and nests multiply together.
func TestPredictExpandedRendezvous(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  loop 3 times
    loop 4 times
      b.m;
    end loop;
  end loop;
  while w loop
    accept r;
  end loop;
end;
task b is
begin
  accept m;
end;
`)
	// 3*4 sends + 1 accept in the while + 1 accept in b.
	if got := PredictExpandedRendezvous(p); got != 14 {
		t.Fatalf("predicted %d, want 14", got)
	}
}
