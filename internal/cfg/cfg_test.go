package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/lang"
)

func build(t *testing.T, src string) *ProgramCFG {
	t.Helper()
	pc, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestStraightLineCFG(t *testing.T) {
	pc := build(t, `
task a is
begin
  b.m;
  null;
  accept q;
end;
task b is
begin
  accept m;
  a.q;
end;
`)
	ta := pc.Task("a")
	if len(ta.Nodes) != 4 { // entry, exit, send, accept
		t.Fatalf("nodes=%d", len(ta.Nodes))
	}
	rv := ta.Rendezvous()
	if len(rv) != 2 || rv[0].Kind != KindSend || rv[1].Kind != KindAccept {
		t.Fatalf("rendezvous=%v", rv)
	}
	// entry -> send -> accept -> exit (null collapsed away).
	if !ta.G.HasEdge(ta.Entry, rv[0].ID) || !ta.G.HasEdge(rv[0].ID, rv[1].ID) || !ta.G.HasEdge(rv[1].ID, ta.Exit) {
		t.Fatalf("chain edges missing: %s", ta.G)
	}
	if ta.G.M() != 3 {
		t.Fatalf("M=%d, want 3", ta.G.M())
	}
	if ta.HasLoops() {
		t.Fatal("straight line reported loops")
	}
}

func TestEmptyTaskCFG(t *testing.T) {
	pc := build(t, `
task a is
begin
  null;
end;
task b is
begin
  null;
end;
`)
	ta := pc.Task("a")
	if !ta.G.HasEdge(ta.Entry, ta.Exit) {
		t.Fatal("entry->exit edge missing for rendezvous-free task")
	}
	if pc.NumRendezvous() != 0 {
		t.Fatal("phantom rendezvous")
	}
}

func TestBranchCFG(t *testing.T) {
	pc := build(t, `
task a is
begin
  if c then
    b.m;
  else
    b.n;
  end if;
  accept q;
end;
task b is
begin
  accept m;
  accept n;
  a.q;
end;
`)
	ta := pc.Task("a")
	var send1, send2, acc *Node
	for _, n := range ta.Rendezvous() {
		switch {
		case n.Kind == KindSend && n.Sig.Msg == "m":
			send1 = n
		case n.Kind == KindSend && n.Sig.Msg == "n":
			send2 = n
		case n.Kind == KindAccept:
			acc = n
		}
	}
	// Diamond: entry -> each send -> accept -> exit.
	for _, s := range []*Node{send1, send2} {
		if !ta.G.HasEdge(ta.Entry, s.ID) || !ta.G.HasEdge(s.ID, acc.ID) {
			t.Fatalf("branch wiring wrong for %v", s)
		}
	}
	if ta.G.HasEdge(send1.ID, send2.ID) || ta.G.HasEdge(send2.ID, send1.ID) {
		t.Fatal("exclusive branches connected")
	}
}

func TestEmptyElseSkipsNode(t *testing.T) {
	pc := build(t, `
task a is
begin
  if c then
    b.m;
  end if;
  accept q;
end;
task b is
begin
  accept m;
  a.q;
end;
`)
	ta := pc.Task("a")
	var send, acc *Node
	for _, n := range ta.Rendezvous() {
		if n.Kind == KindSend {
			send = n
		} else {
			acc = n
		}
	}
	// Skip path: entry -> accept directly.
	if !ta.G.HasEdge(ta.Entry, acc.ID) {
		t.Fatal("skip edge missing")
	}
	if !ta.G.HasEdge(ta.Entry, send.ID) || !ta.G.HasEdge(send.ID, acc.ID) {
		t.Fatal("taken path missing")
	}
}

func TestLoopCFGHasBackEdge(t *testing.T) {
	pc := build(t, `
task a is
begin
  while w loop
    b.m;
    accept q;
  end loop;
end;
task b is
begin
  accept m;
  a.q;
end;
`)
	ta := pc.Task("a")
	if !ta.HasLoops() {
		t.Fatal("loop not reflected in CFG")
	}
	var send, acc *Node
	for _, n := range ta.Rendezvous() {
		if n.Kind == KindSend {
			send = n
		} else {
			acc = n
		}
	}
	if !ta.G.HasEdge(acc.ID, send.ID) {
		t.Fatal("back edge accept->send missing")
	}
	// Zero-iteration path.
	if !ta.G.HasEdge(ta.Entry, ta.Exit) {
		t.Fatal("loop skip edge missing")
	}
	if !IsReducible(ta.G, ta.Entry) {
		t.Fatal("structured loop must be reducible")
	}
}

func TestIsReducibleRejectsIrreducible(t *testing.T) {
	// Classic irreducible graph: entry -> a, entry -> b, a <-> b.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	if IsReducible(g, 0) {
		t.Fatal("irreducible graph accepted")
	}
}

func TestUnrollRemovesLoops(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  loop 5 times
    b.m;
  end loop;
  while w loop
    accept q;
  end loop;
end;
task b is
begin
  loop
    accept m;
    a.q;
  end loop;
end;
`)
	u := Unroll(p)
	if HasLoops(u) {
		t.Fatal("unrolled program still has loops")
	}
	pc, err := Build(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range pc.Tasks {
		if tc.HasLoops() {
			t.Fatalf("task %s CFG cyclic after unroll", tc.Task)
		}
	}
	// Input untouched.
	if !HasLoops(p) {
		t.Fatal("Unroll mutated its input")
	}
}

func TestUnrollDuplicatesBodyTwice(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  while w loop
    b.m;
  end loop;
end;
task b is
begin
  accept m;
  accept m;
end;
`)
	u := Unroll(p)
	// One send becomes two copies.
	n := 0
	var count func(ss []lang.Stmt)
	count = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.Send:
				n++
			case *lang.If:
				count(v.Then)
				count(v.Else)
			case *lang.Loop:
				count(v.Body)
			}
		}
	}
	count(u.TaskByName("a").Body)
	if n != 2 {
		t.Fatalf("send copies=%d, want 2", n)
	}
}

func TestUnrollCountOne(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  loop 1 times
    b.m;
  end loop;
end;
task b is
begin
  accept m;
end;
`)
	u := Unroll(p)
	if u.CountRendezvous() != 2 {
		t.Fatalf("count-1 loop should unroll to single copy, got %d rendezvous", u.CountRendezvous())
	}
}

func TestUnrollNestedGrowth(t *testing.T) {
	// Nested while loops: each level doubles the kernel.
	src := `
task a is
begin
  while w1 loop
    while w2 loop
      while w3 loop
        b.m;
      end loop;
    end loop;
  end loop;
end;
task b is
begin
  accept m;
end;
`
	u := Unroll(lang.MustParse(src))
	// One send in task a becomes 2^3 copies.
	if got := u.TaskByName("a"); got == nil {
		t.Fatal("task missing")
	}
	n := countSends(u.TaskByName("a").Body)
	if n != 8 {
		t.Fatalf("nested unroll produced %d copies, want 8", n)
	}
}

func countSends(ss []lang.Stmt) int {
	n := 0
	for _, s := range ss {
		switch v := s.(type) {
		case *lang.Send:
			n++
		case *lang.If:
			n += countSends(v.Then) + countSends(v.Else)
		case *lang.Loop:
			n += countSends(v.Body)
		}
	}
	return n
}

func TestExpandBounded(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  loop 3 times
    b.m;
  end loop;
  while w loop
    accept q;
  end loop;
end;
task b is
begin
  accept m;
  accept m;
  accept m;
  a.q;
end;
`)
	e, err := ExpandBounded(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := countSends(e.TaskByName("a").Body); n != 3 {
		t.Fatalf("bounded expansion gave %d sends, want 3", n)
	}
	// While loop survives.
	if !HasLoops(e) {
		t.Fatal("while loop should remain")
	}
	// Limit enforcement.
	big := lang.MustParse(`
task a is
begin
  loop 100 times
    b.m;
  end loop;
end;
task b is
begin
  accept m;
end;
`)
	if _, err := ExpandBounded(big, 10); err == nil {
		t.Fatal("limit not enforced")
	}
}

func TestMaxLoopDepth(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  while x loop
    if c then
      while y loop
        b.m;
      end loop;
    end if;
  end loop;
end;
task b is
begin
  accept m;
end;
`)
	if d := MaxLoopDepth(p); d != 2 {
		t.Fatalf("depth=%d, want 2", d)
	}
}

func TestQuickUnrollPreservesSignalSet(t *testing.T) {
	// Property: unrolling never invents or loses signal types.
	cfgq := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLoopyProgram(rng)
		u := Unroll(p)
		if HasLoops(u) {
			return false
		}
		s1, s2 := p.Signals(), u.Signals()
		if len(s1) != len(s2) {
			return false
		}
		set := map[lang.Signal]bool{}
		for _, s := range s1 {
			set[s] = true
		}
		for _, s := range s2 {
			if !set[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}

func randomLoopyProgram(rng *rand.Rand) *lang.Program {
	p := &lang.Program{}
	names := []string{"t0", "t1", "t2"}
	for i, name := range names {
		var gen func(depth int) []lang.Stmt
		gen = func(depth int) []lang.Stmt {
			var out []lang.Stmt
			for j := 0; j < 1+rng.Intn(3); j++ {
				switch {
				case depth < 2 && rng.Float64() < 0.3:
					out = append(out, &lang.Loop{Count: rng.Intn(3), Body: gen(depth + 1)})
				case depth < 2 && rng.Float64() < 0.3:
					out = append(out, &lang.If{Then: gen(depth + 1), Else: gen(depth + 1)})
				case rng.Intn(2) == 0:
					out = append(out, &lang.Accept{Msg: "m"})
				default:
					out = append(out, &lang.Send{Target: names[(i+1+rng.Intn(2))%3], Msg: "m"})
				}
			}
			return out
		}
		p.Tasks = append(p.Tasks, &lang.Task{Name: name, Body: gen(0)})
	}
	p.AssignLabels()
	return p
}
