package cfg

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func TestNodeStringers(t *testing.T) {
	for k, want := range map[NodeKind]string{
		KindEntry: "entry", KindExit: "exit", KindSend: "send", KindAccept: "accept",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if NodeKind(99).String() != "?" {
		t.Fatal("unknown kind")
	}
	n := &Node{Kind: KindSend, Sig: lang.Signal{Task: "t", Msg: "m"}, Label: "x"}
	if n.Sign() != "+" || !strings.Contains(n.String(), "(t,m,+)") {
		t.Fatalf("%s / %s", n.Sign(), n)
	}
	a := &Node{Kind: KindAccept, Sig: lang.Signal{Task: "t", Msg: "m"}}
	if a.Sign() != "-" {
		t.Fatal("accept sign")
	}
	if (&Node{Kind: KindEntry}).String() != "b" || (&Node{Kind: KindExit}).String() != "e" {
		t.Fatal("entry/exit names")
	}
	if (&Node{Kind: KindEntry}).Sign() != "" {
		t.Fatal("entry sign")
	}
}

func TestMustBuild(t *testing.T) {
	p := lang.MustParse("task a is begin null; end;")
	if MustBuild(p) == nil {
		t.Fatal("nil result")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid input")
		}
	}()
	MustBuild(&lang.Program{})
}

func TestBuildRejectsProcedures(t *testing.T) {
	p := lang.MustParse(`
procedure q is
begin
  null;
end;
task a is
begin
  call q;
end;
`)
	if _, err := Build(p); err == nil {
		t.Fatal("un-inlined program accepted")
	}
	if _, err := Build(p.InlineCalls()); err != nil {
		t.Fatalf("inlined program rejected: %v", err)
	}
}

func TestExpandBoundedNestedLimit(t *testing.T) {
	// Nested bounded loops multiply: inner counts within outer copies.
	p := lang.MustParse(`
task a is
begin
  loop 2 times
    loop 3 times
      b.m;
    end loop;
  end loop;
end;
task b is
begin
  loop 6 times
    accept m;
  end loop;
end;
`)
	e, err := ExpandBounded(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := countSends(e.TaskByName("a").Body); n != 6 {
		t.Fatalf("sends=%d, want 6", n)
	}
	// A branch inside a bounded loop survives expansion.
	p2 := lang.MustParse(`
task a is
begin
  loop 2 times
    if c then
      b.m;
    end if;
  end loop;
end;
task b is
begin
  accept m;
  accept m;
end;
`)
	e2, err := ExpandBounded(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := countSends(e2.TaskByName("a").Body); n != 2 {
		t.Fatalf("conditional sends=%d, want 2", n)
	}
}
