package service

import (
	"errors"
	"net/http"

	siwa "repro"
)

// Error codes form the service's stable error taxonomy: every non-2xx
// response body is {"error":{"code":..., "message":...}} with one of
// these codes, and batch items carry the same codes per program. Clients
// should branch on the code, never on the message text.
const (
	// CodeInvalidRequest: the request itself is malformed (bad JSON,
	// unknown algorithm, missing source, bad timeout). HTTP 400.
	CodeInvalidRequest = "invalid_request"
	// CodeParseError: the request was well-formed but the submitted
	// program does not parse or validate. HTTP 422.
	CodeParseError = "parse_error"
	// CodeTooLarge: the request body exceeds the configured size cap.
	// HTTP 413.
	CodeTooLarge = "too_large"
	// CodeTimeout: the analysis was admitted but aborted by its deadline
	// (possibly while still queued) or by client disconnect. HTTP 503
	// with Retry-After.
	CodeTimeout = "timeout"
	// CodeShed: the admission queue was full and the request was rejected
	// without waiting. HTTP 429 with Retry-After.
	CodeShed = "shed"
	// CodeResourceLimit: the program would exceed a configured resource
	// budget (task count, unrolled size); analysis was refused before
	// paying for it. HTTP 422.
	CodeResourceLimit = "resource_limit"
	// CodeInternal: a pipeline stage or handler panicked; the panic was
	// contained and the server keeps serving. HTTP 500.
	CodeInternal = "internal"
	// CodeUnavailable: the analysis could not be attempted because the
	// backend that owns it is unreachable (dead replica, open circuit
	// breaker, no healthy backend). Emitted by the cluster gateway, never
	// by a replica itself; listed here so the taxonomy stays in one place.
	// HTTP 503 with Retry-After.
	CodeUnavailable = "unavailable"
	// CodeNotFound: the requested resource (a retained trace, an unknown
	// debug object) does not exist. HTTP 404. Emitted by debug endpoints,
	// never by the analysis path.
	CodeNotFound = "not_found"
)

// ErrorBody is the wire shape of one error: a stable machine-readable
// code plus a human-readable message. TraceID (additive) names the
// distributed trace of the failed request, so an operator can jump from
// an error body straight to /debug/traces/{id}.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"traceId,omitempty"`
}

// errorResponse is every non-2xx response body.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// codedError pins an explicit (status, code) onto an error at the point
// where the classification is known — e.g. a siwa.Parse failure is a
// parse_error even though the library returns a plain error.
type codedError struct {
	status int
	code   string
	err    error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// classify maps an analysis-path error onto (HTTP status, error code).
// Typed errors win; the fallback is parse_error because the remaining
// untyped failures are program-semantics rejections (validation).
func classify(err error) (int, string) {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.status, ce.code
	}
	if errors.Is(err, ErrShed) {
		return http.StatusTooManyRequests, CodeShed
	}
	if isCancellation(err) {
		return http.StatusServiceUnavailable, CodeTimeout
	}
	var re *siwa.ResourceError
	if errors.As(err, &re) {
		return http.StatusUnprocessableEntity, CodeResourceLimit
	}
	var ie *siwa.InternalError
	if errors.As(err, &ie) {
		return http.StatusInternalServerError, CodeInternal
	}
	return http.StatusUnprocessableEntity, CodeParseError
}
