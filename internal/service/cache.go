package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	siwa "repro"
	"repro/internal/waves"
)

// CacheKey content-addresses one analysis: the SHA-256 of the program
// source and the canonicalized options. Two requests that normalize to
// the same key are guaranteed to produce the same JSONReport.
type CacheKey [sha256.Size]byte

func (k CacheKey) String() string { return fmt.Sprintf("%x", k[:8]) }

// Key computes the content address of (source, options). Options are
// canonicalized first — zero-value limits are replaced by the defaults the
// pipeline would apply — so e.g. EnumerateLimit 0 and 4096 share an entry.
func Key(source string, opt siwa.Options) CacheKey {
	opt = canonicalize(opt)
	h := sha256.New()
	fmt.Fprintf(h, "siwa-report-v%d\x00algo=%d;all=%t;c4=%t;enum=%t;enumLimit=%d;fifo=%t;exact=%t;maxStates=%d;maxAnomalies=%d;loopLimit=%d\x00",
		siwa.SchemaVersion, opt.Algorithm, opt.AllAlgorithms, opt.Constraint4,
		opt.Enumerate, opt.EnumerateLimit, opt.FIFO, opt.Exact,
		opt.ExactOptions.MaxStates, opt.ExactOptions.MaxAnomalies,
		opt.ExactOptions.LoopExpansionLimit)
	io.WriteString(h, source)
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// canonicalize replaces zero-value limits with the defaults each pipeline
// stage would substitute, so equivalent requests address the same entry.
// Tracing options (Options.Trace/Tracer, waves Traces) are excluded from
// the key on purpose: a trace does not change the report, so traced and
// untraced requests share an entry. The cached value never carries a span
// tree — traces are recorded per-run and echoed outside the report.
func canonicalize(opt siwa.Options) siwa.Options {
	if opt.EnumerateLimit == 0 {
		opt.EnumerateLimit = 4096
	}
	if opt.ExactOptions.MaxStates == 0 {
		opt.ExactOptions.MaxStates = 1 << 20
	}
	if opt.ExactOptions.MaxAnomalies == 0 {
		opt.ExactOptions.MaxAnomalies = 64
	}
	if opt.ExactOptions.LoopExpansionLimit == 0 {
		opt.ExactOptions.LoopExpansionLimit = 64
	}
	opt.ExactOptions = waves.Options{
		MaxStates:          opt.ExactOptions.MaxStates,
		MaxAnomalies:       opt.ExactOptions.MaxAnomalies,
		LoopExpansionLimit: opt.ExactOptions.LoopExpansionLimit,
	}
	// Execution knobs are folded out of the content address structurally,
	// not just by the key printer skipping them: Parallelism never changes
	// verdicts (sweep merges are deterministic), tracing never changes the
	// report, Limits and Degrade only turn requests into errors or degraded
	// runs (neither is ever cached), and the stage cache changes where
	// artifacts come from, not what they are. Zeroing them here guarantees
	// that a future field added to the key format cannot silently split
	// entries by execution policy.
	opt.Parallelism = 0
	opt.Trace = false
	opt.Tracer = nil
	opt.Limits = siwa.Limits{}
	opt.Degrade = false
	opt.StageCache = nil
	return opt
}

// CachedResult is one cache value: the marshalled JSONReport (without any
// span tree) plus the verdict summary, kept alongside so request logs can
// name the outcome of a cache hit without re-parsing the report.
type CachedResult struct {
	Report  json.RawMessage
	Verdict string
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Cache is a bounded LRU over analysis results, keyed by content address.
// Values hold the marshalled JSONReport bytes, immutable by construction,
// so hits can be served to concurrent clients without copying. The
// methods are safe for concurrent use. A nil *Cache never hits and never
// stores, so a disabled cache needs no call-site branching.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List
	items     map[CacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key CacheKey
	val CachedResult
}

// NewCache returns an LRU cache holding at most max entries (max >= 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[CacheKey]*list.Element, max),
	}
}

// Get returns the cached result for key and records a hit or miss.
func (c *Cache) Get(key CacheKey) (CachedResult, bool) {
	if c == nil {
		return CachedResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return CachedResult{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a result under key, evicting the least recently used entry
// when full. Storing an existing key refreshes its recency.
func (c *Cache) Put(key CacheKey, val CachedResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
