package service

// tickets is the counting-semaphore admission gate for batch fan-out:
// acquire blocks until one of n tickets is free, release returns it.
// Naming the pair (instead of inlining channel sends and receives at the
// call sites) puts it under siwad-lint's pairup analyzer: a code path
// that spawns a batch item without eventually releasing its ticket
// starves every later item in the batch — the infinite-wait anomaly in
// miniature — and is now a build failure rather than a production stall.
type tickets struct {
	ch chan struct{}
}

func newTickets(n int) tickets {
	return tickets{ch: make(chan struct{}, n)}
}

// acquire blocks until a ticket is free.
func (t tickets) acquire() { t.ch <- struct{}{} }

// release returns the ticket taken by the matching acquire.
func (t tickets) release() { <-t.ch }
