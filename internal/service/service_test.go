package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	siwa "repro"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func analyze(t *testing.T, url string, req AnalyzeRequest) (int, AnalyzeResponse, siwa.JSONReport) {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/analyze", req)
	var ar AnalyzeResponse
	var rep siwa.JSONReport
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &ar); err != nil {
			t.Fatalf("bad response %v\n%s", err, data)
		}
		if err := json.Unmarshal(ar.Report, &rep); err != nil {
			t.Fatalf("bad report %v\n%s", err, ar.Report)
		}
	}
	return resp.StatusCode, ar, rep
}

func TestAnalyzeAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := workload.Ring(5).String()
	req := AnalyzeRequest{Source: src, Options: &WireOptions{Algorithm: "refined"}}

	code, ar, rep := analyze(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if ar.Cached {
		t.Fatal("first request was a cache hit")
	}
	if rep.SchemaVersion != siwa.SchemaVersion {
		t.Fatalf("schemaVersion=%d", rep.SchemaVersion)
	}
	if !rep.Deadlock.MayDeadlock || rep.DeadlockFree {
		t.Fatalf("ring not flagged: %+v", rep.Deadlock)
	}

	code, ar2, _ := analyze(t, ts.URL, req)
	if code != http.StatusOK || !ar2.Cached {
		t.Fatalf("second identical request not a cache hit: status=%d cached=%v", code, ar2.Cached)
	}
	if !bytes.Equal(ar.Report, ar2.Report) {
		t.Fatal("cached report differs from computed report")
	}
	st := s.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
	if got := s.Metrics().Analyses.Load(); got != 1 {
		t.Fatalf("analyses=%d, want 1 (hit must not re-analyze)", got)
	}
}

// TestCacheCorrectnessWorkloads drives every deterministic workload family
// through the service twice and checks (a) the hit byte-for-byte equals
// the miss, (b) the verdict matches the family's known anomaly status, and
// (c) option changes miss the cache instead of aliasing.
func TestCacheCorrectnessWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	families := []struct {
		name string
		src  string
	}{
		{"pipeline", workload.Pipeline(4, 3).String()},
		{"ring", workload.Ring(6).String()},
		{"ringBroken", workload.RingBroken(6).String()},
		{"clientServer", workload.ClientServer(4).String()},
		// The barrier family is really deadlock-free but conservatively
		// flagged by the static spectrum; the library verdict below is the
		// anchor either way.
		{"barrier", workload.Barrier(3, 2).String()},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) {
			// Ground truth: the library called directly with the same options.
			direct, err := siwa.Analyze(siwa.MustParse(f.src), siwa.Options{
				Algorithm: siwa.AlgoRefinedPairs, Constraint4: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			req := AnalyzeRequest{Source: f.src, Options: &WireOptions{Algorithm: "pairs", Constraint4: true}}
			code, first, rep := analyze(t, ts.URL, req)
			if code != http.StatusOK || first.Cached {
				t.Fatalf("miss: status=%d cached=%v", code, first.Cached)
			}
			if rep.DeadlockFree != direct.DeadlockFree() {
				t.Fatalf("deadlockFree=%v, library says %v", rep.DeadlockFree, direct.DeadlockFree())
			}
			if f.name == "ring" && rep.DeadlockFree {
				t.Fatal("ring certified deadlock-free")
			}
			if f.name == "pipeline" && !rep.DeadlockFree {
				t.Fatal("pipeline not certified")
			}
			code, second, _ := analyze(t, ts.URL, req)
			if code != http.StatusOK || !second.Cached {
				t.Fatalf("hit: status=%d cached=%v", code, second.Cached)
			}
			if !bytes.Equal(first.Report, second.Report) {
				t.Fatalf("hit differs from miss:\n%s\n---\n%s", first.Report, second.Report)
			}
			// A different detector must not alias the cached entry.
			other := AnalyzeRequest{Source: f.src, Options: &WireOptions{Algorithm: "naive"}}
			code, third, _ := analyze(t, ts.URL, other)
			if code != http.StatusOK || third.Cached {
				t.Fatalf("option change served from cache: status=%d cached=%v", code, third.Cached)
			}
		})
	}
}

func TestConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	sources := []string{
		workload.Pipeline(4, 3).String(),
		workload.Ring(5).String(),
		workload.RingBroken(5).String(),
		workload.ClientServer(3).String(),
	}
	want := make([]json.RawMessage, len(sources))
	for i, src := range sources {
		code, ar, _ := analyze(t, ts.URL, AnalyzeRequest{Source: src})
		if code != http.StatusOK {
			t.Fatalf("seed %d: status=%d", i, code)
		}
		want[i] = ar.Report
	}
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(sources))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, src := range sources {
				resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d src %d: status %d", c, i, resp.StatusCode)
					continue
				}
				var ar AnalyzeResponse
				if err := json.Unmarshal(data, &ar); err != nil {
					errs <- err
					continue
				}
				if !bytes.Equal(ar.Report, want[i]) {
					errs <- fmt.Errorf("client %d src %d: report drifted", c, i)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.CacheStats()
	if st.Hits < clients {
		t.Fatalf("hits=%d, want >= %d", st.Hits, clients)
	}
}

// TestExactDeadlineReturns503 sends a 1ms-deadline Exact request whose wave
// space is exponential (ForkFan: (depth+1)^n states) and requires a prompt
// 503. The -race run doubles as the goroutine-leak check: the analysis runs
// on the request goroutine and AnalyzeContext aborts cooperatively, so
// nothing outlives the handler.
func TestExactDeadlineReturns503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := workload.ForkFan(7, 5).String()
	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Source:    src,
		Options:   &WireOptions{Exact: true},
		TimeoutMs: 1,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "aborted") {
		t.Fatalf("body: %s", data)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, not prompt", elapsed)
	}
	if s.Metrics().Timeouts.Load() == 0 {
		t.Fatal("timeout not counted")
	}
	// Errors must not be cached: a retry with a workable deadline succeeds.
	code, ar, rep := analyze(t, ts.URL, AnalyzeRequest{Source: src, Options: &WireOptions{Exact: true}})
	if code != http.StatusOK || ar.Cached {
		t.Fatalf("retry: status=%d cached=%v", code, ar.Cached)
	}
	if rep.Exact == nil || rep.Exact.Deadlock {
		t.Fatalf("exact: %+v", rep.Exact)
	}
}

func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := BatchRequest{
		Options: &WireOptions{Algorithm: "pairs"},
		Programs: []BatchProgram{
			{ID: "pipeline", Source: workload.Pipeline(3, 2).String()},
			{ID: "ring", Source: workload.Ring(4).String()},
			{ID: "broken", Source: "task t is begin oops end;"},
			{ID: "empty"},
			{ID: "naive-ring", Source: workload.Ring(4).String(), Options: &WireOptions{Algorithm: "naive"}},
		},
	}
	resp, data := postJSON(t, ts.URL+"/v1/analyze/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 5 {
		t.Fatalf("results=%d", len(br.Results))
	}
	byID := map[string]BatchResult{}
	for _, r := range br.Results {
		byID[r.ID] = r
	}
	var rep siwa.JSONReport
	if err := json.Unmarshal(byID["pipeline"].Report, &rep); err != nil || !rep.DeadlockFree {
		t.Fatalf("pipeline: err=%v rep=%+v", err, rep)
	}
	if err := json.Unmarshal(byID["ring"].Report, &rep); err != nil || rep.DeadlockFree {
		t.Fatalf("ring: err=%v rep=%+v", err, rep)
	}
	if byID["broken"].Error == "" || byID["broken"].Report != nil {
		t.Fatalf("broken: %+v", byID["broken"])
	}
	if byID["empty"].Error != "missing source" {
		t.Fatalf("empty: %+v", byID["empty"])
	}
	// Per-item options override the batch default: the naive verdict's
	// algorithm name must differ from the batch-level "pairs".
	if err := json.Unmarshal(byID["naive-ring"].Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock.Algorithm != siwa.AlgoNaive.String() {
		t.Fatalf("algorithm=%q", rep.Deadlock.Algorithm)
	}
	// Order is preserved.
	if br.Results[0].ID != "pipeline" || br.Results[4].ID != "naive-ring" {
		t.Fatalf("order: %+v", br.Results)
	}
}

func TestBatchSharesCacheWithAnalyze(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := workload.Pipeline(3, 2).String()
	if code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: src}); code != http.StatusOK {
		t.Fatalf("seed failed: %d", code)
	}
	resp, data := postJSON(t, ts.URL+"/v1/analyze/batch", BatchRequest{
		Programs: []BatchProgram{{ID: "p", Source: src}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if !br.Results[0].Cached {
		t.Fatal("batch did not hit the cache entry seeded by /v1/analyze")
	}
	if got := s.Metrics().Analyses.Load(); got != 1 {
		t.Fatalf("analyses=%d", got)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048, MaxBatch: 2})
	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(data)
	}
	if code, _ := post("/v1/analyze", "{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d", code)
	}
	if code, body := post("/v1/analyze", `{"source":"x","options":{"algorithm":"bogus"}}`); code != http.StatusBadRequest || !strings.Contains(body, "naive") {
		t.Errorf("unknown algorithm: %d %s", code, body)
	}
	if code, _ := post("/v1/analyze", `{"source":""}`); code != http.StatusBadRequest {
		t.Errorf("empty source: %d", code)
	}
	if code, _ := post("/v1/analyze", `{"source":"x","timeoutMs":-5}`); code != http.StatusBadRequest {
		t.Errorf("negative timeout: %d", code)
	}
	if code, _ := post("/v1/analyze", `{"source":"task t is begin accept m; end;"`); code != http.StatusBadRequest {
		t.Errorf("truncated body: %d", code)
	}
	// Parse failures are 422: the request was well-formed, the program not.
	if code, _ := post("/v1/analyze", `{"source":"task t is begin oops end;"}`); code != http.StatusUnprocessableEntity {
		t.Errorf("parse error: %d", code)
	}
	if code, _ := post("/v1/analyze/batch", `{"programs":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: %d", code)
	}
	if code, body := post("/v1/analyze/batch", `{"programs":[{"source":"a"},{"source":"b"},{"source":"c"}]}`); code != http.StatusBadRequest || !strings.Contains(body, "limit") {
		t.Errorf("oversized batch: %d %s", code, body)
	}
	big := fmt.Sprintf(`{"source":%q}`, strings.Repeat("x", 4096))
	if code, _ := post("/v1/analyze", big); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: %d", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}

	// Generate one miss and one hit, then check the counters surface.
	src := workload.Ring(3).String()
	analyze(t, ts.URL, AnalyzeRequest{Source: src})
	analyze(t, ts.URL, AnalyzeRequest{Source: src})

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		`siwa_requests_total{endpoint="analyze"} 2`,
		"siwa_cache_hits_total 1",
		"siwa_cache_misses_total 1",
		"siwa_cache_evictions_total 0",
		"siwa_cache_entries 1",
		"siwa_analyses_total 1",
		"siwa_anomalous_total 1",
		"siwa_workers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: -1})
	src := workload.Pipeline(3, 2).String()
	for i := 0; i < 2; i++ {
		code, ar, _ := analyze(t, ts.URL, AnalyzeRequest{Source: src})
		if code != http.StatusOK || ar.Cached {
			t.Fatalf("request %d: status=%d cached=%v", i, code, ar.Cached)
		}
	}
	if got := s.Metrics().Analyses.Load(); got != 2 {
		t.Fatalf("analyses=%d, want 2 with cache disabled", got)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2, ShutdownGrace: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	// Launch a non-trivial exact analysis, then cancel the server while it
	// is (likely) in flight; drain must let it finish with a 200.
	type result struct {
		code int
		body string
	}
	rc := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(AnalyzeRequest{
			Source:  workload.ForkFan(6, 4).String(),
			Options: &WireOptions{Exact: true},
		})
		resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(b))
		if err != nil {
			rc <- result{-1, err.Error()}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		rc <- result{resp.StatusCode, string(data)}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	r := <-rc
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: code=%d body=%s", r.code, r.body)
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
