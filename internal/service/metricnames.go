package service

// metricFamilies is the replica's metric pre-registration table: every
// family the service exposes, mapped to its label key ("" = unlabeled).
// Observation sites — the Fprintf exposition literals and WriteProm
// calls in metrics.go, and the scrape-side name lookups in the gateway's
// fleet aggregator — are checked against this table by siwad-lint's
// metricreg analyzer, and TestMetricFamiliesRegistered cross-checks the
// rendered exposition at runtime. A name or label that drifts from this
// table fails the build instead of silently forking a family on the
// dashboards.
var metricFamilies = map[string]string{
	"siwa_requests_total":              "endpoint",
	"siwa_analyses_total":              "",
	"siwa_anomalous_total":             "",
	"siwa_timeouts_total":              "",
	"siwa_request_errors_total":        "",
	"siwa_shed_total":                  "",
	"siwa_deadline_shed_total":         "",
	"siwa_panics_total":                "",
	"siwa_degraded_total":              "",
	"siwa_batch_items_total":           "outcome",
	"siwa_cache_hits_total":            "",
	"siwa_cache_misses_total":          "",
	"siwa_cache_evictions_total":       "",
	"siwa_cache_entries":               "",
	"siwa_stage_cache_hits_total":      "",
	"siwa_stage_cache_misses_total":    "",
	"siwa_stage_cache_evictions_total": "",
	"siwa_stage_cache_builds_total":    "",
	"siwa_stage_cache_bytes":           "",
	"siwa_stage_cache_entries":         "",
	"siwa_inflight_requests":           "",
	"siwa_workers":                     "",
	"siwa_workers_busy":                "",
	"siwa_queue_depth":                 "",
	"siwa_queued":                      "",
	"siwa_http_request_seconds":        "endpoint",
	"siwa_analyze_stage_seconds":       "stage",
}
