package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	siwa "repro"
	"repro/internal/obs"
)

// BatchOutcome classifies one program's fate inside a batch request, for
// the siwa_batch_items_total{outcome=...} counter family.
type BatchOutcome int

const (
	BatchOK BatchOutcome = iota // analyzed fresh
	BatchCached
	BatchError
	BatchTimeout
	BatchShed // rejected by the admission queue
	numBatchOutcomes
)

// batchOutcomeNames are the label values, indexed by BatchOutcome.
var batchOutcomeNames = [numBatchOutcomes]string{"ok", "cached", "error", "timeout", "shed"}

// Metrics holds the service counters and latency histograms, exported by
// GET /metrics in the Prometheus text exposition format (hand-rolled; the
// module stays dependency-free). All fields are updated atomically.
type Metrics struct {
	RequestsAnalyze atomic.Uint64 // POST /v1/analyze requests
	RequestsBatch   atomic.Uint64 // POST /v1/analyze/batch requests
	Analyses        atomic.Uint64 // analyses actually executed (cache misses that ran)
	Anomalous       atomic.Uint64 // completed analyses that found an anomaly
	Timeouts        atomic.Uint64 // analyses aborted by deadline or disconnect
	Errors          atomic.Uint64 // requests rejected (parse, validation, body size)
	Shed            atomic.Uint64 // analyses rejected because the admission queue was full
	DeadlineShed    atomic.Uint64 // requests refused because the propagated deadline budget was below the floor
	Panics          atomic.Uint64 // panics recovered (pipeline stages, handlers, batch items)
	Degraded        atomic.Uint64 // analyses that fell back to the polynomial verdict
	InFlight        atomic.Int64  // requests currently being served

	// BatchItems counts per-program outcomes inside batch requests,
	// indexed by BatchOutcome. All four series are exported even at zero,
	// so dashboards see the full label set from the first scrape.
	BatchItems [numBatchOutcomes]atomic.Uint64

	// httpLatency measures wall time per endpoint; the label set is fixed
	// at construction so scrapes are allocation-free.
	httpLatency map[string]*obs.Histogram

	// stageLatency measures per-pipeline-stage time, keyed by span name
	// ("sync-graph", "clg", "detect:refined", ...). Stages appear as they
	// are first observed, which only happens on traced analyses.
	stageMu      sync.Mutex
	stageLatency map[string]*obs.Histogram
}

// newMetrics builds a Metrics with the fixed endpoint histograms.
func newMetrics() *Metrics {
	return &Metrics{
		httpLatency: map[string]*obs.Histogram{
			"analyze": obs.NewHistogram(obs.LatencyBuckets()...),
			"batch":   obs.NewHistogram(obs.LatencyBuckets()...),
		},
		stageLatency: make(map[string]*obs.Histogram),
	}
}

// ObserveRequest records one request's wall time under its endpoint label.
func (m *Metrics) ObserveRequest(endpoint string, d time.Duration) {
	m.httpLatency[endpoint].Observe(d)
}

// ObserveStage records one pipeline stage's duration, creating the stage's
// histogram on first sight.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.stageMu.Lock()
	h, ok := m.stageLatency[stage]
	if !ok {
		h = obs.NewHistogram(obs.LatencyBuckets()...)
		m.stageLatency[stage] = h
	}
	m.stageMu.Unlock()
	h.Observe(d)
}

// ObserveSpans walks a traced analysis's span tree and records the root
// (as stage "total") plus every top-level stage into the stage histograms.
func (m *Metrics) ObserveSpans(root *obs.Span) {
	if root == nil {
		return
	}
	m.ObserveStage("total", root.Dur)
	root.Walk(func(depth int, sp *obs.Span) {
		if depth == 1 {
			m.ObserveStage(sp.Name, sp.Dur)
		}
	})
}

// WriteTo renders every counter, histogram, and the cache and pool gauges
// in Prometheus text format, plus the trace-exporter counters and Go
// runtime telemetry. Families and label sets are emitted in a fixed order
// so the exposition is reproducible.
func (m *Metrics) WriteTo(w io.Writer, cache *Cache, stage *siwa.StageCache, pool *Pool, exporter *obs.Exporter) {
	cs := cache.Stats()
	ss := stage.Stats() // nil-safe: zeros when the stage cache is disabled
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP siwa_requests_total requests received\n# TYPE siwa_requests_total counter\n")
	fmt.Fprintf(w, "siwa_requests_total{endpoint=%q} %d\n", "analyze", m.RequestsAnalyze.Load())
	fmt.Fprintf(w, "siwa_requests_total{endpoint=%q} %d\n", "batch", m.RequestsBatch.Load())
	counter("siwa_analyses_total", "analyses executed (cache misses)", m.Analyses.Load())
	counter("siwa_anomalous_total", "analyses that reported a possible deadlock or stall", m.Anomalous.Load())
	counter("siwa_timeouts_total", "analyses aborted by deadline or client disconnect", m.Timeouts.Load())
	counter("siwa_request_errors_total", "requests rejected before analysis", m.Errors.Load())
	counter("siwa_shed_total", "analyses rejected because the admission queue was full", m.Shed.Load())
	counter("siwa_deadline_shed_total", "requests refused because the propagated deadline budget was below the floor", m.DeadlineShed.Load())
	counter("siwa_panics_total", "panics recovered in pipeline stages, handlers, or batch items", m.Panics.Load())
	counter("siwa_degraded_total", "analyses that fell back to the polynomial verdict", m.Degraded.Load())
	fmt.Fprintf(w, "# HELP siwa_batch_items_total per-program outcomes inside batch requests\n# TYPE siwa_batch_items_total counter\n")
	for i, name := range batchOutcomeNames {
		fmt.Fprintf(w, "siwa_batch_items_total{outcome=%q} %d\n", name, m.BatchItems[i].Load())
	}
	counter("siwa_cache_hits_total", "result cache hits", cs.Hits)
	counter("siwa_cache_misses_total", "result cache misses", cs.Misses)
	counter("siwa_cache_evictions_total", "result cache LRU evictions", cs.Evictions)
	gauge("siwa_cache_entries", "result cache current entries", int64(cs.Entries))
	counter("siwa_stage_cache_hits_total", "stage cache hits (memoized pipeline artifacts)", ss.Hits)
	counter("siwa_stage_cache_misses_total", "stage cache misses", ss.Misses)
	counter("siwa_stage_cache_evictions_total", "stage cache byte-budget evictions", ss.Evictions)
	counter("siwa_stage_cache_builds_total", "stage cache artifact builds (single-flighted: at most one per distinct key while resident)", ss.Builds)
	gauge("siwa_stage_cache_bytes", "stage cache resident artifact bytes", ss.Bytes)
	gauge("siwa_stage_cache_entries", "stage cache current entries", int64(ss.Entries))
	gauge("siwa_inflight_requests", "requests currently being served", m.InFlight.Load())
	gauge("siwa_workers", "worker pool concurrency bound", int64(pool.Size()))
	gauge("siwa_workers_busy", "worker pool slots in use", int64(pool.InFlight()))
	gauge("siwa_queue_depth", "admission queue capacity", int64(pool.QueueDepth()))
	gauge("siwa_queued", "admitted analyses waiting for a worker slot", int64(pool.Queued()))
	exporter.WriteProm(w, "siwa")
	obs.WriteRuntimeMetrics(w, "siwa")

	fmt.Fprintf(w, "# HELP siwa_http_request_seconds request wall time by endpoint\n# TYPE siwa_http_request_seconds histogram\n")
	for _, ep := range []string{"analyze", "batch"} {
		m.httpLatency[ep].WriteProm(w, "siwa_http_request_seconds", "endpoint", ep)
	}

	fmt.Fprintf(w, "# HELP siwa_analyze_stage_seconds pipeline stage time from traced analyses\n# TYPE siwa_analyze_stage_seconds histogram\n")
	m.stageMu.Lock()
	stages := make([]string, 0, len(m.stageLatency))
	for name := range m.stageLatency {
		stages = append(stages, name)
	}
	hs := make([]*obs.Histogram, len(stages))
	sort.Strings(stages)
	for i, name := range stages {
		hs[i] = m.stageLatency[name]
	}
	m.stageMu.Unlock()
	for i, name := range stages {
		hs[i].WriteProm(w, "siwa_analyze_stage_seconds", "stage", name)
	}
}
