package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics holds the service counters, exported by GET /metrics in the
// Prometheus text exposition format (hand-rolled; the module stays
// dependency-free). All fields are updated atomically.
type Metrics struct {
	RequestsAnalyze atomic.Uint64 // POST /v1/analyze requests
	RequestsBatch   atomic.Uint64 // POST /v1/analyze/batch requests
	Analyses        atomic.Uint64 // analyses actually executed (cache misses that ran)
	Anomalous       atomic.Uint64 // completed analyses that found an anomaly
	Timeouts        atomic.Uint64 // analyses aborted by deadline or disconnect
	Errors          atomic.Uint64 // requests rejected (parse, validation, body size)
	InFlight        atomic.Int64  // requests currently being served
}

// WriteTo renders every counter, plus the cache and pool gauges, in
// Prometheus text format.
func (m *Metrics) WriteTo(w io.Writer, cache *Cache, pool *Pool) {
	cs := cache.Stats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP siwa_requests_total requests received\n# TYPE siwa_requests_total counter\n")
	fmt.Fprintf(w, "siwa_requests_total{endpoint=%q} %d\n", "analyze", m.RequestsAnalyze.Load())
	fmt.Fprintf(w, "siwa_requests_total{endpoint=%q} %d\n", "batch", m.RequestsBatch.Load())
	counter("siwa_analyses_total", "analyses executed (cache misses)", m.Analyses.Load())
	counter("siwa_anomalous_total", "analyses that reported a possible deadlock or stall", m.Anomalous.Load())
	counter("siwa_timeouts_total", "analyses aborted by deadline or client disconnect", m.Timeouts.Load())
	counter("siwa_request_errors_total", "requests rejected before analysis", m.Errors.Load())
	counter("siwa_cache_hits_total", "result cache hits", cs.Hits)
	counter("siwa_cache_misses_total", "result cache misses", cs.Misses)
	counter("siwa_cache_evictions_total", "result cache LRU evictions", cs.Evictions)
	gauge("siwa_cache_entries", "result cache current entries", int64(cs.Entries))
	gauge("siwa_inflight_requests", "requests currently being served", m.InFlight.Load())
	gauge("siwa_workers", "worker pool concurrency bound", int64(pool.Size()))
	gauge("siwa_workers_busy", "worker pool slots in use", int64(pool.InFlight()))
}
