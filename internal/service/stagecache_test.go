package service

import (
	"net/http"
	"testing"

	siwa "repro"
	"repro/internal/workload"
)

// spansWithAttr walks a wire span tree and collects the names of spans
// whose attribute key carries the given value.
func spansWithAttr(sp *siwa.JSONSpan, key, val string) []string {
	if sp == nil {
		return nil
	}
	var names []string
	if sp.Attrs[key] == val {
		names = append(names, sp.Name)
	}
	for _, c := range sp.Children {
		names = append(names, spansWithAttr(c, key, val)...)
	}
	return names
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestStageCacheWarmTraceSpans drives the same source through two
// different algorithms and checks the trace annotations: the first run is
// a full stage-cache miss; the second shares every artifact except its own
// detector sweep, and its trace says so span by span.
func TestStageCacheWarmTraceSpans(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := workload.Ring(4).String()

	code, cold, _ := analyze(t, ts.URL, AnalyzeRequest{Source: src, Trace: true})
	if code != http.StatusOK {
		t.Fatalf("cold status=%d", code)
	}
	if cold.Trace == nil {
		t.Fatal("cold run returned no trace")
	}
	if got := cold.Trace.Attrs["stage_cache"]; got != "miss" {
		t.Fatalf("cold stage_cache=%q, want miss", got)
	}
	digest := cold.Trace.Attrs["source_digest"]
	if digest == "" {
		t.Fatal("cold trace missing source_digest")
	}

	// A different algorithm misses the result cache (the verdict differs)
	// but lands on the same source digest, so parse+unroll and the CLG are
	// served from the stage cache and only the new sweep runs.
	code, warm, _ := analyze(t, ts.URL, AnalyzeRequest{
		Source: src, Trace: true,
		Options: &WireOptions{Algorithm: "refined"},
	})
	if code != http.StatusOK {
		t.Fatalf("warm status=%d", code)
	}
	if warm.Cached {
		t.Fatal("algorithm change unexpectedly hit the result cache")
	}
	if warm.Trace == nil {
		t.Fatal("warm run returned no trace")
	}
	if got := warm.Trace.Attrs["stage_cache"]; got != "partial" {
		t.Fatalf("warm stage_cache=%q, want partial", got)
	}
	if got := warm.Trace.Attrs["source_digest"]; got != digest {
		t.Fatalf("digest changed across runs: %q vs %q", got, digest)
	}
	hits := spansWithAttr(warm.Trace, "stage_cache", "hit")
	for _, stage := range []string{"parse+unroll", "clg", "stall"} {
		if !contains(hits, stage) {
			t.Errorf("stage %q not served from cache (hits: %v)", stage, hits)
		}
	}
	misses := spansWithAttr(warm.Trace, "stage_cache", "miss")
	if !contains(misses, "detect:refined") {
		t.Errorf("detect:refined should have been built fresh (misses: %v)", misses)
	}

	st := s.StageCacheStats()
	if st.Hits == 0 || st.Builds == 0 {
		t.Fatalf("stats show no activity: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("default budget evicted during a two-request test: %+v", st)
	}
}

// TestStageCacheDisabled pins the opt-out: with a negative MiB budget the
// server analyzes through the plain pipeline and the stats stay zero.
func TestStageCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{StageCacheMB: -1})
	code, ar, _ := analyze(t, ts.URL, AnalyzeRequest{
		Source: workload.Ring(3).String(), Trace: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if ar.Trace == nil {
		t.Fatal("no trace echoed")
	}
	if _, ok := ar.Trace.Attrs["stage_cache"]; ok {
		t.Fatal("disabled stage cache still annotated the trace")
	}
	if st := s.StageCacheStats(); st != (siwa.StageCacheStats{}) {
		t.Fatalf("disabled stage cache reported activity: %+v", st)
	}
}
