// Package service implements the siwa analysis service: a concurrent HTTP
// JSON front end over siwa.AnalyzeContext with a content-addressed result
// cache, a bounded worker pool, per-request deadlines, plain-text metrics,
// and graceful shutdown. It is the long-running counterpart to the
// one-shot siwad CLI; cmd/siwad-server wires it to flags and signals.
package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	siwa "repro"
)

// Config shapes a Server. The zero value is not usable directly; call
// Default or Normalize to fill unset fields.
type Config struct {
	// Addr is the listen address for Server.Run ("host:port").
	Addr string
	// Workers bounds the number of analyses executing at once, across all
	// requests (single and batch). 0 means GOMAXPROCS.
	Workers int
	// Parallelism sets the per-analysis sweep worker count passed to
	// siwa.Options.Parallelism. 0 means 1 (serial): the worker pool
	// already runs Workers analyses concurrently, so intra-analysis
	// parallelism is opt-in for deployments that prioritize single-request
	// latency over throughput. Negative means GOMAXPROCS.
	Parallelism int
	// QueueDepth bounds how many admitted analyses may wait for a worker
	// slot; beyond it requests are shed with HTTP 429 and a Retry-After
	// header instead of queueing without bound. 0 means 4x Workers;
	// negative means no waiting (run immediately or shed).
	QueueDepth int
	// Limits bounds each analysis (task count, parsed rendezvous nodes,
	// unrolled rendezvous nodes); inputs that would exceed them get a
	// structured resource_limit error instead of unbounded work. The zero
	// value means siwa.DefaultLimits(); set fields negative to lift
	// individual limits.
	Limits siwa.Limits
	// CacheEntries caps the result cache. 0 means 1024; negative disables
	// caching entirely (every request is analyzed from scratch).
	CacheEntries int
	// StageCacheMB caps the stage cache in MiB: a replica-level,
	// content-addressed cache of pipeline artifacts (parsed+unrolled
	// programs, sync graph with CLG and ordering tables, per-algorithm
	// verdicts, stall balances) keyed on the source digest and shared by
	// all requests. Unlike the result cache — which only hits on an exact
	// (source, options) repeat — the stage cache makes a warm source
	// asked for a *different* algorithm run only that detector sweep.
	// 0 means 64 MiB; negative disables the stage cache.
	StageCacheMB int
	// MaxBodyBytes caps the request body; larger requests get HTTP 413.
	// 0 means 4 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of programs in one batch request. 0 means 256.
	MaxBatch int
	// DefaultTimeout applies when a request carries no timeoutMs. 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines. 0 means 5m.
	MaxTimeout time.Duration
	// DeadlineFloor is the smallest propagated deadline budget
	// (X-Deadline-Ms header, stamped by the cluster gateway) worth
	// admitting: a request arriving with less is shed outright with a
	// timeout error and counted in siwa_deadline_shed_total, because its
	// caller's deadline will pass before any useful work completes.
	// 0 means 5ms.
	DeadlineFloor time.Duration
	// ShutdownGrace bounds how long Run waits for in-flight requests to
	// drain after its context is cancelled. 0 means 10s.
	ShutdownGrace time.Duration
	// Logger receives one structured record per analyze/batch request
	// (request id, algorithm, cache hit, duration, verdict). Nil disables
	// request logging.
	Logger *slog.Logger
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: the profiling surface is opt-in.
	EnablePprof bool
	// TraceAll traces every executed analysis (not just requests that ask
	// with "trace": true), feeding the per-stage latency histograms. The
	// span tree is still only echoed to requests that opted in.
	TraceAll bool
	// TraceSample is the head-sampling rate: 1 in N new traces is marked
	// sampled (retained in the debug ring even when fast and healthy).
	// Slow, degraded, and errored requests are retained regardless of the
	// sampling decision. 0 means 1 (sample everything); negative disables
	// sampling, leaving only the always-retain paths.
	TraceSample int
	// SlowThreshold marks requests at least this long as slow: retained in
	// the trace ring and logged at WARN with their stage breakdown. 0
	// means 1s; negative disables the slow path.
	SlowThreshold time.Duration
	// TraceRing caps the in-memory ring of retained traces served at
	// /debug/traces. 0 means 256.
	TraceRing int
}

// Default returns the standard service configuration.
func Default() Config {
	return Config{Addr: ":8080"}.Normalize()
}

// Normalize fills unset fields with their defaults and returns the result.
func (c Config) Normalize() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	} else if c.Parallelism < 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		// Negative stays negative (NewPool clamps it to an empty queue),
		// keeping Normalize idempotent.
		c.QueueDepth = 4 * c.Workers
	}
	if c.Limits == (siwa.Limits{}) {
		c.Limits = siwa.DefaultLimits()
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.StageCacheMB == 0 {
		c.StageCacheMB = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DeadlineFloor <= 0 {
		c.DeadlineFloor = 5 * time.Millisecond
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = time.Second
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	return c
}

// timeoutFor resolves a client-requested timeout in milliseconds against
// the configured default and clamp.
func (c Config) timeoutFor(timeoutMs int64) (time.Duration, error) {
	if timeoutMs < 0 {
		return 0, fmt.Errorf("timeoutMs must be >= 0, got %d", timeoutMs)
	}
	d := c.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > c.MaxTimeout {
		d = c.MaxTimeout
	}
	return d, nil
}

// DeadlineHeader carries the caller's remaining deadline budget in
// milliseconds on requests proxied through the cluster gateway. It is a
// duration, not a wall-clock timestamp, so clock skew between gateway and
// replica cannot corrupt it (the gRPC-style convention).
const DeadlineHeader = "X-Deadline-Ms"

// deadlineBudget folds the propagated X-Deadline-Ms budget into the
// request's resolved timeout d: the effective deadline is the smaller of
// the two, and a budget below DeadlineFloor is not worth admitting at all
// (shed = true) — the caller will be gone before any work completes, so
// starting it is the distributed analogue of the infinite-wait anomalies
// this system detects. A missing or malformed header leaves d unchanged.
func (c Config) deadlineBudget(r *http.Request, d time.Duration) (time.Duration, bool) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return d, false
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms < 0 {
		return d, false
	}
	budget := time.Duration(ms) * time.Millisecond
	if budget < c.DeadlineFloor {
		return 0, true
	}
	if budget < d {
		d = budget
	}
	return d, false
}
