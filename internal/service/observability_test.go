package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestMetricsExposition is the golden test for GET /metrics: after one
// traced analyze and one batch, every metric family must be announced
// with HELP and TYPE, every histogram must be cumulative and monotone,
// and its +Inf bucket must equal its _count.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, _ := analyze(t, ts.URL, AnalyzeRequest{
		Source: workload.Ring(4).String(),
		Trace:  true,
	})
	if code != http.StatusOK {
		t.Fatalf("analyze status=%d", code)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/analyze/batch", BatchRequest{
		Programs: []BatchProgram{{ID: "a", Source: workload.Pipeline(2, 2).String()}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d", resp.StatusCode)
	}

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status=%d", code)
	}

	families := map[string]string{
		"siwa_requests_total":              "counter",
		"siwa_analyses_total":              "counter",
		"siwa_anomalous_total":             "counter",
		"siwa_timeouts_total":              "counter",
		"siwa_request_errors_total":        "counter",
		"siwa_shed_total":                  "counter",
		"siwa_panics_total":                "counter",
		"siwa_degraded_total":              "counter",
		"siwa_batch_items_total":           "counter",
		"siwa_cache_hits_total":            "counter",
		"siwa_cache_misses_total":          "counter",
		"siwa_cache_evictions_total":       "counter",
		"siwa_cache_entries":               "gauge",
		"siwa_stage_cache_hits_total":      "counter",
		"siwa_stage_cache_misses_total":    "counter",
		"siwa_stage_cache_evictions_total": "counter",
		"siwa_stage_cache_builds_total":    "counter",
		"siwa_stage_cache_bytes":           "gauge",
		"siwa_stage_cache_entries":         "gauge",
		"siwa_inflight_requests":           "gauge",
		"siwa_workers":                     "gauge",
		"siwa_workers_busy":                "gauge",
		"siwa_queue_depth":                 "gauge",
		"siwa_queued":                      "gauge",
		"siwa_http_request_seconds":        "histogram",
		"siwa_analyze_stage_seconds":       "histogram",
		// Trace-exporter and Go-runtime telemetry families.
		"siwa_traces_retained_total":     "counter",
		"siwa_traces_dropped_total":      "counter",
		"siwa_go_goroutines":             "gauge",
		"siwa_go_heap_inuse_bytes":       "gauge",
		"siwa_go_gc_pause_seconds_total": "counter",
		"siwa_build_info":                "gauge",
	}
	for name, typ := range families {
		if !strings.Contains(body, "# HELP "+name+" ") {
			t.Errorf("missing HELP for %s", name)
		}
		if !strings.Contains(body, fmt.Sprintf("# TYPE %s %s\n", name, typ)) {
			t.Errorf("missing TYPE %s %s", name, typ)
		}
		if strings.Count(body, "# TYPE "+name+" ") != 1 {
			t.Errorf("TYPE for %s announced more than once", name)
		}
	}

	// All batch outcome series are pre-registered, even at zero.
	for _, outcome := range []string{"ok", "cached", "error", "timeout", "shed"} {
		if !strings.Contains(body, fmt.Sprintf("siwa_batch_items_total{outcome=%q}", outcome)) {
			t.Errorf("batch outcome %q not exported", outcome)
		}
	}
	if !strings.Contains(body, `siwa_batch_items_total{outcome="ok"} 1`) {
		t.Error("batch ok count not 1")
	}

	// The analyze and batch above were cold sources: every stage-cache
	// request missed, built, and left resident bytes behind.
	for _, name := range []string{
		"siwa_stage_cache_misses_total",
		"siwa_stage_cache_builds_total",
		"siwa_stage_cache_bytes",
		"siwa_stage_cache_entries",
	} {
		if v := metricValue(t, body, name); v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}

	// All four retention-reason series are pre-registered, even at zero,
	// and the build-info gauge carries version and Go labels.
	for _, reason := range []string{"error", "slow", "degraded", "sampled"} {
		if !strings.Contains(body, fmt.Sprintf("siwa_traces_retained_total{reason=%q}", reason)) {
			t.Errorf("retention reason %q not exported", reason)
		}
	}
	if !strings.Contains(body, `siwa_build_info{version="`) || !strings.Contains(body, `,go="go`) {
		t.Error("siwa_build_info missing version/go labels")
	}

	// The traced analyze populated per-stage series.
	for _, stage := range []string{"total", "sync-graph", "clg", "detect:naive", "stall"} {
		want := fmt.Sprintf("siwa_analyze_stage_seconds_bucket{stage=%q,le=\"+Inf\"}", stage)
		if !strings.Contains(body, want) {
			t.Errorf("stage series %q missing", stage)
		}
	}

	checkHistogram(t, body, "siwa_http_request_seconds", "endpoint", "analyze")
	checkHistogram(t, body, "siwa_http_request_seconds", "endpoint", "batch")
	checkHistogram(t, body, "siwa_analyze_stage_seconds", "stage", "total")
}

// metricValue extracts one unlabelled series value from the exposition.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("bad %s line %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", name)
	return 0
}

// checkHistogram parses one labelled histogram out of the exposition and
// verifies bucket monotonicity, the +Inf bucket, and the count line.
func checkHistogram(t *testing.T, body, name, labelKey, labelValue string) {
	t.Helper()
	prefix := fmt.Sprintf("%s_bucket{%s=%q,le=", name, labelKey, labelValue)
	var buckets []uint64
	var infBucket, count uint64
	haveInf, haveCount := false, false
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, prefix):
			fields := strings.Fields(line)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if strings.Contains(line, `le="+Inf"`) {
				infBucket, haveInf = v, true
			} else {
				buckets = append(buckets, v)
			}
		case strings.HasPrefix(line, fmt.Sprintf("%s_count{%s=%q}", name, labelKey, labelValue)):
			fields := strings.Fields(line)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count, haveCount = v, true
		}
	}
	if len(buckets) == 0 || !haveInf || !haveCount {
		t.Fatalf("%s{%s=%q}: incomplete histogram (buckets=%d inf=%v count=%v)",
			name, labelKey, labelValue, len(buckets), haveInf, haveCount)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("%s{%s=%q}: buckets not cumulative at %d: %v",
				name, labelKey, labelValue, i, buckets)
		}
	}
	if infBucket < buckets[len(buckets)-1] {
		t.Fatalf("+Inf bucket %d below last bound %d", infBucket, buckets[len(buckets)-1])
	}
	if infBucket != count {
		t.Fatalf("+Inf bucket %d != count %d", infBucket, count)
	}
	if count == 0 {
		t.Fatalf("%s{%s=%q}: no observations", name, labelKey, labelValue)
	}
	if !strings.Contains(body, fmt.Sprintf("%s_sum{%s=%q}", name, labelKey, labelValue)) {
		t.Fatalf("%s{%s=%q}: missing _sum", name, labelKey, labelValue)
	}
}

func TestTraceEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := workload.Pipeline(3, 2).String()

	// Untraced request: no trace in the response.
	code, ar, _ := analyze(t, ts.URL, AnalyzeRequest{Source: src})
	if code != http.StatusOK || ar.Trace != nil {
		t.Fatalf("untraced response carried a trace (status=%d)", code)
	}
	untraced := ar.Report

	// Traced request for different source: span tree echoed, report clean.
	src2 := workload.Ring(3).String()
	code, ar, _ = analyze(t, ts.URL, AnalyzeRequest{Source: src2, Trace: true})
	if code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if ar.Trace == nil || ar.Trace.Name != "analyze" || len(ar.Trace.Children) == 0 {
		t.Fatalf("trace echo missing or empty: %+v", ar.Trace)
	}
	if bytes.Contains(ar.Report, []byte(`"trace"`)) {
		t.Fatalf("trace leaked into the report body:\n%s", ar.Report)
	}

	// A traced request hitting the cache returns the identical report but
	// no trace: nothing ran, so there is nothing to time.
	code, ar2, _ := analyze(t, ts.URL, AnalyzeRequest{Source: src, Trace: true})
	if code != http.StatusOK || !ar2.Cached {
		t.Fatalf("expected cache hit: status=%d cached=%v", code, ar2.Cached)
	}
	if ar2.Trace != nil {
		t.Fatal("cache hit echoed a trace")
	}
	if !bytes.Equal(untraced, ar2.Report) {
		t.Fatal("traced and untraced requests produced different cached reports")
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getBody(t, ts.URL+"/v1/algorithms")
	if code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	var resp AlgorithmsResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad body %v:\n%s", err, body)
	}
	if resp.Default != "naive" {
		t.Fatalf("default=%q", resp.Default)
	}
	if len(resp.Algorithms) != 7 {
		t.Fatalf("got %d algorithms", len(resp.Algorithms))
	}
	// Spectrum order: naive first, enumerate last, descriptions present.
	if resp.Algorithms[0].Name != "naive" || resp.Algorithms[len(resp.Algorithms)-1].Name != "enumerate" {
		t.Fatalf("order: %+v", resp.Algorithms)
	}
	for _, a := range resp.Algorithms {
		if a.Description == "" {
			t.Fatalf("algorithm %q has no description", a.Name)
		}
	}
}

func TestBatchItemOutcomes(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := workload.Ring(3).String()
	// Prime the cache so the batch sees one hit.
	if code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: src}); code != http.StatusOK {
		t.Fatal("prime failed")
	}
	resp, _ := postJSON(t, ts.URL+"/v1/analyze/batch", BatchRequest{
		Programs: []BatchProgram{
			{ID: "hit", Source: src},
			{ID: "fresh", Source: workload.Ring(5).String()},
			{ID: "bad", Source: "not ada at all"},
			{ID: "empty"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d", resp.StatusCode)
	}
	m := s.Metrics()
	if got := m.BatchItems[BatchCached].Load(); got != 1 {
		t.Errorf("cached=%d, want 1", got)
	}
	if got := m.BatchItems[BatchOK].Load(); got != 1 {
		t.Errorf("ok=%d, want 1", got)
	}
	if got := m.BatchItems[BatchError].Load(); got != 2 {
		t.Errorf("error=%d, want 2 (parse failure + missing source)", got)
	}
	if got := m.BatchItems[BatchTimeout].Load(); got != 0 {
		t.Errorf("timeout=%d, want 0", got)
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Logger: logger})
	src := workload.Ring(3).String()
	if code, _, _ := analyze(t, ts.URL, AnalyzeRequest{
		Source: src, Options: &WireOptions{Algorithm: "refined"},
	}); code != http.StatusOK {
		t.Fatal("analyze failed")
	}
	analyze(t, ts.URL, AnalyzeRequest{Source: src, Options: &WireOptions{Algorithm: "refined"}})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines:\n%s", len(lines), buf.String())
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["endpoint"] != "analyze" || first["algorithm"] != "refined" {
		t.Fatalf("first record: %v", first)
	}
	if first["cached"] != false || second["cached"] != true {
		t.Fatalf("cached flags: %v / %v", first["cached"], second["cached"])
	}
	// The ring deadlocks: the verdict must say so, on the hit too (it is
	// stored beside the cached report).
	for i, rec := range []map[string]any{first, second} {
		if v, _ := rec["verdict"].(string); !strings.Contains(v, "may-deadlock") {
			t.Fatalf("record %d verdict=%q", i, rec["verdict"])
		}
		if id, _ := rec["id"].(string); !strings.HasPrefix(id, "req-") {
			t.Fatalf("record %d id=%q", i, rec["id"])
		}
		if _, ok := rec["ms"].(float64); !ok {
			t.Fatalf("record %d has no duration", i)
		}
	}
	if first["id"] == second["id"] {
		t.Fatal("request ids not unique")
	}
}

func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if code, _ := getBody(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof mounted without EnablePprof: status=%d", code)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	code, body := getBody(t, on.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status=%d", code)
	}
	if code, _ := getBody(t, on.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline: status=%d", code)
	}
}
