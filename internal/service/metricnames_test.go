package service

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
)

// dynamicFamilies are families rendered with a caller-supplied prefix
// (trace-exporter counters, Go runtime telemetry) rather than a literal
// name at the observation site. They are deliberately outside the static
// metricFamilies table — siwad-lint's metricreg analyzer exempts dynamic
// names for the same reason — so the runtime cross-check allowlists them
// here instead.
var dynamicFamilies = map[string]bool{
	"siwa_traces_retained_total":     true,
	"siwa_traces_dropped_total":      true,
	"siwa_go_goroutines":             true,
	"siwa_go_heap_inuse_bytes":       true,
	"siwa_go_gc_pause_seconds_total": true,
	"siwa_build_info":                true,
}

type promSample struct {
	family string
	label  string // first label key, "" when unlabeled
	line   string
}

// scrapeExposition parses a Prometheus text exposition into the set of
// families declared by # TYPE lines and the individual sample lines.
// Histogram _bucket/_sum/_count series fold back onto their base family
// when that base is registered, mirroring the metricreg analyzer.
func scrapeExposition(t *testing.T, url string, registered map[string]string) (map[string]bool, []promSample) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	declared := map[string]bool{}
	var samples []promSample
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			if f := strings.Fields(line); len(f) >= 3 {
				declared[f[2]] = true
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		label := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			if j := strings.IndexByte(line[i+1:], '='); j >= 0 {
				label = line[i+1 : i+1+j]
			}
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name {
				if _, ok := registered[base]; ok {
					name = base
				}
				break
			}
		}
		samples = append(samples, promSample{family: name, label: label, line: line})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan exposition: %v", err)
	}
	return declared, samples
}

// TestMetricFamiliesRegistered is the runtime half of the metricreg
// contract: every family in the metricFamilies table is actually rendered
// by /metrics, every rendered sample of a registered family carries
// exactly the registered label key, and nothing outside the table shows
// up except the documented dynamic families. The static half — literal
// observation sites match the table — is enforced by siwad-lint.
func TestMetricFamiliesRegistered(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	declared, samples := scrapeExposition(t, ts.URL+"/metrics", metricFamilies)

	for family := range metricFamilies {
		if !declared[family] {
			t.Errorf("registered family %q is not declared by /metrics (stale metricFamilies entry?)", family)
		}
	}
	for _, s := range samples {
		want, ok := metricFamilies[s.family]
		if !ok {
			if !dynamicFamilies[s.family] {
				t.Errorf("unregistered family %q rendered by /metrics: %s", s.family, s.line)
			}
			continue
		}
		if s.label != want {
			t.Errorf("family %q rendered with label key %q, registered with %q: %s", s.family, s.label, want, s.line)
		}
	}
}
