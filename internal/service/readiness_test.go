package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/workload"
)

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestReadyzLifecycle: a fresh server is ready; once Serve starts
// draining, /readyz flips to 503 while /healthz stays green, so load
// balancers stop sending work before the process disappears.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{ShutdownGrace: time.Second})
	code, body := getBody(t, ts.URL+"/readyz")
	if code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("fresh /readyz=%d body=%s", code, body)
	}

	// Run the real serve loop on its own listener; the httptest server
	// shares the same handler (and thus the same draining flag), so it
	// stays reachable after the real listener shuts down.
	ln := newLocalListener(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	waitFor(t, "serve up", func() bool {
		resp, err := http.Get("http://" + ln.Addr().String() + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	code, body = getBody(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz=%d body=%s", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz=%d while draining, want 200 (liveness is not readiness)", code)
	}
}

// TestRequestIDEchoAndGeneration: a client-supplied X-Request-Id is
// echoed back; absent or malformed ids are replaced with a server-minted
// one.
func TestRequestIDEchoAndGeneration(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(AnalyzeRequest{Source: workload.Ring(3).String()})

	send := func(id string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if got := send("client-id-7").Header.Get("X-Request-Id"); got != "client-id-7" {
		t.Fatalf("echoed id=%q, want client-id-7", got)
	}
	if got := send("").Header.Get("X-Request-Id"); !strings.HasPrefix(got, "req-") {
		t.Fatalf("generated id=%q, want req- prefix", got)
	}
	for _, bad := range []string{"has space", "tab\tchar", strings.Repeat("x", 129), "non-ascii-\xc3\xa9"} {
		if got := send(bad).Header.Get("X-Request-Id"); !strings.HasPrefix(got, "req-") {
			t.Fatalf("malformed id %q kept as %q", bad, got)
		}
	}
}

// TestRequestIDInLog: the structured request log carries the correlation
// id the client sent, tying gateway/client traces to replica records.
func TestRequestIDInLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil))
	_, ts := newTestServer(t, Config{Logger: logger})

	body, _ := json.Marshal(AnalyzeRequest{Source: workload.Ring(3).String()})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "corr-xyz")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	waitFor(t, "log record", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return strings.Contains(buf.String(), `"id":"corr-xyz"`)
	})
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestRetryAfterSeconds pins the derived backpressure hint: one second
// floor when the queue is empty, plus the queue's depth measured in
// worker-rounds, clamped to 30s.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued, workers, want int
	}{
		{0, 8, 1},     // empty queue: minimal hint
		{7, 8, 1},     // less than one round of work: still 1 (integer division)
		{32, 8, 5},    // four rounds queued: 1 + 32/8
		{1000, 1, 30}, // clamped: never tell a client to wait forever
		{5, 0, 6},     // degenerate pool size is raised to 1
		{-3, 4, 1},    // negative depth (racy read) treated as empty
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.queued, tc.workers); got != tc.want {
			t.Errorf("retryAfterSeconds(%d, %d)=%d, want %d", tc.queued, tc.workers, got, tc.want)
		}
	}
}

// TestShedRetryAfterDerived fills the pool and queue deterministically
// and checks the 429's Retry-After reflects the actual backlog rather
// than a hard-coded constant.
func TestShedRetryAfterDerived(t *testing.T) {
	defer fault.Reset()
	fault.Set("service.analyze", fault.Mode{Kind: fault.KindDelay, Delay: 200 * time.Millisecond})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // 1 running + 2 queued
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: workload.Ring(3 + i).String()})
			if code != http.StatusOK {
				t.Errorf("backlog request %d: status=%d", i, code)
			}
		}(i)
	}
	waitFor(t, "full queue", func() bool {
		return s.pool.InFlight() == 1 && s.pool.Queued() == 2
	})

	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: workload.Ring(9).String()})
	wg.Wait()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	// Queue of 2, one worker: 1 + 2/1 = 3 seconds.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After=%q, want \"3\" (derived from queue depth / pool size)", got)
	}
}
