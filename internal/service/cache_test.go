package service

import (
	"encoding/json"
	"testing"

	siwa "repro"
	"repro/internal/waves"
)

func TestKeyCanonicalization(t *testing.T) {
	src := "task t is begin null; end;"
	// Zero-value limits and their explicit defaults must share an entry.
	a := Key(src, siwa.Options{Enumerate: true})
	b := Key(src, siwa.Options{Enumerate: true, EnumerateLimit: 4096})
	if a != b {
		t.Error("EnumerateLimit 0 and 4096 produced different keys")
	}
	c := Key(src, siwa.Options{Exact: true})
	d := Key(src, siwa.Options{Exact: true, ExactOptions: waves.Options{MaxStates: 1 << 20}})
	if c != d {
		t.Error("MaxStates 0 and 1<<20 produced different keys")
	}
	// Traces never keys: the service pins it off.
	e := Key(src, siwa.Options{Exact: true, ExactOptions: waves.Options{Traces: true}})
	if c != e {
		t.Error("Traces flag leaked into the content address")
	}
	// Everything that changes the report must change the key.
	distinct := map[CacheKey]string{a: "enum", c: "exact"}
	for name, opt := range map[string]siwa.Options{
		"algo":      {Algorithm: siwa.AlgoRefined},
		"all":       {AllAlgorithms: true},
		"c4":        {Constraint4: true},
		"fifo":      {FIFO: true},
		"enumLimit": {Enumerate: true, EnumerateLimit: 7},
		"maxStates": {Exact: true, ExactOptions: waves.Options{MaxStates: 99}},
	} {
		k := Key(src, opt)
		if prev, dup := distinct[k]; dup {
			t.Errorf("options %q and %q collided", name, prev)
		}
		distinct[k] = name
	}
	if k := Key(src+" ", siwa.Options{}); k == Key(src, siwa.Options{}) {
		t.Error("source change did not change the key")
	}
}

// TestKeyIgnoresExecutionKnobs pins the canonicalization contract: options
// that change how an analysis runs — but never what it reports — must not
// fragment the result cache. A replica restarted with a different
// -parallelism, or a request that merely opted into tracing, still shares
// entries with everyone else analyzing the same source.
func TestKeyIgnoresExecutionKnobs(t *testing.T) {
	src := "task t is begin null; end;"
	base := Key(src, siwa.Options{AllAlgorithms: true})
	for name, opt := range map[string]siwa.Options{
		"parallelism": {AllAlgorithms: true, Parallelism: 8},
		"serial":      {AllAlgorithms: true, Parallelism: 1},
		"trace":       {AllAlgorithms: true, Trace: true},
		"limits":      {AllAlgorithms: true, Limits: siwa.Limits{MaxTasks: 7}},
		"degrade":     {AllAlgorithms: true, Degrade: true},
		"stageCache":  {AllAlgorithms: true, StageCache: siwa.NewStageCache(1 << 20)},
	} {
		if k := Key(src, opt); k != base {
			t.Errorf("execution knob %q leaked into the cache key", name)
		}
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	k1, k2, k3 := Key("a", siwa.Options{}), Key("b", siwa.Options{}), Key("c", siwa.Options{})
	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, CachedResult{Report: json.RawMessage(`1`)})
	c.Put(k2, CachedResult{Report: json.RawMessage(`2`)})
	if v, ok := c.Get(k1); !ok || string(v.Report) != "1" {
		t.Fatalf("k1: %q %v", v.Report, ok)
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.Put(k3, CachedResult{Report: json.RawMessage(`3`)})
	if _, ok := c.Get(k2); ok {
		t.Error("k2 survived eviction")
	}
	if _, ok := c.Get(k1); !ok {
		t.Error("k1 was evicted despite being most recently used")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("hit/miss counts: %+v", st)
	}
	// Re-putting an existing key refreshes, not grows.
	c.Put(k1, CachedResult{Report: json.RawMessage(`11`)})
	if c.Len() != 2 {
		t.Errorf("len=%d after refresh", c.Len())
	}
	if v, _ := c.Get(k1); string(v.Report) != "11" {
		t.Errorf("refresh lost: %q", v.Report)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	k := Key("x", siwa.Options{})
	c.Put(k, CachedResult{Report: json.RawMessage(`1`)})
	if _, ok := c.Get(k); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats: %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
}
