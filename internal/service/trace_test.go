package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

var hexTraceID = regexp.MustCompile(`^[0-9a-f]{32}$`)

// postRaw posts a body with extra headers and returns the response.
func postRaw(t *testing.T, url string, body []byte, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func analyzeBody(t *testing.T, src string) []byte {
	t.Helper()
	b, err := json.Marshal(AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTraceExportedAndRetrievable is the server-side acceptance path: one
// analyze yields an X-Trace-Id that resolves on /debug/traces/{id} to a
// record whose root is the request span and whose analyze child carries
// the per-stage pipeline spans.
func TestTraceExportedAndRetrievable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postRaw(t, ts.URL+"/v1/analyze", analyzeBody(t, workload.Ring(4).String()), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if !hexTraceID.MatchString(id) {
		t.Fatalf("X-Trace-Id %q is not a 32-hex trace id", id)
	}

	code, body := getBody(t, ts.URL+"/debug/traces/"+id)
	if code != http.StatusOK {
		t.Fatalf("trace lookup status=%d:\n%s", code, body)
	}
	var lookup obs.TraceLookup
	if err := json.Unmarshal([]byte(body), &lookup); err != nil {
		t.Fatal(err)
	}
	if lookup.TraceID != id || len(lookup.Records) != 1 {
		t.Fatalf("lookup: %+v", lookup)
	}
	rec := lookup.Records[0]
	if rec.TraceID != id || rec.Reason != obs.RetainSampled || rec.Status != http.StatusOK {
		t.Fatalf("record: %+v", rec)
	}
	if rec.Root.Name != "server /v1/analyze" || rec.Root.TraceID != id {
		t.Fatalf("root span: %+v", rec.Root)
	}
	// The pipeline root is a child of the request span, carrying stages.
	var analyzeSpan *obs.SpanJSON
	for _, c := range rec.Root.Children {
		if c.Name == "analyze" {
			analyzeSpan = c
		}
	}
	if analyzeSpan == nil {
		t.Fatalf("no analyze child under request root: %+v", rec.Root)
	}
	stages := map[string]bool{}
	for _, c := range analyzeSpan.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"sync-graph", "clg", "detect:naive", "stall"} {
		if !stages[want] {
			t.Fatalf("stage %q missing: %v", want, stages)
		}
	}
	if rec.Root.Attrs["algorithm"] != "naive" {
		t.Fatalf("algorithm attr: %+v", rec.Root.Attrs)
	}

	// The listing names the same trace, newest first.
	code, body = getBody(t, ts.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("list status=%d", code)
	}
	var list obs.TraceList
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id || list.Traces[0].Spans < 5 {
		t.Fatalf("list: %+v", list)
	}
}

// TestTraceparentContinuation: an inbound W3C traceparent makes the
// server's root span a child of the caller's span, same trace id.
func TestTraceparentContinuation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tid, parent := obs.NewTraceID(), obs.NewSpanID()
	resp := postRaw(t, ts.URL+"/v1/analyze", analyzeBody(t, workload.Ring(4).String()),
		map[string]string{obs.TraceparentHeader: obs.FormatTraceparent(tid, parent, true)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid.String() {
		t.Fatalf("X-Trace-Id %q, want inbound trace id %q", got, tid)
	}
	code, body := getBody(t, ts.URL+"/debug/traces/"+tid.String())
	if code != http.StatusOK {
		t.Fatalf("lookup status=%d", code)
	}
	var lookup obs.TraceLookup
	if err := json.Unmarshal([]byte(body), &lookup); err != nil {
		t.Fatal(err)
	}
	root := lookup.Records[0].Root
	if root.ParentSpanID != parent.String() {
		t.Fatalf("root parentSpanId %q, want caller span %q", root.ParentSpanID, parent)
	}
}

// TestMalformedTraceparent: broken inbound headers never fail the request
// — the server starts a fresh root trace, per the W3C spec.
func TestMalformedTraceparent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	valid := obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID(), true)
	cases := map[string]string{
		"garbage":       "bogus",
		"truncated":     valid[:40],
		"bad version":   "ff" + valid[2:],
		"zero trace id": "00-00000000000000000000000000000000-" + valid[36:],
		"uppercase":     strings.ToUpper(valid),
	}
	body := analyzeBody(t, workload.Ring(4).String())
	for name, header := range cases {
		resp := postRaw(t, ts.URL+"/v1/analyze", body,
			map[string]string{obs.TraceparentHeader: header})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status=%d, want 200", name, resp.StatusCode)
			continue
		}
		id := resp.Header.Get("X-Trace-Id")
		if !hexTraceID.MatchString(id) {
			t.Errorf("%s: fresh trace id %q malformed", name, id)
		}
		if strings.Contains(header, id) {
			t.Errorf("%s: reused trace id from a malformed header", name)
		}
	}
}

// TestTraceSampling: 1-in-N head sampling retains every Nth fast healthy
// request and drops the rest.
func TestTraceSampling(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 3})
	for i := 0; i < 9; i++ {
		// Distinct sources so no request short-circuits through the cache.
		resp := postRaw(t, ts.URL+"/v1/analyze", analyzeBody(t, workload.Ring(3+i).String()), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status=%d", i, resp.StatusCode)
		}
	}
	_, body := getBody(t, ts.URL+"/debug/traces")
	var list obs.TraceList
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list.Retained != 3 || list.Dropped != 6 {
		t.Fatalf("retained=%d dropped=%d, want 3/6", list.Retained, list.Dropped)
	}
	for _, tr := range list.Traces {
		if tr.Reason != obs.RetainSampled {
			t.Fatalf("reason=%q", tr.Reason)
		}
	}
}

// TestErrorRetention: failed requests are retained with the error reason
// even when sampling would have dropped them, and the JSON error body
// carries the trace id.
func TestErrorRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: -1})
	resp := postRaw(t, ts.URL+"/v1/analyze", []byte("{not json"), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	var eb struct {
		Error struct {
			Code    string `json:"code"`
			TraceID string `json:"traceId"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.TraceID != id || id == "" {
		t.Fatalf("error body traceId %q != header %q", eb.Error.TraceID, id)
	}
	code, body := getBody(t, ts.URL+"/debug/traces/"+id)
	if code != http.StatusOK {
		t.Fatalf("errored trace not retained: %d", code)
	}
	var lookup obs.TraceLookup
	if err := json.Unmarshal([]byte(body), &lookup); err != nil {
		t.Fatal(err)
	}
	if lookup.Records[0].Reason != obs.RetainError || lookup.Records[0].Status != http.StatusBadRequest {
		t.Fatalf("record: %+v", lookup.Records[0])
	}
}

// TestSlowRequestWarn: a request over the slow threshold emits one WARN
// line naming the trace, the endpoint, and the stage breakdown, and the
// trace is retained with the slow reason.
func TestSlowRequestWarn(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	// Default sampling (every request) so the pipeline spans exist; the
	// slow reason still outranks sampled in the retention priority.
	_, ts := newTestServer(t, Config{
		Logger:        logger,
		SlowThreshold: time.Nanosecond,
	})
	resp := postRaw(t, ts.URL+"/v1/analyze", analyzeBody(t, workload.Ring(4).String()), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")

	var warn map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if rec["level"] == "WARN" && rec["msg"] == "slow request" {
			warn = rec
		}
	}
	if warn == nil {
		t.Fatalf("no slow-request WARN:\n%s", buf.String())
	}
	if warn["trace"] != id || warn["endpoint"] != "/v1/analyze" {
		t.Fatalf("warn attrs: %v", warn)
	}
	if warn["algorithm"] != "naive" {
		t.Fatalf("algorithm attr: %v", warn)
	}
	stages, _ := warn["stages"].(string)
	if !strings.Contains(stages, "sync-graph=") || !strings.Contains(stages, "detect:naive=") {
		t.Fatalf("stage breakdown: %q", stages)
	}
	if _, ok := warn["ms"].(float64); !ok {
		t.Fatalf("ms attr: %v", warn)
	}
	_, body := getBody(t, ts.URL+"/debug/traces/"+id)
	var lookup obs.TraceLookup
	if err := json.Unmarshal([]byte(body), &lookup); err != nil {
		t.Fatal(err)
	}
	if lookup.Records[0].Reason != obs.RetainSlow {
		t.Fatalf("reason=%q, want slow", lookup.Records[0].Reason)
	}
}

// TestSlowWarnDisabled: SlowThreshold<0 turns the WARN line off entirely.
func TestSlowWarnDisabled(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Logger: logger, SlowThreshold: -1})
	if code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: workload.Ring(4).String()}); code != http.StatusOK {
		t.Fatal("analyze failed")
	}
	if strings.Contains(buf.String(), "slow request") {
		t.Fatalf("WARN emitted with slow logging disabled:\n%s", buf.String())
	}
}

// TestRequestLogCarriesTrace: the per-request INFO line includes the
// trace id so log lines and retained traces join on one key.
func TestRequestLogCarriesTrace(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Logger: logger})
	resp := postRaw(t, ts.URL+"/v1/analyze", analyzeBody(t, workload.Ring(4).String()), nil)
	id := resp.Header.Get("X-Trace-Id")
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("log: %v\n%s", err, buf.String())
	}
	if rec["trace"] != id {
		t.Fatalf("log trace=%v, want %q", rec["trace"], id)
	}
}

// TestBatchTraceSingleRecord: a batch request exports one record whose
// root spans the whole batch; a degraded item marks the trace degraded.
func TestBatchTraceSingleRecord(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/analyze/batch", BatchRequest{
		Programs: []BatchProgram{
			{ID: "a", Source: workload.Ring(3).String()},
			{ID: "b", Source: workload.Pipeline(2, 2).String()},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	code, body := getBody(t, ts.URL+"/debug/traces/"+id)
	if code != http.StatusOK {
		t.Fatalf("lookup status=%d", code)
	}
	var lookup obs.TraceLookup
	if err := json.Unmarshal([]byte(body), &lookup); err != nil {
		t.Fatal(err)
	}
	if len(lookup.Records) != 1 || lookup.Records[0].Root.Name != "server /v1/analyze/batch" {
		t.Fatalf("records: %+v", lookup.Records)
	}
}

// TestDebugTracesNotTraced: the debug endpoints themselves never generate
// traces (only /v1/ paths are traced).
func TestDebugTracesNotTraced(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		getBody(t, ts.URL+"/debug/traces")
		getBody(t, ts.URL+"/metrics")
		getBody(t, ts.URL+"/healthz")
	}
	_, body := getBody(t, ts.URL+"/debug/traces")
	var list obs.TraceList
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list.Retained != 0 || list.Dropped != 0 {
		t.Fatalf("debug traffic was traced: %+v", list)
	}
}

// TestTraceRingConfig: the ring size is honored.
func TestTraceRingConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: 2})
	for i := 0; i < 5; i++ {
		postRaw(t, ts.URL+"/v1/analyze", analyzeBody(t, workload.Ring(3+i).String()), nil)
	}
	_, body := getBody(t, ts.URL+"/debug/traces")
	var list obs.TraceList
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 2 || list.Retained != 5 {
		t.Fatalf("ring: %d traces, retained=%d", len(list.Traces), list.Retained)
	}
}
