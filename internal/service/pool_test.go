package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3, 32)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func() {
				n := running.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", got)
	}
}

func TestPoolQueuedRequestHonorsDeadline(t *testing.T) {
	p := NewPool(1, 4)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() {
		close(started)
		<-release
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ran := false
	err := p.Do(ctx, func() { ran = true })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v", err)
	}
	if ran {
		t.Fatal("fn ran despite expired deadline")
	}
	close(release)
}

func TestPoolExpiredContextNeverRuns(t *testing.T) {
	p := NewPool(4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Do(ctx, func() { t.Fatal("ran") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
}

// TestPoolShedsWhenQueueFull fills the single worker slot and the whole
// queue, then requires the next request to fail fast with ErrShed — and a
// request arriving after the queue drains to succeed again.
func TestPoolShedsWhenQueueFull(t *testing.T) {
	p := NewPool(1, 2)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() {
		close(started)
		<-release
	})
	<-started
	// Fill the queue with two waiters.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() {}); err != nil {
				t.Errorf("queued request failed: %v", err)
			}
		}()
	}
	// Wait until both waiters hold queue tokens.
	deadline := time.Now().Add(2 * time.Second)
	for p.Queued() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued=%d, want 2", p.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Do(context.Background(), func() { t.Error("shed request ran") }); !errors.Is(err, ErrShed) {
		t.Fatalf("err=%v, want ErrShed", err)
	}
	close(release)
	wg.Wait()
	if err := p.Do(context.Background(), func() {}); err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
}

// TestPoolZeroQueueDepth checks that queueDepth 0 means run-or-shed.
func TestPoolZeroQueueDepth(t *testing.T) {
	p := NewPool(1, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() {
		close(started)
		<-release
	})
	<-started
	defer close(release)
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrShed) {
		t.Fatalf("err=%v, want ErrShed", err)
	}
}
