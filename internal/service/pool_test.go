package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func() {
				n := running.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", got)
	}
}

func TestPoolQueuedRequestHonorsDeadline(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() {
		close(started)
		<-release
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ran := false
	err := p.Do(ctx, func() { ran = true })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v", err)
	}
	if ran {
		t.Fatal("fn ran despite expired deadline")
	}
	close(release)
}

func TestPoolExpiredContextNeverRuns(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Do(ctx, func() { t.Fatal("ran") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
}
