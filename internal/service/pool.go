package service

import (
	"context"
	"errors"
)

// ErrShed reports that the admission queue was full: the request was
// rejected without waiting, so the client should back off and retry.
// Handlers map it to HTTP 429 with a Retry-After header.
var ErrShed = errors.New("server overloaded: admission queue full")

// Pool bounds the number of analyses running at once and how many may
// wait for a slot. Admission is two-stage: a request first claims a
// queue token (failing immediately with ErrShed when the queue is full,
// so overload degrades into fast 429s instead of unbounded waiting),
// then blocks for a worker slot until the caller's context expires. A
// queued request that hits its deadline leaves without ever starting
// work, and its verdict is "timeout", never "shed" — it was admitted.
type Pool struct {
	sem   chan struct{} // worker slots
	queue chan struct{} // tokens for requests waiting on sem
}

// NewPool returns a pool running at most n tasks concurrently (n >= 1),
// with at most queueDepth further tasks waiting for a slot. queueDepth 0
// means no waiting: a request either starts immediately or is shed.
func NewPool(n, queueDepth int) *Pool {
	if n < 1 {
		n = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Pool{
		sem:   make(chan struct{}, n),
		queue: make(chan struct{}, queueDepth),
	}
}

// Size reports the concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// InFlight reports how many tasks hold a slot right now.
func (p *Pool) InFlight() int { return len(p.sem) }

// QueueDepth reports the admission queue capacity.
func (p *Pool) QueueDepth() int { return cap(p.queue) }

// Queued reports how many admitted tasks are waiting for a slot.
func (p *Pool) Queued() int { return len(p.queue) }

// Do runs fn on the caller's goroutine once a slot is free. It returns
// ErrShed without waiting when every slot is busy and the queue is full,
// and ctx.Err() without running fn when the context expires first (even
// if a slot frees at the same instant); fn itself is responsible for
// observing ctx (siwa.AnalyzeContext does).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	// Prefer the context when both are ready, so an already-expired
	// deadline never sneaks past a momentarily free slot.
	if err := ctx.Err(); err != nil {
		return err
	}
	// Fast path: a slot is free right now.
	select {
	case p.sem <- struct{}{}:
	default:
		// All slots busy: claim a queue token or shed.
		select {
		case p.queue <- struct{}{}:
		default:
			return ErrShed
		}
		select {
		case p.sem <- struct{}{}:
			<-p.queue
		case <-ctx.Done():
			<-p.queue
			return ctx.Err()
		}
	}
	defer func() { <-p.sem }()
	// The wait for a slot may have outlived the deadline: an expired
	// request must report timeout, not occupy a worker.
	if err := ctx.Err(); err != nil {
		return err
	}
	fn()
	return nil
}
