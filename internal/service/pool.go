package service

import "context"

// Pool bounds the number of analyses running at once. Admission is
// semaphore-based: Do blocks until a slot frees or the caller's context
// expires, so a burst of requests queues instead of oversubscribing the
// CPU, and a queued request that hits its deadline leaves without ever
// starting work.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool running at most n tasks concurrently (n >= 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size reports the concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// InFlight reports how many tasks hold a slot right now.
func (p *Pool) InFlight() int { return len(p.sem) }

// Do runs fn on the caller's goroutine once a slot is free. It returns
// ctx.Err() without running fn when the context expires first; fn itself
// is responsible for observing ctx (siwa.AnalyzeContext does).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	// Prefer the context when both are ready, so an already-expired
	// deadline never sneaks past a momentarily free slot.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}
