package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// postWithDeadline posts an analyze request carrying an X-Deadline-Ms
// budget header, the way the cluster gateway stamps proxied requests.
func postWithDeadline(t *testing.T, url, deadline string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if deadline != "" {
		req.Header.Set(DeadlineHeader, deadline)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestDeadlineBudgetResolution covers the header-folding arithmetic in
// isolation: the effective deadline is the smaller of the resolved
// timeout and the propagated budget, a sub-floor budget sheds, and a
// missing or malformed header changes nothing.
func TestDeadlineBudgetResolution(t *testing.T) {
	cfg := Config{}.Normalize() // floor 5ms
	mk := func(v string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/analyze", nil)
		if v != "" {
			r.Header.Set(DeadlineHeader, v)
		}
		return r
	}
	cases := []struct {
		header string
		want   time.Duration
		shed   bool
	}{
		{"", time.Second, false},
		{"250", 250 * time.Millisecond, false}, // budget below timeout wins
		{"2000", time.Second, false},           // budget above timeout: timeout stands
		{"2", 0, true},                         // below the 5ms floor: dead on arrival
		{"0", 0, true},                         // no budget at all
		{"-40", time.Second, false},            // negative: malformed, ignored
		{"soon", time.Second, false},           // non-numeric: ignored
	}
	for _, tc := range cases {
		d, shed := cfg.deadlineBudget(mk(tc.header), time.Second)
		if d != tc.want || shed != tc.shed {
			t.Errorf("deadlineBudget(header=%q) = (%v, %v), want (%v, %v)",
				tc.header, d, shed, tc.want, tc.shed)
		}
	}
}

// TestDeadlineHeaderShedsBelowFloor drives the whole handler path: a
// request whose propagated budget is under the admission floor is
// refused before any analysis starts, with the timeout taxonomy code,
// its own counter — and crucially NOT the request-error counter, because
// a dead-on-arrival deadline is a load condition, not a client bug.
func TestDeadlineHeaderShedsBelowFloor(t *testing.T) {
	s, ts := newTestServer(t, Config{DeadlineFloor: 50 * time.Millisecond})
	body, err := json.Marshal(AnalyzeRequest{Source: workload.Ring(3).String()})
	if err != nil {
		t.Fatal(err)
	}

	resp, data := postWithDeadline(t, ts.URL+"/v1/analyze", "10", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("bad error body: %v\n%s", err, data)
	}
	if er.Error.Code != CodeTimeout {
		t.Fatalf("code=%q, want %q", er.Error.Code, CodeTimeout)
	}
	if !strings.Contains(er.Error.Message, "below admission floor") {
		t.Fatalf("message %q does not explain the shed", er.Error.Message)
	}
	if got := s.Metrics().DeadlineShed.Load(); got != 1 {
		t.Fatalf("deadline_shed=%d, want 1", got)
	}
	if got := s.Metrics().Analyses.Load(); got != 0 {
		t.Fatalf("analyses=%d; refused work must never start", got)
	}
	if got := s.Metrics().Errors.Load(); got != 0 {
		t.Fatalf("request_errors=%d; a deadline shed is not a client error", got)
	}

	// The same floor guards the batch endpoint.
	bbody, _ := json.Marshal(BatchRequest{Programs: []BatchProgram{{Source: workload.Ring(4).String()}}})
	bresp, bdata := postWithDeadline(t, ts.URL+"/v1/analyze/batch", "10", bbody)
	if bresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch status=%d body=%s", bresp.StatusCode, bdata)
	}
	if got := s.Metrics().DeadlineShed.Load(); got != 2 {
		t.Fatalf("deadline_shed=%d after batch, want 2", got)
	}

	// An ample budget clears admission and the analysis runs.
	resp2, data2 := postWithDeadline(t, ts.URL+"/v1/analyze", "60000", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("ample budget: status=%d body=%s", resp2.StatusCode, data2)
	}
	if got := s.Metrics().Analyses.Load(); got != 1 {
		t.Fatalf("analyses=%d, want 1", got)
	}

	// A malformed header is ignored rather than shed: the request runs
	// under its ordinary timeout.
	resp3, data3 := postWithDeadline(t, ts.URL+"/v1/analyze", "garbage", body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("malformed header: status=%d body=%s", resp3.StatusCode, data3)
	}

	// The dedicated counter is exported.
	code, text := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status=%d", code)
	}
	if !strings.Contains(text, "siwa_deadline_shed_total 2") {
		t.Fatal("exposition missing siwa_deadline_shed_total 2")
	}
}
