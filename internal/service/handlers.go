package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	siwa "repro"
	"repro/internal/waves"
)

// WireOptions is the JSON projection of siwa.Options accepted by the
// analyze endpoints. Field names mirror the library; the algorithm is
// named by its registry spelling (siwa.AlgorithmNames).
type WireOptions struct {
	Algorithm      string `json:"algorithm,omitempty"`
	AllAlgorithms  bool   `json:"allAlgorithms,omitempty"`
	Constraint4    bool   `json:"constraint4,omitempty"`
	Enumerate      bool   `json:"enumerate,omitempty"`
	EnumerateLimit int    `json:"enumerateLimit,omitempty"`
	FIFO           bool   `json:"fifo,omitempty"`
	Exact          bool   `json:"exact,omitempty"`
	// MaxStates caps the exact explorer's state count (0 = 1<<20).
	MaxStates int `json:"maxStates,omitempty"`
}

// resolve maps wire options onto library options. A nil receiver is the
// all-defaults request.
func (wo *WireOptions) resolve() (siwa.Options, error) {
	if wo == nil {
		return siwa.Options{}, nil
	}
	var opt siwa.Options
	if wo.Algorithm != "" {
		a, ok := siwa.AlgorithmByName(wo.Algorithm)
		if !ok {
			return opt, fmt.Errorf("unknown algorithm %q (valid: %s)",
				wo.Algorithm, strings.Join(siwa.AlgorithmNames(), ", "))
		}
		opt.Algorithm = a
	}
	if wo.EnumerateLimit < 0 || wo.MaxStates < 0 {
		return opt, errors.New("enumerateLimit and maxStates must be >= 0")
	}
	opt.AllAlgorithms = wo.AllAlgorithms
	opt.Constraint4 = wo.Constraint4
	opt.Enumerate = wo.Enumerate
	opt.EnumerateLimit = wo.EnumerateLimit
	opt.FIFO = wo.FIFO
	opt.Exact = wo.Exact
	opt.ExactOptions = waves.Options{MaxStates: wo.MaxStates}
	return opt, nil
}

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	Source    string       `json:"source"`
	Options   *WireOptions `json:"options,omitempty"`
	TimeoutMs int64        `json:"timeoutMs,omitempty"`
}

// AnalyzeResponse is the POST /v1/analyze success body. Report is a
// siwa.JSONReport (schemaVersion inside); Cached reports a result served
// from the content-addressed cache without re-analysis.
type AnalyzeResponse struct {
	Report    json.RawMessage `json:"report"`
	Cached    bool            `json:"cached"`
	ElapsedMs float64         `json:"elapsedMs"`
}

// BatchProgram is one program in a batch request. Its options, when
// present, override the batch-level defaults.
type BatchProgram struct {
	ID      string       `json:"id,omitempty"`
	Source  string       `json:"source"`
	Options *WireOptions `json:"options,omitempty"`
}

// BatchRequest is the POST /v1/analyze/batch body. The deadline covers
// the whole batch; programs are fanned out across the worker pool.
type BatchRequest struct {
	Programs  []BatchProgram `json:"programs"`
	Options   *WireOptions   `json:"options,omitempty"`
	TimeoutMs int64          `json:"timeoutMs,omitempty"`
}

// BatchResult is one program's outcome, in request order.
type BatchResult struct {
	ID     string          `json:"id,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/analyze/batch success body.
type BatchResponse struct {
	Results   []BatchResult `json:"results"`
	ElapsedMs float64       `json:"elapsedMs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.Errors.Add(1)
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes the request body into v under the configured size
// limit, reporting (status, error) on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("invalid request body: %v", err)
	}
	return 0, nil
}

func isCancellation(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// analyzeOne serves one (source, options) pair: cache lookup, then a
// pool-bounded siwa.AnalyzeContext run whose marshalled report is stored
// back under the content address. The bool result reports a cache hit.
func (s *Server) analyzeOne(ctx context.Context, source string, opt siwa.Options) (json.RawMessage, bool, error) {
	key := Key(source, opt)
	if rep, ok := s.cache.Get(key); ok {
		return rep, true, nil
	}
	var out json.RawMessage
	var runErr error
	err := s.pool.Do(ctx, func() {
		prog, err := siwa.Parse(source)
		if err != nil {
			runErr = err
			return
		}
		rep, err := siwa.AnalyzeContext(ctx, prog, opt)
		if err != nil {
			runErr = err
			return
		}
		s.metrics.Analyses.Add(1)
		if !rep.DeadlockFree() || !rep.Stall.StallFree() {
			s.metrics.Anomalous.Add(1)
		}
		b, err := json.Marshal(rep.JSONReport())
		if err != nil {
			runErr = err
			return
		}
		out = b
		s.cache.Put(key, b)
	})
	if err != nil {
		// Pool admission lost the race against the deadline: the analysis
		// never started.
		return nil, false, err
	}
	if runErr != nil {
		return nil, false, runErr
	}
	return out, false, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.metrics.RequestsAnalyze.Add(1)
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	var req AnalyzeRequest
	if status, err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	opt, err := req.Options.resolve()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	d, err := s.cfg.timeoutFor(req.TimeoutMs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	rep, cached, err := s.analyzeOne(ctx, req.Source, opt)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			Report:    rep,
			Cached:    cached,
			ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		})
	case isCancellation(err):
		s.metrics.Timeouts.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: fmt.Sprintf("analysis aborted: %v", err)})
	default:
		s.writeError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.RequestsBatch.Add(1)
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	var req BatchRequest
	if status, err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if len(req.Programs) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Programs) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest,
			"batch of %d exceeds limit %d", len(req.Programs), s.cfg.MaxBatch)
		return
	}
	d, err := s.cfg.timeoutFor(req.TimeoutMs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	results := make([]BatchResult, len(req.Programs))
	var wg sync.WaitGroup
	for i, p := range req.Programs {
		res := &results[i]
		res.ID = p.ID
		if p.Source == "" {
			res.Error = "missing source"
			continue
		}
		wo := p.Options
		if wo == nil {
			wo = req.Options
		}
		opt, err := wo.resolve()
		if err != nil {
			res.Error = err.Error()
			continue
		}
		wg.Add(1)
		go func(source string, opt siwa.Options, res *BatchResult) {
			defer wg.Done()
			rep, cached, err := s.analyzeOne(ctx, source, opt)
			if err != nil {
				if isCancellation(err) {
					s.metrics.Timeouts.Add(1)
				}
				res.Error = err.Error()
				return
			}
			res.Report = rep
			res.Cached = cached
		}(p.Source, opt, res)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{
		Results:   results,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s.cache, s.pool)
}
