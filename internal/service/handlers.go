package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	siwa "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/waves"
)

// WireOptions is the JSON projection of siwa.Options accepted by the
// analyze endpoints. Field names mirror the library; the algorithm is
// named by its registry spelling (siwa.AlgorithmNames).
type WireOptions struct {
	Algorithm      string `json:"algorithm,omitempty"`
	AllAlgorithms  bool   `json:"allAlgorithms,omitempty"`
	Constraint4    bool   `json:"constraint4,omitempty"`
	Enumerate      bool   `json:"enumerate,omitempty"`
	EnumerateLimit int    `json:"enumerateLimit,omitempty"`
	FIFO           bool   `json:"fifo,omitempty"`
	Exact          bool   `json:"exact,omitempty"`
	// MaxStates caps the exact explorer's state count (0 = 1<<20).
	MaxStates int `json:"maxStates,omitempty"`
	// Degrade asks for graceful degradation: when an exact or enumeration
	// stage hits its deadline or budget, the response is still HTTP 200
	// carrying the polynomial verdict with "degraded": true instead of a
	// timeout error. The fallback is sound — the polynomial detectors are
	// conservative, so their verdicts stand on their own.
	Degrade bool `json:"degrade,omitempty"`
}

// resolve maps wire options onto library options. A nil receiver is the
// all-defaults request.
func (wo *WireOptions) resolve() (siwa.Options, error) {
	if wo == nil {
		return siwa.Options{}, nil
	}
	var opt siwa.Options
	if wo.Algorithm != "" {
		a, ok := siwa.AlgorithmByName(wo.Algorithm)
		if !ok {
			return opt, fmt.Errorf("unknown algorithm %q (valid: %s)",
				wo.Algorithm, strings.Join(siwa.AlgorithmNames(), ", "))
		}
		opt.Algorithm = a
	}
	if wo.EnumerateLimit < 0 || wo.MaxStates < 0 {
		return opt, errors.New("enumerateLimit and maxStates must be >= 0")
	}
	opt.AllAlgorithms = wo.AllAlgorithms
	opt.Constraint4 = wo.Constraint4
	opt.Enumerate = wo.Enumerate
	opt.EnumerateLimit = wo.EnumerateLimit
	opt.FIFO = wo.FIFO
	opt.Exact = wo.Exact
	opt.ExactOptions = waves.Options{MaxStates: wo.MaxStates}
	opt.Degrade = wo.Degrade
	return opt, nil
}

// AnalyzeRequest is the POST /v1/analyze body. Trace asks the service to
// run the analysis with pipeline tracing and echo the span tree in the
// response; it never changes the report or its cache key.
type AnalyzeRequest struct {
	Source    string       `json:"source"`
	Options   *WireOptions `json:"options,omitempty"`
	TimeoutMs int64        `json:"timeoutMs,omitempty"`
	Trace     bool         `json:"trace,omitempty"`
}

// AnalyzeResponse is the POST /v1/analyze success body. Report is a
// siwa.JSONReport (schemaVersion inside); Cached reports a result served
// from the content-addressed cache without re-analysis. Trace is the
// pipeline span tree, present only when the request asked for one AND the
// analysis actually ran — cache hits carry no trace, since nothing was
// executed to time.
type AnalyzeResponse struct {
	Report    json.RawMessage `json:"report"`
	Cached    bool            `json:"cached"`
	ElapsedMs float64         `json:"elapsedMs"`
	Trace     *siwa.JSONSpan  `json:"trace,omitempty"`
}

// BatchProgram is one program in a batch request. Its options, when
// present, override the batch-level defaults.
type BatchProgram struct {
	ID      string       `json:"id,omitempty"`
	Source  string       `json:"source"`
	Options *WireOptions `json:"options,omitempty"`
}

// BatchRequest is the POST /v1/analyze/batch body. The deadline covers
// the whole batch; programs are fanned out across the worker pool.
type BatchRequest struct {
	Programs  []BatchProgram `json:"programs"`
	Options   *WireOptions   `json:"options,omitempty"`
	TimeoutMs int64          `json:"timeoutMs,omitempty"`
}

// BatchResult is one program's outcome, in request order. ErrorCode
// carries the taxonomy code for Error (additive; absent on success).
type BatchResult struct {
	ID        string          `json:"id,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
	Cached    bool            `json:"cached"`
	Error     string          `json:"error,omitempty"`
	ErrorCode string          `json:"errorCode,omitempty"`
}

// BatchResponse is the POST /v1/analyze/batch success body.
type BatchResponse struct {
	Results   []BatchResult `json:"results"`
	ElapsedMs float64       `json:"elapsedMs"`
}

// jsonBufPool recycles response-encoding buffers across requests: the
// response is staged in a pooled buffer, so each writeJSON costs the
// encoder's allocations but no per-request buffer growth, and the exact
// body size is known before the status line goes out.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufBytes caps what a returned buffer may retain: one giant
// batch response must not pin megabytes inside the pool forever.
const maxPooledBufBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Encoding failed before anything was written: the connection is
		// still clean, so a plain 500 is deliverable.
		jsonBufPool.Put(buf)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":"response encoding failed"}}`, CodeInternal)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Content-Length from the staged buffer lets clients and proxies size
	// the body up front and spares chunked transfer encoding.
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBufBytes {
		jsonBufPool.Put(buf)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	s.metrics.Errors.Add(1)
	writeJSON(w, status, errorResponse{Error: ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		TraceID: w.Header().Get("X-Trace-Id"),
	}})
}

// decodeBody decodes the request body into v under the configured size
// limit, reporting (status, code, error) on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, string, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, CodeInvalidRequest,
			fmt.Errorf("invalid request body: %v", err)
	}
	return 0, "", nil
}

func isCancellation(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// verdictOf folds a report's two anomaly dimensions into one log label.
func verdictOf(rep *siwa.Report) string {
	df, sf := rep.DeadlockFree(), rep.Stall.StallFree()
	switch {
	case df && sf:
		return "clean"
	case !df && !sf:
		return "may-deadlock,may-stall"
	case !df:
		return "may-deadlock"
	default:
		return "may-stall"
	}
}

// analyzeOutcome is what one analyzeOne call hands back to a handler:
// everything the response body and the request log need.
type analyzeOutcome struct {
	report   json.RawMessage
	verdict  string
	cached   bool
	degraded bool
	trace    *siwa.JSONSpan
}

// analyzeOne serves one (source, options) pair: result-cache lookup,
// then a pool-bounded siwa.AnalyzeSourceContext run whose marshalled
// report is stored back under the content address. A result-cache miss
// still consults the stage cache inside the pipeline — a warm source
// asked for new options reuses every already-built artifact and runs
// only the missing suffix. When wantTrace (or Config.TraceAll) is set
// and the analysis actually runs, the pipeline is traced: stage
// durations feed the siwa_analyze_stage_seconds histograms, and the span
// tree is returned (to the requester only) outside the cached report.
func (s *Server) analyzeOne(ctx context.Context, source string, opt siwa.Options, wantTrace bool) (analyzeOutcome, error) {
	key := Key(source, opt)
	if res, ok := s.cache.Get(key); ok {
		return analyzeOutcome{report: res.Report, verdict: res.Verdict, cached: true}, nil
	}
	opt.Trace = wantTrace || s.cfg.TraceAll
	// A sampled request's pipeline records into the request tracer, so
	// the per-stage spans become children of the request root (and, via
	// traceparent, of the gateway's span). Requests that explicitly asked
	// to trace join the request tree too, even when head sampling said no.
	if th := obs.TraceFromContext(ctx); th != nil && (th.Sampled || opt.Trace) {
		opt.Tracer = th.Tracer // implies Trace
		opt.Trace = true
	}
	// Limits, Parallelism, Degrade and the stage cache are service policy,
	// not part of the content address: limits only turn requests into
	// errors (never cached), parallelism never changes verdicts, degraded
	// reports are timing-dependent (also never cached), and the stage
	// cache changes where artifacts come from, not what they are.
	opt.Limits = s.cfg.Limits
	opt.Parallelism = s.cfg.Parallelism
	opt.StageCache = s.stageCache
	var out analyzeOutcome
	var runErr error
	err := s.pool.Do(ctx, func() {
		if ferr := fault.Inject("service.analyze"); ferr != nil {
			runErr = &codedError{http.StatusInternalServerError, CodeInternal, ferr}
			return
		}
		// Parse errors surface untyped and classify() maps them to HTTP
		// 422 parse_error; internal (contained-panic) and resource errors
		// carry their own types through unchanged.
		rep, err := siwa.AnalyzeSourceContext(ctx, source, opt)
		if err != nil {
			runErr = err
			return
		}
		s.metrics.Analyses.Add(1)
		if !rep.DeadlockFree() || !rep.Stall.StallFree() {
			s.metrics.Anomalous.Add(1)
		}
		if rep.Degraded {
			s.metrics.Degraded.Add(1)
		}
		s.metrics.ObserveSpans(rep.Trace)
		// The cached report must be identical for traced and untraced
		// requests (they share a key), so the span tree is projected out
		// of the stored JSON and carried separately.
		jr := rep.JSONReport()
		traceJSON := jr.Trace
		jr.Trace = nil
		b, err := json.Marshal(jr)
		if err != nil {
			runErr = err
			return
		}
		out = analyzeOutcome{report: b, verdict: verdictOf(rep), degraded: rep.Degraded}
		if wantTrace {
			out.trace = traceJSON
		}
		if !rep.Degraded {
			// A degraded report reflects this run's deadline, not the
			// program: a retry with more headroom deserves the full result.
			s.cache.Put(key, CachedResult{Report: b, Verdict: out.verdict})
		}
	})
	if err != nil {
		// Pool admission shed the request or lost the race against the
		// deadline: the analysis never started.
		return analyzeOutcome{}, err
	}
	if runErr != nil {
		if isInternal(runErr) {
			// A pipeline stage panicked and was contained by the library's
			// per-stage recovery; count it so /metrics accounts for every
			// panic the process survived.
			s.metrics.Panics.Add(1)
		}
		return analyzeOutcome{}, runErr
	}
	return out, nil
}

// isInternal reports whether err is (or wraps) a contained panic.
func isInternal(err error) bool {
	var ie *siwa.InternalError
	return errors.As(err, &ie)
}

// logRequest emits one structured record per request when logging is
// configured. attrs supplements the common fields (request id, endpoint,
// status, duration).
func (s *Server) logRequest(r *http.Request, id string, endpoint string, status int, start time.Time, attrs ...slog.Attr) {
	if s.cfg.Logger == nil {
		return
	}
	common := []slog.Attr{
		slog.String("id", id),
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Float64("ms", float64(time.Since(start))/float64(time.Millisecond)),
	}
	if trace := obs.TraceFromContext(r.Context()).TraceIDString(); trace != "" {
		common = append(common, slog.String("trace", trace))
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request", append(common, attrs...)...)
}

// nextRequestID mints a process-unique request id, used when a request
// arrives without an acceptable X-Request-Id of its own.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("req-%06d", s.reqID.Add(1))
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.metrics.RequestsAnalyze.Add(1)
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.ObserveRequest("analyze", time.Since(start)) }()
	id := RequestID(r.Context())
	var req AnalyzeRequest
	if status, code, err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, status, code, "%v", err)
		s.logRequest(r, id, "analyze", status, start, slog.String("error", err.Error()))
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "missing source")
		s.logRequest(r, id, "analyze", http.StatusBadRequest, start, slog.String("error", "missing source"))
		return
	}
	opt, err := req.Options.resolve()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		s.logRequest(r, id, "analyze", http.StatusBadRequest, start, slog.String("error", err.Error()))
		return
	}
	algo := opt.Algorithm.String()
	th := obs.TraceFromContext(r.Context())
	th.RootSpan().SetAttr("algorithm", algo)
	d, err := s.cfg.timeoutFor(req.TimeoutMs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		s.logRequest(r, id, "analyze", http.StatusBadRequest, start, slog.String("error", err.Error()))
		return
	}
	d, shed := s.cfg.deadlineBudget(r, d)
	if shed {
		s.shedDeadline(w, r, id, "analyze", start)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	out, err := s.analyzeOne(ctx, req.Source, opt, req.Trace)
	if out.degraded {
		// Mark the request root so the exporter always retains degraded
		// requests, whatever the sampling decision said.
		th.RootSpan().Set("degraded", 1)
	}
	if err == nil {
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			Report:    out.report,
			Cached:    out.cached,
			ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
			Trace:     out.trace,
		})
		s.logRequest(r, id, "analyze", http.StatusOK, start,
			slog.String("algorithm", algo),
			slog.Bool("cached", out.cached),
			slog.String("verdict", out.verdict))
		return
	}
	status, code := classify(err)
	msg := err.Error()
	switch code {
	case CodeTimeout:
		// Timeouts and sheds are load conditions, not client errors: they
		// count under their own metrics, not siwa_request_errors_total.
		s.metrics.Timeouts.Add(1)
		s.setRetryAfter(w)
		msg = fmt.Sprintf("analysis aborted: %v", err)
		writeJSON(w, status, errorResponse{Error: ErrorBody{Code: code, Message: msg, TraceID: w.Header().Get("X-Trace-Id")}})
	case CodeShed:
		s.metrics.Shed.Add(1)
		s.setRetryAfter(w)
		writeJSON(w, status, errorResponse{Error: ErrorBody{Code: code, Message: msg, TraceID: w.Header().Get("X-Trace-Id")}})
	default:
		s.writeError(w, status, code, "%s", msg)
	}
	s.logRequest(r, id, "analyze", status, start,
		slog.String("algorithm", algo),
		slog.String("code", code),
		slog.String("error", err.Error()))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.RequestsBatch.Add(1)
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.ObserveRequest("batch", time.Since(start)) }()
	id := RequestID(r.Context())
	var req BatchRequest
	if status, code, err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, status, code, "%v", err)
		s.logRequest(r, id, "batch", status, start, slog.String("error", err.Error()))
		return
	}
	if len(req.Programs) == 0 {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "empty batch")
		s.logRequest(r, id, "batch", http.StatusBadRequest, start, slog.String("error", "empty batch"))
		return
	}
	if len(req.Programs) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"batch of %d exceeds limit %d", len(req.Programs), s.cfg.MaxBatch)
		s.logRequest(r, id, "batch", http.StatusBadRequest, start, slog.String("error", "batch too large"))
		return
	}
	d, err := s.cfg.timeoutFor(req.TimeoutMs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		s.logRequest(r, id, "batch", http.StatusBadRequest, start, slog.String("error", err.Error()))
		return
	}
	d, shed := s.cfg.deadlineBudget(r, d)
	if shed {
		s.shedDeadline(w, r, id, "batch", start)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	results := make([]BatchResult, len(req.Programs))
	var wg sync.WaitGroup
	var degradedItems atomic.Int64
	// Trickle items into the pool instead of flooding it: at most
	// pool-size items from this batch are in admission at once, so a lone
	// large batch never exhausts the queue and sheds itself; only genuine
	// cross-request overload does.
	admission := newTickets(s.pool.Size())
	for i, p := range req.Programs {
		res := &results[i]
		res.ID = p.ID
		if p.Source == "" {
			res.Error = "missing source"
			res.ErrorCode = CodeInvalidRequest
			s.metrics.BatchItems[BatchError].Add(1)
			continue
		}
		wo := p.Options
		if wo == nil {
			wo = req.Options
		}
		opt, err := wo.resolve()
		if err != nil {
			res.Error = err.Error()
			res.ErrorCode = CodeInvalidRequest
			s.metrics.BatchItems[BatchError].Add(1)
			continue
		}
		admission.acquire()
		wg.Add(1)
		go func(source string, opt siwa.Options, res *BatchResult) {
			defer wg.Done()
			defer admission.release()
			// Panics in a batch goroutine bypass the HTTP recovery
			// middleware (that runs on the request goroutine) and would
			// kill the process: contain them per item.
			defer func() {
				if rec := recover(); rec != nil {
					s.metrics.Panics.Add(1)
					s.metrics.BatchItems[BatchError].Add(1)
					res.Error = fmt.Sprintf("internal error: %v", rec)
					res.ErrorCode = CodeInternal
				}
			}()
			out, err := s.analyzeOne(ctx, source, opt, false)
			if err != nil {
				_, code := classify(err)
				switch code {
				case CodeTimeout:
					s.metrics.Timeouts.Add(1)
					s.metrics.BatchItems[BatchTimeout].Add(1)
				case CodeShed:
					s.metrics.Shed.Add(1)
					s.metrics.BatchItems[BatchShed].Add(1)
				default:
					s.metrics.BatchItems[BatchError].Add(1)
				}
				res.Error = err.Error()
				res.ErrorCode = code
				return
			}
			if out.cached {
				s.metrics.BatchItems[BatchCached].Add(1)
			} else {
				s.metrics.BatchItems[BatchOK].Add(1)
			}
			if out.degraded {
				degradedItems.Add(1)
			}
			res.Report = out.report
			res.Cached = out.cached
		}(p.Source, opt, res)
	}
	wg.Wait()
	if degradedItems.Load() > 0 {
		// After the join: the root's counters are written on this goroutine
		// only, and a degraded batch is always retained by the exporter.
		obs.TraceFromContext(r.Context()).RootSpan().Set("degraded", degradedItems.Load())
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Results:   results,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
	cached, failed := 0, 0
	for i := range results {
		if results[i].Cached {
			cached++
		}
		if results[i].Error != "" {
			failed++
		}
	}
	s.logRequest(r, id, "batch", http.StatusOK, start,
		slog.Int("programs", len(results)),
		slog.Int("cached", cached),
		slog.Int("failed", failed))
}

// AlgorithmEntry is one detector in the GET /v1/algorithms listing.
type AlgorithmEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// AlgorithmsResponse is the GET /v1/algorithms body: the detector
// spectrum in increasing precision/cost order, plus the name applied when
// a request names no algorithm.
type AlgorithmsResponse struct {
	Default    string           `json:"default"`
	Algorithms []AlgorithmEntry `json:"algorithms"`
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	resp := AlgorithmsResponse{Default: siwa.Options{}.Algorithm.String()}
	for _, info := range siwa.AlgorithmList() {
		resp.Algorithms = append(resp.Algorithms, AlgorithmEntry{
			Name:        info.Name,
			Description: info.Description,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe, distinct from liveness: a draining
// server (graceful shutdown in progress) answers 503 so load balancers
// stop routing new work here, while /healthz stays green because the
// process is alive and finishing in-flight requests. There is no
// "starting" state — New constructs the pool and mounts the routes
// synchronously, so any server reachable over HTTP is fully up. The
// cluster gateway's health checker consumes this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// shedDeadline rejects a request whose propagated deadline budget
// (X-Deadline-Ms) is below the admission floor: the caller's deadline
// will pass before any useful work could complete, so the honest answer
// is an immediate timeout — before any analysis starts — rather than
// computing a result nobody is waiting for. Counted separately from real
// timeouts (siwa_deadline_shed_total) so dashboards can tell "we were
// slow" from "we refused work that was already dead on arrival".
func (s *Server) shedDeadline(w http.ResponseWriter, r *http.Request, id, endpoint string, start time.Time) {
	s.metrics.DeadlineShed.Add(1)
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ErrorBody{
		Code:    CodeTimeout,
		Message: fmt.Sprintf("deadline budget %sms below admission floor %v", r.Header.Get(DeadlineHeader), s.cfg.DeadlineFloor),
		TraceID: w.Header().Get("X-Trace-Id"),
	}})
	s.logRequest(r, id, endpoint, http.StatusServiceUnavailable, start,
		slog.String("code", CodeTimeout),
		slog.String("error", "deadline budget below floor"))
}

// retryAfterSeconds derives the Retry-After hint for shed and timeout
// responses from current congestion: with `queued` analyses already
// waiting and `workers` slots draining them, a retry has no chance of
// admission for roughly queued/workers analysis-slot turns, so the hint
// grows with the backlog instead of the old constant 1. Bounds: never
// below 1 (an empty queue still wants a beat of backoff), never above 30
// (past that the client should give up, not sleep).
func retryAfterSeconds(queued, workers int) int {
	if workers < 1 {
		workers = 1
	}
	if queued < 0 {
		queued = 0
	}
	hint := 1 + queued/workers
	if hint > 30 {
		hint = 30
	}
	return hint
}

// setRetryAfter stamps the derived backoff hint on a shed/timeout response.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.pool.Queued(), s.pool.Size())))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s.cache, s.stageCache, s.pool, s.exporter)
}
