package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// nopResponseWriter discards the body so the measurements below see only
// writeJSON's own allocations, not a recorder's buffer growth.
type nopResponseWriter struct {
	h http.Header
}

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) WriteHeader(int)             {}
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// benchPayload is a realistic analyze response: a few KiB of report, the
// shape every /v1/analyze reply takes.
func benchPayload() AnalyzeResponse {
	return AnalyzeResponse{
		Report:    json.RawMessage(`{"schemaVersion":3,"tasks":4,"rendezvousNodes":8,"deadlock":{"algorithm":"naive","mayDeadlock":true,"witnesses":[["` + strings.Repeat("t0.e0 ", 40) + `"]],"hypotheses":12,"sccRuns":3},"deadlockFree":false,"stallFree":true}`),
		Cached:    false,
		ElapsedMs: 1.25,
	}
}

// TestWriteJSONAllocs pins the steady-state allocation count of the pooled
// response writer. The encode buffer comes from jsonBufPool, so per-call
// allocations are the encoder, the header slices, and the Content-Length
// string — not a fresh multi-KiB buffer per response. If this bound
// breaks, the pool stopped being reused.
func TestWriteJSONAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	w := &nopResponseWriter{h: make(http.Header)}
	payload := benchPayload()
	// Warm the pool so the first Get does not count a fresh buffer.
	writeJSON(w, http.StatusOK, payload)
	avg := testing.AllocsPerRun(200, func() {
		writeJSON(w, http.StatusOK, payload)
	})
	const maxAllocs = 12
	if avg > maxAllocs {
		t.Errorf("writeJSON allocates %.1f objects per call, want <= %d", avg, maxAllocs)
	}
}

func BenchmarkWriteJSON(b *testing.B) {
	w := &nopResponseWriter{h: make(http.Header)}
	payload := benchPayload()
	writeJSON(w, http.StatusOK, payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeJSON(w, http.StatusOK, payload)
	}
}
