package service

import (
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// statusRecorder captures the response status for the trace exporter's
// retention decision (errored requests are always retained).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// withTracing is the outermost middleware on the API surface: it opens
// the request's root span, continuing an inbound W3C traceparent (so the
// gateway's request span becomes this root's parent) or minting a fresh
// trace; echoes X-Trace-Id; and on completion exports the finished tree
// to the debug ring and emits the slow-request WARN line. Probe and debug
// endpoints (/healthz, /readyz, /metrics, /debug/...) are not traced.
//
// A malformed traceparent is never an error: per the W3C spec the request
// proceeds with a fresh root trace.
func (s *Server) withTracing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		tracer := obs.NewTracer()
		var sampled bool
		if tid, parent, remoteSampled, ok := obs.ExtractTraceparent(r.Header); ok {
			tracer.SetRemote(tid, parent)
			sampled = remoteSampled // honor the caller's head decision
		} else {
			sampled = s.exporter.SampleNext()
		}
		root := tracer.Start("server " + r.URL.Path)
		th := &obs.TraceHandle{Tracer: tracer, Root: root, Sampled: sampled}
		w.Header().Set("X-Trace-Id", root.TraceID.String())
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			root.End()
			s.exporter.Export(root, sampled, sr.status)
			s.logSlowRequest(r, root, w.Header().Get("X-Request-Id"))
		}()
		next.ServeHTTP(sr, r.WithContext(obs.ContextWithTrace(r.Context(), th)))
	})
}

// logSlowRequest emits the WARN line for requests over the slow
// threshold: trace id, endpoint, algorithm when known, and the per-stage
// breakdown of the pipeline that actually ran.
func (s *Server) logSlowRequest(r *http.Request, root *obs.Span, requestID string) {
	slow := s.exporter.SlowThreshold()
	if slow <= 0 || root == nil || root.Dur < slow || s.cfg.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("trace", root.TraceID.String()),
		// withTracing wraps withRequestID, so the id is not in this
		// request's context — read the echoed response header instead.
		slog.String("id", requestID),
		slog.String("endpoint", r.URL.Path),
		slog.Float64("ms", float64(root.Dur)/float64(time.Millisecond)),
	}
	if algo := root.Attr("algorithm"); algo != "" {
		attrs = append(attrs, slog.String("algorithm", algo))
	}
	breakdown := root.Child("analyze").ChildSummary()
	if breakdown == "" {
		breakdown = root.ChildSummary()
	}
	if breakdown != "" {
		attrs = append(attrs, slog.String("stages", breakdown))
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
}
