package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	siwa "repro"
	"repro/internal/fault"
	"repro/internal/workload"
)

func decodeError(t *testing.T, data []byte) ErrorBody {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("error body not structured: %v\n%s", err, data)
	}
	if er.Error.Code == "" || er.Error.Message == "" {
		t.Fatalf("error body incomplete: %s", data)
	}
	return er.Error
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueDeadlineRace pins down the admission/deadline interaction: a
// request whose deadline expires while it waits in the queue must come
// back as "timeout" (503), never "shed" (it was admitted), and must never
// occupy a worker slot.
func TestQueueDeadlineRace(t *testing.T) {
	defer fault.Reset()
	// Every analysis sleeps 200ms inside its worker slot, so the single
	// worker stays busy long past the victim's 50ms deadline.
	fault.Set("service.analyze", fault.Mode{Kind: fault.KindDelay, Delay: 200 * time.Millisecond})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	done := make(chan int, 1)
	go func() {
		code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: workload.Ring(3).String()})
		done <- code
	}()
	waitFor(t, "worker busy", func() bool { return s.pool.InFlight() == 1 })

	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Source:    workload.Ring(4).String(),
		TimeoutMs: 50,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if eb := decodeError(t, data); eb.Code != CodeTimeout {
		t.Fatalf("code=%q, want %q (admitted request must not report shed)", eb.Code, CodeTimeout)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout response missing Retry-After")
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocking request: status=%d", code)
	}
	m := s.Metrics()
	if m.Timeouts.Load() != 1 || m.Shed.Load() != 0 {
		t.Fatalf("timeouts=%d shed=%d, want 1/0", m.Timeouts.Load(), m.Shed.Load())
	}
	// The victim never reached a worker: only the blocker was analyzed.
	if got := m.Analyses.Load(); got != 1 {
		t.Fatalf("analyses=%d, want 1 (expired request occupied a worker)", got)
	}
}

// TestShedWhenQueueFull fills the worker and the whole queue, then
// requires a fast 429 with Retry-After and code "shed" — and normal
// service once the backlog drains.
func TestShedWhenQueueFull(t *testing.T) {
	defer fault.Reset()
	fault.Set("service.analyze", fault.Mode{Kind: fault.KindDelay, Delay: 200 * time.Millisecond})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // 1 running + 2 queued
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: workload.Ring(3 + i).String()})
			if code != http.StatusOK {
				t.Errorf("backlog request %d: status=%d", i, code)
			}
		}(i)
	}
	waitFor(t, "full queue", func() bool {
		return s.pool.InFlight() == 1 && s.pool.Queued() == 2
	})

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: workload.Ring(9).String()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if eb := decodeError(t, data); eb.Code != CodeShed {
		t.Fatalf("code=%q, want %q", eb.Code, CodeShed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed took %v, not fast-fail", elapsed)
	}
	wg.Wait()
	if got := s.Metrics().Shed.Load(); got != 1 {
		t.Fatalf("shed=%d, want 1", got)
	}
	// Backlog drained: the same request now succeeds.
	if code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: workload.Ring(9).String()}); code != http.StatusOK {
		t.Fatalf("post-drain status=%d", code)
	}
}

// TestChaos is the failure-containment acceptance test: with a fault
// injected into a pipeline stage on ~10% of analyses and an unroll bomb
// inside a batch, the server must keep serving — every failure surfaces
// as a structured, correctly-coded error, nothing crashes, /healthz stays
// green, and the panic/shed/degraded counters account for every event.
// Run it under -race (CI does) to double as the data-race check.
func TestChaos(t *testing.T) {
	defer fault.Reset()
	fault.Set("analyze.clg", fault.Mode{Kind: fault.KindPanic, Every: 10})
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8})

	// Phase 1: concurrent singles with unique sources (no cache aliasing).
	const clients = 40
	codes := make([]int, clients)
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf("-- chaos %d\n%s", i, workload.Ring(3+i%5).String())
			resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
			codes[i], bodies[i] = resp.StatusCode, data
		}(i)
	}
	wg.Wait()
	var ok, internal, shed int
	for i := range codes {
		switch codes[i] {
		case http.StatusOK:
			ok++
		case http.StatusInternalServerError:
			internal++
			if eb := decodeError(t, bodies[i]); eb.Code != CodeInternal {
				t.Fatalf("500 with code %q: %s", eb.Code, bodies[i])
			}
		case http.StatusTooManyRequests:
			shed++
			if eb := decodeError(t, bodies[i]); eb.Code != CodeShed {
				t.Fatalf("429 with code %q: %s", eb.Code, bodies[i])
			}
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, codes[i], bodies[i])
		}
	}
	if ok == 0 {
		t.Fatal("no request survived the chaos")
	}
	if internal == 0 {
		t.Fatal("fault injection fired zero panics; the chaos tested nothing")
	}

	// Phase 2: a batch carrying an unroll bomb between healthy programs.
	// The bomb dies of resource_limit (predicted, not allocated); its
	// neighbours are independent.
	resp, data := postJSON(t, ts.URL+"/v1/analyze/batch", BatchRequest{
		Programs: []BatchProgram{
			{ID: "ok1", Source: workload.Pipeline(3, 2).String()},
			{ID: "bomb", Source: workload.NestedLoops(20, 2).String()},
			{ID: "ok2", Source: workload.RingBroken(4).String()},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d body=%s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	batchInternal := 0
	for _, r := range br.Results {
		if r.ID == "bomb" {
			if r.ErrorCode != CodeResourceLimit || !strings.Contains(r.Error, "unrolled rendezvous nodes") {
				t.Fatalf("bomb outcome: %+v", r)
			}
			continue
		}
		// Healthy items either succeed or were hit by the 10% fault.
		switch r.ErrorCode {
		case "":
			if r.Report == nil {
				t.Fatalf("item %s: no report and no error", r.ID)
			}
		case CodeInternal:
			batchInternal++
		default:
			t.Fatalf("item %s: unexpected code %q", r.ID, r.ErrorCode)
		}
	}

	// Phase 3: degraded analyses under the same chaos.
	degraded, lateInternal := 0, 0
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("-- degrade %d\n%s", i, workload.ForkFan(5, 4).String())
		resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
			Source:  src,
			Options: &WireOptions{Algorithm: "refined", Exact: true, MaxStates: 64, Degrade: true},
		})
		switch resp.StatusCode {
		case http.StatusOK:
			var ar AnalyzeResponse
			if err := json.Unmarshal(data, &ar); err != nil {
				t.Fatal(err)
			}
			var rep siwa.JSONReport
			if err := json.Unmarshal(ar.Report, &rep); err != nil {
				t.Fatal(err)
			}
			if !rep.Degraded {
				t.Fatalf("budget-starved exact run not degraded: %s", ar.Report)
			}
			degraded++
		case http.StatusInternalServerError: // the 10% fault got it first
			lateInternal++
		default:
			t.Fatalf("degrade request: status=%d body=%s", resp.StatusCode, data)
		}
	}

	// The metrics account for every event the chaos produced.
	m := s.Metrics()
	wantPanics := uint64(internal + batchInternal + lateInternal)
	if got := m.Panics.Load(); got != wantPanics {
		t.Fatalf("panics=%d, want %d (singles %d + batch %d + degrade-phase %d)",
			got, wantPanics, internal, batchInternal, lateInternal)
	}
	if got := m.Shed.Load(); got != uint64(shed) {
		t.Fatalf("shed=%d, want %d", got, shed)
	}
	if got := m.Degraded.Load(); got != uint64(degraded) {
		t.Fatalf("degraded=%d, want %d", got, degraded)
	}

	// The process survived: health is green and a clean request works.
	fault.Reset()
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after chaos: %d %s", code, body)
	}
	if code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: workload.Pipeline(4, 2).String()}); code != http.StatusOK {
		t.Fatalf("post-chaos analyze: status=%d", code)
	}
}

// TestHandlerPanicRecovered injects a panic on the request goroutine
// itself (not inside the analysis pipeline) and requires the recovery
// middleware to turn it into a structured 500 while the server lives on.
func TestHandlerPanicRecovered(t *testing.T) {
	defer fault.Reset()
	fault.Set("service.analyze", fault.Mode{Kind: fault.KindPanic})
	s, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: workload.Ring(3).String()})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if eb := decodeError(t, data); eb.Code != CodeInternal {
		t.Fatalf("code=%q", eb.Code)
	}
	if s.Metrics().Panics.Load() == 0 {
		t.Fatal("recovered panic not counted")
	}
	fault.Reset()
	if code, _, _ := analyze(t, ts.URL, AnalyzeRequest{Source: workload.Ring(3).String()}); code != http.StatusOK {
		t.Fatalf("server did not survive the panic: status=%d", code)
	}
}

// TestBatchPanicDoesNotKillProcess injects panics into batch-item
// goroutines, which bypass the HTTP middleware entirely: only the
// per-item recovery stands between the fault and os.Exit(2).
func TestBatchPanicDoesNotKillProcess(t *testing.T) {
	defer fault.Reset()
	fault.Set("service.analyze", fault.Mode{Kind: fault.KindPanic})
	s, ts := newTestServer(t, Config{Workers: 2})
	resp, data := postJSON(t, ts.URL+"/v1/analyze/batch", BatchRequest{
		Programs: []BatchProgram{
			{ID: "a", Source: workload.Ring(3).String()},
			{ID: "b", Source: workload.Ring(4).String()},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status=%d body=%s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	for _, r := range br.Results {
		if r.ErrorCode != CodeInternal || !strings.Contains(r.Error, "injected fault") {
			t.Fatalf("item %s: %+v", r.ID, r)
		}
	}
	if got := s.Metrics().Panics.Load(); got != 2 {
		t.Fatalf("panics=%d, want 2", got)
	}
}

// TestDegradeEndToEnd is the graceful-degradation acceptance path: an
// Exact request with a deadline too short for the exponential exploration
// but ample for the polynomial pipeline returns HTTP 200 with the refined
// verdict and degraded: true — and the degraded report is never cached,
// so a retry with more headroom gets the full result.
func TestDegradeEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := workload.ForkFan(8, 6).String()
	req := AnalyzeRequest{
		Source:    src,
		Options:   &WireOptions{Algorithm: "refined", Exact: true, Degrade: true},
		TimeoutMs: 300,
	}
	code, ar, rep := analyze(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if !rep.Degraded || len(rep.DegradedReasons) == 0 {
		t.Fatalf("not degraded: %s", ar.Report)
	}
	if rep.Deadlock.Algorithm != "refined" {
		t.Fatalf("fallback verdict: %+v", rep.Deadlock)
	}
	if s.Metrics().Degraded.Load() != 1 {
		t.Fatalf("degraded=%d, want 1", s.Metrics().Degraded.Load())
	}
	// Degraded results are timing-dependent: never cached.
	code2, ar2, _ := analyze(t, ts.URL, req)
	if code2 != http.StatusOK || ar2.Cached {
		t.Fatalf("degraded report was cached: status=%d cached=%v", code2, ar2.Cached)
	}
	// The identical request without Degrade stays the hard 503.
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Source:    src,
		Options:   &WireOptions{Algorithm: "refined", Exact: true},
		TimeoutMs: 300,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d body=%s", resp.StatusCode, data)
	}
	if eb := decodeError(t, data); eb.Code != CodeTimeout {
		t.Fatalf("code=%q", eb.Code)
	}
}

// TestErrorTaxonomy locks the (status, code) pair for every error class a
// client can trigger, plus the response body shape.
func TestErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	post := func(body string) (int, ErrorBody) {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, decodeError(t, data)
	}
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed json", "{nope", http.StatusBadRequest, CodeInvalidRequest},
		{"missing source", `{"source":""}`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown algorithm", `{"source":"x","options":{"algorithm":"nope"}}`, http.StatusBadRequest, CodeInvalidRequest},
		{"parse failure", `{"source":"task t is begin oops end;"}`, http.StatusUnprocessableEntity, CodeParseError},
		{"oversized body", fmt.Sprintf(`{"source":%q}`, strings.Repeat("x", 4096)), http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"resource limit", fmt.Sprintf(`{"source":%q}`, workload.NestedLoops(20, 2).String()), http.StatusUnprocessableEntity, CodeResourceLimit},
	}
	for _, c := range cases {
		if len(c.body) > 2048 && c.code != CodeTooLarge {
			// The bomb source must fit under the body cap to reach the
			// limits check; regenerate the server if this ever trips.
			t.Fatalf("%s: body accidentally exceeds MaxBodyBytes", c.name)
		}
		status, eb := post(c.body)
		if status != c.status || eb.Code != c.code {
			t.Errorf("%s: got (%d, %q), want (%d, %q): %s", c.name, status, eb.Code, c.status, c.code, eb.Message)
		}
	}
}
