package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync/atomic"
	"time"

	siwa "repro"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Server is the analysis service: HTTP handlers over a shared result
// cache, worker pool, and metrics. Construct with New; serve with Run (or
// mount Handler in a larger mux). All methods are safe for concurrent use.
type Server struct {
	cfg        Config
	cache      *Cache           // nil when result caching is disabled
	stageCache *siwa.StageCache // nil when stage caching is disabled
	pool       *Pool
	metrics    *Metrics
	exporter   *obs.Exporter
	handler    http.Handler
	reqID      atomic.Uint64
	draining   atomic.Bool // graceful shutdown has begun; terminal
}

// New builds a Server from cfg (normalized first).
func New(cfg Config) *Server {
	cfg = cfg.Normalize()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.Workers, cfg.QueueDepth),
		metrics: newMetrics(),
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewCache(cfg.CacheEntries)
	}
	if cfg.StageCacheMB > 0 {
		s.stageCache = siwa.NewStageCache(int64(cfg.StageCacheMB) << 20)
	}
	sampleN, slow := cfg.TraceSample, cfg.SlowThreshold
	if sampleN < 0 {
		sampleN = 0 // sampling disabled: only slow/degraded/errored retained
	}
	if slow < 0 {
		slow = 0 // slow-path disabled
	}
	s.exporter = obs.NewExporter(cfg.TraceRing, sampleN, slow)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.exporter.ServeList)
	mux.HandleFunc("GET /debug/traces/{id}", s.exporter.ServeGet)
	if cfg.EnablePprof {
		// The index route also serves the named profiles (heap,
		// goroutine, ...) via its trailing slash.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Tracing wraps panic recovery so the 500 a recovered panic writes is
	// observed by the status recorder and the trace is retained as errored.
	s.handler = s.withTracing(s.recoverPanics(s.withRequestID(mux)))
	return s
}

// Exporter exposes the trace ring (for tests and embedding servers).
func (s *Server) Exporter() *obs.Exporter { return s.exporter }

// requestIDKey carries the per-request correlation id in the context.
type requestIDKey struct{}

// RequestID returns the correlation id minted (or accepted) for the
// request, or "" outside a request served by this package.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// validRequestID accepts inbound X-Request-Id values that are safe to
// echo and log: 1-128 printable ASCII characters with no spaces. Anything
// else (including absence) is replaced by a generated id, so a hostile
// header can never inject log records or response-header garbage.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// withRequestID assigns every request its correlation id: an inbound
// X-Request-Id header is accepted (so a gateway in front can trace a
// request end to end), otherwise one is generated. The id is echoed on
// the response — before the handler runs, so even panic-recovery 500s
// carry it — and stored in the context for the request log record.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = s.nextRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// recoverPanics is the outermost middleware: a panic anywhere on the
// request goroutine (handler bugs, injected faults, pipeline panics that
// escaped the library's own recovery) becomes a structured 500 instead
// of killing the connection, and the process keeps serving.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// The stdlib sentinel for deliberately aborted responses.
				panic(rec)
			}
			s.metrics.Panics.Add(1)
			if s.cfg.Logger != nil {
				s.cfg.Logger.LogAttrs(r.Context(), slog.LevelError, "panic recovered",
					slog.String("endpoint", r.URL.Path),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())))
			}
			// Best effort: if the handler already wrote a status line this
			// write is a no-op on the header and garbage on the body, but
			// the usual case (panic before any write) gets a clean 500.
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: ErrorBody{
				Code:    CodeInternal,
				Message: fmt.Sprintf("internal error: %v", rec),
				TraceID: w.Header().Get("X-Trace-Id"),
			}})
		}()
		if err := fault.Inject("service.handler"); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: ErrorBody{
				Code:    CodeInternal,
				Message: err.Error(),
				TraceID: w.Header().Get("X-Trace-Id"),
			}})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Handler returns the service's HTTP handler, for mounting or httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the live counters (shared, not a snapshot).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats snapshots the result-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// StageCacheStats snapshots the stage-cache counters (zero when the
// stage cache is disabled).
func (s *Server) StageCacheStats() siwa.StageCacheStats { return s.stageCache.Stats() }

// Run listens on the configured address and serves until ctx is
// cancelled, then shuts down gracefully: the listener closes, in-flight
// requests drain for up to ShutdownGrace, and Run returns nil on a clean
// drain (or the shutdown error if the grace period expired).
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run on a caller-provided listener (tests use a :0 listener to
// learn the port). It owns ln and closes it on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip readiness before draining: a load balancer polling /readyz
	// (e.g. the cluster gateway) stops routing new work here while
	// in-flight requests finish. Draining is terminal — the listener is
	// about to close and never reopens on this Server.
	s.draining.Store(true)
	//lint:ignore ctxflow ctx is already done here; the grace window must outlive it to drain in-flight requests
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	err := hs.Shutdown(sctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
