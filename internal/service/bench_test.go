package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/workload"
)

// The cache-hit/miss pair quantifies the content-addressed cache's win on
// a workload.Pipeline(8, 4) program: a hit is one SHA-256 plus an LRU
// lookup, a miss pays parse + unroll + sync graph + detection.
func benchAnalyze(b *testing.B, cfg Config) {
	b.Helper()
	s := New(cfg)
	body, err := json.Marshal(AnalyzeRequest{
		Source:  workload.Pipeline(8, 4).String(),
		Options: &WireOptions{Algorithm: "pairs"},
	})
	if err != nil {
		b.Fatal(err)
	}
	do := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status=%d body=%s", rec.Code, rec.Body.Bytes())
		}
	}
	do() // warm the cache (a no-op when caching is disabled)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}

func BenchmarkServiceCacheHit(b *testing.B)  { benchAnalyze(b, Config{}) }
func BenchmarkServiceCacheMiss(b *testing.B) { benchAnalyze(b, Config{CacheEntries: -1}) }

// The traced variant bounds the tracer's cost against CacheMiss: every
// analysis records the full span tree and feeds the stage histograms.
func BenchmarkServiceCacheMissTraced(b *testing.B) {
	benchAnalyze(b, Config{CacheEntries: -1, TraceAll: true})
}

// The untraced variant turns the trace exporter fully off (no sampling,
// no slow retention, no export). Comparing against BenchmarkServiceCacheHit
// — which exports every request at the default sample rate — bounds the
// exporter's hot-path overhead; the budget is <2%.
func BenchmarkServiceCacheHitUntraced(b *testing.B) {
	benchAnalyze(b, Config{TraceSample: -1, SlowThreshold: -1})
}
