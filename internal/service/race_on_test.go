//go:build race

package service

// raceEnabled reports whether the race detector instruments this build;
// allocation-count pins are skipped under it (instrumentation allocates).
const raceEnabled = true
