// Package petri implements the place/transition-net baseline the paper's
// related work cites (Murata, Shenker and Shatz 1989: Ada deadlock
// detection on a Petri-net representation of rendezvous). It provides:
//
//   - a plain P/T net with interleaving firing semantics;
//   - a structural translation from MiniAda programs (one place per
//     control position of each task, one transition per realizable
//     rendezvous with each combination of control successors);
//   - exact reachability analysis with dead-marking classification — an
//     independent implementation of the same behaviour space the wave
//     explorer computes, used to cross-validate both (property-tested:
//     the two semantics must agree on deadlock, completion and stall
//     verdicts);
//   - structural invariant analysis: P-invariants (token-conservation
//     vectors) and T-invariants (firing-count vectors of cyclic
//     behaviour) via rational Gaussian elimination, the machinery
//     Murata-style "inconsistency" checks are built from.
//
// We do not claim to reproduce Murata et al.'s exact algorithm (their
// paper is not the reproduction target); the package supplies the net
// substrate, the exact baseline, and the invariant diagnostics.
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Place is a net place.
type Place struct {
	ID   int
	Name string
}

// Transition consumes one token from every Pre place and produces one on
// every Post place (all arc weights are 1 in the rendezvous translation).
type Transition struct {
	ID   int
	Name string
	Pre  []int
	Post []int
}

// Net is a place/transition net with an initial marking.
type Net struct {
	Places      []Place
	Transitions []Transition
	Initial     Marking
}

// Marking maps place id -> token count (dense).
type Marking []int

// Clone copies a marking.
func (m Marking) Clone() Marking { return append(Marking(nil), m...) }

// Key renders a marking as a map key.
func (m Marking) Key() string {
	b := make([]byte, len(m))
	for i, v := range m {
		if v > 255 {
			v = 255
		}
		b[i] = byte(v)
	}
	return string(b)
}

// AddPlace appends a place and returns its id.
func (n *Net) AddPlace(name string) int {
	id := len(n.Places)
	n.Places = append(n.Places, Place{ID: id, Name: name})
	return id
}

// AddTransition appends a transition and returns its id.
func (n *Net) AddTransition(name string, pre, post []int) int {
	id := len(n.Transitions)
	n.Transitions = append(n.Transitions, Transition{
		ID: id, Name: name,
		Pre:  append([]int(nil), pre...),
		Post: append([]int(nil), post...),
	})
	return id
}

// Enabled reports whether t can fire under m.
func (n *Net) Enabled(m Marking, t int) bool {
	// Count multiplicities in Pre (a transition may consume several
	// tokens from one place in general nets).
	need := map[int]int{}
	for _, p := range n.Transitions[t].Pre {
		need[p]++
	}
	for p, k := range need {
		if m[p] < k {
			return false
		}
	}
	return true
}

// Fire returns the successor marking of firing t under m (caller must
// ensure enabledness).
func (n *Net) Fire(m Marking, t int) Marking {
	out := m.Clone()
	for _, p := range n.Transitions[t].Pre {
		out[p]--
	}
	for _, p := range n.Transitions[t].Post {
		out[p]++
	}
	return out
}

// EnabledSet lists the transitions enabled under m.
func (n *Net) EnabledSet(m Marking) []int {
	var out []int
	for t := range n.Transitions {
		if n.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}

// Incidence returns the |P| x |T| incidence matrix C with
// C[p][t] = post(p,t) - pre(p,t).
func (n *Net) Incidence() [][]int {
	c := make([][]int, len(n.Places))
	for p := range c {
		c[p] = make([]int, len(n.Transitions))
	}
	for t, tr := range n.Transitions {
		for _, p := range tr.Pre {
			c[p][t]--
		}
		for _, p := range tr.Post {
			c[p][t]++
		}
	}
	return c
}

// String renders the net for debugging.
func (n *Net) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net(|P|=%d |T|=%d)\n", len(n.Places), len(n.Transitions))
	for _, t := range n.Transitions {
		pre := make([]string, len(t.Pre))
		for i, p := range t.Pre {
			pre[i] = n.Places[p].Name
		}
		post := make([]string, len(t.Post))
		for i, p := range t.Post {
			post[i] = n.Places[p].Name
		}
		sort.Strings(pre)
		sort.Strings(post)
		fmt.Fprintf(&b, "  %s: {%s} -> {%s}\n", t.Name, strings.Join(pre, ","), strings.Join(post, ","))
	}
	return b.String()
}
