package petri

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/waves"
	"repro/internal/workload"
)

func buildSrc(t *testing.T, src string) *Build {
	t.Helper()
	b, err := FromProgram(lang.MustParse(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const handshake = `
task t1 is
begin
  t2.sig1;
  accept sig2;
end;
task t2 is
begin
  accept sig1;
  t1.sig2;
end;
`

func TestNetShapeHandshake(t *testing.T) {
	b := buildSrc(t, handshake)
	// Places: per task start+done (4) + 4 rendezvous positions.
	if len(b.Net.Places) != 8 {
		t.Fatalf("places=%d", len(b.Net.Places))
	}
	// Transitions: 2 start + 2 rendezvous (each sync edge has one
	// successor combo here).
	if len(b.Net.Transitions) != 4 {
		t.Fatalf("transitions=%d:\n%s", len(b.Net.Transitions), b.Net)
	}
	// Initial marking: exactly the two start tokens.
	total := 0
	for _, v := range b.Net.Initial {
		total += v
	}
	if total != 2 {
		t.Fatalf("initial tokens=%d", total)
	}
}

func TestReachHandshakeCompletes(t *testing.T) {
	b := buildSrc(t, handshake)
	res := b.Reach(ReachOptions{})
	if !res.Completed || res.HasInfiniteWait() || res.Truncated {
		t.Fatalf("%+v", res)
	}
}

func TestReachDeadlock(t *testing.T) {
	b := buildSrc(t, `
task t1 is
begin
  accept sig1;
  t2.sig2;
end;
task t2 is
begin
  accept sig2;
  t1.sig1;
end;
`)
	res := b.Reach(ReachOptions{})
	if res.Completed || !res.HasInfiniteWait() {
		t.Fatalf("%+v", res)
	}
	if len(res.DeadMarkings) == 0 {
		t.Fatal("no dead marking recorded")
	}
	if stuck := b.StuckTasks(res.DeadMarkings[0]); len(stuck) != 2 {
		t.Fatalf("stuck=%v", stuck)
	}
}

func TestReachWhileLoopNet(t *testing.T) {
	// While loops keep cycles in the net; reachability must still
	// terminate (finite markings) and find both completion and the
	// producer stall.
	b := buildSrc(t, `
task prod is
begin
  cons.item;
end;
task cons is
begin
  while more loop
    accept item;
  end loop;
end;
`)
	res := b.Reach(ReachOptions{})
	if !res.Completed || !res.HasInfiniteWait() {
		t.Fatalf("%+v", res)
	}
}

// The headline cross-validation: the net semantics and the wave semantics
// are independent implementations of the same behaviour space; their
// verdicts must agree on random programs (branches, bounded loops,
// procedures all exercised).
func TestQuickReachAgreesWithWaves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		cfg.BranchProb = 0.25
		cfg.LoopProb = 0.2
		p := workload.Random(rng, cfg)
		wres, err := waves.ExploreProgram(p, waves.Options{MaxStates: 200000})
		if err != nil || wres.Truncated {
			return true
		}
		b, err := FromProgram(p, 0)
		if err != nil {
			return false
		}
		pres := b.Reach(ReachOptions{MaxMarkings: 400000})
		if pres.Truncated {
			return true
		}
		if pres.Completed != wres.Completed {
			t.Logf("completion disagrees (net=%v waves=%v) on\n%s", pres.Completed, wres.Completed, p)
			return false
		}
		if pres.HasInfiniteWait() != wres.HasAnomaly() {
			t.Logf("anomaly disagrees (net=%v waves=%v) on\n%s", pres.HasInfiniteWait(), wres.HasAnomaly(), p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPInvariantHandshake(t *testing.T) {
	b := buildSrc(t, handshake)
	invs := PInvariants(b.Net)
	if len(invs) == 0 {
		t.Fatal("no P-invariants; per-task token conservation expected")
	}
	// Every invariant must conserve the weighted count across one firing.
	m := b.Net.Initial
	for _, tr := range b.Net.Transitions {
		if !b.Net.Enabled(m, tr.ID) {
			continue
		}
		next := b.Net.Fire(m, tr.ID)
		for _, y := range invs {
			if WeightedTokens(y, m) != WeightedTokens(y, next) {
				t.Fatalf("invariant %v not conserved by %s", y, tr.Name)
			}
		}
	}
}

// P-invariant conservation along entire random runs.
func TestQuickPInvariantsConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		p := workload.Random(rng, cfg)
		b, err := FromProgram(p, 0)
		if err != nil {
			return false
		}
		invs := PInvariants(b.Net)
		m := b.Net.Initial.Clone()
		want := make([]int, len(invs))
		for i, y := range invs {
			want[i] = WeightedTokens(y, m)
		}
		// Random walk.
		for step := 0; step < 50; step++ {
			en := b.Net.EnabledSet(m)
			if len(en) == 0 {
				break
			}
			m = b.Net.Fire(m, en[rng.Intn(len(en))])
			for i, y := range invs {
				if WeightedTokens(y, m) != want[i] {
					t.Logf("invariant broken on\n%s", p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTInvariantCycle(t *testing.T) {
	// A while-loop net has cyclic behaviour, so a nonzero T-invariant
	// must exist, and applying it to the incidence matrix gives zero.
	b := buildSrc(t, `
task a is
begin
  while w loop
    b.m;
  end loop;
end;
task b is
begin
  while w loop
    accept m;
  end loop;
end;
`)
	invs := TInvariants(b.Net)
	if len(invs) == 0 {
		t.Fatal("no T-invariants despite cyclic behaviour")
	}
	c := b.Net.Incidence()
	for _, x := range invs {
		for p := range c {
			s := 0
			for tIdx, w := range x {
				s += c[p][tIdx] * w
			}
			if s != 0 {
				t.Fatalf("Cx != 0 for %v", x)
			}
		}
	}
}

func TestStraightLineNetHasNoTInvariant(t *testing.T) {
	b := buildSrc(t, handshake)
	if invs := TInvariants(b.Net); len(invs) != 0 {
		t.Fatalf("acyclic behaviour produced T-invariants: %v", invs)
	}
}

func TestTruncation(t *testing.T) {
	b := buildSrc(t, handshake)
	res := b.Reach(ReachOptions{MaxMarkings: 2})
	if !res.Truncated {
		t.Fatal("truncation not reported")
	}
}

func TestProceduresInNet(t *testing.T) {
	b := buildSrc(t, `
procedure ex is
begin
  peer.ping;
  accept pong;
end;
task me is
begin
  call ex;
end;
task peer is
begin
  accept ping;
  me.pong;
end;
`)
	res := b.Reach(ReachOptions{})
	if !res.Completed || res.HasInfiniteWait() {
		t.Fatalf("%+v", res)
	}
}
