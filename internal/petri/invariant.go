package petri

import (
	"math/big"
)

// Structural invariants via rational Gaussian elimination.
//
// A P-invariant is an integer place weighting y with yᵀC = 0: the weighted
// token count yᵀM is constant over every reachable marking (checked as a
// property test against reachability). A T-invariant is a firing-count
// vector x with Cx = 0: firing every transition x[t] times reproduces the
// marking — cyclic behaviour. These are the building blocks of
// Murata-style structural analysis.

// PInvariants returns an integer basis of the left null space of the
// incidence matrix (solutions of yᵀC = 0).
func PInvariants(n *Net) [][]int {
	c := n.Incidence()
	// yᵀC = 0  <=>  Cᵀ y = 0: null space of the transpose.
	t := transpose(c)
	return nullspaceInt(t)
}

// TInvariants returns an integer basis of the null space of the incidence
// matrix (solutions of Cx = 0).
func TInvariants(n *Net) [][]int {
	return nullspaceInt(n.Incidence())
}

// WeightedTokens returns the y-weighted token count of m.
func WeightedTokens(y []int, m Marking) int {
	s := 0
	for i, w := range y {
		s += w * m[i]
	}
	return s
}

func transpose(a [][]int) [][]int {
	if len(a) == 0 {
		return nil
	}
	rows, cols := len(a), len(a[0])
	out := make([][]int, cols)
	for j := 0; j < cols; j++ {
		out[j] = make([]int, rows)
		for i := 0; i < rows; i++ {
			out[j][i] = a[i][j]
		}
	}
	return out
}

// nullspaceInt computes an integer basis of {x : Ax = 0} by rational
// Gaussian elimination, scaling each basis vector to coprime integers.
func nullspaceInt(a [][]int) [][]int {
	rows := len(a)
	if rows == 0 {
		return nil
	}
	cols := len(a[0])
	// Build rational working copy.
	m := make([][]*big.Rat, rows)
	for i := range m {
		m[i] = make([]*big.Rat, cols)
		for j := range m[i] {
			m[i][j] = big.NewRat(int64(a[i][j]), 1)
		}
	}
	// Forward elimination with partial pivoting by nonzero.
	pivotCol := make([]int, 0, rows) // pivot column per pivot row
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		// Find pivot.
		p := -1
		for i := r; i < rows; i++ {
			if m[i][c].Sign() != 0 {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		m[r], m[p] = m[p], m[r]
		// Normalize pivot row.
		inv := new(big.Rat).Inv(m[r][c])
		for j := c; j < cols; j++ {
			m[r][j].Mul(m[r][j], inv)
		}
		// Eliminate.
		for i := 0; i < rows; i++ {
			if i == r || m[i][c].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m[i][c])
			for j := c; j < cols; j++ {
				t := new(big.Rat).Mul(f, m[r][j])
				m[i][j].Sub(m[i][j], t)
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	isPivot := make([]bool, cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	// One basis vector per free column.
	var basis [][]int
	for free := 0; free < cols; free++ {
		if isPivot[free] {
			continue
		}
		vec := make([]*big.Rat, cols)
		for j := range vec {
			vec[j] = new(big.Rat)
		}
		vec[free].SetInt64(1)
		// Back-substitute: pivot variable = -sum(row entries * free vars).
		for ri, pc := range pivotCol {
			v := new(big.Rat).Neg(m[ri][free])
			vec[pc] = v
		}
		basis = append(basis, ratToInt(vec))
	}
	return basis
}

// ratToInt scales a rational vector to coprime integers.
func ratToInt(v []*big.Rat) []int {
	lcm := big.NewInt(1)
	for _, r := range v {
		d := r.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(lcm, g)
		lcm.Mul(lcm, d)
	}
	ints := make([]*big.Int, len(v))
	gcd := new(big.Int)
	for i, r := range v {
		x := new(big.Int).Mul(r.Num(), new(big.Int).Div(lcm, r.Denom()))
		ints[i] = x
		if x.Sign() != 0 {
			if gcd.Sign() == 0 {
				gcd.Abs(x)
			} else {
				gcd.GCD(nil, nil, gcd, new(big.Int).Abs(x))
			}
		}
	}
	out := make([]int, len(v))
	for i, x := range ints {
		if gcd.Sign() != 0 {
			x = new(big.Int).Div(x, gcd)
		}
		out[i] = int(x.Int64())
	}
	return out
}
