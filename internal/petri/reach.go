package petri

// Reachability analysis: the exact baseline over the net semantics.

// ReachOptions tunes Reach.
type ReachOptions struct {
	// MaxMarkings caps the exploration (0 = 1<<20); Truncated is set
	// when hit.
	MaxMarkings int
}

// ReachResult summarizes a reachability exploration.
type ReachResult struct {
	// Markings counts distinct reachable markings; Firings counts
	// explored marking transitions.
	Markings int
	Firings  int
	// Completed reports a reachable marking with every task done.
	Completed bool
	// Dead counts reachable dead markings (no transition enabled) where
	// some task is not done — the net-side definition of an infinite
	// wait. DeadMarkings holds up to 64 of them.
	Dead         int
	DeadMarkings []Marking
	Truncated    bool
}

// HasInfiniteWait reports whether some dead non-final marking is
// reachable.
func (r *ReachResult) HasInfiniteWait() bool { return r.Dead > 0 }

// Reach explores the reachability graph of the built net breadth-first.
func (b *Build) Reach(opt ReachOptions) *ReachResult {
	if opt.MaxMarkings == 0 {
		opt.MaxMarkings = 1 << 20
	}
	res := &ReachResult{}
	n := b.Net
	seen := map[string]bool{}
	queue := []Marking{n.Initial}
	seen[n.Initial.Key()] = true
	res.Markings = 1
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		enabled := n.EnabledSet(m)
		if len(enabled) == 0 {
			if b.AllDone(m) {
				res.Completed = true
			} else {
				res.Dead++
				if len(res.DeadMarkings) < 64 {
					res.DeadMarkings = append(res.DeadMarkings, m)
				}
			}
			continue
		}
		for _, t := range enabled {
			next := n.Fire(m, t)
			res.Firings++
			k := next.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			res.Markings++
			if res.Markings >= opt.MaxMarkings {
				res.Truncated = true
				return res
			}
			queue = append(queue, next)
		}
	}
	return res
}

// StuckTasks lists the task indices not done in a dead marking, for
// reporting.
func (b *Build) StuckTasks(m Marking) []int {
	var out []int
	for ti, d := range b.DoneOf {
		if m[d] == 0 {
			out = append(out, ti)
		}
	}
	return out
}
