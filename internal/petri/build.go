package petri

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/sg"
)

// Build holds the net of a program together with the bookkeeping needed to
// interpret markings.
type Build struct {
	Net   *Net
	Graph *sg.Graph
	// PlaceOf maps a sync-graph rendezvous node to its "task waiting
	// here" place. DoneOf and StartOf map task indices to their terminal
	// and initial places.
	PlaceOf []int
	DoneOf  []int
	StartOf []int
}

// FromProgram translates a MiniAda program into a P/T net whose
// interleaving semantics matches the paper's execution-wave model:
//
//   - per task: a start place (one initial token), a place per rendezvous
//     position, and a done place;
//   - per task and initial position: a silent start transition modelling
//     the nondeterministic initial branch choice;
//   - per sync edge {s, a} and per combination of control successors of s
//     and a: one rendezvous transition consuming the two waiting tokens
//     and producing the two successor tokens (done places for e).
//
// Procedures are inlined and bounded loops expanded first, exactly as the
// wave explorer does, so the two analyses see the same program.
func FromProgram(p *lang.Program, loopLimit int) (*Build, error) {
	if len(p.Procs) > 0 || p.HasCalls() {
		p = p.InlineCalls()
	}
	expanded, err := cfg.ExpandBounded(p, loopLimit)
	if err != nil {
		return nil, err
	}
	g, err := sg.FromProgram(expanded)
	if err != nil {
		return nil, err
	}

	b := &Build{
		Net:     &Net{},
		Graph:   g,
		PlaceOf: make([]int, g.N()),
		DoneOf:  make([]int, len(g.Tasks)),
		StartOf: make([]int, len(g.Tasks)),
	}
	for i := range b.PlaceOf {
		b.PlaceOf[i] = -1
	}
	for ti, name := range g.Tasks {
		b.StartOf[ti] = b.Net.AddPlace("start." + name)
		b.DoneOf[ti] = b.Net.AddPlace("done." + name)
		for _, r := range g.TaskNodes(ti) {
			b.PlaceOf[r] = b.Net.AddPlace("at." + nodeName(g, r))
		}
	}

	// posPlace resolves a control position of task ti to a place.
	posPlace := func(ti, node int) int {
		if node == g.E {
			return b.DoneOf[ti]
		}
		return b.PlaceOf[node]
	}

	// Start transitions: nondeterministic initial choice per task.
	for ti := range g.Tasks {
		for i, first := range g.InitialNodes(ti) {
			b.Net.AddTransition(
				fmt.Sprintf("start.%s.%d", g.Tasks[ti], i),
				[]int{b.StartOf[ti]},
				[]int{posPlace(ti, first)},
			)
		}
	}

	// Rendezvous transitions.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Sync[u] {
			if u > v {
				continue
			}
			tu, tv := g.TaskOf[u], g.TaskOf[v]
			for _, su := range g.Control.Succ(u) {
				for _, sv := range g.Control.Succ(v) {
					b.Net.AddTransition(
						fmt.Sprintf("rv.%s.%s.%s.%s",
							nodeName(g, u), nodeName(g, v),
							posName(g, tu, su), posName(g, tv, sv)),
						[]int{b.PlaceOf[u], b.PlaceOf[v]},
						[]int{posPlace(tu, su), posPlace(tv, sv)},
					)
				}
			}
		}
	}

	// Initial marking: one token on every start place.
	b.Net.Initial = make(Marking, len(b.Net.Places))
	for ti := range g.Tasks {
		b.Net.Initial[b.StartOf[ti]] = 1
	}
	return b, nil
}

func nodeName(g *sg.Graph, id int) string {
	n := g.Nodes[id]
	if n.Label != "" {
		return n.Label
	}
	return n.String()
}

func posName(g *sg.Graph, ti, node int) string {
	if node == g.E {
		return "done." + g.Tasks[ti]
	}
	return nodeName(g, node)
}

// AllDone reports whether every task's done place is marked.
func (b *Build) AllDone(m Marking) bool {
	for _, d := range b.DoneOf {
		if m[d] == 0 {
			return false
		}
	}
	return true
}
