package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("active with nothing armed")
	}
	if err := Inject("anything"); err != nil {
		t.Fatalf("disabled inject: %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	want := errors.New("boom")
	Set("p", Mode{Kind: KindError, Err: want})
	if err := Inject("p"); !errors.Is(err, want) {
		t.Fatalf("err=%v", err)
	}
	// Unregistered points stay clean while others are armed.
	if err := Inject("other"); err != nil {
		t.Fatalf("other: %v", err)
	}
	Set("q", Mode{Kind: KindError})
	if err := Inject("q"); err == nil || err.Error() != "injected fault at q" {
		t.Fatalf("generic err=%v", err)
	}
}

func TestPanicModeCarriesPointName(t *testing.T) {
	defer Reset()
	Set("p", Mode{Kind: KindPanic})
	defer func() {
		v := recover()
		inj, ok := v.(Injected)
		if !ok || inj.Point != "p" {
			t.Fatalf("recovered %#v", v)
		}
	}()
	Inject("p")
	t.Fatal("did not panic")
}

func TestDelayMode(t *testing.T) {
	defer Reset()
	Set("p", Mode{Kind: KindDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("did not delay")
	}
}

func TestEverySampling(t *testing.T) {
	defer Reset()
	Set("p", Mode{Kind: KindError, Every: 10})
	fired := 0
	for i := 0; i < 100; i++ {
		if Inject("p") != nil {
			fired++
		}
	}
	if fired != 10 {
		t.Fatalf("fired %d of 100, want 10", fired)
	}
	if Hits("p") != 100 {
		t.Fatalf("hits=%d", Hits("p"))
	}
}

func TestClearAndReset(t *testing.T) {
	Set("a", Mode{Kind: KindError})
	Set("b", Mode{Kind: KindError})
	Clear("a")
	if Inject("a") != nil {
		t.Fatal("cleared point still fires")
	}
	if Inject("b") == nil {
		t.Fatal("sibling point disarmed by Clear")
	}
	Reset()
	if Active() || Inject("b") != nil {
		t.Fatal("reset did not disarm")
	}
}

func TestParseSpec(t *testing.T) {
	defer Reset()
	err := ParseSpec("a:panic:every=10; b:delay=5ms ;c:error=kaput")
	if err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("not armed")
	}
	if err := Inject("c"); err == nil || err.Error() != "kaput" {
		t.Fatalf("c: %v", err)
	}
	for i := 0; i < 9; i++ {
		Inject("a") // hits 1..9: sampled out
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("10th hit did not panic")
			}
		}()
		Inject("a")
	}()

	for _, bad := range []string{
		"nokind",
		"a:explode",
		"a:delay=notaduration",
		"a:panic:often=2",
		"a:panic:every=0",
	} {
		Reset()
		if err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
		if Active() {
			t.Errorf("spec %q armed points despite error", bad)
		}
	}
}

func TestInitFromEnv(t *testing.T) {
	defer Reset()
	t.Setenv("SIWA_FAULTS", "")
	if err := InitFromEnv(); err != nil || Active() {
		t.Fatalf("empty env: err=%v active=%v", err, Active())
	}
	t.Setenv("SIWA_FAULTS", "x:error")
	if err := InitFromEnv(); err != nil {
		t.Fatal(err)
	}
	if Inject("x") == nil {
		t.Fatal("env-armed point did not fire")
	}
}
