// Package fault is a zero-dependency failure-injection registry for chaos
// testing the analysis pipeline and the HTTP service. Code under test calls
// Inject at named failure points; the call is a single atomic load (and
// therefore free) unless injection has been armed, either by a test calling
// Set, or by the SIWA_FAULTS environment variable via InitFromEnv.
//
// A point can panic, sleep, or return an error, and can be sampled (fire on
// every Nth hit) so chaos tests can poison a deterministic fraction of
// traffic. Points that were never registered are always no-ops, so
// production binaries pay one atomic bool per call site and nothing else.
package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed failure point does when it fires.
type Kind int

const (
	// KindPanic panics with a recognizable value carrying the point name.
	KindPanic Kind = iota
	// KindDelay sleeps for Mode.Delay, simulating a slow dependency.
	KindDelay
	// KindError returns Mode.Err (or a generic injected error when nil).
	KindError
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	}
	return "?"
}

// Mode configures one failure point.
type Mode struct {
	Kind Kind
	// Delay is the sleep duration for KindDelay.
	Delay time.Duration
	// Err is returned by KindError points; nil means a generic error
	// naming the point.
	Err error
	// Every samples the point: it fires on hit numbers divisible by Every.
	// 0 or 1 fires on every hit; 10 fires on 10% of hits, deterministically.
	Every int
}

// Injected is the panic value of a KindPanic point, so recovery layers can
// tell an injected panic from a real one in test assertions.
type Injected struct{ Point string }

func (i Injected) String() string { return "injected fault at " + i.Point }

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  map[string]*point
)

type point struct {
	mode Mode
	hits atomic.Uint64
}

// Set arms the named failure point and enables injection globally.
func Set(name string, m Mode) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = map[string]*point{}
	}
	points[name] = &point{mode: m}
	enabled.Store(true)
}

// Clear disarms one point; other points stay armed.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	if len(points) == 0 {
		enabled.Store(false)
	}
}

// Reset disarms every point and disables injection. Tests should defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	enabled.Store(false)
}

// Active reports whether any failure point is armed.
func Active() bool { return enabled.Load() }

// Hits reports how many times the named point has been reached (not how
// many times it fired), for test accounting. 0 for unknown points.
func Hits(name string) uint64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Inject triggers the named failure point. Disabled or unregistered points
// return nil immediately; armed points panic, sleep, or return an error
// according to their Mode (subject to Every-N sampling).
func Inject(name string) error {
	return inject(nil, name)
}

// InjectCtx is Inject for call sites that hold a context: a KindDelay
// sleep is cut short when ctx is cancelled, so an injected network stall
// cannot outlive the request that hit it. Other kinds behave exactly like
// Inject.
func InjectCtx(ctx context.Context, name string) error {
	return inject(ctx.Done(), name)
}

func inject(done <-chan struct{}, name string) error {
	mode, fire := Fires(name)
	if !fire {
		return nil
	}
	switch mode.Kind {
	case KindPanic:
		panic(Injected{Point: name})
	case KindDelay:
		if done == nil {
			time.Sleep(mode.Delay)
			return nil
		}
		t := time.NewTimer(mode.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-done:
			return errors.New("injected delay at " + name + " aborted by context")
		}
	case KindError:
		if mode.Err != nil {
			return mode.Err
		}
		return errors.New("injected fault at " + name)
	}
	return nil
}

// Fires reports whether the named point is armed and fires on this hit
// (advancing the hit counter), without performing the point's action.
// Call sites whose failure behavior is not expressible as a Mode kind —
// like the net transport's connection reset or black hole — use Fires to
// sample and then act themselves, with the armed Mode for parameters.
func Fires(name string) (Mode, bool) {
	if !enabled.Load() {
		return Mode{}, false
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return Mode{}, false
	}
	n := p.hits.Add(1)
	every := p.mode.Every
	if every < 1 {
		every = 1
	}
	if n%uint64(every) != 0 {
		return Mode{}, false
	}
	return p.mode, true
}

// InitFromEnv arms failure points from the SIWA_FAULTS environment
// variable, the production escape hatch for game days. The spec is a
// semicolon-separated list of point specs:
//
//	point:panic[:every=N]
//	point:delay=DUR[:every=N]
//	point:error[=MESSAGE][:every=N]
//
// e.g. SIWA_FAULTS="analyze.detect:panic:every=10;service.analyze:delay=50ms".
// An empty or unset variable is a no-op; a malformed spec returns an error
// and arms nothing.
func InitFromEnv() error {
	spec := os.Getenv("SIWA_FAULTS")
	if spec == "" {
		return nil
	}
	return ParseSpec(spec)
}

// ParseSpec parses and arms an SIWA_FAULTS-format spec. See InitFromEnv.
func ParseSpec(spec string) error {
	type parsed struct {
		name string
		mode Mode
	}
	var all []parsed
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			return fmt.Errorf("fault: spec %q: want point:kind[...]", entry)
		}
		p := parsed{name: parts[0]}
		kind, arg, _ := strings.Cut(parts[1], "=")
		switch kind {
		case "panic":
			p.mode.Kind = KindPanic
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("fault: spec %q: bad delay: %v", entry, err)
			}
			p.mode.Kind, p.mode.Delay = KindDelay, d
		case "error":
			p.mode.Kind = KindError
			if arg != "" {
				p.mode.Err = errors.New(arg)
			}
		default:
			return fmt.Errorf("fault: spec %q: unknown kind %q (panic, delay, error)", entry, kind)
		}
		for _, opt := range parts[2:] {
			k, v, _ := strings.Cut(opt, "=")
			if k != "every" {
				return fmt.Errorf("fault: spec %q: unknown option %q", entry, k)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("fault: spec %q: bad every=%q", entry, v)
			}
			p.mode.Every = n
		}
		all = append(all, p)
	}
	for _, p := range all {
		Set(p.name, p.mode)
	}
	return nil
}
