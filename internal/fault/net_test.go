package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func netClient(prefix string) *http.Client {
	return &http.Client{Transport: NewTransport(nil, prefix)}
}

func TestTransportDisabledPassthrough(t *testing.T) {
	Reset()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	resp, err := netClient("net").Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != "ok" {
		t.Fatalf("status=%d body=%q", resp.StatusCode, data)
	}
}

// TestTransportLatencyAbortsWithContext pins the ctx-aware stall: an
// injected delay far longer than the request's deadline must not hold
// the request hostage — the round trip fails as soon as the context does.
func TestTransportLatencyAbortsWithContext(t *testing.T) {
	defer Reset()
	var served atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
	}))
	defer ts.Close()
	Set("net.latency", Mode{Kind: KindDelay, Delay: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := netClient("net").Do(req)
	if err == nil {
		t.Fatal("stalled request must fail once its context expires")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("injected stall held the request %v past its 50ms context", elapsed)
	}
	if served.Load() != 0 {
		t.Fatal("stalled request reached the server anyway")
	}
}

func TestTransportReset(t *testing.T) {
	defer Reset()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	Set("net.reset", Mode{Kind: KindError})
	_, err := netClient("net").Get(ts.URL)
	if err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("err=%v, want an injected connection reset", err)
	}
}

// TestTransportResetHostQualified pins the single-replica targeting: a
// point armed for one host's wire leaves every other backend untouched.
func TestTransportResetHostQualified(t *testing.T) {
	defer Reset()
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer b.Close()
	hostA := strings.TrimPrefix(a.URL, "http://")
	Set("net.reset@"+HostKey(hostA), Mode{Kind: KindError})
	c := netClient("net")
	if _, err := c.Get(a.URL); err == nil {
		t.Fatal("targeted host survived its reset fault")
	}
	resp, err := c.Get(b.URL)
	if err != nil {
		t.Fatalf("untargeted host failed: %v", err)
	}
	resp.Body.Close()
}

// TestTransportResetSampled pins Every-N sampling through the transport:
// with every=2 the first request passes and the second resets.
func TestTransportResetSampled(t *testing.T) {
	defer Reset()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	Set("net.reset", Mode{Kind: KindError, Every: 2})
	c := netClient("net")
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatalf("first request (hit 1 of every=2) failed: %v", err)
	}
	resp.Body.Close()
	if _, err := c.Get(ts.URL); err == nil {
		t.Fatal("second request (hit 2 of every=2) survived")
	}
}

// TestTransportTruncate pins the cut body: the response round trip
// succeeds, but reading it fails partway with an unexpected EOF, the
// way a mid-stream connection drop looks to a client.
func TestTransportTruncate(t *testing.T) {
	defer Reset()
	payload := strings.Repeat("x", 1000)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()
	Set("net.truncate", Mode{Kind: KindError})
	resp, err := netClient("net").Get(ts.URL)
	if err != nil {
		t.Fatalf("truncation must not fail the round trip itself: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err=%v, want io.ErrUnexpectedEOF", err)
	}
	if len(data) == 0 || len(data) >= len(payload) {
		t.Fatalf("read %d of %d bytes; want a strict mid-body cut", len(data), len(payload))
	}
}

func TestTransportBlackhole(t *testing.T) {
	defer Reset()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	Set("net.blackhole", Mode{Kind: KindError})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := netClient("net").Do(req)
	if err == nil {
		t.Fatal("black-holed request must fail via its context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("black hole held the request %v past its 50ms context", elapsed)
	}
}
