package fault

import (
	"errors"
	"io"
	"net/http"
	"strings"
)

// Network-layer failure points. A Transport with prefix P consults, in
// order, the generic point and a host-qualified variant for each class:
//
//	P.latency[@HOST]    KindDelay: stall before the request leaves
//	P.reset[@HOST]      any kind: fail the round trip like a peer reset
//	P.blackhole[@HOST]  any kind: swallow the request until ctx cancels
//	P.truncate[@HOST]   any kind: cut the response body short mid-read
//
// HOST is the target's URL host with every ":" replaced by "-" (the
// SIWA_FAULTS spec splits entries on ":"), e.g.
//
//	SIWA_FAULTS="gateway.net.latency@127.0.0.1-8081:delay=800ms"
//
// browns out only the replica on port 8081. Generic points hit every
// backend.
const (
	netLatency   = ".latency"
	netReset     = ".reset"
	netBlackhole = ".blackhole"
	netTruncate  = ".truncate"
)

// HostKey renders a URL host ("127.0.0.1:8081") as the ":"-free form used
// in host-qualified net point names.
func HostKey(host string) string { return strings.ReplaceAll(host, ":", "-") }

// Transport is an http.RoundTripper wrapper that injects network-level
// failures — added latency, connection resets, black holes, truncated
// response bodies — at named points, so chaos drills can break the wire
// between two processes without real packet loss. When no fault is armed
// the wrapper costs one atomic load per request.
type Transport struct {
	base   http.RoundTripper
	prefix string
}

// NewTransport wraps base (nil means http.DefaultTransport) with the
// injection points "<prefix>.latency", ".reset", ".blackhole", and
// ".truncate", each also checked in a host-qualified "@HOST" variant.
func NewTransport(base http.RoundTripper, prefix string) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, prefix: prefix}
}

// RoundTrip applies any armed network faults around the base round trip.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !enabled.Load() {
		return t.base.RoundTrip(req)
	}
	ctx := req.Context()
	host := HostKey(req.URL.Host)
	for _, name := range t.variants(netLatency, host) {
		if err := InjectCtx(ctx, name); err != nil {
			return nil, err
		}
	}
	for _, name := range t.variants(netReset, host) {
		if _, fire := Fires(name); fire {
			return nil, errors.New("injected fault: connection reset by " + req.URL.Host)
		}
	}
	for _, name := range t.variants(netBlackhole, host) {
		if _, fire := Fires(name); fire {
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	for _, name := range t.variants(netTruncate, host) {
		if _, fire := Fires(name); fire {
			keep := resp.ContentLength / 2
			if keep < 1 {
				keep = 1
			}
			resp.Body = &truncatedBody{body: resp.Body, remaining: keep}
			break
		}
	}
	return resp, nil
}

// variants lists the generic and host-qualified names for one point class.
func (t *Transport) variants(class, host string) [2]string {
	p := t.prefix + class
	return [2]string{p, p + "@" + host}
}

// truncatedBody delivers at most remaining bytes of the real body and then
// fails the read the way a mid-stream connection drop does, so the client
// sees a short body with an unexpected-EOF error rather than a clean end.
type truncatedBody struct {
	body      io.ReadCloser
	remaining int64
}

func (tb *truncatedBody) Read(p []byte) (int, error) {
	if tb.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > tb.remaining {
		p = p[:tb.remaining]
	}
	n, err := tb.body.Read(p)
	tb.remaining -= int64(n)
	if err == io.EOF && tb.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (tb *truncatedBody) Close() error { return tb.body.Close() }
