// Package coexec derives cross-task co-executability facts in the sense
// of Callahan and Subhlok (1988) — the external analysis the paper's
// constraint 3b appeals to. Write NC(x, y) for "no single execution runs
// both x and y to completion"; internal/order computes the intra-task
// relation and this package propagates it across sync edges.
//
// REPRODUCTION FINDING — do not feed these facts to the detectors. The
// completion-based relation is the one the paper names (3b: nodes of a
// deadlock set "may be executed in the same run"), but it is UNSOUND as a
// NOT-COEXEC input to the marking algorithms: in a deadlocked execution
// the stuck heads and their unreached tails never run to completion, so
// "never both complete" is vacuously true of exactly the node pairs a
// real deadlock strands, and marking them removes real deadlock cycles.
// TestCompletionFactsUnsoundForMarking pins a program where these facts
// make the head-tail-pairs detector certify a deadlocking program. The
// sound intra-task core the detectors do use ("the cycle's pass through a
// task is a single control path, so mutually unreachable nodes cannot
// both lie on it") lives in internal/order; the exact-1c alternative is
// core.Enumerate.
//
// The package remains as a faithful implementation of the cited analysis
// (useful for program understanding and for documenting the finding).
// Two sound-for-completion-semantics rules run to a fixed point over
// loop-free sync graphs:
//
//  1. Enabling-chain propagation. If some node d dominates y inside y's
//     task (d may be y itself) and every sync partner p of d satisfies
//     NC(p, x), then NC(x, y): any run executing y executes d, which
//     requires one of d's partners to execute — impossible in a run that
//     also executes x.
//
//  2. Shared unique partner. Rendezvous points execute at most once
//     (paper §2: EXECUTED nodes cannot re-execute). If x != y and both
//     have the same single partner d (Sync[x] = Sync[y] = {d}), then at
//     most one of them can ever complete, so NC(x, y).
//
// On graphs with control cycles the analysis is a no-op.
package coexec

import (
	"repro/internal/order"
	"repro/internal/sg"
)

// Refine adds cross-task NOT-COEXEC facts to info, returning the number
// of node pairs added. The graph must be the one info was computed from.
func Refine(g *sg.Graph, info *order.Info) int {
	if !info.LoopFree {
		return 0
	}
	added := 0
	add := func(x, y int) {
		if x != y && !info.NotCoexec.Get(x, y) {
			info.AddNotCoexec(x, y)
			added++
		}
	}

	rendezvous := make([]int, 0, g.N())
	for _, n := range g.Nodes {
		if n.IsRendezvous() {
			rendezvous = append(rendezvous, n.ID)
		}
	}

	// Rule 2 is not recursive; apply it once up front.
	for i, x := range rendezvous {
		if len(g.Sync[x]) != 1 {
			continue
		}
		for _, y := range rendezvous[i+1:] {
			if len(g.Sync[y]) == 1 && g.Sync[x][0] == g.Sync[y][0] {
				add(x, y)
			}
		}
	}

	// Dominator chains per node, computed once: the rendezvous nodes of
	// y's own task that dominate y (y included).
	idom := g.Control.Dominators(g.B)
	domChain := make([][]int, g.N())
	for _, y := range rendezvous {
		chain := []int{y}
		for d := idom[y]; d != -1 && d != g.B && d != idom[d]; d = idom[d] {
			if g.Nodes[d].IsRendezvous() && g.TaskOf[d] == g.TaskOf[y] {
				chain = append(chain, d)
			}
		}
		domChain[y] = chain
	}

	// Rule 1 to a fixed point (conclusions feed back soundly: premises
	// are always already-established NC facts).
	changed := true
	for changed {
		changed = false
		for _, y := range rendezvous {
			for _, x := range rendezvous {
				if x == y || g.TaskOf[x] == g.TaskOf[y] || info.NotCoexec.Get(x, y) {
					continue
				}
				if blockedBy(g, info, x, domChain[y]) {
					add(x, y)
					changed = true
				}
			}
		}
	}
	return added
}

// blockedBy reports whether some dominator d of y (from chain) has a
// nonempty partner set all of whose members are NOT-COEXEC with x.
func blockedBy(g *sg.Graph, info *order.Info, x int, chain []int) bool {
	for _, d := range chain {
		partners := g.Sync[d]
		if len(partners) == 0 {
			continue
		}
		all := true
		for _, p := range partners {
			if p == x || !info.NotCoexec.Get(p, x) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
