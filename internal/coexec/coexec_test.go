package coexec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/order"
	"repro/internal/sg"
	"repro/internal/waves"
	"repro/internal/workload"
)

// cfgUnroll applies the Lemma 1 transform, mirroring the Analyze pipeline.
func cfgUnroll(p *lang.Program) *lang.Program { return cfg.Unroll(p) }

func setup(t *testing.T, src string) (*sg.Graph, *order.Info) {
	t.Helper()
	g := sg.MustFromProgram(lang.MustParse(src))
	info := order.Compute(g)
	Refine(g, info)
	return g, info
}

// The Figure 4(c) facts the paper assumes from a separate analysis must
// now be derived automatically: Y past e1 implies X took the then-branch.
func TestFigure4cFactsDerived(t *testing.T) {
	g, info := setup(t, `
task X is
begin
  if c then
    a: accept m1;
    bb: Y.m2;
  else
    cc: accept m3;
    d: Z.m4;
  end if;
end;
task Y is
begin
  e1: accept m2;
  f1: X.m3;
end;
task Z is
begin
  g: accept m4;
  h: X.m1;
end;
`)
	for _, pair := range [][2]string{
		{"e1", "cc"}, {"e1", "d"}, {"f1", "cc"}, {"f1", "d"},
		{"g", "a"}, {"g", "bb"}, {"h", "a"}, {"h", "bb"},
	} {
		x, y := g.NodeByLabel(pair[0]), g.NodeByLabel(pair[1])
		if !info.NotCoexec.Get(x, y) {
			t.Errorf("NC(%s, %s) not derived", pair[0], pair[1])
		}
	}
	// Note: in this fixture no rendezvous ever completes (every branch
	// stalls immediately), so even derived pairs like NC(e1, a) are
	// vacuously true; genuinely co-executing pairs are asserted in
	// TestCoexecutingPairsStayClear on a healthy program.
}

// Pairs that actually complete together in some run must never be marked.
func TestCoexecutingPairsStayClear(t *testing.T) {
	g, info := setup(t, `
task t1 is
begin
  r: t2.m;
  s: accept done;
end;
task t2 is
begin
  u: accept m;
  v: t1.done;
end;
`)
	for _, pair := range [][2]string{{"r", "u"}, {"r", "v"}, {"s", "u"}, {"r", "s"}} {
		x, y := g.NodeByLabel(pair[0]), g.NodeByLabel(pair[1])
		if info.NotCoexec.Get(x, y) {
			t.Errorf("NC(%s, %s) wrongly derived on a completing program", pair[0], pair[1])
		}
	}
}

// The pinned reproduction finding: feeding completion-based NC facts to
// the detectors' NOT-COEXEC vector is unsound. This program (found by the
// end-to-end property test) deadlocks under exact exploration, yet with
// the facts injected the head-tail-pairs detector certifies it — because
// the stranded tails and co-heads of the real deadlock never *complete*
// in any execution and are therefore vacuously "not co-executable".
const unsoundDemo = `
task t0 is
begin
  t1.m1;
  loop 2 times
    if c2 then
      t1.m1;
      t1.m0;
    end if;
  end loop;
  loop 2 times
    t1.m0;
    if c1 then
      accept m0;
      t1.m0;
    else
      accept m1;
      t1.m0;
    end if;
  end loop;
end;

task t1 is
begin
  loop 1 times
    t0.m0;
  end loop;
  t0.m0;
  if c7 then
    if c0 then
      t0.m1;
    end if;
    loop 1 times
      accept m1;
      t0.m0;
    end loop;
  else
    t0.m0;
    accept m0;
  end if;
end;
`

func TestCompletionFactsUnsoundForMarking(t *testing.T) {
	p := lang.MustParse(unsoundDemo)
	exact, err := waves.ExploreProgram(p, waves.Options{})
	if err != nil || exact.Truncated {
		t.Fatalf("ground truth unavailable: %v", err)
	}
	if !exact.Deadlock {
		t.Fatal("fixture no longer deadlocks; finding lost")
	}
	g := sg.MustFromProgram(cfgUnroll(p))
	an := core.NewAnalyzer(g)
	if !an.RefinedHeadTailPairs().MayDeadlock {
		t.Fatal("detector should alarm without the unsound facts")
	}
	Refine(g, an.Ord)
	if an.RefinedHeadTailPairs().MayDeadlock {
		t.Skip("detector still alarms with the facts; the unsoundness demo no longer reproduces (not a failure)")
	}
	// Reaching here demonstrates the miss — which is exactly what this
	// test documents; it must keep demonstrating it.
}

// Rule 2: two senders fighting over one single-shot accept can never both
// complete.
func TestSharedUniquePartner(t *testing.T) {
	g, info := setup(t, `
task srv is
begin
  a: accept req;
end;
task c1 is
begin
  s1: srv.req;
end;
task c2 is
begin
  s2: srv.req;
end;
`)
	s1, s2 := g.NodeByLabel("s1"), g.NodeByLabel("s2")
	if !info.NotCoexec.Get(s1, s2) {
		t.Fatal("shared-unique-partner rule did not fire")
	}
	a := g.NodeByLabel("a")
	if info.NotCoexec.Get(s1, a) || info.NotCoexec.Get(s2, a) {
		t.Fatal("sender wrongly excluded from its own accept")
	}
}

// Cascading: losing the race for the accept blocks everything downstream
// of the loser.
func TestCascadedPropagation(t *testing.T) {
	g, info := setup(t, `
task srv is
begin
  accept req;
end;
task c1 is
begin
  s1: srv.req;
  after1: c2.ping;
end;
task c2 is
begin
  s2: srv.req;
  p: accept ping;
end;
`)
	// after1 runs only if s1 completed; p is dominated by s2... NC(s1,s2)
	// seeds; then NC(after1, s2): after1's dominator s1 has partners
	// {accept req}; that accept CAN co-execute with s2? It rendezvouses
	// with s2 in some run — so rule 1 does not fire via s1's partner.
	// But p (dominated by s2, partner after1 only)... verify at least
	// the seed and that no unsound pair appears against ground truth.
	s1, s2 := g.NodeByLabel("s1"), g.NodeByLabel("s2")
	if !info.NotCoexec.Get(s1, s2) {
		t.Fatal("seed missing")
	}
	assertSoundAgainstExplorer(t, g, info, `
task srv is
begin
  accept req;
end;
task c1 is
begin
  s1: srv.req;
  after1: c2.ping;
end;
task c2 is
begin
  s2: srv.req;
  p: accept ping;
end;
`)
}

// assertSoundAgainstExplorer checks every NC fact against the exact wave
// semantics: no reachable terminal-or-intermediate execution may complete
// both nodes of a NOT-COEXEC pair. We approximate "both completed" with a
// conservative witness: replay the explorer and track executed nodes per
// path. For the small programs used here we instead verify a necessary
// consequence: if NC(x, y) then no run exists in which both x and y are
// EXECUTED — equivalently, exploring the program augmented with the pair
// marked must never see both fire. The waves explorer does not expose
// per-path execution sets, so we use sync-edge reasoning: both nodes'
// rendezvous must fire for them to execute; we enumerate full executions
// by depth-first search over the wave graph and track fired pairs.
func assertSoundAgainstExplorer(t *testing.T, g *sg.Graph, info *order.Info, src string) {
	t.Helper()
	executedTogether := exploreExecutedPairs(g)
	for x := 0; x < g.N(); x++ {
		for y := x + 1; y < g.N(); y++ {
			if info.NotCoexec.Get(x, y) && executedTogether[[2]int{x, y}] {
				t.Fatalf("UNSOUND: NC(%s, %s) but both execute in one run\n%s",
					g.Nodes[x], g.Nodes[y], src)
			}
		}
	}
}

// exploreExecutedPairs runs a DFS over wave states, tracking the set of
// executed nodes along each path, and records every pair that completes
// within one execution path. Exponential; test-only, tiny programs.
func exploreExecutedPairs(g *sg.Graph) map[[2]int]bool {
	out := map[[2]int]bool{}
	nt := len(g.Tasks)
	initial := make([][]int, nt)
	for ti := 0; ti < nt; ti++ {
		initial[ti] = g.InitialNodes(ti)
	}
	var wave []int
	var executed []int

	record := func() {
		for i, x := range executed {
			for _, y := range executed[i+1:] {
				a, b := x, y
				if a > b {
					a, b = b, a
				}
				out[[2]int{a, b}] = true
			}
		}
	}

	var step func()
	step = func() {
		progressed := false
		for u := 0; u < nt; u++ {
			if wave[u] == g.E {
				continue
			}
			for v := u + 1; v < nt; v++ {
				if wave[v] == g.E || !g.HasSyncEdge(wave[u], wave[v]) {
					continue
				}
				progressed = true
				ru, rv := wave[u], wave[v]
				executed = append(executed, ru, rv)
				for _, nu := range g.Control.Succ(ru) {
					for _, nv := range g.Control.Succ(rv) {
						wave[u], wave[v] = nu, nv
						step()
					}
				}
				wave[u], wave[v] = ru, rv
				executed = executed[:len(executed)-2]
			}
		}
		if !progressed {
			record()
		}
	}

	var gen func(ti int)
	gen = func(ti int) {
		if ti == nt {
			step()
			return
		}
		for _, v := range initial[ti] {
			wave[ti] = v
			gen(ti + 1)
		}
	}
	wave = make([]int, nt)
	gen(0)
	return out
}

// The soundness property, against exhaustive execution enumeration on
// random loop-free programs: Refine must never mark a pair that some
// execution runs to completion together.
func TestQuickRefineSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		cfg.BranchProb = 0.35
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		info := order.Compute(g)
		Refine(g, info)
		pairs := exploreExecutedPairs(g)
		for k, both := range pairs {
			if both && info.NotCoexec.Get(k[0], k[1]) {
				t.Logf("UNSOUND NC(%s,%s):\n%s", g.Nodes[k[0]], g.Nodes[k[1]], p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineNoOpOnLoops(t *testing.T) {
	g := sg.MustFromProgram(lang.MustParse(`
task a is
begin
  while w loop
    b.m;
  end loop;
end;
task b is
begin
  while w loop
    accept m;
  end loop;
end;
`))
	info := order.Compute(g)
	if n := Refine(g, info); n != 0 {
		t.Fatalf("derived %d facts on a cyclic graph", n)
	}
}
