// Package stall implements the paper's §5 stallability analysis.
//
// Lemma 3: a straight-line program is stall-free if every signal type has
// equally many signaling and accepting nodes — checkable in O(|N|).
//
// Lemma 4 extends the condition to programs with branches: the counts must
// balance in every feasible linearized execution. Under the model's
// semantics (branch outcomes opaque and independent), the per-task count
// contribution of a signal must therefore be *constant* across all of that
// task's linearizations, and the constants must sum to zero — which this
// package decides in polynomial time by a bottom-up pass over each task
// (CheckAllLinearizations), instead of enumerating the exponentially many
// linearizations the lemma quantifies over.
//
// The two source transforms of §5.1 that recover analyzability are also
// provided: MergeBranches hoists rendezvous executed on both sides of a
// conditional out of it (Figure 5 b→c), and HoistCertified factors
// rendezvous out of programmer-certified co-dependent conditionals
// (Figure 5 d).
package stall

import (
	"fmt"
	"sort"

	"repro/internal/lang"
)

// Balance is the send/accept node count of one signal type.
type Balance struct {
	Sig   lang.Signal
	Plus  int // signaling (send) nodes
	Minus int // accepting nodes
}

// Balanced reports Plus == Minus.
func (b Balance) Balanced() bool { return b.Plus == b.Minus }

// IsStraightLine reports whether the program has no conditionals or loops.
func IsStraightLine(p *lang.Program) bool {
	straight := true
	var walk func(ss []lang.Stmt)
	walk = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.If, *lang.Loop:
				straight = false
				_ = v
			}
		}
	}
	for _, t := range p.Tasks {
		walk(t.Body)
	}
	return straight
}

// CountNodes tallies send and accept nodes per signal type over the whole
// program, branches included (counts every node once, as Lemma 3 does for
// straight-line code). O(|N|).
func CountNodes(p *lang.Program) []Balance {
	counts := map[lang.Signal]*Balance{}
	get := func(sig lang.Signal) *Balance {
		b := counts[sig]
		if b == nil {
			b = &Balance{Sig: sig}
			counts[sig] = b
		}
		return b
	}
	for _, t := range p.Tasks {
		var walk func(ss []lang.Stmt)
		walk = func(ss []lang.Stmt) {
			for _, s := range ss {
				switch v := s.(type) {
				case *lang.Send:
					get(lang.Signal{Task: v.Target, Msg: v.Msg}).Plus++
				case *lang.Accept:
					get(lang.Signal{Task: t.Name, Msg: v.Msg}).Minus++
				case *lang.If:
					walk(v.Then)
					walk(v.Else)
				case *lang.Loop:
					walk(v.Body)
				}
			}
		}
		walk(t.Body)
	}
	out := make([]Balance, 0, len(counts))
	for _, b := range counts {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sig.Task != out[j].Sig.Task {
			return out[i].Sig.Task < out[j].Sig.Task
		}
		return out[i].Sig.Msg < out[j].Sig.Msg
	})
	return out
}

// StallFreeStraightLine applies Lemma 3. It errors when the program is not
// straight-line (Lemma 3 does not apply there).
func StallFreeStraightLine(p *lang.Program) (bool, []Balance, error) {
	if !IsStraightLine(p) {
		return false, nil, fmt.Errorf("stall: Lemma 3 requires straight-line code; use CheckAllLinearizations")
	}
	bals := CountNodes(p)
	for _, b := range bals {
		if !b.Balanced() {
			return false, bals, nil
		}
	}
	return true, bals, nil
}

// SignalVerdict reports the Lemma 4 status of one signal type.
type SignalVerdict struct {
	Sig lang.Signal
	// Constant is false when some task's contribution to this signal's
	// send-accept delta varies across that task's linearizations; the
	// offending task is named.
	Constant    bool
	VaryingTask string
	// Delta is the program-wide send-minus-accept count, valid when
	// Constant.
	Delta int
}

// Balanced reports a constant, zero delta.
func (v SignalVerdict) Balanced() bool { return v.Constant && v.Delta == 0 }

// Report is the outcome of CheckAllLinearizations.
type Report struct {
	Signals []SignalVerdict
}

// StallFree reports whether every signal balances in every linearization.
func (r *Report) StallFree() bool {
	for _, v := range r.Signals {
		if !v.Balanced() {
			return false
		}
	}
	return true
}

// Unbalanced returns the signals that fail Lemma 4's condition.
func (r *Report) Unbalanced() []SignalVerdict {
	var out []SignalVerdict
	for _, v := range r.Signals {
		if !v.Balanced() {
			out = append(out, v)
		}
	}
	return out
}

// CheckAllLinearizations decides Lemma 4's quantifier in polynomial time:
// for each signal type and each task it computes whether the task's
// send-minus-accept delta is the same on every linearization (branch arms
// must agree; loop bodies must have bounded-count constant deltas or zero
// delta when the trip count is unknown), then sums the constants.
func CheckAllLinearizations(p *lang.Program) *Report {
	sigs := p.Signals()
	rep := &Report{}
	for _, sig := range sigs {
		v := SignalVerdict{Sig: sig, Constant: true}
		for _, t := range p.Tasks {
			c, d := deltaStmts(t, t.Body, sig)
			if !c {
				v.Constant = false
				v.VaryingTask = t.Name
				break
			}
			v.Delta += d
		}
		rep.Signals = append(rep.Signals, v)
	}
	return rep
}

// deltaStmts returns (constant, delta) of signal sig over ss in task t.
func deltaStmts(t *lang.Task, ss []lang.Stmt, sig lang.Signal) (bool, int) {
	total := 0
	for _, s := range ss {
		c, d := deltaStmt(t, s, sig)
		if !c {
			return false, 0
		}
		total += d
	}
	return true, total
}

func deltaStmt(t *lang.Task, s lang.Stmt, sig lang.Signal) (bool, int) {
	switch v := s.(type) {
	case *lang.Send:
		if (lang.Signal{Task: v.Target, Msg: v.Msg}) == sig {
			return true, 1
		}
		return true, 0
	case *lang.Accept:
		if (lang.Signal{Task: t.Name, Msg: v.Msg}) == sig {
			return true, -1
		}
		return true, 0
	case *lang.Null:
		return true, 0
	case *lang.If:
		c1, d1 := deltaStmts(t, v.Then, sig)
		c2, d2 := deltaStmts(t, v.Else, sig)
		if !c1 || !c2 || d1 != d2 {
			return false, 0
		}
		return true, d1
	case *lang.Loop:
		c, d := deltaStmts(t, v.Body, sig)
		if !c {
			return false, 0
		}
		if v.Count > 0 {
			return true, d * v.Count
		}
		// Unknown trip count: constant only when one trip contributes
		// nothing.
		if d == 0 {
			return true, 0
		}
		return false, 0
	default:
		return true, 0
	}
}
