package stall

import (
	"fmt"

	"repro/internal/lang"
)

// MergeBranches applies the paper's first stall-avoidance transform
// (Figure 5 b→c): when both arms of a conditional begin (or end) with
// rendezvous of the same type, one copy is hoisted out of the conditional,
// preserving the relative order of the remaining nodes; conditionals whose
// arms empty out are deleted. The transform runs to a fixed point and does
// not mutate its input.
func MergeBranches(p *lang.Program) *lang.Program {
	q := p.Clone()
	for _, t := range q.Tasks {
		t.Body = mergeStmts(t.Body)
	}
	return q
}

func mergeStmts(ss []lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range ss {
		switch v := s.(type) {
		case *lang.If:
			v.Then = mergeStmts(v.Then)
			v.Else = mergeStmts(v.Else)
			out = append(out, splitConditional(v)...)
		case *lang.Loop:
			v.Body = mergeStmts(v.Body)
			out = append(out, v)
		default:
			out = append(out, s)
		}
	}
	return out
}

// splitConditional hoists matching leading and trailing rendezvous out of
// an If, returning the replacement statement sequence.
func splitConditional(v *lang.If) []lang.Stmt {
	var prefix, suffix []lang.Stmt
	// Leading matches.
	for len(v.Then) > 0 && len(v.Else) > 0 && sameRendezvous(v.Then[0], v.Else[0]) {
		prefix = append(prefix, v.Then[0])
		v.Then = v.Then[1:]
		v.Else = v.Else[1:]
	}
	// Trailing matches.
	for len(v.Then) > 0 && len(v.Else) > 0 &&
		sameRendezvous(v.Then[len(v.Then)-1], v.Else[len(v.Else)-1]) {
		suffix = append([]lang.Stmt{v.Then[len(v.Then)-1]}, suffix...)
		v.Then = v.Then[:len(v.Then)-1]
		v.Else = v.Else[:len(v.Else)-1]
	}
	out := prefix
	if len(v.Then) > 0 || len(v.Else) > 0 {
		out = append(out, v)
	}
	return append(out, suffix...)
}

// sameRendezvous reports whether two statements are rendezvous of the same
// kind and signal type.
func sameRendezvous(a, b lang.Stmt) bool {
	switch x := a.(type) {
	case *lang.Send:
		y, ok := b.(*lang.Send)
		return ok && x.Target == y.Target && x.Msg == y.Msg
	case *lang.Accept:
		y, ok := b.(*lang.Accept)
		return ok && x.Msg == y.Msg
	}
	return false
}

// CoDependence certifies that two conditionals — named by their condition
// identifiers, in two different tasks — always evaluate the same way
// (Figure 5 d: the value is communicated between the tasks and never
// changed). The paper's "first alternative": the programmer certifies the
// dependence; the transform is unsafe if the certification is wrong.
type CoDependence struct {
	CondA, CondB string
}

// HoistCertified applies the paper's second stall-avoidance transform:
// for each certified co-dependent pair of conditionals, the rendezvous in
// their then-arms are moved out of the conditionals (the pair executes
// together or not at all, so for counting purposes the nodes may be
// treated as unconditional). Conditionals must be then-only; an error
// names any certification that does not match the program.
func HoistCertified(p *lang.Program, deps []CoDependence) (*lang.Program, error) {
	q := p.Clone()
	for _, d := range deps {
		na, err := hoistCond(q, d.CondA)
		if err != nil {
			return nil, err
		}
		nb, err := hoistCond(q, d.CondB)
		if err != nil {
			return nil, err
		}
		if na == 0 || nb == 0 {
			return nil, fmt.Errorf("stall: co-dependence (%s, %s) matched no conditional", d.CondA, d.CondB)
		}
	}
	return q, nil
}

func hoistCond(p *lang.Program, cond string) (int, error) {
	hoisted := 0
	var walk func(ss []lang.Stmt) ([]lang.Stmt, error)
	walk = func(ss []lang.Stmt) ([]lang.Stmt, error) {
		var out []lang.Stmt
		for _, s := range ss {
			switch v := s.(type) {
			case *lang.If:
				if v.Cond == cond {
					if len(v.Else) > 0 {
						return nil, fmt.Errorf("stall: certified conditional %q has an else arm; the factoring transform requires a then-only branch", cond)
					}
					body, err := walk(v.Then)
					if err != nil {
						return nil, err
					}
					out = append(out, body...)
					hoisted++
					continue
				}
				var err error
				if v.Then, err = walk(v.Then); err != nil {
					return nil, err
				}
				if v.Else, err = walk(v.Else); err != nil {
					return nil, err
				}
				out = append(out, v)
			case *lang.Loop:
				body, err := walk(v.Body)
				if err != nil {
					return nil, err
				}
				v.Body = body
				out = append(out, v)
			default:
				out = append(out, s)
			}
		}
		return out, nil
	}
	for _, t := range p.Tasks {
		body, err := walk(t.Body)
		if err != nil {
			return 0, err
		}
		t.Body = body
	}
	return hoisted, nil
}
