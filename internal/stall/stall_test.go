package stall

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/waves"
	"repro/internal/workload"
)

func TestLemma3Balanced(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  b.m;
  b.m;
  accept r;
end;
task b is
begin
  accept m;
  accept m;
  a.r;
end;
`)
	free, bals, err := StallFreeStraightLine(p)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Fatalf("balanced program flagged: %+v", bals)
	}
	if len(bals) != 2 {
		t.Fatalf("balances=%+v", bals)
	}
}

func TestLemma3Unbalanced(t *testing.T) {
	// Figure 2(a) style: accept done has no sender.
	p := lang.MustParse(`
task t1 is
begin
  accept go;
end;
task t2 is
begin
  t1.go;
  accept done;
end;
`)
	free, bals, err := StallFreeStraightLine(p)
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("missing sender not flagged")
	}
	found := false
	for _, b := range bals {
		if b.Sig == (lang.Signal{Task: "t2", Msg: "done"}) {
			found = true
			if b.Plus != 0 || b.Minus != 1 {
				t.Fatalf("counts wrong: %+v", b)
			}
		}
	}
	if !found {
		t.Fatal("done signal not counted")
	}
}

func TestLemma3RejectsBranchyProgram(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  if c then
    b.m;
  end if;
end;
task b is
begin
  accept m;
end;
`)
	if _, _, err := StallFreeStraightLine(p); err == nil {
		t.Fatal("Lemma 3 applied outside straight-line code")
	}
	if IsStraightLine(p) {
		t.Fatal("IsStraightLine wrong")
	}
}

func TestLemma4ConstantBranches(t *testing.T) {
	// Both arms send the same signal: delta constant, balanced.
	p := lang.MustParse(`
task a is
begin
  if c then
    b.m;
  else
    b.m;
  end if;
end;
task b is
begin
  accept m;
end;
`)
	rep := CheckAllLinearizations(p)
	if !rep.StallFree() {
		t.Fatalf("constant-delta branches flagged: %+v", rep.Unbalanced())
	}
}

func TestLemma4VaryingBranch(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  if c then
    b.m;
  end if;
end;
task b is
begin
  accept m;
end;
`)
	rep := CheckAllLinearizations(p)
	if rep.StallFree() {
		t.Fatal("varying delta not flagged")
	}
	u := rep.Unbalanced()
	if len(u) != 1 || u[0].Constant || u[0].VaryingTask != "a" {
		t.Fatalf("verdict=%+v", u)
	}
}

func TestLemma4BoundedLoops(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  loop 3 times
    b.m;
  end loop;
end;
task b is
begin
  loop 3 times
    accept m;
  end loop;
end;
`)
	if rep := CheckAllLinearizations(p); !rep.StallFree() {
		t.Fatalf("matched bounded loops flagged: %+v", rep.Unbalanced())
	}
	p2 := lang.MustParse(`
task a is
begin
  loop 2 times
    b.m;
  end loop;
end;
task b is
begin
  loop 3 times
    accept m;
  end loop;
end;
`)
	rep := CheckAllLinearizations(p2)
	if rep.StallFree() {
		t.Fatal("mismatched bounded loops not flagged")
	}
	if u := rep.Unbalanced(); len(u) != 1 || !u[0].Constant || u[0].Delta != -1 {
		t.Fatalf("verdict=%+v", u)
	}
}

func TestLemma4WhileLoops(t *testing.T) {
	// Unknown trip count with nonzero per-trip delta: not constant.
	p := lang.MustParse(`
task a is
begin
  while w loop
    b.m;
  end loop;
end;
task b is
begin
  accept m;
end;
`)
	if rep := CheckAllLinearizations(p); rep.StallFree() {
		t.Fatal("while-loop imbalance not flagged")
	}
	// Zero per-trip delta is fine regardless of trip count.
	p2 := lang.MustParse(`
task a is
begin
  while w loop
    b.m;
    b.m;
  end loop;
end;
task b is
begin
  accept m;
end;
`)
	rep := CheckAllLinearizations(p2)
	for _, v := range rep.Signals {
		if v.Sig.Msg == "m" && v.Constant {
			t.Fatal("nonzero while-loop delta reported constant")
		}
	}
	// A loop whose body nets zero for a signal stays constant: send and
	// accept of the same signal inside one loop... requires two tasks —
	// emulate with a relay that both accepts and re-sends its own signal
	// type? Simplest: loop contains send and the OTHER task's loop
	// contains accept is not net-zero per task. Use a self-contained net
	// zero: task b accepts m and sends m back to ... skip; covered by
	// TestLemma4BoundedLoops.
}

// Figure 5(b)->(c): both arms hold a same-type rendezvous at matching
// positions; MergeBranches hoists them out, enabling Lemma 3.
func TestFigure5MergeTransform(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  if c then
    b.m;
    accept r;
  else
    b.m;
    accept r;
  end if;
end;
task b is
begin
  accept m;
  a.r;
end;
`)
	if IsStraightLine(p) {
		t.Fatal("precondition")
	}
	m := MergeBranches(p)
	if !IsStraightLine(m) {
		t.Fatalf("merge left structure behind:\n%s", m)
	}
	free, _, err := StallFreeStraightLine(m)
	if err != nil || !free {
		t.Fatalf("merged program not certified: %v", err)
	}
	// Input untouched.
	if IsStraightLine(p) {
		t.Fatal("MergeBranches mutated input")
	}
}

func TestMergePartialArms(t *testing.T) {
	// Only the leading send matches; the conditional must survive with
	// the residue.
	p := lang.MustParse(`
task a is
begin
  if c then
    b.m;
    b.x;
  else
    b.m;
    b.y;
  end if;
end;
task b is
begin
  accept m;
  if c then
    accept x;
  else
    accept y;
  end if;
end;
`)
	m := MergeBranches(p)
	ta := m.TaskByName("a")
	if len(ta.Body) != 2 {
		t.Fatalf("body=%d stmts:\n%s", len(ta.Body), m)
	}
	if _, ok := ta.Body[0].(*lang.Send); !ok {
		t.Fatalf("hoisted send missing:\n%s", m)
	}
	if _, ok := ta.Body[1].(*lang.If); !ok {
		t.Fatalf("residual conditional missing:\n%s", m)
	}
}

func TestMergeTrailing(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  if c then
    b.x;
    b.m;
  else
    b.y;
    b.m;
  end if;
end;
task b is
begin
  accept x;
  accept y;
  accept m;
end;
`)
	m := MergeBranches(p)
	ta := m.TaskByName("a")
	last, ok := ta.Body[len(ta.Body)-1].(*lang.Send)
	if !ok || last.Msg != "m" {
		t.Fatalf("trailing hoist failed:\n%s", m)
	}
}

// Figure 5(d): co-dependent conditionals certified by the programmer are
// factored out, enabling the balance check.
func TestFigure5Factoring(t *testing.T) {
	p := lang.MustParse(`
task T is
begin
  Tp.val;
  if vT then
    accept m;
  end if;
end;
task Tp is
begin
  accept val;
  if vTp then
    T.m;
  end if;
end;
`)
	if rep := CheckAllLinearizations(p); rep.StallFree() {
		t.Fatal("uncertified co-dependence should be flagged")
	}
	q, err := HoistCertified(p, []CoDependence{{CondA: "vT", CondB: "vTp"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckAllLinearizations(q); !rep.StallFree() {
		t.Fatalf("factored program still flagged: %+v", rep.Unbalanced())
	}
}

func TestHoistCertifiedErrors(t *testing.T) {
	p := lang.MustParse(`
task T is
begin
  if v then
    Tp.m;
  else
    null;
  end if;
end;
task Tp is
begin
  accept m;
end;
`)
	if _, err := HoistCertified(p, []CoDependence{{CondA: "v", CondB: "v"}}); err == nil {
		t.Fatal("else-arm conditional accepted")
	}
	if _, err := HoistCertified(p, []CoDependence{{CondA: "missing", CondB: "v"}}); err == nil {
		t.Fatal("missing conditional accepted")
	}
}

// Property: on straight-line random programs, the Lemma 3 verdict must be
// necessary for stall-freedom per the exact explorer — if the counts are
// unbalanced, some execution stalls... the converse (balanced => stall
// free) is what Lemma 3 claims; check both directions empirically against
// ground truth, modulo deadlocks (a deadlocked wave may or may not have a
// stall node).
func TestQuickLemma3AgainstExplorer(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(4)
		cfg.BranchProb = 0
		cfg.MaxDepth = 0
		p := workload.Random(rng, cfg)
		free, _, err := StallFreeStraightLine(p)
		if err != nil {
			return false
		}
		res, err2 := waves.ExploreProgram(p, waves.Options{MaxStates: 100000})
		if err2 != nil || res.Truncated {
			return true
		}
		if free && res.Stall && !res.Deadlock {
			// Lemma 3: balanced straight-line programs cannot stall
			// (stalls coexisting with deadlocks are excluded: a deadlock
			// leaves partners unreachable and can strand counts).
			t.Logf("balanced program stalled:\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the polynomial all-linearizations check agrees with brute
// force enumeration of branch resolutions on small branchy programs.
func TestQuickLinearizationDPAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		cfg.BranchProb = 0.5
		cfg.MaxDepth = 2
		p := workload.Random(rng, cfg)
		rep := CheckAllLinearizations(p)
		want := bruteForceBalanced(p)
		return rep.StallFree() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceBalanced enumerates every branch resolution (loop-free
// programs) and checks count balance on each.
func bruteForceBalanced(p *lang.Program) bool {
	var linearize func(ss []lang.Stmt) [][]lang.Stmt
	linearize = func(ss []lang.Stmt) [][]lang.Stmt {
		variants := [][]lang.Stmt{{}}
		for _, s := range ss {
			var options [][]lang.Stmt
			switch v := s.(type) {
			case *lang.If:
				options = append(linearize(v.Then), linearize(v.Else)...)
			default:
				options = [][]lang.Stmt{{s}}
			}
			var next [][]lang.Stmt
			for _, pre := range variants {
				for _, opt := range options {
					comb := append(append([]lang.Stmt{}, pre...), opt...)
					next = append(next, comb)
				}
			}
			variants = next
		}
		return variants
	}
	// Per task variants; combine count deltas per signal.
	type counts map[lang.Signal]int
	taskVariants := make([][]counts, len(p.Tasks))
	for ti, task := range p.Tasks {
		for _, variant := range linearize(task.Body) {
			c := counts{}
			for _, s := range variant {
				switch v := s.(type) {
				case *lang.Send:
					c[lang.Signal{Task: v.Target, Msg: v.Msg}]++
				case *lang.Accept:
					c[lang.Signal{Task: task.Name, Msg: v.Msg}]--
				}
			}
			taskVariants[ti] = append(taskVariants[ti], c)
		}
	}
	// Cartesian product.
	var rec func(ti int, acc counts) bool
	rec = func(ti int, acc counts) bool {
		if ti == len(taskVariants) {
			for _, d := range acc {
				if d != 0 {
					return false
				}
			}
			return true
		}
		for _, c := range taskVariants[ti] {
			next := counts{}
			for k, v := range acc {
				next[k] = v
			}
			for k, v := range c {
				next[k] += v
			}
			if !rec(ti+1, next) {
				return false
			}
		}
		return true
	}
	return rec(0, counts{})
}
