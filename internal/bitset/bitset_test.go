package bitset

import (
	"math/rand"
	"testing"
)

func TestRowBasics(t *testing.T) {
	r := NewRow(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if r.Get(i) {
			t.Fatalf("fresh row has bit %d", i)
		}
		r.Set(i)
		if !r.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := r.Count(); got != 8 {
		t.Fatalf("count=%d", got)
	}
	r.Clear(64)
	if r.Get(64) || r.Count() != 7 {
		t.Fatalf("clear failed: %v", r)
	}
	want := []int{0, 1, 63, 65, 127, 128, 129}
	got := r.Members(nil)
	if len(got) != len(want) {
		t.Fatalf("members=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members=%v want %v", got, want)
		}
	}
}

func TestOrExceptMatchesElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 200
	for trial := 0; trial < 50; trial++ {
		a, b := NewRow(n), NewRow(n)
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Set(i)
				ref[i] = true
			}
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		s1, s2 := rng.Intn(n), rng.Intn(n)
		wantChanged := false
		for i := 0; i < n; i++ {
			if i == s1 || i == s2 || !b.Get(i) {
				continue
			}
			if !ref[i] {
				ref[i] = true
				wantChanged = true
			}
		}
		if changed := OrExcept(a, b, s1, s2); changed != wantChanged {
			t.Fatalf("trial %d: changed=%v want %v", trial, changed, wantChanged)
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != ref[i] {
				t.Fatalf("trial %d: bit %d = %v want %v", trial, i, a.Get(i), ref[i])
			}
		}
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(70)
	m.Set(3, 69)
	m.Set(69, 0)
	if !m.Get(3, 69) || !m.Get(69, 0) || m.Get(0, 3) {
		t.Fatal("matrix get/set wrong")
	}
	if !m.Row(3).Get(69) {
		t.Fatal("row view does not share storage")
	}
	o := NewMatrix(70)
	if m.Equal(o) {
		t.Fatal("unequal matrices reported equal")
	}
	o.Set(3, 69)
	o.Set(69, 0)
	if !m.Equal(o) {
		t.Fatal("equal matrices reported unequal")
	}
	if m.Equal(NewMatrix(71)) {
		t.Fatal("dimension mismatch reported equal")
	}
}
