// Package bitset provides the word-packed boolean rows and square bit
// matrices backing the ordering relations of internal/order. A relation
// over n nodes is n rows of ceil(n/64) uint64 words, so membership tests
// are one shift-and-mask and relational closure steps (transitivity,
// fact transfer) are word-wide ORs instead of per-element loops.
package bitset

import "math/bits"

// Row is one row of a bit matrix: a fixed-capacity set over [0, 64*len).
// The zero value is an empty, zero-capacity set.
type Row []uint64

// NewRow returns an empty row with capacity for n bits.
func NewRow(n int) Row { return make(Row, words(n)) }

func words(n int) int { return (n + 63) >> 6 }

// Get reports whether bit i is set.
func (r Row) Get(i int) bool { return r[i>>6]&(1<<uint(i&63)) != 0 }

// Set sets bit i.
func (r Row) Set(i int) { r[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (r Row) Clear(i int) { r[i>>6] &^= 1 << uint(i&63) }

// Count returns the number of set bits.
func (r Row) Count() int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members appends the indices of every set bit to out, ascending, and
// returns the extended slice. Pass a reusable buffer to avoid allocation.
func (r Row) Members(out []int) []int {
	for wi, w := range r {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Or folds src into dst word-wide (dst |= src) and reports whether any
// bit changed. The rows must have equal length.
func Or(dst, src Row) bool {
	changed := false
	for i, w := range src {
		if nv := dst[i] | w; nv != dst[i] {
			dst[i] = nv
			changed = true
		}
	}
	return changed
}

// OrExcept is Or with up to two bit positions masked out of src before
// folding (pass a negative position to skip masking). Closure steps use
// it to keep guard conditions ("a node never precedes itself", "transfer
// skips the pair's own bits") while still working word-wide.
func OrExcept(dst, src Row, skip1, skip2 int) bool {
	var w1, w2 int = -1, -1
	var b1, b2 uint64
	if skip1 >= 0 {
		w1, b1 = skip1>>6, 1<<uint(skip1&63)
	}
	if skip2 >= 0 {
		w2, b2 = skip2>>6, 1<<uint(skip2&63)
	}
	changed := false
	for i, w := range src {
		if i == w1 {
			w &^= b1
		}
		if i == w2 {
			w &^= b2
		}
		if nv := dst[i] | w; nv != dst[i] {
			dst[i] = nv
			changed = true
		}
	}
	return changed
}

// Matrix is a square n x n bit matrix in one contiguous word slice. The
// zero value is an empty 0 x 0 matrix.
type Matrix struct {
	n     int
	wpr   int // words per row
	words []uint64
}

// NewMatrix returns an all-false n x n matrix.
func NewMatrix(n int) Matrix {
	w := words(n)
	return Matrix{n: n, wpr: w, words: make([]uint64, n*w)}
}

// N returns the matrix dimension.
func (m Matrix) N() int { return m.n }

// Row returns row r as a shared (mutable) Row view.
func (m Matrix) Row(r int) Row { return Row(m.words[r*m.wpr : (r+1)*m.wpr]) }

// Get reports entry (r, c).
func (m Matrix) Get(r, c int) bool {
	return m.words[r*m.wpr+c>>6]&(1<<uint(c&63)) != 0
}

// Set sets entry (r, c).
func (m Matrix) Set(r, c int) {
	m.words[r*m.wpr+c>>6] |= 1 << uint(c&63)
}

// SizeBytes reports the matrix's backing-store footprint, for
// byte-budgeted caches holding derived relations.
func (m Matrix) SizeBytes() int64 { return int64(len(m.words)) * 8 }

// Equal reports whether the two matrices have identical dimension and
// contents.
func (m Matrix) Equal(o Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, w := range m.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}
