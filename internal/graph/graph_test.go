package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.N(), g.M())
	}
	if ok, _ := g.HasCycle(); ok {
		t.Fatal("empty graph reported cyclic")
	}
}

func TestAddEdgeGrowsGraph(t *testing.T) {
	g := New(0)
	g.AddEdge(3, 5)
	if g.N() != 6 {
		t.Fatalf("N=%d, want 6", g.N())
	}
	if !g.HasEdge(3, 5) || g.HasEdge(5, 3) {
		t.Fatal("edge direction wrong")
	}
	if len(g.Pred(5)) != 1 || g.Pred(5)[0] != 3 {
		t.Fatalf("pred(5)=%v", g.Pred(5))
	}
}

func TestAddEdgeUnique(t *testing.T) {
	g := New(2)
	g.AddEdgeUnique(0, 1)
	g.AddEdgeUnique(0, 1)
	if g.M() != 1 {
		t.Fatalf("M=%d, want 1", g.M())
	}
	g.AddEdge(0, 1)
	if g.M() != 2 {
		t.Fatalf("parallel AddEdge suppressed: M=%d", g.M())
	}
}

func TestHasCycleOnDAG(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if ok, _ := g.HasCycle(); ok {
		t.Fatal("DAG reported cyclic")
	}
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	if pos[0] > pos[1] || pos[1] > pos[3] || pos[0] > pos[2] || pos[2] > pos[3] {
		t.Fatalf("topo order %v violates edges", order)
	}
}

func TestHasCycleFindsWitness(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1) // cycle 1-2-3
	g.AddEdge(3, 4)
	ok, cyc := g.HasCycle()
	if !ok {
		t.Fatal("cycle not found")
	}
	if len(cyc) < 4 || cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("witness %v is not a closed walk", cyc)
	}
	for i := 0; i+1 < len(cyc); i++ {
		if !g.HasEdge(cyc[i], cyc[i+1]) {
			t.Fatalf("witness %v uses nonexistent edge %d->%d", cyc, cyc[i], cyc[i+1])
		}
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0)
	if ok, _ := g.HasCycle(); !ok {
		t.Fatal("self loop not detected")
	}
	if _, err := g.Topo(); err == nil {
		t.Fatal("topo on cyclic graph should fail")
	}
}

func TestSCCTwoComponents(t *testing.T) {
	g := New(6)
	// Component {0,1,2}, component {3,4}, singleton {5}.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	g.AddEdge(4, 5)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("ncomp=%d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("0,1,2 split: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatalf("3,4 wrong: %v", comp)
	}
	if comp[5] == comp[3] || comp[5] == comp[0] {
		t.Fatalf("5 merged: %v", comp)
	}
	sizes := SCCSizes(comp, n)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 6 {
		t.Fatalf("sizes %v do not cover graph", sizes)
	}
}

func TestSCCReverseTopoOrder(t *testing.T) {
	// Tarjan emits components in reverse topological order of the
	// condensation: a component appears before components that reach it.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comp, _ := g.SCC()
	if comp[2] >= comp[0] {
		t.Fatalf("sink component should have smaller id: %v", comp)
	}
}

func TestReachableFrom(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	r := g.ReachableFrom(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("reach[%d]=%v, want %v", i, r[i], want[i])
		}
	}
	r2 := g.ReachableFrom(0, 3)
	if !r2[4] || !r2[2] {
		t.Fatal("multi-root reachability wrong")
	}
	if !g.HasPath(0, 2) || g.HasPath(2, 0) {
		t.Fatal("HasPath wrong")
	}
	if !g.HasPath(2, 2) {
		t.Fatal("node must reach itself")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	idom := g.Dominators(0)
	if idom[3] != 0 {
		t.Fatalf("idom[3]=%d, want 0 (join point)", idom[3])
	}
	if idom[4] != 3 {
		t.Fatalf("idom[4]=%d, want 3", idom[4])
	}
	if !Dominates(idom, 0, 0, 4) || !Dominates(idom, 0, 3, 4) {
		t.Fatal("expected dominance missing")
	}
	if Dominates(idom, 0, 1, 3) {
		t.Fatal("1 must not dominate join 3")
	}
	if !Dominates(idom, 0, 2, 2) {
		t.Fatal("node must dominate itself")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	// 2 unreachable.
	idom := g.Dominators(0)
	if idom[2] != -1 {
		t.Fatalf("unreachable node got idom %d", idom[2])
	}
	if Dominates(idom, 0, 0, 2) {
		t.Fatal("nothing dominates an unreachable node")
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	idom := g.Dominators(0)
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 2 {
		t.Fatalf("idom=%v", idom)
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("reverse wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 0)
	if g.HasEdge(1, 0) {
		t.Fatal("clone shares storage with original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edge")
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	reach := g.TransitiveClosure()
	if !reach[0][2] || reach[2][0] || !reach[3][3] {
		t.Fatal("closure wrong")
	}
}

// randomDAG builds a random DAG with edges only from lower to higher ids.
func randomDAG(rng *rand.Rand, n int, p float64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestQuickDAGsAreAcyclic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(20), 0.3)
		if ok, _ := g.HasCycle(); ok {
			return false
		}
		// Every SCC of a DAG is a singleton.
		comp, n := g.SCC()
		if n != g.N() {
			return false
		}
		for _, s := range SCCSizes(comp, n) {
			if s != 1 {
				return false
			}
		}
		_, err := g.Topo()
		return err == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCycleDetectionAgreesWithSCC(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		m := rng.Intn(3 * n)
		selfLoop := false
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			g.AddEdge(u, v)
			if u == v {
				selfLoop = true
			}
		}
		hasCycle, _ := g.HasCycle()
		comp, nc := g.SCC()
		nontrivial := selfLoop
		for _, s := range SCCSizes(comp, nc) {
			if s > 1 {
				nontrivial = true
			}
		}
		return hasCycle == nontrivial
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDominatorsSoundOnRandomFlowgraphs(t *testing.T) {
	// Check Dominates against the definition: a dominates b iff removing a
	// makes b unreachable from the entry.
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := New(n)
		// Guarantee reachability skeleton then add noise.
		for v := 1; v < n; v++ {
			g.AddEdgeUnique(rng.Intn(v), v)
		}
		for i := 0; i < n; i++ {
			g.AddEdgeUnique(rng.Intn(n), rng.Intn(n))
		}
		idom := g.Dominators(0)
		for a := 1; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				// Reachability avoiding a.
				seen := make([]bool, n)
				seen[a] = true // block
				stack := []int{0}
				if a != 0 {
					seen[0] = true
				}
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if v == a {
						continue
					}
					for _, w := range g.Succ(v) {
						if !seen[w] {
							seen[w] = true
							stack = append(stack, w)
						}
					}
				}
				defDom := !seen[b] // b unreachable without a
				if Dominates(idom, 0, a, b) != defDom {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
