// Package graph provides the small directed-graph toolkit that every
// analysis in this repository is built on: adjacency storage, depth-first
// search, cycle detection, Tarjan strongly-connected components, dominator
// trees and reachability closures.
//
// Nodes are dense non-negative integers assigned by the caller. All
// algorithms run in O(V+E) unless noted otherwise.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
// The zero value is an empty graph; grow it with EnsureNode / AddEdge.
type Digraph struct {
	succ [][]int
	pred [][]int
	m    int // edge count
}

// New returns a digraph with n nodes and no edges.
func New(n int) *Digraph {
	return &Digraph{succ: make([][]int, n), pred: make([][]int, n)}
}

// N reports the number of nodes.
func (g *Digraph) N() int { return len(g.succ) }

// M reports the number of edges.
func (g *Digraph) M() int { return g.m }

// EnsureNode grows the graph so that node v exists, returning v.
func (g *Digraph) EnsureNode(v int) int {
	for len(g.succ) <= v {
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
	}
	return v
}

// AddNode appends a fresh node and returns its id.
func (g *Digraph) AddNode() int {
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return len(g.succ) - 1
}

// AddEdge inserts the directed edge u->v. Both endpoints are created if
// needed. Parallel edges are kept; callers that need simple graphs should
// use AddEdgeUnique.
func (g *Digraph) AddEdge(u, v int) {
	g.EnsureNode(u)
	g.EnsureNode(v)
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.m++
}

// AddEdgeUnique inserts u->v unless it is already present.
func (g *Digraph) AddEdgeUnique(u, v int) {
	g.EnsureNode(u)
	g.EnsureNode(v)
	for _, w := range g.succ[u] {
		if w == v {
			return
		}
	}
	g.AddEdge(u, v)
}

// HasEdge reports whether the edge u->v is present.
func (g *Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.succ) {
		return false
	}
	for _, w := range g.succ[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Succ returns the successor list of v. The slice is owned by the graph.
func (g *Digraph) Succ(v int) []int { return g.succ[v] }

// Pred returns the predecessor list of v. The slice is owned by the graph.
func (g *Digraph) Pred(v int) []int { return g.pred[v] }

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.N())
	c.m = g.m
	for v := range g.succ {
		c.succ[v] = append([]int(nil), g.succ[v]...)
		c.pred[v] = append([]int(nil), g.pred[v]...)
	}
	return c
}

// Reverse returns a new graph with every edge flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.N())
	for u := range g.succ {
		for _, v := range g.succ[u] {
			r.AddEdge(v, u)
		}
	}
	return r
}

// String renders the graph as "n=..., m=..., edges" for debugging.
func (g *Digraph) String() string {
	s := fmt.Sprintf("digraph(n=%d m=%d)", g.N(), g.M())
	for u := range g.succ {
		if len(g.succ[u]) == 0 {
			continue
		}
		s += fmt.Sprintf(" %d->%v", u, g.succ[u])
	}
	return s
}

// ReachableFrom returns the set of nodes reachable from any of the roots,
// including the roots themselves, as a boolean slice indexed by node.
func (g *Digraph) ReachableFrom(roots ...int) []bool {
	seen := make([]bool, g.N())
	stack := make([]int, 0, len(roots))
	for _, r := range roots {
		if r >= 0 && r < g.N() && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.succ[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// HasPath reports whether v is reachable from u (u reaches itself).
func (g *Digraph) HasPath(u, v int) bool {
	if u == v {
		return true
	}
	return g.ReachableFrom(u)[v]
}

// HasCycle reports whether the graph contains a directed cycle, and if so
// returns one witness cycle as a node sequence (first node repeated last).
func (g *Digraph) HasCycle() (bool, []int) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.N())
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	var cyc []int
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = gray
		for _, w := range g.succ[v] {
			switch color[w] {
			case white:
				parent[w] = v
				if visit(w) {
					return true
				}
			case gray:
				// Found a back edge v->w: reconstruct w .. v, w.
				cyc = []int{w}
				for x := v; x != w; x = parent[x] {
					cyc = append(cyc, x)
				}
				// cyc currently holds w, v, ..., succ(w); reverse tail.
				for i, j := 1, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				cyc = append(cyc, w)
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := 0; v < g.N(); v++ {
		if color[v] == white && visit(v) {
			return true, cyc
		}
	}
	return false, nil
}

// Topo returns a topological order of the graph, or an error if it is
// cyclic.
func (g *Digraph) Topo() ([]int, error) {
	indeg := make([]int, g.N())
	for u := range g.succ {
		for _, v := range g.succ[u] {
			indeg[v]++
		}
	}
	queue := make([]int, 0, g.N())
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.N())
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != g.N() {
		return nil, fmt.Errorf("graph: topological sort of cyclic graph")
	}
	return order, nil
}

// SCC computes strongly-connected components with Tarjan's algorithm
// (iterative, so deep graphs do not overflow the goroutine stack).
// It returns comp (node -> component id) and the number of components.
// Component ids are in reverse topological order of the condensation.
func (g *Digraph) SCC() (comp []int, ncomp int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	idx := 0

	type frame struct {
		v  int
		ei int
	}
	var callStack []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{root, 0})
		index[root], low[root] = idx, idx
		idx++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.ei < len(g.succ[v]) {
				w := g.succ[v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = idx, idx
					idx++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Finished v.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// SCCSizes returns the size of every component given a comp labelling.
func SCCSizes(comp []int, ncomp int) []int {
	sizes := make([]int, ncomp)
	for _, c := range comp {
		if c >= 0 {
			sizes[c]++
		}
	}
	return sizes
}

// Dominators computes the immediate-dominator array for the flowgraph
// rooted at entry using the Cooper–Harvey–Kennedy iterative algorithm.
// idom[entry] == entry; nodes unreachable from entry get idom -1.
func (g *Digraph) Dominators(entry int) []int {
	n := g.N()
	// Reverse postorder of the reachable subgraph.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	type frame struct {
		v  int
		ei int
	}
	stack := []frame{{entry, 0}}
	seen[entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ei < len(g.succ[f.v]) {
			w := g.succ[f.v][f.ei]
			f.ei++
			if !seen[w] {
				seen[w] = true
				stack = append(stack, frame{w, 0})
			}
			continue
		}
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpo := make([]int, n)
	for i := range rpo {
		rpo[i] = -1
	}
	for i, v := range order {
		rpo[v] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, v := range order {
			if v == entry {
				continue
			}
			newIdom := -1
			for _, p := range g.pred[v] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given an idom array rooted at
// entry. Every node dominates itself.
func Dominates(idom []int, entry, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == entry {
			return false
		}
		b = idom[b]
		if b == -1 {
			return false
		}
	}
}

// TransitiveClosure returns reach[u][v] = true iff v is reachable from u
// (including u itself). O(V*(V+E)); intended for the small per-task CFGs.
func (g *Digraph) TransitiveClosure() [][]bool {
	n := g.N()
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = g.ReachableFrom(u)
	}
	return reach
}

// Sorted returns a copy of s in ascending order (convenience for tests).
func Sorted(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}
