package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/waves"
)

func TestPipelineValidAndClean(t *testing.T) {
	p := Pipeline(3, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := waves.ExploreProgram(p, waves.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.HasAnomaly() {
		t.Fatalf("pipeline misbehaves: %+v", res)
	}
}

func TestRingDeadlocks(t *testing.T) {
	for n := 2; n <= 5; n++ {
		res, err := waves.ExploreProgram(Ring(n), waves.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deadlock || res.Completed {
			t.Fatalf("ring(%d): %+v", n, res)
		}
	}
}

func TestRingBrokenIsDeadlockFree(t *testing.T) {
	for n := 2; n <= 5; n++ {
		res, err := waves.ExploreProgram(RingBroken(n), waves.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlock {
			t.Fatalf("ring-broken(%d) deadlocks", n)
		}
		if !res.Completed {
			t.Fatalf("ring-broken(%d) cannot complete", n)
		}
	}
}

func TestClientServerClean(t *testing.T) {
	res, err := waves.ExploreProgram(ClientServer(3), waves.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Deadlock {
		t.Fatalf("client-server: %+v", res)
	}
}

func TestBarrierClean(t *testing.T) {
	res, err := waves.ExploreProgram(Barrier(2, 2), waves.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.HasAnomaly() {
		t.Fatalf("barrier: %+v", res)
	}
}

func TestForkFanStateGrowth(t *testing.T) {
	// The exact state space of n independent pairs exchanging d messages
	// is (d+1)^n (each pair advances independently).
	for _, n := range []int{1, 2, 3} {
		res, err := waves.ExploreProgram(ForkFan(n, 2), waves.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		for i := 0; i < n; i++ {
			want *= 3
		}
		if res.States != want {
			t.Fatalf("ForkFan(%d,2): states=%d, want %d", n, res.States, want)
		}
		if res.HasAnomaly() || !res.Completed {
			t.Fatalf("ForkFan(%d,2) misbehaves: %+v", n, res)
		}
	}
}

func TestNestedLoopsShape(t *testing.T) {
	p := NestedLoops(3, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.CountRendezvous() != 4+2 {
		t.Fatalf("rendezvous=%d", p.CountRendezvous())
	}
}

func TestCrossRingShape(t *testing.T) {
	p := CrossRing(4, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 4 || p.CountRendezvous() != 4*2*2 {
		t.Fatalf("shape wrong: %d tasks, %d rendezvous", len(p.Tasks), p.CountRendezvous())
	}
}

func TestQuickRandomProgramsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(4)
		cfg.StmtsPerTask = 1 + rng.Intn(5)
		cfg.LoopProb = 0.15
		p := Random(rng, cfg)
		if err := p.Validate(); err != nil {
			return false
		}
		// Round-trips through the printer.
		q, err := lang.Parse(p.String())
		if err != nil {
			return false
		}
		return q.CountRendezvous() == p.CountRendezvous()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	p1 := Random(rand.New(rand.NewSource(42)), DefaultConfig())
	p2 := Random(rand.New(rand.NewSource(42)), DefaultConfig())
	if p1.String() != p2.String() {
		t.Fatal("same seed produced different programs")
	}
}
