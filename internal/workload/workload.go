// Package workload generates MiniAda programs for the benchmark harness:
// deterministic families with known anomaly status (pipelines, rings,
// client-server, barrier phases) and seeded random programs used to
// measure detector precision against the exact wave explorer.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
)

// Pipeline builds a deadlock-free chain: stage k sends `item` to stage k+1
// depth times; every stage accepts before forwarding. stages >= 2.
func Pipeline(stages, depth int) *lang.Program {
	p := &lang.Program{}
	name := func(k int) string { return fmt.Sprintf("stage%d", k) }
	for k := 0; k < stages; k++ {
		var body []lang.Stmt
		for d := 0; d < depth; d++ {
			if k > 0 {
				body = append(body, &lang.Accept{Msg: "item"})
			}
			if k < stages-1 {
				body = append(body, &lang.Send{Target: name(k + 1), Msg: "item"})
			}
		}
		p.Tasks = append(p.Tasks, &lang.Task{Name: name(k), Body: body})
	}
	p.AssignLabels()
	return p
}

// Ring builds the classic circular-wait deadlock: every task first calls
// its right neighbour's entry, then accepts its own. All tasks block on
// their sends and none reaches its accept. n >= 2.
func Ring(n int) *lang.Program {
	p := &lang.Program{}
	name := func(k int) string { return fmt.Sprintf("phil%d", k) }
	for k := 0; k < n; k++ {
		body := []lang.Stmt{
			&lang.Send{Target: name((k + 1) % n), Msg: "fork"},
			&lang.Accept{Msg: "fork"},
		}
		p.Tasks = append(p.Tasks, &lang.Task{Name: name(k), Body: body})
	}
	p.AssignLabels()
	return p
}

// RingBroken is Ring with one task's order flipped (the "leftie"
// philosopher): it accepts before sending, which removes the circular
// wait. Deadlock-free for all n >= 2.
func RingBroken(n int) *lang.Program {
	p := Ring(n)
	t := p.Tasks[0]
	t.Body[0], t.Body[1] = t.Body[1], t.Body[0]
	p.AssignLabels()
	return p
}

// ClientServer builds a deadlock-free request/reply pattern: each client
// calls server.req and then accepts its reply; the server accepts all
// requests and replies to clients in a fixed order.
func ClientServer(clients int) *lang.Program {
	p := &lang.Program{}
	cname := func(k int) string { return fmt.Sprintf("client%d", k) }
	var serverBody []lang.Stmt
	for k := 0; k < clients; k++ {
		serverBody = append(serverBody, &lang.Accept{Msg: "req"})
	}
	for k := 0; k < clients; k++ {
		serverBody = append(serverBody, &lang.Send{Target: cname(k), Msg: "reply"})
	}
	p.Tasks = append(p.Tasks, &lang.Task{Name: "server", Body: serverBody})
	for k := 0; k < clients; k++ {
		p.Tasks = append(p.Tasks, &lang.Task{Name: cname(k), Body: []lang.Stmt{
			&lang.Send{Target: "server", Msg: "req"},
			&lang.Accept{Msg: "reply"},
		}})
	}
	p.AssignLabels()
	return p
}

// Barrier builds a deadlock-free phased barrier: in each of `phases`
// rounds every worker calls coord.arrive and then accepts go; the
// coordinator collects all arrivals before releasing anyone.
func Barrier(workers, phases int) *lang.Program {
	p := &lang.Program{}
	wname := func(k int) string { return fmt.Sprintf("worker%d", k) }
	var coord []lang.Stmt
	for ph := 0; ph < phases; ph++ {
		for k := 0; k < workers; k++ {
			coord = append(coord, &lang.Accept{Msg: "arrive"})
		}
		for k := 0; k < workers; k++ {
			coord = append(coord, &lang.Send{Target: wname(k), Msg: "go"})
		}
	}
	p.Tasks = append(p.Tasks, &lang.Task{Name: "coord", Body: coord})
	for k := 0; k < workers; k++ {
		var body []lang.Stmt
		for ph := 0; ph < phases; ph++ {
			body = append(body,
				&lang.Send{Target: "coord", Msg: "arrive"},
				&lang.Accept{Msg: "go"},
			)
		}
		p.Tasks = append(p.Tasks, &lang.Task{Name: wname(k), Body: body})
	}
	p.AssignLabels()
	return p
}

// Config shapes Random program generation.
type Config struct {
	Tasks        int     // number of tasks (>= 2)
	StmtsPerTask int     // top-level statement budget per task
	Msgs         int     // distinct message names
	BranchProb   float64 // probability a statement is an if
	LoopProb     float64 // probability a statement is a bounded loop
	MaxDepth     int     // nesting depth cap
	AcceptRatio  float64 // fraction of rendezvous that are accepts
}

// DefaultConfig returns a moderate shape for precision experiments.
func DefaultConfig() Config {
	return Config{
		Tasks:        3,
		StmtsPerTask: 4,
		Msgs:         2,
		BranchProb:   0.25,
		LoopProb:     0,
		MaxDepth:     2,
		AcceptRatio:  0.5,
	}
}

// Random generates a seeded random program. Every send targets another
// task and draws its message from a shared pool, so sync edges are dense
// enough to exercise the detectors.
func Random(rng *rand.Rand, cfg Config) *lang.Program {
	if cfg.Tasks < 2 {
		cfg.Tasks = 2
	}
	if cfg.Msgs < 1 {
		cfg.Msgs = 1
	}
	p := &lang.Program{}
	name := func(k int) string { return fmt.Sprintf("t%d", k) }
	var gen func(self, budget, depth int) []lang.Stmt
	gen = func(self, budget, depth int) []lang.Stmt {
		var body []lang.Stmt
		for i := 0; i < budget; i++ {
			r := rng.Float64()
			switch {
			case depth < cfg.MaxDepth && r < cfg.BranchProb:
				thenB := gen(self, 1+rng.Intn(2), depth+1)
				var elseB []lang.Stmt
				if rng.Intn(2) == 0 {
					elseB = gen(self, 1+rng.Intn(2), depth+1)
				}
				body = append(body, &lang.If{
					Cond: fmt.Sprintf("c%d", rng.Intn(8)),
					Then: thenB, Else: elseB,
				})
			case depth < cfg.MaxDepth && r < cfg.BranchProb+cfg.LoopProb:
				body = append(body, &lang.Loop{
					Count: 1 + rng.Intn(3),
					Body:  gen(self, 1+rng.Intn(2), depth+1),
				})
			case rng.Float64() < cfg.AcceptRatio:
				body = append(body, &lang.Accept{
					Msg: fmt.Sprintf("m%d", rng.Intn(cfg.Msgs)),
				})
			default:
				target := rng.Intn(cfg.Tasks - 1)
				if target >= self {
					target++
				}
				body = append(body, &lang.Send{
					Target: name(target),
					Msg:    fmt.Sprintf("m%d", rng.Intn(cfg.Msgs)),
				})
			}
		}
		return body
	}
	for k := 0; k < cfg.Tasks; k++ {
		p.Tasks = append(p.Tasks, &lang.Task{Name: name(k), Body: gen(k, cfg.StmtsPerTask, 0)})
	}
	p.AssignLabels()
	return p
}

// NestedLoops builds one task whose body nests `depth` loops around a
// two-rendezvous kernel with a partner task; used to measure the unroll
// transform's 2^depth growth (paper §3.1.4).
func NestedLoops(depth, bodyStmts int) *lang.Program {
	kernel := make([]lang.Stmt, 0, bodyStmts)
	for i := 0; i < bodyStmts; i++ {
		if i%2 == 0 {
			kernel = append(kernel, &lang.Send{Target: "sink", Msg: "m"})
		} else {
			kernel = append(kernel, &lang.Accept{Msg: "r"})
		}
	}
	body := kernel
	for d := 0; d < depth; d++ {
		body = []lang.Stmt{&lang.Loop{Cond: fmt.Sprintf("w%d", d), Body: body}}
	}
	sink := []lang.Stmt{&lang.Loop{Cond: "drain", Body: []lang.Stmt{
		&lang.Accept{Msg: "m"},
		&lang.Send{Target: "src", Msg: "r"},
	}}}
	p := &lang.Program{Tasks: []*lang.Task{
		{Name: "src", Body: body},
		{Name: "sink", Body: sink},
	}}
	p.AssignLabels()
	return p
}

// CrossRing builds a scaling family for runtime measurements: n tasks in a
// ring where task k accepts from its left neighbour and sends to its right
// neighbour `width` times, giving Theta(n*width) nodes and sync edges with
// plenty of CLG cycles for the detectors to chew on.
func CrossRing(n, width int) *lang.Program {
	p := &lang.Program{}
	name := func(k int) string { return fmt.Sprintf("t%d", k) }
	for k := 0; k < n; k++ {
		var body []lang.Stmt
		for w := 0; w < width; w++ {
			body = append(body,
				&lang.Accept{Msg: "tok"},
				&lang.Send{Target: name((k + 1) % n), Msg: "tok"},
			)
		}
		p.Tasks = append(p.Tasks, &lang.Task{Name: name(k), Body: body})
	}
	p.AssignLabels()
	return p
}

// ForkFan builds a rendezvous-dense, deadlock-free program whose exact
// wave space grows exponentially with n: n independent worker pairs that
// each exchange `depth` messages, so the explorer must interleave
// (depth+1)^n states while the static detectors stay polynomial.
func ForkFan(n, depth int) *lang.Program {
	p := &lang.Program{}
	for k := 0; k < n; k++ {
		a := fmt.Sprintf("a%d", k)
		bn := fmt.Sprintf("b%d", k)
		var sa, sb []lang.Stmt
		for d := 0; d < depth; d++ {
			sa = append(sa, &lang.Send{Target: bn, Msg: "m"})
			sb = append(sb, &lang.Accept{Msg: "m"})
		}
		p.Tasks = append(p.Tasks, &lang.Task{Name: a, Body: sa}, &lang.Task{Name: bn, Body: sb})
	}
	p.AssignLabels()
	return p
}
