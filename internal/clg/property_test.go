package clg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sg"
	"repro/internal/waves"
	"repro/internal/workload"
)

// Structural invariants of the CLG construction, on random programs:
//
//	|N_CLG| = 2 + 2*(|N|-2)            (b, e, and a split pair per node)
//	|E_CLG| = (|N|-2) internal edges
//	        + |E_C| transformed control edges
//	        + 2*|E_S| directed sync edges
//
// plus the constraint-1b shape: sync edges enter only _i halves and leave
// only _o halves, and the only edge out of an _o half into its own _i is
// the internal one.
func TestQuickCLGStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(3)
		cfg.StmtsPerTask = 1 + rng.Intn(4)
		cfg.BranchProb = 0.3
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		c := Build(g)
		nRendezvous := g.N() - 2
		if c.N() != 2+2*nRendezvous {
			return false
		}
		wantM := nRendezvous + g.NumControlEdges() + 2*g.NumSyncEdges()
		if c.M() != wantM {
			return false
		}
		// Every sync edge runs from an _o half to an _i half.
		for u := 0; u < c.G.N(); u++ {
			for _, v := range c.G.Succ(u) {
				if c.IsSyncEdge(u, v) {
					if c.IsIn[u] || !c.IsIn[v] {
						return false
					}
				}
			}
		}
		// Mappings are mutually consistent.
		for _, n := range g.Nodes {
			if !n.IsRendezvous() {
				continue
			}
			if c.Orig[c.In[n.ID]] != n.ID || c.Orig[c.Out[n.ID]] != n.ID {
				return false
			}
			if !c.G.HasEdge(c.Out[n.ID], c.In[n.ID]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The naive certificate is sound by construction: an acyclic CLG implies
// no wave-derived deadlock cycle, hence a deadlock-free program. Checked
// against the exact explorer on random loop-free programs.
func TestQuickAcyclicCLGImpliesDeadlockFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		c := Build(g)
		if ok, _ := c.HasCycle(); ok {
			return true // nothing claimed
		}
		res := waves.Explore(g, waves.Options{MaxStates: 200000})
		if res.Truncated {
			return true
		}
		if res.Deadlock {
			t.Logf("acyclic CLG but exact deadlock:\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
