package clg

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/sg"
)

func fromSrc(t *testing.T, src string) (*sg.Graph, *CLG) {
	t.Helper()
	g := sg.MustFromProgram(lang.MustParse(src))
	return g, Build(g)
}

const handshake = `
task t1 is
begin
  r: t2.sig1;
  s: accept sig2;
end;
task t2 is
begin
  u: accept sig1;
  v: t1.sig2;
end;
`

func TestCLGSizes(t *testing.T) {
	g, c := fromSrc(t, handshake)
	// 2 distinguished + 2 per rendezvous node.
	wantN := 2 + 2*(g.N()-2)
	if c.N() != wantN {
		t.Fatalf("N=%d, want %d", c.N(), wantN)
	}
	// Edges: 4 internal (r_o->r_i) + control (b->r_o etc.) + 2 per sync edge.
	// Control: b->r, r->s, s->e, b->u, u->v, v->e => 6 transformed edges.
	wantM := 4 + 6 + 2*g.NumSyncEdges()
	if c.M() != wantM {
		t.Fatalf("M=%d, want %d", c.M(), wantM)
	}
}

func TestCLGInternalEdges(t *testing.T) {
	g, c := fromSrc(t, handshake)
	r := g.NodeByLabel("r")
	if !c.G.HasEdge(c.Out[r], c.In[r]) {
		t.Fatal("internal r_o->r_i edge missing")
	}
	if c.G.HasEdge(c.In[r], c.Out[r]) {
		t.Fatal("reverse internal edge must not exist")
	}
}

func TestCLGSyncEdgeDirections(t *testing.T) {
	g, c := fromSrc(t, handshake)
	r, u := g.NodeByLabel("r"), g.NodeByLabel("u")
	if !c.G.HasEdge(c.Out[r], c.In[u]) || !c.G.HasEdge(c.Out[u], c.In[r]) {
		t.Fatal("sync edge pair missing")
	}
	if !c.IsSyncEdge(c.Out[r], c.In[u]) {
		t.Fatal("sync edge not marked")
	}
	if c.IsSyncEdge(c.Out[r], c.In[r]) {
		t.Fatal("internal edge marked as sync")
	}
}

func TestHandshakeHasNoCLGCycle(t *testing.T) {
	// The correct handshake (send-first paired with accept-first) is
	// deadlock-free and its CLG is acyclic.
	_, c := fromSrc(t, handshake)
	if ok, cyc := c.HasCycle(); ok {
		t.Fatalf("spurious cycle %v", cyc)
	}
	if len(c.Cycles()) != 0 {
		t.Fatal("Cycles nonempty")
	}
}

func TestReversedHandshakeHasCycle(t *testing.T) {
	// Both tasks accept first: the classic real deadlock (Figure 2(b)).
	_, c := fromSrc(t, `
task t1 is
begin
  r: accept sig1;
  s: t2.sig2;
end;
task t2 is
begin
  u: accept sig2;
  v: t1.sig1;
end;
`)
	ok, cyc := c.HasCycle()
	if !ok {
		t.Fatal("deadlock cycle not found")
	}
	if len(cyc) < 4 {
		t.Fatalf("cycle %v too short", cyc)
	}
	if len(c.Cycles()) != 1 {
		t.Fatalf("cycles=%v", c.Cycles())
	}
}

// Figure 4(a)/(b): a cycle existing only through sync edges is found by a
// naive traversal of the sync graph, but the CLG is acyclic.
const figure4a = `
task A is
begin
  s: accept m;
  u: accept m;
end;
task B is
begin
  r: A.m;
end;
task C is
begin
  t: A.m;
end;
`

func TestFigure4SpuriousSyncCycle(t *testing.T) {
	g, c := fromSrc(t, figure4a)
	if !SyncGraphHasCycle(g) {
		t.Fatal("naive sync-graph traversal should find the spurious cycle")
	}
	if ok, cyc := c.HasCycle(); ok {
		t.Fatalf("CLG must kill the spurious cycle, found %v", cyc)
	}
}

func TestSyncGraphCycleIgnoresSingleEdgeBounce(t *testing.T) {
	// One send, one accept: u<->v from the undirected sync edge must not
	// count as a cycle.
	g, _ := fromSrc(t, `
task A is
begin
  accept m;
end;
task B is
begin
  A.m;
end;
`)
	if SyncGraphHasCycle(g) {
		t.Fatal("single sync edge misreported as cycle")
	}
}

func TestConstraint1bEnforced(t *testing.T) {
	// A path entering a node via sync edge cannot leave via sync edge:
	// verify no CLG edge sequence sync-in -> sync-out exists at one node.
	g, c := fromSrc(t, figure4a)
	for _, n := range g.Nodes {
		if !n.IsRendezvous() {
			continue
		}
		in, out := c.In[n.ID], c.Out[n.ID]
		// in's successors must all be non-sync (control or internal).
		for _, w := range c.G.Succ(in) {
			if c.IsSyncEdge(in, w) {
				t.Fatalf("node %v: sync edge leaves the incoming half", n)
			}
		}
		// out's predecessors must never be reached by sync (sync edges
		// only enter _i nodes).
		for _, pred := range c.G.Pred(out) {
			if c.IsSyncEdge(pred, out) {
				t.Fatalf("node %v: sync edge enters the outgoing half", n)
			}
		}
	}
}

func TestCyclesReportsSCCMembers(t *testing.T) {
	g, c := fromSrc(t, `
task t1 is
begin
  r: accept sig1;
  s: t2.sig2;
end;
task t2 is
begin
  u: accept sig2;
  v: t1.sig1;
end;
`)
	cycles := c.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles=%d", len(cycles))
	}
	want := map[int]bool{
		g.NodeByLabel("r"): true, g.NodeByLabel("s"): true,
		g.NodeByLabel("u"): true, g.NodeByLabel("v"): true,
	}
	if len(cycles[0]) != 4 {
		t.Fatalf("cycle members=%v", cycles[0])
	}
	for _, id := range cycles[0] {
		if !want[id] {
			t.Fatalf("unexpected member %d", id)
		}
	}
}

func TestDOT(t *testing.T) {
	_, c := fromSrc(t, handshake)
	dot := c.DOT()
	if !strings.Contains(dot, "digraph clg") || !strings.Contains(dot, "_i") {
		t.Fatalf("bad DOT:\n%s", dot)
	}
}
