// Package clg implements the cycle location graph (paper §3.1): a
// transformed sync graph in which every rendezvous node r is split into an
// incoming half r_i (all sync edges arrive here) and an outgoing half r_o
// (all sync edges leave here), connected r_o -> r_i. The split enforces
// deadlock constraint 1b structurally: a node entered through a sync edge
// can only be left through a control-flow edge, so every directed cycle in
// the CLG traverses at least one control edge inside each task it visits.
//
// The naive deadlock detection algorithm is then simply: the program may
// deadlock only if its CLG has a directed cycle (for loop-free programs,
// obtained via cfg.Unroll when necessary).
package clg

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sg"
)

// CLG is a cycle location graph derived from a sync graph.
type CLG struct {
	SG *sg.Graph
	G  *graph.Digraph
	B  int
	E  int

	// In and Out map sync-graph node ids to their split CLG halves.
	// For b and e both map to the single unsplit node.
	In  []int
	Out []int
	// Orig maps CLG node ids back to sync-graph node ids.
	Orig []int
	// IsIn marks CLG nodes that are incoming halves.
	IsIn []bool

	syncEdges map[int64]bool
}

func key(u, v int) int64 { return int64(u)<<32 | int64(uint32(v)) }

// Build constructs the CLG of a sync graph by the paper's six steps.
func Build(s *sg.Graph) *CLG {
	c := &CLG{
		SG:        s,
		G:         graph.New(0),
		In:        make([]int, s.N()),
		Out:       make([]int, s.N()),
		syncEdges: map[int64]bool{},
	}
	add := func(orig int, isIn bool) int {
		id := c.G.AddNode()
		c.Orig = append(c.Orig, orig)
		c.IsIn = append(c.IsIn, isIn)
		return id
	}

	// Steps 1-3: distinguished nodes, split pairs, internal edges.
	c.B = add(s.B, false)
	c.E = add(s.E, false)
	c.In[s.B], c.Out[s.B] = c.B, c.B
	c.In[s.E], c.Out[s.E] = c.E, c.E
	for _, n := range s.Nodes {
		if !n.IsRendezvous() {
			continue
		}
		ri := add(n.ID, true)
		ro := add(n.ID, false)
		c.In[n.ID], c.Out[n.ID] = ri, ro
		c.G.AddEdge(ro, ri)
	}

	// Steps 4-5: control edges.
	for u := 0; u < s.Control.N(); u++ {
		for _, v := range s.Control.Succ(u) {
			switch {
			case u == s.B && v == s.E:
				c.G.AddEdgeUnique(c.B, c.E)
			case u == s.B:
				c.G.AddEdgeUnique(c.B, c.Out[v])
			case v == s.E:
				c.G.AddEdgeUnique(c.In[u], c.E)
			default:
				c.G.AddEdgeUnique(c.In[u], c.Out[v])
			}
		}
	}

	// Step 6: sync edges, both directions.
	for u, adj := range s.Sync {
		for _, v := range adj {
			if u < v {
				c.addSync(c.Out[u], c.In[v])
				c.addSync(c.Out[v], c.In[u])
			}
		}
	}
	return c
}

// BuildTraced is Build recording the constructed graph's size — CLG
// nodes, total edges, and sync-derived edges — into span (nil records
// nothing). The pipeline uses it so the CLG stage span carries the inputs
// each masked SCC run operates on.
func BuildTraced(s *sg.Graph, span *obs.Span) *CLG {
	c := Build(s)
	if span != nil {
		span.Add("clg_nodes", int64(c.G.N()))
		span.Add("clg_edges", int64(c.G.M()))
		span.Add("clg_sync_edges", int64(len(c.syncEdges)))
	}
	return c
}

func (c *CLG) addSync(u, v int) {
	c.G.AddEdgeUnique(u, v)
	c.syncEdges[key(u, v)] = true
}

// IsSyncEdge reports whether the CLG edge u->v derives from a sync edge.
func (c *CLG) IsSyncEdge(u, v int) bool { return c.syncEdges[key(u, v)] }

// N returns the CLG node count.
func (c *CLG) N() int { return c.G.N() }

// SizeBytes approximates the CLG's resident footprint (node maps,
// adjacency, sync-edge set), for byte-budgeted caches.
func (c *CLG) SizeBytes() int64 {
	n, m := int64(c.G.N()), int64(c.G.M())
	return n*(3*8+1) + m*8 + int64(len(c.syncEdges))*24
}

// M returns the CLG edge count.
func (c *CLG) M() int { return c.G.M() }

// HasCycle reports whether the CLG has any directed cycle and returns a
// witness as sync-graph node ids (deduplicated, first repeated last).
// This is the naive deadlock detector: acyclic CLG proves deadlock freedom
// for loop-free programs (constraints 1a and 1b hold on any cycle found).
func (c *CLG) HasCycle() (bool, []int) {
	ok, cyc := c.G.HasCycle()
	if !ok {
		return false, nil
	}
	return true, c.toSyncNodes(cyc)
}

// toSyncNodes maps a CLG node sequence back to sync-graph node ids,
// collapsing the i/o halves of each node.
func (c *CLG) toSyncNodes(path []int) []int {
	var out []int
	for _, v := range path {
		o := c.Orig[v]
		if len(out) > 0 && out[len(out)-1] == o {
			continue
		}
		out = append(out, o)
	}
	return out
}

// Cycles returns one representative cycle per nontrivial strongly-connected
// component, as sync-graph node id sets, for reporting.
func (c *CLG) Cycles() [][]int {
	comp, ncomp := c.G.SCC()
	sizes := graph.SCCSizes(comp, ncomp)
	members := make([][]int, ncomp)
	for v, cc := range comp {
		if sizes[cc] > 1 {
			members[cc] = append(members[cc], v)
		}
	}
	var out [][]int
	for _, m := range members {
		if len(m) == 0 {
			continue
		}
		set := map[int]bool{}
		var nodes []int
		for _, v := range m {
			o := c.Orig[v]
			if !set[o] {
				set[o] = true
				nodes = append(nodes, o)
			}
		}
		out = append(out, nodes)
	}
	return out
}

// SyncGraphHasCycle runs the naive pre-CLG check of §3.1: a depth-first
// traversal of the *untransformed* sync graph treating sync edges as
// bidirectional. It finds spurious cycles like Figure 4(a); the CLG exists
// precisely to kill them. Exposed for the F4 experiment.
func SyncGraphHasCycle(s *sg.Graph) bool {
	g := graph.New(s.N())
	for u := 0; u < s.Control.N(); u++ {
		for _, v := range s.Control.Succ(u) {
			g.AddEdgeUnique(u, v)
		}
	}
	for u, adj := range s.Sync {
		for _, v := range adj {
			g.AddEdgeUnique(u, v)
		}
	}
	// A cycle that uses one sync edge back and forth (u->v->u) is not a
	// meaningful cycle; require a cycle visiting >= 2 distinct nodes via
	// SCC and, for 2-node components, at least one control edge.
	comp, ncomp := g.SCC()
	sizes := graph.SCCSizes(comp, ncomp)
	members := make([][]int, ncomp)
	for v, cc := range comp {
		members[cc] = append(members[cc], v)
	}
	for cc, m := range members {
		if sizes[cc] < 2 {
			continue
		}
		if sizes[cc] > 2 {
			return true
		}
		u, v := m[0], m[1]
		if s.Control.HasEdge(u, v) || s.Control.HasEdge(v, u) {
			return true
		}
		// Two nodes joined only by a sync edge: u<->v is an artifact of
		// treating the undirected edge as two arcs, not a cycle.
	}
	return false
}

// DOT renders the CLG in Graphviz format; sync-derived edges are dashed.
func (c *CLG) DOT() string {
	var b strings.Builder
	b.WriteString("digraph clg {\n")
	for v := 0; v < c.G.N(); v++ {
		name := c.SG.Nodes[c.Orig[v]].String()
		if c.IsIn[v] {
			name += "_i"
		} else if v != c.B && v != c.E {
			name += "_o"
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, name)
	}
	for u := 0; u < c.G.N(); u++ {
		for _, v := range c.G.Succ(u) {
			style := ""
			if c.IsSyncEdge(u, v) {
				style = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", u, v, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
