package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanTreeAndCounters(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("analyze")
	a := root.StartChild("sync-graph")
	a.Add("nodes", 10)
	a.Add("nodes", 2)
	a.Set("sync_edges", 7)
	a.End()
	b := root.StartChild("detect:refined")
	b.Add("hypotheses", 5)
	time.Sleep(time.Millisecond)
	b.End()
	root.End()

	if tr.Root() != root {
		t.Fatal("Root() != first Start()")
	}
	if got := a.Counter("nodes"); got != 12 {
		t.Fatalf("nodes=%d, want 12", got)
	}
	if names := a.CounterNames(); len(names) != 2 || names[0] != "nodes" || names[1] != "sync_edges" {
		t.Fatalf("CounterNames=%v", names)
	}
	if root.Child("detect:refined") != b || root.Child("missing") != nil {
		t.Fatal("Child lookup broken")
	}
	// Sequential children's durations are bounded by the root duration.
	var sum time.Duration
	for _, c := range root.Children {
		if c.Dur < 0 {
			t.Fatalf("negative duration on %s", c.Name)
		}
		sum += c.Dur
	}
	if sum > root.Dur {
		t.Fatalf("children sum %v exceeds root %v", sum, root.Dur)
	}

	tree := root.Tree()
	for _, want := range []string{"analyze", "sync-graph", "detect:refined", "hypotheses=5", "nodes=12"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}

	js := root.JSON()
	if js.Name != "analyze" || len(js.Children) != 2 {
		t.Fatalf("json: %+v", js)
	}
	if js.Children[1].Counters["hypotheses"] != 5 {
		t.Fatalf("json counters: %+v", js.Children[1])
	}
	if js.Children[1].DurationMs <= 0 {
		t.Fatalf("json duration: %+v", js.Children[1])
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil || tr.Root() != nil {
		t.Fatal("nil tracer must produce nil spans")
	}
	// None of these may panic.
	c := s.StartChild("y")
	c.Add("k", 1)
	c.Set("k", 2)
	c.End()
	s.End()
	s.Walk(func(int, *Span) { t.Fatal("walked a nil span") })
	if s.Tree() != "" || s.JSON() != nil || s.Counter("k") != 0 || s.CounterNames() != nil || s.Child("y") != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	var h *Histogram
	h.Observe(time.Second) // nil histogram is a no-op
}

func TestEndIsIdempotent(t *testing.T) {
	s := NewTracer().Start("x")
	time.Sleep(100 * time.Microsecond)
	s.End()
	first := s.Dur
	time.Sleep(time.Millisecond)
	s.End()
	if s.Dur != first {
		t.Fatalf("second End changed duration: %v -> %v", first, s.Dur)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(time.Millisecond)       // <= 0.001 (le is inclusive)
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(time.Second)            // +Inf

	s := h.Snapshot()
	wantCum := []uint64{2, 3, 3, 4}
	for i, want := range wantCum {
		if s.Cumulative[i] != want {
			t.Fatalf("cumulative=%v, want %v", s.Cumulative, wantCum)
		}
	}
	if s.Count != 4 {
		t.Fatalf("count=%d", s.Count)
	}
	wantSum := (500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second).Seconds()
	if diff := s.SumSeconds - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sum=%v, want %v", s.SumSeconds, wantSum)
	}

	var b strings.Builder
	h.WriteProm(&b, "x_seconds", "stage", "unroll")
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{stage="unroll",le="0.001"} 2`,
		`x_seconds_bucket{stage="unroll",le="0.01"} 3`,
		`x_seconds_bucket{stage="unroll",le="0.1"} 3`,
		`x_seconds_bucket{stage="unroll",le="+Inf"} 4`,
		`x_seconds_count{stage="unroll"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}

	var nb strings.Builder
	h.WriteProm(&nb, "x_seconds", "", "")
	if !strings.Contains(nb.String(), `x_seconds_bucket{le="+Inf"} 4`) {
		t.Fatalf("unlabeled prom output:\n%s", nb.String())
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bad := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v accepted", bad)
				}
			}()
			NewHistogram(bad...)
		}()
	}
}
