package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe calls, rendered in the Prometheus text exposition format
// (cumulative `_bucket` series with an le label, plus `_sum` and
// `_count`). Bounds are upper bucket edges in seconds; an implicit +Inf
// bucket catches the tail.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Int64    // nanoseconds
}

// LatencyBuckets is the default bucket layout for pipeline-stage and HTTP
// request latencies: 10µs to 10s, roughly logarithmic.
func LatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// NewHistogram builds a histogram over the given upper bounds (seconds),
// which must be strictly increasing and nonempty.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs) // first bound >= secs (le semantics)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges in seconds (excluding +Inf).
	Bounds []float64
	// Cumulative[i] counts samples <= Bounds[i]; the final element is the
	// +Inf bucket and equals Count.
	Cumulative []uint64
	Count      uint64
	SumSeconds float64
}

// Snapshot copies the current counts. Concurrent Observe calls may land
// between bucket reads; the snapshot is still internally monotone.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: append([]float64(nil), h.bounds...)}
	s.Cumulative = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		s.Cumulative[i] = running
	}
	s.Count = running
	s.SumSeconds = float64(h.sum.Load()) / float64(time.Second)
	return s
}

// Quantile estimates the q-quantile (in seconds) from the snapshot's
// cumulative bucket counts: find the bucket the target rank falls in and
// interpolate linearly across it. Samples beyond the last finite bound
// clamp to that bound — the honest answer a bounded histogram can give.
// 0 when the snapshot is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if len(s.Cumulative) == 0 || len(s.Bounds) == 0 {
		return 0
	}
	total := s.Cumulative[len(s.Cumulative)-1]
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	for i, c := range s.Cumulative {
		if float64(c) < target {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // +Inf bucket: clamp
		}
		lo := 0.0
		var below uint64
		if i > 0 {
			lo = s.Bounds[i-1]
			below = s.Cumulative[i-1]
		}
		inBucket := c - below
		if inBucket == 0 {
			return s.Bounds[i]
		}
		frac := (target - float64(below)) / float64(inBucket)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + frac*(s.Bounds[i]-lo)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// formatLe renders a bucket bound the way Prometheus clients do.
func formatLe(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// WriteProm renders the histogram's series. The caller emits the family's
// # HELP and # TYPE lines (once per family, even with many label sets);
// labelKey/labelValue add one label pair to every series ("" omits it).
func (h *Histogram) WriteProm(w io.Writer, name, labelKey, labelValue string) {
	s := h.Snapshot()
	label := func(le string) string {
		switch {
		case labelKey == "" && le == "":
			return ""
		case labelKey == "":
			return fmt.Sprintf(`{le=%q}`, le)
		case le == "":
			return fmt.Sprintf(`{%s=%q}`, labelKey, labelValue)
		default:
			return fmt.Sprintf(`{%s=%q,le=%q}`, labelKey, labelValue, le)
		}
	}
	for i, b := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, label(formatLe(b)), s.Cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, label("+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, label(""), s.SumSeconds)
	fmt.Fprintf(w, "%s_count%s %d\n", name, label(""), s.Count)
}
