package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Retention reasons, in decreasing priority: a trace retained for several
// reasons is labeled with the strongest one.
const (
	RetainError    = "error"    // request finished with status >= 400
	RetainSlow     = "slow"     // root duration >= the slow threshold
	RetainDegraded = "degraded" // a span recorded a degraded counter
	RetainSampled  = "sampled"  // head-sampling decision at trace birth
)

// ExportedTrace is one completed, retained trace record: the projected
// span tree plus the retention verdict. A process exports at most one
// record per request, but a replica can hold several records for one
// trace id (the gateway fans a batch out as sibling chunk requests).
type ExportedTrace struct {
	TraceID    string    `json:"traceId"`
	Name       string    `json:"name"`
	Reason     string    `json:"reason"`
	Status     int       `json:"status,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"durationMs"`
	Root       *SpanJSON `json:"root"`

	// span is the live tree behind a ring record: Export stores the ended
	// span as-is and defers the JSON projection to the first debug read,
	// keeping the projection cost off the request hot path. nil for
	// records decoded from another process's JSON, which carry Root.
	span *Span
}

// materialize returns an independent copy with Root populated: projected
// from the span tree (itself a fresh deep structure), or deep-cloned from
// Root. Callers may graft remote subtrees into the result without
// touching the ring's copy.
func (e *ExportedTrace) materialize() *ExportedTrace {
	out := *e
	if e.span != nil {
		out.Root = e.span.JSON()
		out.span = nil
		return &out
	}
	out.Root = e.Root.Clone()
	return &out
}

// spanCount walks whichever representation the record holds.
func (e *ExportedTrace) spanCount() int {
	n := 0
	if e.span != nil {
		e.span.Walk(func(int, *Span) { n++ })
	} else if e.Root != nil {
		e.Root.Walk(func(*SpanJSON) { n++ })
	}
	return n
}

// TraceSummary is the per-trace line of the trace listing.
type TraceSummary struct {
	TraceID    string    `json:"traceId"`
	Name       string    `json:"name"`
	Reason     string    `json:"reason"`
	Status     int       `json:"status,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"durationMs"`
	Spans      int       `json:"spans"`
}

// TraceList is the GET /debug/traces response body.
type TraceList struct {
	Retained uint64         `json:"retained"`
	Dropped  uint64         `json:"dropped"`
	Traces   []TraceSummary `json:"traces"`
}

// TraceLookup is the GET /debug/traces/{id} response body. Records is
// every retained record carrying the trace id, oldest first.
type TraceLookup struct {
	TraceID string           `json:"traceId"`
	Records []*ExportedTrace `json:"records"`
}

// Exporter retains completed span trees in a bounded in-memory ring and
// serves them as JSON for debugging. Retention is head-sampling (1-in-N,
// decided where the trace is born and propagated via traceparent flags)
// plus always-retain for slow, degraded, or errored requests — so the
// ring stays small under load but the pathological requests operators
// care about are never sampled away.
type Exporter struct {
	sampleN int
	slow    time.Duration

	mu       sync.Mutex
	ring     []*ExportedTrace // capacity-bounded; next points at the oldest slot
	next     int
	seq      uint64            // head-sampling counter
	reasons  map[string]uint64 // retained-by-reason counters
	dropped  uint64
	exported uint64
}

// NewExporter builds an exporter retaining up to ringSize traces,
// head-sampling 1 in sampleN new traces (0 disables sampling, 1 samples
// everything), and always retaining requests at least slow long (0
// disables the slow path).
func NewExporter(ringSize, sampleN int, slow time.Duration) *Exporter {
	if ringSize <= 0 {
		ringSize = 64
	}
	return &Exporter{
		sampleN: sampleN,
		slow:    slow,
		ring:    make([]*ExportedTrace, 0, ringSize),
		reasons: make(map[string]uint64, 4),
	}
}

// SlowThreshold returns the configured slow-request threshold (0 = off).
func (e *Exporter) SlowThreshold() time.Duration {
	if e == nil {
		return 0
	}
	return e.slow
}

// SampleNext makes the head decision for a newly born trace: true for 1
// in N calls. Nil-safe (false).
func (e *Exporter) SampleNext() bool {
	if e == nil || e.sampleN <= 0 {
		return false
	}
	if e.sampleN == 1 {
		return true
	}
	e.mu.Lock()
	e.seq++
	hit := e.seq%uint64(e.sampleN) == 1
	e.mu.Unlock()
	return hit
}

// Export considers a completed request's root span for retention.
// sampled is the trace's head decision, status the response status (0
// when unknown). Returns the retention reason, or "" when dropped.
// Nil-safe on both receiver and root.
func (e *Exporter) Export(root *Span, sampled bool, status int) string {
	if e == nil || root == nil {
		return ""
	}
	reason := ""
	switch {
	case status >= 400:
		reason = RetainError
	case e.slow > 0 && root.Dur >= e.slow:
		reason = RetainSlow
	case isDegraded(root):
		reason = RetainDegraded
	case sampled:
		reason = RetainSampled
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if reason == "" {
		e.dropped++
		return ""
	}
	rec := &ExportedTrace{
		TraceID:    root.TraceID.String(),
		Name:       root.Name,
		Reason:     reason,
		Status:     status,
		Start:      root.Start,
		DurationMs: float64(root.Dur) / float64(time.Millisecond),
		// The request is over, so the tree is immutable from here: keep it
		// live and project to JSON lazily on the (cold) debug read path.
		span: root,
	}
	if len(e.ring) < cap(e.ring) {
		e.ring = append(e.ring, rec)
	} else {
		e.ring[e.next] = rec
		e.next = (e.next + 1) % cap(e.ring)
	}
	e.reasons[reason]++
	e.exported++
	return reason
}

func isDegraded(root *Span) bool {
	degraded := false
	root.Walk(func(_ int, sp *Span) {
		if sp.Counter("degraded") > 0 {
			degraded = true
		}
	})
	return degraded
}

// List summarizes the retained traces, newest first.
func (e *Exporter) List() TraceList {
	if e == nil {
		return TraceList{Traces: []TraceSummary{}}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := TraceList{
		Retained: e.exported,
		Dropped:  e.dropped,
		Traces:   make([]TraceSummary, 0, len(e.ring)),
	}
	e.inOrder(func(rec *ExportedTrace) {
		spans := rec.spanCount()
		out.Traces = append(out.Traces, TraceSummary{
			TraceID:    rec.TraceID,
			Name:       rec.Name,
			Reason:     rec.Reason,
			Status:     rec.Status,
			Start:      rec.Start,
			DurationMs: rec.DurationMs,
			Spans:      spans,
		})
	})
	// inOrder yields oldest first; the listing wants newest first.
	for i, j := 0, len(out.Traces)-1; i < j; i, j = i+1, j-1 {
		out.Traces[i], out.Traces[j] = out.Traces[j], out.Traces[i]
	}
	return out
}

// inOrder visits ring records oldest first. Caller holds e.mu.
func (e *Exporter) inOrder(fn func(*ExportedTrace)) {
	if len(e.ring) < cap(e.ring) {
		for _, rec := range e.ring {
			fn(rec)
		}
		return
	}
	for i := 0; i < len(e.ring); i++ {
		fn(e.ring[(e.next+i)%len(e.ring)])
	}
}

// Get returns deep copies of every retained record for the trace id,
// oldest first (nil when unknown). Copies, so the caller may graft
// remote subtrees into the result without racing the ring.
func (e *Exporter) Get(id string) []*ExportedTrace {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*ExportedTrace
	e.inOrder(func(rec *ExportedTrace) {
		if rec.TraceID == id {
			out = append(out, rec.materialize())
		}
	})
	return out
}

// Stats returns the retained-by-reason counters and the dropped count.
func (e *Exporter) Stats() (reasons map[string]uint64, dropped uint64) {
	if e == nil {
		return nil, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	reasons = make(map[string]uint64, len(e.reasons))
	for k, v := range e.reasons {
		reasons[k] = v
	}
	return reasons, e.dropped
}

// WriteProm renders the exporter counters in Prometheus text format under
// the given metric prefix.
func (e *Exporter) WriteProm(w io.Writer, prefix string) {
	if e == nil {
		return
	}
	reasons, dropped := e.Stats()
	fmt.Fprintf(w, "# HELP %s_traces_retained_total Completed traces retained in the debug ring, by reason.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_traces_retained_total counter\n", prefix)
	for _, reason := range []string{RetainError, RetainSlow, RetainDegraded, RetainSampled} {
		fmt.Fprintf(w, "%s_traces_retained_total{reason=%q} %d\n", prefix, reason, reasons[reason])
	}
	for reason, n := range reasons {
		switch reason {
		case RetainError, RetainSlow, RetainDegraded, RetainSampled:
		default:
			fmt.Fprintf(w, "%s_traces_retained_total{reason=%q} %d\n", prefix, reason, n)
		}
	}
	fmt.Fprintf(w, "# HELP %s_traces_dropped_total Completed traces dropped by head sampling.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_traces_dropped_total counter\n", prefix)
	fmt.Fprintf(w, "%s_traces_dropped_total %d\n", prefix, dropped)
}

// ServeList handles GET /debug/traces.
func (e *Exporter) ServeList(w http.ResponseWriter, r *http.Request) {
	writeTraceJSON(w, http.StatusOK, e.List())
}

// ServeGet handles GET /debug/traces/{id} (the id is the {id} path
// value). Unknown ids get a JSON 404 in the service error-body shape.
func (e *Exporter) ServeGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	recs := e.Get(id)
	if len(recs) == 0 {
		writeTraceJSON(w, http.StatusNotFound, map[string]any{
			"error": map[string]string{
				"code":    "not_found",
				"message": fmt.Sprintf("no retained trace %q", id),
			},
		})
		return
	}
	writeTraceJSON(w, http.StatusOK, TraceLookup{TraceID: id, Records: recs})
}

func writeTraceJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// SortRecordsByStart orders records oldest first; used by callers that
// merge records from several exporters.
func SortRecordsByStart(recs []*ExportedTrace) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
}
