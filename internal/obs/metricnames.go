package obs

// metricFamilies registers the one fixed-name family this package
// exposes. Everything else obs renders (trace-exporter counters, Go
// runtime telemetry) takes the caller's prefix at runtime and is named
// dynamically, which is exactly why siwad-lint's metricreg analyzer
// checks literal names only: a %s-prefixed family cannot drift by typo
// at one site, a literal can.
var metricFamilies = map[string]string{
	"siwa_build_info": "version",
}
