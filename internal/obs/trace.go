package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"net/http"
)

// TraceID is the 128-bit identity shared by every span of one distributed
// trace, across processes. The zero value means "no trace".
type TraceID [16]byte

// SpanID is the 64-bit identity of one span within a trace. The zero
// value means "no span" (an unparented root).
type SpanID [8]byte

// IsZero reports whether the id is the all-zero invalid id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits (the W3C wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is the all-zero invalid id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID mints a random non-zero trace id. The generator is
// math/rand/v2's shared source: trace ids need uniqueness, not
// unpredictability, and the hot path cannot afford a syscall per span.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], rand.Uint64())
	binary.BigEndian.PutUint64(t[8:], rand.Uint64())
	if t.IsZero() {
		t[15] = 1 // the W3C all-zero id is invalid
	}
	return t
}

// NewSpanID mints a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], rand.Uint64())
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// TraceparentHeader is the W3C Trace Context header name (lowercase on
// the wire; net/http canonicalizes lookups either way).
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a version-00 W3C traceparent value:
// "00-<32 hex trace id>-<16 hex span id>-<flags>", flags 01 when the
// trace is sampled (retain downstream) and 00 otherwise.
func FormatTraceparent(t TraceID, s SpanID, sampled bool) string {
	// Hand-assembled to keep the proxy hot path allocation-lean: one
	// 55-byte string, no fmt.
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], t[:])
	b[35] = '-'
	hex.Encode(b[36:52], s[:])
	b[52], b[53], b[54] = '-', '0', '0'
	if sampled {
		b[54] = '1'
	}
	return string(b[:])
}

// ParseTraceparent validates and decodes a traceparent value. It accepts
// exactly the version-00 grammar: 4 dash-separated fields, 2+32+16+2
// lowercase hex digits, non-zero trace and span ids. Anything else
// reports ok=false and the caller starts a fresh root — a malformed
// header is never an error, per the W3C spec.
func ParseTraceparent(v string) (t TraceID, s SpanID, sampled, ok bool) {
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return t, s, false, false
	}
	// The spec mandates lowercase hex; hex.Decode alone would also accept
	// uppercase, so check the alphabet first.
	if !isLowerHex(v[3:35]) || !isLowerHex(v[36:52]) || !isLowerHex(v[53:55]) {
		return t, s, false, false
	}
	if _, err := hex.Decode(t[:], []byte(v[3:35])); err != nil {
		return TraceID{}, s, false, false
	}
	if _, err := hex.Decode(s[:], []byte(v[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	flags := v[53:55]
	if t.IsZero() || s.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return t, s, flags == "01", true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// InjectTraceparent stamps the traceparent header on an outbound request.
func InjectTraceparent(h http.Header, t TraceID, s SpanID, sampled bool) {
	h.Set(TraceparentHeader, FormatTraceparent(t, s, sampled))
}

// ExtractTraceparent reads and validates an inbound traceparent header.
func ExtractTraceparent(h http.Header) (t TraceID, s SpanID, sampled, ok bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

// TraceHandle is one request's live trace state, carried through the
// request context so handlers, proxies, and the analysis pipeline all
// record into the same tree. Sampled is the head decision made where the
// trace was born (and propagated via the traceparent flags): it controls
// detailed tracing and default retention; slow or errored requests are
// retained regardless.
type TraceHandle struct {
	Tracer  *Tracer
	Root    *Span
	Sampled bool
}

type traceHandleKey struct{}

// ContextWithTrace attaches the handle to the context.
func ContextWithTrace(ctx context.Context, h *TraceHandle) context.Context {
	return context.WithValue(ctx, traceHandleKey{}, h)
}

// TraceFromContext returns the request's trace handle, or nil outside a
// traced request. All TraceHandle methods tolerate a nil receiver.
func TraceFromContext(ctx context.Context) *TraceHandle {
	h, _ := ctx.Value(traceHandleKey{}).(*TraceHandle)
	return h
}

// RootSpan returns the request root span (nil-safe).
func (h *TraceHandle) RootSpan() *Span {
	if h == nil {
		return nil
	}
	return h.Root
}

// TraceIDString returns the trace id in wire form, or "" when untraced.
func (h *TraceHandle) TraceIDString() string {
	if h == nil || h.Root == nil {
		return ""
	}
	return h.Root.TraceID.String()
}

// Traceparent builds the header value that names sp (or the root when sp
// is nil) as the parent of the next downstream span. Returns "" when
// there is nothing to propagate.
func (h *TraceHandle) Traceparent(sp *Span) string {
	if h == nil {
		return ""
	}
	if sp == nil {
		sp = h.Root
	}
	if sp == nil || sp.TraceID.IsZero() {
		return ""
	}
	return FormatTraceparent(sp.TraceID, sp.ID, h.Sampled)
}
