// Package obs is the zero-dependency instrumentation layer of the
// reproduction: named spans with durations, nested children, and typed
// work counters (Tracer/Span), plus a fixed-bucket latency Histogram
// rendered in the Prometheus text exposition format.
//
// The design goal is that instrumentation can be threaded through every
// pipeline stage and left in place permanently: all Span methods are
// nil-receiver no-ops, so code records into "the active span" without
// branching, and an untraced run pays only a nil check per call site.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is one named piece of work: a start time, a duration (set by End),
// a set of named int64 counters, and nested child spans. A Span tree is
// built and read by a single goroutine (one analysis); it is not safe for
// concurrent mutation. All methods are no-ops on a nil receiver, so
// callers thread a possibly-nil *Span through the pipeline unconditionally.
type Span struct {
	Name     string
	Start    time.Time
	Dur      time.Duration
	Children []*Span

	counters map[string]int64
	ended    bool
}

func newSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild opens and returns a child span. Nil-safe: returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.Children = append(s.Children, c)
	return c
}

// End fixes the span's duration. Repeated calls keep the first duration.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = time.Since(s.Start)
}

// Add increments the named counter by delta.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] += delta
}

// Set overwrites the named counter.
func (s *Span) Set(counter string, v int64) {
	if s == nil {
		return
	}
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] = v
}

// Counter returns the named counter's value (0 when absent or nil span).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.counters[name]
}

// CounterNames returns the span's counter names, sorted.
func (s *Span) CounterNames() []string {
	if s == nil || len(s.counters) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Child returns the first child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Walk visits the span and every descendant in depth-first order.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	var rec func(depth int, sp *Span)
	rec = func(depth int, sp *Span) {
		fn(depth, sp)
		for _, c := range sp.Children {
			rec(depth+1, c)
		}
	}
	rec(0, s)
}

// Tree renders the span tree as indented lines: name, duration, and the
// sorted counters of each span. The per-stage durations of a tree built by
// a sequential pipeline sum to (at most) the root duration.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(depth int, sp *Span) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%-*s %12s", indent, 28-len(indent), sp.Name, sp.Dur.Round(time.Microsecond))
		for _, n := range sp.CounterNames() {
			fmt.Fprintf(&b, "  %s=%d", n, sp.Counter(n))
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// SpanJSON is the stable wire projection of a Span, used by the report
// schema (v2) and the analysis service.
type SpanJSON struct {
	Name       string           `json:"name"`
	DurationMs float64          `json:"durationMs"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*SpanJSON      `json:"children,omitempty"`
}

// JSON builds the wire projection of the span tree (nil for a nil span).
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	out := &SpanJSON{
		Name:       s.Name,
		DurationMs: float64(s.Dur) / float64(time.Millisecond),
	}
	if len(s.counters) > 0 {
		out.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			out.Counters[k] = v
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// Tracer owns one span tree. A nil *Tracer is the disabled tracer: Start
// returns a nil *Span and the whole instrumented pipeline runs untraced.
type Tracer struct {
	root *Span
}

// NewTracer returns an enabled tracer with no spans yet.
func NewTracer() *Tracer { return &Tracer{} }

// Start opens a span: the root when none exists yet, otherwise a child of
// the root. Nil-safe: returns nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	if t.root == nil {
		t.root = newSpan(name)
		return t.root
	}
	return t.root.StartChild(name)
}

// Root returns the root span (nil before the first Start or on nil).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}
