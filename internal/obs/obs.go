// Package obs is the zero-dependency instrumentation layer of the
// reproduction: named spans with durations, nested children, and typed
// work counters (Tracer/Span), plus a fixed-bucket latency Histogram
// rendered in the Prometheus text exposition format.
//
// The design goal is that instrumentation can be threaded through every
// pipeline stage and left in place permanently: all Span methods are
// nil-receiver no-ops, so code records into "the active span" without
// branching, and an untraced run pays only a nil check per call site.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one named piece of work: a start time, a duration (set by End),
// a set of named int64 counters, string attributes, and nested child
// spans. Every span carries distributed-tracing identity: the 128-bit
// TraceID shared by the whole tree (and, via traceparent propagation, by
// remote trees), its own SpanID, and the ParentID it hangs under (a
// remote span for a root that continued an inbound traceparent).
//
// Concurrency: StartChild is safe to call on one parent from many
// goroutines (scatter-gather fans children out), but each span's own
// counters, attrs, and End are owned by the goroutine that created it,
// and readers (Walk, Tree, JSON) must run after the writers are joined.
// All methods are no-ops on a nil receiver, so callers thread a
// possibly-nil *Span through the pipeline unconditionally.
type Span struct {
	Name     string
	Start    time.Time
	Dur      time.Duration
	Children []*Span

	TraceID  TraceID
	ID       SpanID
	ParentID SpanID

	mu       sync.Mutex // guards Children appends only
	counters map[string]int64
	attrs    map[string]string
	ended    bool
}

func newSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now(), ID: NewSpanID()}
}

// StartChild opens and returns a child span sharing the receiver's trace
// id. Nil-safe: returns nil. Safe for concurrent use on one parent.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	c.TraceID = s.TraceID
	c.ParentID = s.ID
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration. Repeated calls keep the first duration.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = time.Since(s.Start)
}

// Add increments the named counter by delta.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] += delta
}

// Set overwrites the named counter.
func (s *Span) Set(counter string, v int64) {
	if s == nil {
		return
	}
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] = v
}

// SetAttr attaches a string attribute (backend URL, algorithm name, ...)
// to the span. Like counters, attrs are owned by the span's goroutine.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 2)
	}
	s.attrs[key] = value
}

// Attr returns the named attribute ("" when absent or nil span).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	return s.attrs[key]
}

// Counter returns the named counter's value (0 when absent or nil span).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.counters[name]
}

// CounterNames returns the span's counter names, sorted.
func (s *Span) CounterNames() []string {
	if s == nil || len(s.counters) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Child returns the first child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Walk visits the span and every descendant in depth-first order.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	var rec func(depth int, sp *Span)
	rec = func(depth int, sp *Span) {
		fn(depth, sp)
		for _, c := range sp.Children {
			rec(depth+1, c)
		}
	}
	rec(0, s)
}

// Tree renders the span tree as indented lines: name, duration, and the
// sorted counters of each span. The per-stage durations of a tree built by
// a sequential pipeline sum to (at most) the root duration.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(depth int, sp *Span) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%-*s %12s", indent, 28-len(indent), sp.Name, sp.Dur.Round(time.Microsecond))
		for _, n := range sp.CounterNames() {
			fmt.Fprintf(&b, "  %s=%d", n, sp.Counter(n))
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// SpanJSON is the stable wire projection of a Span, used by the report
// schema (v2) and the analysis service. The tracing identity fields
// (traceId on the tree's top span, spanId/parentSpanId everywhere) are
// additive: v2 readers ignore them.
type SpanJSON struct {
	Name         string            `json:"name"`
	TraceID      string            `json:"traceId,omitempty"`
	SpanID       string            `json:"spanId,omitempty"`
	ParentSpanID string            `json:"parentSpanId,omitempty"`
	DurationMs   float64           `json:"durationMs"`
	Counters     map[string]int64  `json:"counters,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Children     []*SpanJSON       `json:"children,omitempty"`
}

// JSON builds the wire projection of the span tree (nil for a nil span).
// The top span carries the trace id; every span carries its own and its
// parent's span id, so trees cut apart by process boundaries can be
// stitched back together by id.
func (s *Span) JSON() *SpanJSON {
	out := s.jsonNode()
	if out != nil && !s.TraceID.IsZero() {
		out.TraceID = s.TraceID.String()
	}
	return out
}

func (s *Span) jsonNode() *SpanJSON {
	if s == nil {
		return nil
	}
	out := &SpanJSON{
		Name:       s.Name,
		DurationMs: float64(s.Dur) / float64(time.Millisecond),
	}
	if !s.ID.IsZero() {
		out.SpanID = s.ID.String()
	}
	if !s.ParentID.IsZero() {
		out.ParentSpanID = s.ParentID.String()
	}
	if len(s.counters) > 0 {
		out.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			out.Counters[k] = v
		}
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.jsonNode())
	}
	return out
}

// Walk visits the projected span and every descendant, depth-first.
func (j *SpanJSON) Walk(fn func(*SpanJSON)) {
	if j == nil {
		return
	}
	fn(j)
	for _, c := range j.Children {
		c.Walk(fn)
	}
}

// Clone deep-copies the projected tree, so callers can graft or annotate
// without mutating a shared record.
func (j *SpanJSON) Clone() *SpanJSON {
	if j == nil {
		return nil
	}
	out := *j
	if j.Counters != nil {
		out.Counters = make(map[string]int64, len(j.Counters))
		for k, v := range j.Counters {
			out.Counters[k] = v
		}
	}
	if j.Attrs != nil {
		out.Attrs = make(map[string]string, len(j.Attrs))
		for k, v := range j.Attrs {
			out.Attrs[k] = v
		}
	}
	out.Children = nil
	for _, c := range j.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return &out
}

// ChildSummary renders the direct children as "name=duration" pairs
// (space-separated, in start order), the one-line stage breakdown used by
// slow-request logging. "" for a nil or childless span.
func (s *Span) ChildSummary() string {
	if s == nil || len(s.Children) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range s.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.Name)
		b.WriteByte('=')
		b.WriteString(c.Dur.Round(time.Microsecond).String())
	}
	return b.String()
}

// Tracer owns one span tree. A nil *Tracer is the disabled tracer: Start
// returns a nil *Span and the whole instrumented pipeline runs untraced.
type Tracer struct {
	root *Span

	// Remote parent context (set before the first Start): the root span
	// joins this trace instead of minting a fresh id.
	remoteTrace  TraceID
	remoteParent SpanID
}

// NewTracer returns an enabled tracer with no spans yet.
func NewTracer() *Tracer { return &Tracer{} }

// SetRemote records an inbound trace context (from a validated
// traceparent): the tracer's root span will join trace tid as a child of
// the remote span parent. Must be called before the first Start; nil-safe.
func (t *Tracer) SetRemote(tid TraceID, parent SpanID) {
	if t == nil {
		return
	}
	t.remoteTrace = tid
	t.remoteParent = parent
}

// Start opens a span: the root when none exists yet, otherwise a child of
// the root. The root is assigned the tracer's trace identity: the remote
// trace set via SetRemote, or a freshly minted trace id. Nil-safe:
// returns nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	if t.root == nil {
		t.root = newSpan(name)
		if t.remoteTrace.IsZero() {
			t.root.TraceID = NewTraceID()
		} else {
			t.root.TraceID = t.remoteTrace
			t.root.ParentID = t.remoteParent
		}
		return t.root
	}
	return t.root.StartChild(name)
}

// Root returns the root span (nil before the first Start or on nil).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}
