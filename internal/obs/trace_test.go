package obs

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestTraceIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("minted a zero id")
		}
		if seen[tid.String()] || seen[sid.String()] {
			t.Fatal("id collision in 1000 draws")
		}
		seen[tid.String()] = true
		seen[sid.String()] = true
	}
	if s := NewTraceID().String(); len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("trace id wire form: %q", s)
	}
	if s := NewSpanID().String(); len(s) != 16 {
		t.Fatalf("span id wire form: %q", s)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	for _, sampled := range []bool{true, false} {
		v := FormatTraceparent(tid, sid, sampled)
		if len(v) != 55 {
			t.Fatalf("traceparent %q has length %d, want 55", v, len(v))
		}
		gt, gs, gsampled, ok := ParseTraceparent(v)
		if !ok || gt != tid || gs != sid || gsampled != sampled {
			t.Fatalf("round trip of %q: got (%v %v %v %v)", v, gt, gs, gsampled, ok)
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := FormatTraceparent(NewTraceID(), NewSpanID(), true)
	cases := map[string]string{
		"empty":           "",
		"truncated":       valid[:54],
		"too long":        valid + "0",
		"bad version":     "01" + valid[2:],
		"missing dash":    valid[:35] + "_" + valid[36:],
		"non-hex trace":   valid[:3] + "zz" + valid[5:],
		"non-hex span":    valid[:36] + "zz" + valid[38:],
		"non-hex flags":   valid[:53] + "zz",
		"zero trace id":   "00-00000000000000000000000000000000-" + valid[36:],
		"zero span id":    valid[:36] + "0000000000000000" + valid[52:],
		"uppercase hex":   strings.ToUpper(valid),
		"garbage":         "not-a-traceparent-at-all-not-a-traceparent-at-all-not-a",
		"w3c vendor junk": valid + "-extra",
	}
	for name, v := range cases {
		if _, _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, v)
		}
	}
}

func TestInjectExtractTraceparent(t *testing.T) {
	h := make(http.Header)
	tid, sid := NewTraceID(), NewSpanID()
	InjectTraceparent(h, tid, sid, true)
	gt, gs, sampled, ok := ExtractTraceparent(h)
	if !ok || gt != tid || gs != sid || !sampled {
		t.Fatalf("extract: (%v %v %v %v)", gt, gs, sampled, ok)
	}
	if _, _, _, ok := ExtractTraceparent(make(http.Header)); ok {
		t.Fatal("extract accepted an absent header")
	}
}

func TestTracerRemoteParent(t *testing.T) {
	// A fresh tracer mints its own trace id and has no parent.
	local := NewTracer().Start("a")
	if local.TraceID.IsZero() || local.ID.IsZero() || !local.ParentID.IsZero() {
		t.Fatalf("local root ids: %+v", local)
	}

	// A remote-seeded tracer continues the inbound identity.
	tid, parent := NewTraceID(), NewSpanID()
	tr := NewTracer()
	tr.SetRemote(tid, parent)
	root := tr.Start("b")
	if root.TraceID != tid || root.ParentID != parent {
		t.Fatalf("remote root: trace=%v parent=%v", root.TraceID, root.ParentID)
	}
	child := root.StartChild("c")
	if child.TraceID != tid || child.ParentID != root.ID || child.ID.IsZero() {
		t.Fatalf("child identity: %+v", child)
	}
}

func TestTraceHandleNilSafety(t *testing.T) {
	var h *TraceHandle
	if h.RootSpan() != nil || h.TraceIDString() != "" || h.Traceparent(nil) != "" {
		t.Fatal("nil handle accessors must return zero values")
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatalf("TraceFromContext on empty context: %v", got)
	}
}

func TestTraceHandleContext(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("req")
	h := &TraceHandle{Tracer: tr, Root: root, Sampled: true}
	ctx := ContextWithTrace(context.Background(), h)
	got := TraceFromContext(ctx)
	if got != h || got.RootSpan() != root {
		t.Fatal("handle did not round-trip through context")
	}
	if got.TraceIDString() != root.TraceID.String() {
		t.Fatalf("TraceIDString: %q", got.TraceIDString())
	}
	// Traceparent names the given span (or the root) as parent.
	child := root.StartChild("c")
	tp := got.Traceparent(child)
	gt, gs, sampled, ok := ParseTraceparent(tp)
	if !ok || gt != root.TraceID || gs != child.ID || !sampled {
		t.Fatalf("Traceparent(child) = %q", tp)
	}
	if tp := got.Traceparent(nil); !strings.Contains(tp, root.ID.String()) {
		t.Fatalf("Traceparent(nil) should name the root: %q", tp)
	}
}

func TestStartChildConcurrent(t *testing.T) {
	root := NewTracer().Start("req")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := root.StartChild("chunk")
				sp.Set("n", int64(j))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if len(root.Children) != 16*50 {
		t.Fatalf("children=%d, want %d", len(root.Children), 16*50)
	}
	for _, c := range root.Children {
		if c.TraceID != root.TraceID || c.ParentID != root.ID {
			t.Fatalf("child lost trace identity: %+v", c)
		}
	}
}

func TestSpanJSONIdentityAndClone(t *testing.T) {
	root := NewTracer().Start("req")
	child := root.StartChild("stage")
	child.SetAttr("backend", "http://a")
	child.End()
	root.End()

	js := root.JSON()
	if js.TraceID != root.TraceID.String() {
		t.Fatalf("top-level traceId: %q", js.TraceID)
	}
	if js.Children[0].TraceID != "" {
		t.Fatal("traceId should appear on the top span only")
	}
	if js.Children[0].ParentSpanID != js.SpanID {
		t.Fatalf("child parentSpanId %q != root spanId %q", js.Children[0].ParentSpanID, js.SpanID)
	}
	if js.Children[0].Attrs["backend"] != "http://a" {
		t.Fatalf("attrs: %+v", js.Children[0].Attrs)
	}

	cl := js.Clone()
	cl.Children[0].Attrs["backend"] = "mutated"
	cl.Children = append(cl.Children, &SpanJSON{Name: "grafted"})
	if js.Children[0].Attrs["backend"] != "http://a" || len(js.Children) != 1 {
		t.Fatal("mutating the clone leaked into the original")
	}

	var names []string
	js.Walk(func(sp *SpanJSON) { names = append(names, sp.Name) })
	if len(names) != 2 || names[0] != "req" || names[1] != "stage" {
		t.Fatalf("walk order: %v", names)
	}
}
