package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version identifies the build in siwa_build_info and slog startup lines.
// Stamped by the Makefile via
//
//	-ldflags "-X repro/internal/obs.Version=<git describe>"
//
// and falling back to the module's VCS revision when unstamped.
var Version = ""

// VersionString resolves the build version: the -ldflags stamp when
// present, else the vcs.revision recorded by the Go toolchain, else
// "dev".
func VersionString() string {
	if Version != "" {
		return Version
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", ""
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" {
			return rev + dirty
		}
	}
	return "dev"
}

// WriteRuntimeMetrics renders Go runtime telemetry in Prometheus text
// format: goroutine count, heap in use, cumulative GC pause, and the
// build-info gauge. Process-level metrics (goroutines, heap) take the
// tier's prefix; siwa_build_info keeps one fleet-wide name so a single
// query lists every binary's version.
func WriteRuntimeMetrics(w io.Writer, prefix string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP %s_go_goroutines Number of live goroutines.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_go_goroutines gauge\n", prefix)
	fmt.Fprintf(w, "%s_go_goroutines %d\n", prefix, runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP %s_go_heap_inuse_bytes Heap bytes in use.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_go_heap_inuse_bytes gauge\n", prefix)
	fmt.Fprintf(w, "%s_go_heap_inuse_bytes %d\n", prefix, ms.HeapInuse)
	fmt.Fprintf(w, "# HELP %s_go_gc_pause_seconds_total Cumulative stop-the-world GC pause.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_go_gc_pause_seconds_total counter\n", prefix)
	fmt.Fprintf(w, "%s_go_gc_pause_seconds_total %g\n", prefix, float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP siwa_build_info Build metadata; the gauge value is always 1.\n")
	fmt.Fprintf(w, "# TYPE siwa_build_info gauge\n")
	fmt.Fprintf(w, "siwa_build_info{version=%q,go=%q} 1\n", VersionString(), runtime.Version())
}
