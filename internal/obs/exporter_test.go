package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// endedSpan builds a finished root span with a synthetic duration.
func endedSpan(name string, dur time.Duration) *Span {
	sp := NewTracer().Start(name)
	sp.End()
	sp.Dur = dur
	return sp
}

func TestExporterRetentionPriority(t *testing.T) {
	e := NewExporter(16, 1, 100*time.Millisecond)

	// error beats slow: a slow failed request is filed under "error".
	slowErr := endedSpan("a", time.Second)
	if got := e.Export(slowErr, true, 500); got != RetainError {
		t.Fatalf("slow+error: %q", got)
	}
	// slow beats degraded and sampled.
	slowDeg := endedSpan("b", time.Second)
	slowDeg.Set("degraded", 1)
	if got := e.Export(slowDeg, true, 200); got != RetainSlow {
		t.Fatalf("slow+degraded: %q", got)
	}
	// degraded beats sampled, including a degraded counter on a child.
	deg := endedSpan("c", time.Millisecond)
	ch := deg.StartChild("stage")
	ch.Set("degraded", 2)
	ch.End()
	if got := e.Export(deg, true, 200); got != RetainDegraded {
		t.Fatalf("degraded: %q", got)
	}
	// plain sampled.
	if got := e.Export(endedSpan("d", time.Millisecond), true, 200); got != RetainSampled {
		t.Fatalf("sampled: %q", got)
	}
	// fast, healthy, unsampled: dropped.
	if got := e.Export(endedSpan("e", time.Millisecond), false, 200); got != "" {
		t.Fatalf("dropped: %q", got)
	}

	reasons, dropped := e.Stats()
	want := map[string]uint64{RetainError: 1, RetainSlow: 1, RetainDegraded: 1, RetainSampled: 1}
	for k, v := range want {
		if reasons[k] != v {
			t.Fatalf("reasons=%v, want %v", reasons, want)
		}
	}
	if dropped != 1 {
		t.Fatalf("dropped=%d", dropped)
	}
}

func TestExporterSlowAndSamplingDisabled(t *testing.T) {
	e := NewExporter(4, 0, 0) // sampling off, slow off
	if e.SampleNext() {
		t.Fatal("sampleN=0 must never sample")
	}
	if got := e.Export(endedSpan("a", time.Hour), false, 200); got != "" {
		t.Fatalf("slow=0 retained a slow trace: %q", got)
	}
	// Errors are still kept even with everything else off.
	if got := e.Export(endedSpan("b", time.Millisecond), false, 503); got != RetainError {
		t.Fatalf("error with sampling off: %q", got)
	}
}

func TestExporterSampleEveryN(t *testing.T) {
	e := NewExporter(4, 3, 0)
	hits := 0
	for i := 0; i < 300; i++ {
		if e.SampleNext() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-3 sampling over 300 draws: %d hits", hits)
	}
	every := NewExporter(4, 1, 0)
	for i := 0; i < 10; i++ {
		if !every.SampleNext() {
			t.Fatal("sampleN=1 must always sample")
		}
	}
}

func TestExporterRingBound(t *testing.T) {
	e := NewExporter(3, 1, 0)
	for i := 0; i < 10; i++ {
		sp := NewTracer().Start("req")
		sp.Set("seq", int64(i))
		sp.End()
		e.Export(sp, true, 200)
	}
	list := e.List()
	if len(list.Traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(list.Traces))
	}
	if list.Retained != 10 || list.Dropped != 0 {
		t.Fatalf("retained=%d dropped=%d", list.Retained, list.Dropped)
	}
	// Newest first: the survivors are seq 9, 8, 7.
	for i, wantSeq := range []int64{9, 8, 7} {
		recs := e.Get(list.Traces[i].TraceID)
		if len(recs) != 1 || recs[0].Root.Counters["seq"] != wantSeq {
			t.Fatalf("slot %d: %+v", i, recs)
		}
	}
}

func TestExporterGetReturnsClones(t *testing.T) {
	e := NewExporter(4, 1, 0)
	sp := NewTracer().Start("req")
	sp.End()
	e.Export(sp, true, 200)
	id := sp.TraceID.String()

	recs := e.Get(id)
	if len(recs) != 1 {
		t.Fatalf("records: %d", len(recs))
	}
	recs[0].Root.Children = append(recs[0].Root.Children, &SpanJSON{Name: "grafted"})
	again := e.Get(id)
	if len(again[0].Root.Children) != 0 {
		t.Fatal("grafting into a Get result mutated the ring")
	}
}

func TestExporterMultipleRecordsPerTrace(t *testing.T) {
	// A replica holds one record per chunk request of the same batch trace.
	e := NewExporter(8, 1, 0)
	tid := NewTraceID()
	for i := 0; i < 3; i++ {
		tr := NewTracer()
		tr.SetRemote(tid, NewSpanID())
		sp := tr.Start("server /v1/analyze/batch")
		sp.End()
		e.Export(sp, true, 200)
	}
	if recs := e.Get(tid.String()); len(recs) != 3 {
		t.Fatalf("records for one trace id: %d, want 3", len(recs))
	}
}

func TestExporterHTTP(t *testing.T) {
	e := NewExporter(4, 1, 0)
	sp := NewTracer().Start("req")
	child := sp.StartChild("stage")
	child.End()
	sp.End()
	e.Export(sp, true, 200)
	id := sp.TraceID.String()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", e.ServeList)
	mux.HandleFunc("GET /debug/traces/{id}", e.ServeGet)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list TraceList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id || list.Traces[0].Spans != 2 {
		t.Fatalf("list: %+v", list)
	}

	resp, err = http.Get(srv.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lookup TraceLookup
	if err := json.NewDecoder(resp.Body).Decode(&lookup); err != nil {
		t.Fatal(err)
	}
	if lookup.TraceID != id || len(lookup.Records) != 1 ||
		lookup.Records[0].Root.Children[0].Name != "stage" {
		t.Fatalf("lookup: %+v", lookup)
	}

	resp, err = http.Get(srv.URL + "/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d", resp.StatusCode)
	}
	var body struct {
		Error struct{ Code, Message string } `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error.Code != "not_found" {
		t.Fatalf("404 body: %+v err=%v", body, err)
	}
}

func TestExporterWriteProm(t *testing.T) {
	e := NewExporter(4, 1, 0)
	e.Export(endedSpan("a", time.Millisecond), true, 200)
	e.Export(endedSpan("b", time.Millisecond), false, 500)
	e.Export(endedSpan("c", time.Millisecond), false, 200)
	var b strings.Builder
	e.WriteProm(&b, "siwa")
	out := b.String()
	for _, want := range []string{
		`siwa_traces_retained_total{reason="sampled"} 1`,
		`siwa_traces_retained_total{reason="error"} 1`,
		`siwa_traces_retained_total{reason="slow"} 0`,
		`siwa_traces_retained_total{reason="degraded"} 0`,
		`siwa_traces_dropped_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestExporterNilSafety(t *testing.T) {
	var e *Exporter
	if e.SampleNext() || e.SlowThreshold() != 0 {
		t.Fatal("nil exporter must be inert")
	}
	if got := e.Export(endedSpan("a", time.Second), true, 500); got != "" {
		t.Fatalf("nil Export: %q", got)
	}
	if e.Get("x") != nil {
		t.Fatal("nil Get must return nil")
	}
	reasons, dropped := e.Stats()
	if reasons != nil || dropped != 0 {
		t.Fatal("nil Stats must be zero")
	}
	var b strings.Builder
	e.WriteProm(&b, "siwa") // must not panic
	list := e.List()
	if list.Traces == nil || len(list.Traces) != 0 {
		t.Fatalf("nil List: %+v", list)
	}
}
