package lint

import (
	"go/ast"
	"go/types"
)

// derefNamed unwraps pointers and returns the underlying named type, or
// nil for unnamed types.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedInfo splits a named type into (package path, type name); ("", "")
// for unnamed types or types without a package (error, ...).
func namedInfo(t types.Type) (pkgPath, name string) {
	n := derefNamed(t)
	if n == nil || n.Obj() == nil {
		return "", ""
	}
	if n.Obj().Pkg() != nil {
		pkgPath = n.Obj().Pkg().Path()
	}
	return pkgPath, n.Obj().Name()
}

// methodCall resolves call as a method call: the receiver expression, the
// receiver's (pkgPath, typeName), and the method name. ok is false for
// plain function calls, conversions, and calls through non-selector
// expressions.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, pkgPath, typeName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", "", "", false
	}
	pkgPath, typeName = namedInfo(selection.Recv())
	if typeName == "" {
		// Interface or unnamed receiver: fall back to the method's own
		// receiver declaration (interface methods resolve here).
		if f, isFunc := selection.Obj().(*types.Func); isFunc {
			sig := f.Type().(*types.Signature)
			if sig.Recv() != nil {
				pkgPath, typeName = namedInfo(sig.Recv().Type())
			}
		}
	}
	return sel.X, pkgPath, typeName, sel.Sel.Name, typeName != ""
}

// funcCall resolves call as a package-level function call, returning the
// function's (pkgPath, name). ok is false for methods, conversions, and
// local closures.
func funcCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, isFunc := info.Uses[fun].(*types.Func); isFunc {
			if f.Pkg() != nil {
				return f.Pkg().Path(), f.Name(), true
			}
		}
	case *ast.SelectorExpr:
		if _, isMethod := info.Selections[fun]; isMethod {
			return "", "", false
		}
		if f, isFunc := info.Uses[fun.Sel].(*types.Func); isFunc {
			if f.Pkg() != nil {
				return f.Pkg().Path(), f.Name(), true
			}
		}
	}
	return "", "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	pkg, name := func() (string, string) {
		if n, ok := t.(*types.Named); ok && n.Obj() != nil && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path(), n.Obj().Name()
		}
		return "", ""
	}()
	return pkg == "context" && name == "Context"
}

// baseIdent returns the leftmost identifier of a selector chain
// (b.breaker -> b; buf -> buf), or "" when the expression is not rooted
// in an identifier.
func baseIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// terminates reports whether a statement never falls through to the next
// statement in its list: return, panic, continue/break/goto, or an
// os.Exit-like call. Approximate on purpose — used only to decide which
// branch states merge at a join point.
func terminates(info *types.Info, s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if pkg, name, ok := funcCall(info, call); ok {
				if (pkg == "os" && name == "Exit") || (pkg == "runtime" && name == "Goexit") {
					return true
				}
				if pkg == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln") {
					return true
				}
			}
		}
	case *ast.BlockStmt:
		if n := len(st.List); n > 0 {
			return terminates(info, st.List[n-1])
		}
	case *ast.SelectStmt:
		// A select never falls through when every arm ends in a
		// terminating statement (an empty select blocks forever, which
		// also never falls through).
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || !lastTerminates(info, cc.Body) {
				return false
			}
		}
		return true
	}
	return false
}

// lastTerminates reports whether a statement list ends in a terminating
// statement.
func lastTerminates(info *types.Info, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminates(info, list[len(list)-1])
}
