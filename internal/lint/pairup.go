package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PairupAnalyzer is the paper's resource-leak anomaly: an acquire whose
// release some path never reaches. The configured pairs are this repo's
// real bug history — the circuit breaker's half-open probe slot
// (Acquire/Release|Success|Fail, the PR-5 leak), single-flight leadership
// (begin/finish — an abandoned leader leaves followers waiting forever,
// the PR-5 cancellation-sharing shape), pooled buffers (Get/Put), span
// lifecycles (Start|StartChild/End), and batch admission tickets
// (acquire/release).
//
// The pass is flow-sensitive and intraprocedural: it walks each function
// body tracking live resources through branches, reports any return (or
// fall-through) a live resource can reach unreleased, and stops tracking
// a resource that escapes — returned, stored, or passed to another
// function, where ownership transfers (that is also why the real
// attemptOne/send split stays quiet: the backend is handed to send, which
// resolves the slot on every path). Releases inside deferred or spawned
// closures count: `defer sp.End()` and ticket-returning goroutines are
// the idiomatic shapes here.
var PairupAnalyzer = &Analyzer{
	Name: "pairup",
	Doc:  "acquire/release pairing for breaker slots, pools, spans, and tickets (resource-leak anomaly)",
	Run:  runPairup,
}

// pairShape is how a pair's release refers back to its acquire.
type pairShape int

const (
	// shapeReceiver: the resource is the acquire call's receiver; release
	// is one of the named methods on the same receiver (Breaker.Acquire ->
	// breaker.Release/Success/Fail).
	shapeReceiver pairShape = iota
	// shapeHandle: the resource is the acquire call's result; release is
	// a method ON the handle (Tracer.Start -> span.End).
	shapeHandle
	// shapeHandleArg: the resource is the acquire call's result; release
	// is a method on the ACQUIRING receiver taking the handle as an
	// argument (Pool.Get -> pool.Put(buf)).
	shapeHandleArg
)

// pairSpec is one configured acquire/release pair. Matching is by
// receiver type name plus optional package-path suffix: the golden
// fixtures declare local stand-in types (Breaker, Pool, ...) with the
// same shapes, so the fixture suite stays frozen while the real types
// evolve.
type pairSpec struct {
	pkgSuffix string // "" = any package; otherwise package path suffix
	typeName  string
	acquire   string
	releases  []string
	shape     pairShape
	what      string
	hint      string
}

var pairSpecs = []*pairSpec{
	{
		typeName: "Breaker", acquire: "Acquire",
		releases: []string{"Release", "Success", "Fail"},
		shape:    shapeReceiver,
		what:     "breaker probe slot",
		hint:     "resolve the slot with Success, Fail, or Release on every path, or hand the backend to a resolver",
	},
	{
		pkgSuffix: "sync", typeName: "Pool", acquire: "Get",
		releases: []string{"Put"},
		shape:    shapeHandleArg,
		what:     "pooled object",
		hint:     "Put the object back on every path (suppress deliberate drops with //lint:ignore)",
	},
	{
		typeName: "Pool", acquire: "Get", // fixture stand-in for sync.Pool
		releases: []string{"Put"},
		shape:    shapeHandleArg,
		what:     "pooled object",
		hint:     "Put the object back on every path (suppress deliberate drops with //lint:ignore)",
	},
	{
		typeName: "Tracer", acquire: "Start",
		releases: []string{"End"},
		shape:    shapeHandle,
		what:     "span",
		hint:     "End the span on every path (defer span.End() right after Start)",
	},
	{
		typeName: "Span", acquire: "StartChild",
		releases: []string{"End"},
		shape:    shapeHandle,
		what:     "span",
		hint:     "End the span on every path (defer span.End() right after StartChild)",
	},
	{
		typeName: "tickets", acquire: "acquire",
		releases: []string{"release"},
		shape:    shapeReceiver,
		what:     "admission ticket",
		hint:     "release the ticket on every path (defer tickets.release())",
	},
	{
		typeName: "flightGroup", acquire: "begin",
		releases: []string{"finish"},
		shape:    shapeHandleArg,
		what:     "single-flight leadership",
		hint:     "finish the flight on every path — followers wait on it forever otherwise",
	},
}

// matchSpec resolves call as an acquire of one of the configured pairs.
func matchSpec(info *types.Info, call *ast.CallExpr) (*pairSpec, ast.Expr) {
	recv, pkg, tname, method, ok := methodCall(info, call)
	if !ok {
		return nil, nil
	}
	for _, s := range pairSpecs {
		if s.typeName != tname || s.acquire != method {
			continue
		}
		if s.pkgSuffix != "" && pkg != s.pkgSuffix && !hasPathSuffix(pkg, s.pkgSuffix) {
			continue
		}
		// Disambiguate same-name specs (sync.Pool vs fixture Pool): prefer
		// the exact-package one when both match; order in pairSpecs puts the
		// pkg-restricted spec first, so first match wins correctly.
		return s, recv
	}
	return nil, nil
}

func hasPathSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// resource is one tracked acquisition within a function.
type resource struct {
	spec    *pairSpec
	recvKey string // printed receiver expression (shapes receiver/handleArg)
	handle  string // result variable name (shapes handle/handleArg); "" = none
	pos     token.Pos
}

// resState is a resource's status on one path.
type resState struct {
	released bool
	escaped  bool
}

// pairState maps live resources to their per-path status.
type pairState map[*resource]resState

func (s pairState) clone() pairState {
	out := make(pairState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge folds another path's state in: released only if released on every
// contributing path (a leak on any path is a leak), escaped if escaped on
// any (ownership moved somewhere this pass cannot see).
func (s pairState) merge(other pairState) {
	for r, st := range other {
		if cur, ok := s[r]; ok {
			cur.released = cur.released && st.released
			cur.escaped = cur.escaped || st.escaped
			s[r] = cur
		} else {
			s[r] = st
		}
	}
}

type pairupWalker struct {
	pass *Pass
	info *types.Info
}

func runPairup(pass *Pass) {
	w := &pairupWalker{pass: pass, info: pass.Pkg.Info}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.function(fn.Body)
				}
			case *ast.FuncLit:
				w.function(fn.Body)
			}
			return true
		})
	}
}

// function analyzes one function scope: walk the body threading resource
// state, then report anything still live at fall-through.
func (w *pairupWalker) function(body *ast.BlockStmt) {
	st := w.stmts(body.List, pairState{})
	if !lastTerminates(w.info, body.List) {
		w.reportLive(body.Rbrace, st)
	}
}

func (w *pairupWalker) stmts(list []ast.Stmt, st pairState) pairState {
	for i := 0; i < len(list); i++ {
		s := list[i]
		// Peephole for the two-statement conditional acquire:
		//   f, leader := fg.begin(key)   (or ok := b.Acquire())
		//   if !leader { follower path } // or: if leader { owner path }
		// The resource is only owed a release on the side where the bool
		// came back true.
		if as, isAssign := s.(*ast.AssignStmt); isAssign && i+1 < len(list) {
			if r, okName := w.acquireWithOK(as); r != nil && okName != "" {
				if ifs, isIf := list[i+1].(*ast.IfStmt); isIf && ifs.Init == nil {
					if neg, pos := condIsIdent(ifs.Cond, okName); neg || pos {
						w.applyUses(s, st)
						st = w.condAcquireIf(ifs, st, r, neg)
						i++
						continue
					}
				}
			}
		}
		st = w.stmt(s, st)
	}
	return st
}

// acquireWithOK matches an acquire assignment that also binds a success
// bool: the last LHS for multi-value handle acquires (f, leader := ...),
// the single LHS for receiver-shape acquires (ok := b.Acquire()).
func (w *pairupWalker) acquireWithOK(as *ast.AssignStmt) (*resource, string) {
	r := w.acquireFromAssign(as)
	if r == nil {
		return nil, ""
	}
	var boolExpr ast.Expr
	switch r.spec.shape {
	case shapeReceiver:
		if len(as.Lhs) == 1 {
			boolExpr = as.Lhs[0]
		}
	default:
		if len(as.Lhs) == 2 {
			boolExpr = as.Lhs[1]
		}
	}
	if id, ok := boolExpr.(*ast.Ident); ok && id.Name != "_" {
		return r, id.Name
	}
	return r, ""
}

// condIsIdent reports whether cond is exactly `!name` (neg) or `name`
// (pos).
func condIsIdent(cond ast.Expr, name string) (neg, pos bool) {
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if id, ok := e.X.(*ast.Ident); ok && id.Name == name {
				return true, false
			}
		}
	case *ast.Ident:
		if e.Name == name {
			return false, true
		}
	}
	return false, false
}

// condAcquireIf walks `if !ok {...}` / `if ok {...}` following a
// conditional acquire: the resource is live only on the success side.
func (w *pairupWalker) condAcquireIf(ifs *ast.IfStmt, st pairState, r *resource, neg bool) pairState {
	if neg {
		// if !ok { failure path — resource not held }
		failOut := w.stmts(ifs.Body.List, st.clone())
		afterState := st.clone()
		afterState[r] = resState{}
		if ifs.Else != nil {
			elseOut := w.stmt(ifs.Else, afterState.clone())
			if !lastTerminates(w.info, ifs.Body.List) {
				elseOut.merge(failOut)
			}
			return elseOut
		}
		if !lastTerminates(w.info, ifs.Body.List) {
			afterState.merge(failOut)
		}
		return afterState
	}
	// if ok { success path — resource held inside only }
	thenState := st.clone()
	thenState[r] = resState{}
	out := st.clone()
	thenOut := w.stmts(ifs.Body.List, thenState)
	if !lastTerminates(w.info, ifs.Body.List) {
		out.merge(thenOut)
	}
	if ifs.Else != nil {
		out.merge(w.stmt(ifs.Else, st.clone()))
	}
	return out
}

func (w *pairupWalker) stmt(s ast.Stmt, st pairState) pairState {
	// Releases and escapes anywhere in the statement (including inside
	// deferred and spawned closures) resolve before control-flow handling:
	// a return statement may itself release (rare) or escape (common).
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if call, ok := stmt.X.(*ast.CallExpr); ok {
			if spec, recv := matchSpec(w.info, call); spec != nil {
				w.applyUses(s, st)
				if spec.shape == shapeReceiver {
					r := &resource{spec: spec, recvKey: types.ExprString(recv), pos: call.Pos()}
					st = st.clone()
					st[r] = resState{}
				}
				// A dropped handle (shapeHandle/shapeHandleArg result ignored)
				// cannot be tracked; nil-safe spans make this legal.
				return st
			}
		}
		w.applyUses(s, st)
		return st
	case *ast.AssignStmt:
		if r := w.acquireFromAssign(stmt); r != nil {
			w.applyUses(s, st)
			st = st.clone()
			st[r] = resState{}
			return st
		}
		w.applyUses(s, st)
		return st
	case *ast.IfStmt:
		return w.ifStmt(stmt, st)
	case *ast.ReturnStmt:
		w.applyUses(s, st)
		w.reportLive(stmt.Pos(), st)
		return st
	case *ast.BlockStmt:
		return w.stmts(stmt.List, st.clone())
	case *ast.LabeledStmt:
		return w.stmt(stmt.Stmt, st)
	case *ast.ForStmt:
		if stmt.Init != nil {
			st = w.stmt(stmt.Init, st)
		}
		if stmt.Cond != nil {
			w.applyUsesExpr(stmt.Cond, st)
		}
		body := w.stmts(stmt.Body.List, st.clone())
		out := st.clone()
		out.merge(body)
		return out
	case *ast.RangeStmt:
		w.applyUsesExpr(stmt.X, st)
		body := w.stmts(stmt.Body.List, st.clone())
		out := st.clone()
		out.merge(body)
		return out
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		w.applyUses(s, st) // conservative: tag + all case bodies scanned for releases/escapes
		return st
	case *ast.SelectStmt:
		merged := st.clone()
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sub := st.clone()
				if cc.Comm != nil {
					sub = w.stmt(cc.Comm, sub)
				}
				merged.merge(w.stmts(cc.Body, sub))
			}
		}
		return merged
	default:
		w.applyUses(s, st)
		return st
	}
}

// ifStmt handles conditional-acquire idioms plus ordinary branching.
func (w *pairupWalker) ifStmt(stmt *ast.IfStmt, st pairState) pairState {
	if stmt.Init != nil {
		// `if p, ok := pool.Get().(*T); ok { ... }`: the handle is live in
		// the then-branch only.
		if as, isAssign := stmt.Init.(*ast.AssignStmt); isAssign {
			if r := w.acquireFromAssign(as); r != nil {
				thenState := st.clone()
				thenState[r] = resState{}
				out := st.clone()
				thenOut := w.stmts(stmt.Body.List, thenState)
				if !lastTerminates(w.info, stmt.Body.List) {
					out.merge(thenOut)
				}
				if stmt.Else != nil {
					out.merge(w.stmt(stmt.Else, st.clone()))
				}
				return out
			}
		}
		st = w.stmt(stmt.Init, st)
	}

	// `if !x.Acquire() { bail }`: acquired after the if (and in the else
	// branch); not acquired inside the failure body. Short-circuit makes
	// this exact even under `a || !x.Acquire()`: reaching the code after
	// the if with the cond false means the acquire ran and succeeded.
	if spec, recv := w.negatedAcquire(stmt.Cond); spec != nil {
		failOut := w.stmts(stmt.Body.List, st.clone())
		r := &resource{spec: spec, recvKey: types.ExprString(recv), pos: stmt.Cond.Pos()}
		afterState := st.clone()
		afterState[r] = resState{}
		if stmt.Else != nil {
			elseOut := w.stmt(stmt.Else, afterState.clone())
			if !lastTerminates(w.info, stmt.Body.List) {
				elseOut.merge(failOut)
			}
			return elseOut
		}
		if !lastTerminates(w.info, stmt.Body.List) {
			afterState.merge(failOut)
		}
		return afterState
	}

	// `if x.Acquire() { ... }`: acquired inside the then-branch only.
	if spec, recv := w.positiveAcquire(stmt.Cond); spec != nil {
		thenState := st.clone()
		r := &resource{spec: spec, recvKey: types.ExprString(recv), pos: stmt.Cond.Pos()}
		thenState[r] = resState{}
		out := st.clone()
		thenOut := w.stmts(stmt.Body.List, thenState)
		if !lastTerminates(w.info, stmt.Body.List) {
			out.merge(thenOut)
		}
		if stmt.Else != nil {
			out.merge(w.stmt(stmt.Else, st.clone()))
		}
		return out
	}

	w.applyUsesExpr(stmt.Cond, st)
	out := pairState{}
	thenOut := w.stmts(stmt.Body.List, st.clone())
	thenTerm := lastTerminates(w.info, stmt.Body.List)
	if !thenTerm {
		out.merge(thenOut)
	}
	if stmt.Else != nil {
		elseOut := w.stmt(stmt.Else, st.clone())
		elseTerm := false
		if blk, isBlk := stmt.Else.(*ast.BlockStmt); isBlk {
			elseTerm = lastTerminates(w.info, blk.List)
		}
		if !elseTerm {
			out.merge(elseOut)
		}
		if thenTerm && elseTerm {
			return pairState{}
		}
	} else {
		out.merge(st)
	}
	return out
}

// negatedAcquire finds a `!x.Acquire()` operand in cond (possibly under
// `||` chains).
func (w *pairupWalker) negatedAcquire(cond ast.Expr) (*pairSpec, ast.Expr) {
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if call, ok := e.X.(*ast.CallExpr); ok {
				if spec, recv := matchSpec(w.info, call); spec != nil && spec.shape == shapeReceiver {
					return spec, recv
				}
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			if spec, recv := w.negatedAcquire(e.X); spec != nil {
				return spec, recv
			}
			return w.negatedAcquire(e.Y)
		}
	case *ast.ParenExpr:
		return w.negatedAcquire(e.X)
	}
	return nil, nil
}

// positiveAcquire matches a cond that is exactly (or leads a `&&` chain
// with) an acquire call.
func (w *pairupWalker) positiveAcquire(cond ast.Expr) (*pairSpec, ast.Expr) {
	switch e := cond.(type) {
	case *ast.CallExpr:
		if spec, recv := matchSpec(w.info, e); spec != nil && spec.shape == shapeReceiver {
			return spec, recv
		}
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return w.positiveAcquire(e.X)
		}
	case *ast.ParenExpr:
		return w.positiveAcquire(e.X)
	}
	return nil, nil
}

// acquireFromAssign matches handle-producing acquires:
// `sp := root.StartChild(..)`, `buf := pool.Get().(*T)`,
// `f, leader := fg.begin(..)`, and receiver-shape acquires whose bool is
// stored (`ok := b.Acquire()` — tracked unconditionally, the common
// conditional forms go through ifStmt instead).
func (w *pairupWalker) acquireFromAssign(as *ast.AssignStmt) *resource {
	if len(as.Rhs) != 1 {
		return nil
	}
	rhs := as.Rhs[0]
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	spec, recv := matchSpec(w.info, call)
	if spec == nil {
		return nil
	}
	switch spec.shape {
	case shapeReceiver:
		return &resource{spec: spec, recvKey: types.ExprString(recv), pos: call.Pos()}
	case shapeHandle, shapeHandleArg:
		if len(as.Lhs) == 0 {
			return nil
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		return &resource{spec: spec, recvKey: types.ExprString(recv), handle: id.Name, pos: call.Pos()}
	}
	return nil
}

// applyUses scans a whole statement (closures included) for releases and
// escapes of live resources and updates st in place.
func (w *pairupWalker) applyUses(s ast.Stmt, st pairState) {
	if len(st) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		w.applyNode(n, st)
		return true
	})
}

func (w *pairupWalker) applyUsesExpr(e ast.Expr, st pairState) {
	if e == nil || len(st) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		w.applyNode(n, st)
		return true
	})
}

func (w *pairupWalker) applyNode(n ast.Node, st pairState) {
	switch x := n.(type) {
	case *ast.CallExpr:
		// Release?
		if recv, _, tname, method, ok := methodCall(w.info, x); ok {
			for r, rs := range st {
				if rs.released || rs.escaped || !isRelease(r.spec, method) {
					continue
				}
				switch r.spec.shape {
				case shapeReceiver:
					// Release rides the acquiring receiver: type and printed
					// expression must both match.
					if tname == r.spec.typeName && types.ExprString(recv) == r.recvKey {
						rs.released = true
						st[r] = rs
					}
				case shapeHandle:
					// Release is a method on the handle itself (span.End);
					// the handle's type differs from the acquirer's, so match
					// by variable identity only.
					if types.ExprString(recv) == r.handle || baseIdent(recv) == r.handle {
						rs.released = true
						st[r] = rs
					}
				case shapeHandleArg:
					if tname == r.spec.typeName && types.ExprString(recv) == r.recvKey {
						for _, arg := range x.Args {
							if id, isID := arg.(*ast.Ident); isID && id.Name == r.handle {
								rs.released = true
								st[r] = rs
							}
						}
					}
				}
			}
		}
		// Escape through arguments: a live resource (its handle, its
		// receiver, or the receiver's base) passed to any call transfers
		// ownership — the callee may resolve it (send() does).
		for _, arg := range x.Args {
			w.escapeIfUsed(arg, st)
		}
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			w.escapeIfUsed(res, st)
		}
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			// Re-aliasing a live handle (sp2 := sp) or storing it into a
			// structure loses tracking.
			if call, isCall := rhs.(*ast.CallExpr); isCall {
				if spec, _ := matchSpec(w.info, call); spec != nil {
					continue // the acquire itself, handled by the walker
				}
			}
			w.escapeIfUsed(rhs, st)
		}
	case *ast.SendStmt:
		w.escapeIfUsed(x.Value, st)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.escapeIfUsed(el, st)
		}
	}
}

// isRelease reports whether method is one of the spec's release names.
func isRelease(spec *pairSpec, method string) bool {
	for _, r := range spec.releases {
		if r == method {
			return true
		}
	}
	return false
}

// escapeIfUsed marks any live resource whose identity appears in e as
// escaped. Identity depends on the shape: handle-based resources (spans,
// pooled buffers, flights) are owned through the handle variable — the
// acquiring receiver is just the registry, and reading `fg.timeout` must
// not end tracking of `f`. Receiver-shape resources (breaker slots,
// tickets) are owned through the receiver expression or its base
// identifier (passing `b` forwards `b.breaker` to a resolver).
func (w *pairupWalker) escapeIfUsed(e ast.Expr, st pairState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		for r, rs := range st {
			if rs.escaped {
				continue
			}
			escaped := false
			if r.spec.shape == shapeReceiver {
				escaped = r.recvKey != "" && (id.Name == r.recvKey || id.Name == baseIdent0(r.recvKey))
			} else {
				escaped = r.handle != "" && id.Name == r.handle
			}
			if escaped {
				rs.escaped = true
				st[r] = rs
			}
		}
		return true
	})
}

// baseIdent0 returns the first dotted component of a printed receiver
// expression ("b.breaker" -> "b").
func baseIdent0(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' || key[i] == '[' {
			return key[:i]
		}
	}
	return key
}

// reportLive reports every resource still unreleased and unescaped at an
// exit point.
func (w *pairupWalker) reportLive(pos token.Pos, st pairState) {
	type item struct {
		r *resource
	}
	var items []item
	for r, rs := range st {
		if !rs.released && !rs.escaped {
			items = append(items, item{r})
		}
	}
	// Deterministic order for stable output.
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].r.pos < items[i].r.pos {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	for _, it := range items {
		w.pass.Reportf(pos, it.r.spec.hint,
			"%s acquired at line %d is not released on this path",
			it.r.spec.what, w.pass.Fset.Position(it.r.pos).Line)
	}
}
